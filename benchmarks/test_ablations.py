"""Ablations for the design choices DESIGN.md calls out.

Not a paper figure — these isolate the mechanisms behind the headline
results:

1. **Chunk count**: chunked pipelining across dimensions is what removes
   the multi-dimensional penalty; chunks=1 degenerates to the sequential
   per-dim sum.
2. **In-switch collectives on/off** at the optimized HierMem bandwidths:
   isolates how much of the Fig. 11 win is the gather/scatter fusion
   versus the raw bandwidth increase.
3. **Backend agreement**: analytical vs packet-level Garnet-lite across
   message sizes on congestion-free ring traffic (the regime the paper
   argues analytical modeling is sufficient for).
"""

from __future__ import annotations

import pytest

import repro
from repro.configs import CONV_4D
from repro.configs.table5 import hiermem_custom, moe_npu_network
from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork
from repro.stats import format_table
from repro.system import SendRecvCollectiveExecutor
from repro.system.phases import decompose_collective
from repro.workload import generate_moe, generate_single_collective, moe_1t

from conftest import write_result

GiB = 1 << 30
MiB = 1 << 20


def test_ablation_chunk_count(benchmark, results_dir):
    """Pipelining degree: sequential sum at chunks=1, converging fast."""

    def sweep():
        times = {}
        for chunks in (1, 2, 4, 8, 16, 32, 64):
            traces = generate_single_collective(
                CONV_4D, repro.CollectiveType.ALL_REDUCE, GiB)
            config = repro.SystemConfig(
                topology=CONV_4D, scheduler="baseline",
                collective_chunks=chunks)
            times[chunks] = repro.simulate(traces, config).total_time_us
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    plan = decompose_collective(
        repro.CollectiveType.ALL_REDUCE, CONV_4D, range(4), GiB)
    sequential = plan.total_duration_ns(CONV_4D) / 1e3
    rows = [[c, f"{t:.0f}", f"{t / times[1]:.3f}"] for c, t in times.items()]
    text = format_table(["chunks", "time (us)", "vs chunks=1"], rows) + (
        f"\n\nclosed-form sequential sum: {sequential:.0f} us"
    )
    write_result(results_dir, "ablation_chunk_count.txt", text)

    assert times[1] == pytest.approx(sequential, rel=0.02)
    assert times[64] < 0.7 * times[1]
    # Monotone non-increasing (within float noise).
    ordered = [times[c] for c in (1, 2, 4, 8, 16, 32, 64)]
    assert all(a >= b - 1.0 for a, b in zip(ordered, ordered[1:]))


def test_ablation_inswitch_vs_bandwidth(benchmark, results_dir):
    """At the Opt bandwidths, how much does the fusion itself buy?"""

    def run_both():
        topology = moe_npu_network()
        model = moe_1t()
        out = {}
        for label, inswitch in (("network collectives", False),
                                ("in-switch collectives", True)):
            traces = generate_moe(model, topology, remote_parameters=True,
                                  inswitch_collectives=inswitch)
            config = hiermem_custom(in_node_bw=512.0, group_bw=500.0)
            out[label] = repro.simulate(traces, config).total_time_ms
        return out

    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    gain = out["network collectives"] / out["in-switch collectives"]
    text = format_table(
        ["collectives", "MoE-1T iteration (ms)"],
        [[k, f"{v:.1f}"] for k, v in out.items()],
    ) + f"\n\nfusion gain at fixed bandwidth: {gain:.2f}x"
    write_result(results_dir, "ablation_inswitch.txt", text)
    # The fusion itself (not just bandwidth) is a large part of the win.
    assert gain > 1.5


def test_ablation_nic_oversubscription(benchmark, results_dir):
    """First-order congestion (the paper's stated future work): how an
    oversubscribed board-level fabric (Conv-4D's dim 2, the baseline
    schedule's bottleneck) degrades a 1 GB All-Reduce."""
    import dataclasses

    from repro.network import MultiDimTopology

    def sweep():
        times = {}
        for scheduler in ("baseline", "themis"):
            for oversub in (1.0, 2.0, 4.0):
                dims = list(CONV_4D.dims)
                dims[1] = dataclasses.replace(dims[1],
                                              oversubscription=oversub)
                topology = MultiDimTopology(dims, name=f"Conv-4D-os{oversub:g}")
                traces = generate_single_collective(
                    topology, repro.CollectiveType.ALL_REDUCE, GiB)
                config = repro.SystemConfig(
                    topology=topology, scheduler=scheduler,
                    collective_chunks=32)
                times[(scheduler, oversub)] = repro.simulate(
                    traces, config).total_time_us
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for scheduler in ("baseline", "themis"):
        ref = times[(scheduler, 1.0)]
        for oversub in (1.0, 2.0, 4.0):
            t = times[(scheduler, oversub)]
            rows.append([scheduler, f"{oversub:g}:1", f"{t:.0f}",
                         f"{t / ref:.3f}"])
    text = format_table(
        ["scheduler", "fabric oversubscription", "All-Reduce (us)",
         "vs non-blocking"], rows)
    write_result(results_dir, "ablation_oversubscription.txt", text)
    for scheduler in ("baseline", "themis"):
        seq = [times[(scheduler, o)] for o in (1.0, 2.0, 4.0)]
        assert seq[0] <= seq[1] <= seq[2], scheduler
    # The bandwidth-aware scheduler reroutes around the congested fabric;
    # the fixed hierarchical order cannot.
    themis_hit = times[("themis", 4.0)] / times[("themis", 1.0)]
    baseline_hit = times[("baseline", 4.0)] / times[("baseline", 1.0)]
    assert baseline_hit > 3.0        # fixed order eats the full 4:1 hit
    assert themis_hit < baseline_hit / 2


def test_ablation_backend_agreement(benchmark, results_dir):
    """All three backends on congestion-free ring All-Reduce.

    The analytical closed form, the max-min flow model, and the
    packet-level Garnet-lite must agree in this regime — the paper's
    justification for analytical modeling — while their event counts
    span three orders of magnitude.
    """
    import time as _time

    from repro.network import FlowLevelNetwork

    def sweep():
        rows = []
        errors = []
        topo = repro.parse_topology("Ring(8)", [150], latencies_ns=[100])
        for size_mib in (1, 4, 16, 64, 256):
            payload = size_mib * MiB
            times = {}
            events = {}
            for name, cls, kw in (
                ("analytical", AnalyticalNetwork, {}),
                ("flow", FlowLevelNetwork, {}),
                ("garnet", GarnetLiteNetwork,
                 {"packet_bytes": max(4096, payload // 64)}),
            ):
                engine = EventEngine()
                net = cls(engine, topo, **kw)
                executor = SendRecvCollectiveExecutor(engine, net)
                done = {}
                executor.run_ring_allreduce(
                    list(range(8)), payload,
                    on_complete=lambda t: done.update(t=t))
                engine.run()
                times[name] = done["t"]
                events[name] = engine.events_processed
            for other in ("flow", "garnet"):
                errors.append(
                    abs(times[other] - times["analytical"]) / times[other])
            rows.append([
                size_mib,
                f"{times['analytical'] / 1e3:.1f}",
                f"{times['flow'] / 1e3:.1f}",
                f"{times['garnet'] / 1e3:.1f}",
                f"{events['analytical']}/{events['flow']}/{events['garnet']}",
            ])
        return rows, errors

    rows, errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["payload (MiB)", "analytical (us)", "flow (us)", "garnet (us)",
         "events a/f/g"],
        rows,
    )
    write_result(results_dir, "ablation_backend_agreement.txt", text)
    assert max(errors) < 0.05

"""Table V design-space sweep — finding HierMem (Opt).

The paper sweeps the in-node pooled fabric bandwidth (256..2048 GB/s in
steps of 256) and the remote-memory-group bandwidth (100..500 GB/s in
steps of 100), training MoE-1T with in-switch collectives at each point,
and reports the best-performing configuration with the least resource
provision as HierMem (Opt) = (512, 500).

We regenerate the full sweep surface, identify the knee (least resources
within 5% of the best time), and assert the paper's monotonicity: time
never increases with more bandwidth, group bandwidth matters until the
expert streams stop being the bottleneck, and fabric bandwidth matters
until the fused gathers hide under compute.

The 40-point surface runs through the campaign engine
(:mod:`repro.campaign`): the base point reproduces
:func:`repro.configs.table5.hiermem_custom` through the CLI field set,
and the two bandwidth axes are a grid.  Set ``REPRO_CAMPAIGN_JOBS`` to
fan the sweep out over a process pool — results are bit-identical to
the serial run.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import CampaignRunner, SweepSpec, results_by_config
from repro.configs.table5 import TABLE5_HBM_GBPS, TABLE5_PEAK_TFLOPS
from repro.stats import format_table

from conftest import write_result

FABRIC_SWEEP = [256, 512, 768, 1024, 1280, 1536, 1792, 2048]
GROUP_SWEEP = [100, 200, 300, 400, 500]

# The paper's MoE NPU network (configs.table5.moe_npu_network) and the
# Table V system, spelled as campaign config fields.
BASE_POINT = {
    "topology": "Switch(16)_Switch(16)",
    "bandwidths": "256,12.5",
    "latencies": "250,1000",
    "workload": "moe1t",
    "scheduler": "themis",
    "memory_model": "hiermem",
    "inswitch": True,
    "peak_tflops": TABLE5_PEAK_TFLOPS,
    "hbm_gbps": TABLE5_HBM_GBPS,
}


def _sweep():
    spec = SweepSpec(
        base=BASE_POINT,
        grid={"fabric_bw_gbps": FABRIC_SWEEP, "group_bw_gbps": GROUP_SWEEP},
    )
    jobs = int(os.environ.get("REPRO_CAMPAIGN_JOBS", "0"))
    campaign = CampaignRunner(jobs=jobs).run(spec)
    assert not campaign.errors, campaign.errors
    by_config = results_by_config(
        campaign.to_dict(), "fabric_bw_gbps", "group_bw_gbps")
    return {
        (int(fabric), int(group)): result["total_time_ns"] * 1e-6
        for (fabric, group), result in by_config.items()
    }


def test_tableV_sweep_regenerate(benchmark, results_dir):
    surface = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for fabric in FABRIC_SWEEP:
        rows.append([fabric] + [f"{surface[(fabric, g)]:.1f}" for g in GROUP_SWEEP])
    best_time = min(surface.values())
    # The paper's selection rule: best performance with the least resource
    # provision — the cheapest point within 5% of the optimum.
    knee = min(
        (point for point, t in surface.items() if t <= 1.05 * best_time),
        key=lambda p: (p[0] * p[1], p),
    )
    text = format_table(
        ["fabric \\ group (GB/s)"] + [str(g) for g in GROUP_SWEEP], rows
    ) + (
        f"\n\nbest time: {best_time:.1f} ms"
        f"\nknee (least provision within 5%): fabric={knee[0]}, group={knee[1]}"
        f"\npaper's HierMem(Opt): fabric=512, group=500"
    )
    write_result(results_dir, "tableV_sweep.txt", text)

    # Monotone in both axes (more bandwidth never hurts).
    for fabric in FABRIC_SWEEP:
        times = [surface[(fabric, g)] for g in GROUP_SWEEP]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:])), fabric
    for group in GROUP_SWEEP:
        times = [surface[(f, group)] for f in FABRIC_SWEEP]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:])), group

    # The baseline corner is the worst point; the sweep improves on it by
    # a large factor (paper: 4.6x best over baseline-with-inswitch-off;
    # here relative to the (256, 100) corner of the in-switch surface).
    corner = surface[(256, 100)]
    assert corner == max(surface.values())
    assert corner / best_time > 1.3

    # Group bandwidth is the first-order lever at the baseline fabric.
    assert surface[(256, 500)] < surface[(256, 100)]

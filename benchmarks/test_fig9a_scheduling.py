"""Fig. 9(a) — wafer-scale vs conventional systems, baseline vs Themis.

Regenerates the normalized training-time breakdown for the Table II
512-NPU systems (W-1D-{350,500,600}, W-2D-250_250, Conv-3D, Conv-4D)
running the paper's four workloads: a single 1 GB All-Reduce, DLRM,
GPT-3, and Transformer-1T (Table III), under the baseline hierarchical
collective schedule and the Themis greedy schedule.

Shape assertions (the paper's reading of the figure):

- 1-D wafer systems show no gain from smart scheduling;
- multi-dimensional systems (W-2D, Conv-3D, Conv-4D) benefit heavily;
- with Themis, Conv-4D matches the wafer system of equivalent aggregate
  bandwidth (W-1D-600) on the single All-Reduce and DLRM;
- for GPT-3 and Transformer-1T the wafer keeps an edge, because hybrid
  MP/DP communicators only use a subset of a conventional system's
  dimensions while the wafer runs everything at full on-chip bandwidth.
"""

from __future__ import annotations

import pytest

import repro
from repro.configs import TABLE2_TOPOLOGIES
from repro.stats import format_table
from repro.workload import (
    ParallelismSpec,
    dlrm_paper,
    generate_dlrm,
    generate_megatron_hybrid,
    generate_single_collective,
    gpt3_175b,
    transformer_1t,
)

from conftest import write_result

GiB = 1 << 30
SYSTEMS = ["W-1D-350", "W-1D-500", "W-1D-600", "W-2D-250_250", "Conv-3D", "Conv-4D"]


def _traces_for(workload: str, topology):
    if workload == "allreduce-1GB":
        return generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, GiB)
    if workload == "DLRM":
        return generate_dlrm(dlrm_paper(), topology)
    if workload == "GPT-3":
        return generate_megatron_hybrid(
            gpt3_175b(), topology, ParallelismSpec(mp=16, dp=32))
    if workload == "Transformer-1T":
        return generate_megatron_hybrid(
            transformer_1t(), topology, ParallelismSpec(mp=128, dp=4))
    raise ValueError(workload)


def _run(workload: str, system: str, scheduler: str):
    topology = TABLE2_TOPOLOGIES[system]
    traces = _traces_for(workload, topology)
    config = repro.SystemConfig(
        topology=topology, scheduler=scheduler, collective_chunks=32)
    return repro.simulate(traces, config)


def _sweep():
    results = {}
    for workload in ("allreduce-1GB", "DLRM", "GPT-3", "Transformer-1T"):
        for system in SYSTEMS:
            for scheduler in ("baseline", "themis"):
                results[(workload, system, scheduler)] = _run(
                    workload, system, scheduler)
    return results


@pytest.fixture(scope="module")
def sweep_results():
    return _sweep()


def test_fig9a_regenerate(benchmark, results_dir, sweep_results):
    results = benchmark.pedantic(lambda: sweep_results, rounds=1, iterations=1)
    sections = []
    for workload in ("allreduce-1GB", "DLRM", "GPT-3", "Transformer-1T"):
        base_time = results[(workload, SYSTEMS[0], "baseline")].total_time_ns
        rows = []
        for system in SYSTEMS:
            row = [system]
            for scheduler in ("baseline", "themis"):
                r = results[(workload, system, scheduler)]
                b = r.breakdown
                row.append(
                    f"{r.total_time_ns / base_time:.3f} "
                    f"(cmp {b.compute_ns / base_time:.2f} / "
                    f"comm {b.exposed_comm_ns / base_time:.2f})"
                )
            rows.append(row)
        sections.append(
            f"[{workload}] normalized to W-1D-350 baseline\n"
            + format_table(["system", "baseline", "themis"], rows)
        )
    write_result(results_dir, "fig9a_scheduling.txt", "\n\n".join(sections))

    # Shape checks, inlined so they run under --benchmark-only too.
    ar = lambda system, sched: results[("allreduce-1GB", system, sched)].total_time_ns
    assert ar("W-1D-600", "themis") == pytest.approx(ar("W-1D-600", "baseline"), rel=0.02)
    assert ar("Conv-4D", "themis") < 0.9 * ar("Conv-4D", "baseline")
    assert ar("Conv-4D", "themis") == pytest.approx(ar("W-1D-600", "baseline"), rel=0.15)


def test_fig9a_wafer_1d_gains_nothing_from_themis(sweep_results):
    for system in ("W-1D-350", "W-1D-500", "W-1D-600"):
        base = sweep_results[("allreduce-1GB", system, "baseline")].total_time_ns
        themis = sweep_results[("allreduce-1GB", system, "themis")].total_time_ns
        assert themis == pytest.approx(base, rel=0.02), system


def test_fig9a_multidim_systems_benefit_from_themis(sweep_results):
    for system in ("W-2D-250_250", "Conv-3D", "Conv-4D"):
        base = sweep_results[("allreduce-1GB", system, "baseline")].total_time_ns
        themis = sweep_results[("allreduce-1GB", system, "themis")].total_time_ns
        assert themis < 0.9 * base, system


def test_fig9a_conv4d_themis_matches_equal_bw_wafer(sweep_results):
    """Conv-4D totals 600 GB/s/NPU — with Themis it matches W-1D-600 on
    communication-only and DLRM workloads."""
    for workload in ("allreduce-1GB", "DLRM"):
        wafer = sweep_results[(workload, "W-1D-600", "baseline")].total_time_ns
        conv = sweep_results[(workload, "Conv-4D", "themis")].total_time_ns
        assert conv == pytest.approx(wafer, rel=0.15), workload


def test_fig9a_wafer_keeps_edge_on_hybrid_parallel_models(sweep_results):
    """MP/DP communicators span subsets of a conventional system's dims but
    run at full bandwidth on the wafer."""
    for workload in ("GPT-3", "Transformer-1T"):
        wafer = sweep_results[(workload, "W-1D-600", "themis")].total_time_ns
        conv = sweep_results[(workload, "Conv-4D", "themis")].total_time_ns
        assert wafer < conv, workload


def test_fig9a_conv4d_beats_underprovisioned_wafer(sweep_results):
    """Paper: 'Conv-4D is driving more BW/NPU [than W-1D-350], showing
    better performance despite being multidimensional' (with Themis)."""
    wafer_350 = sweep_results[("allreduce-1GB", "W-1D-350", "baseline")].total_time_ns
    conv = sweep_results[("allreduce-1GB", "Conv-4D", "themis")].total_time_ns
    assert conv < wafer_350

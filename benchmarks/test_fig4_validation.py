"""Fig. 4 — analytical backend validation against "real" NCCL measurements.

The paper compares the analytical backend's All-Reduce times against NCCL
v2.4.6 on 4 and 16 V100 GPUs connected by a 150 GB/s NVLink ring, for
payloads from 64 MB to 1.5 GB, and reports a mean error of 5%.

Without the hardware we validate against the calibrated NCCL-like
reference model (:mod:`repro.calibration`) over the same sweep, and
additionally against the packet-level Garnet-lite backend.  The assertion
mirrors the paper's headline: mean relative error in the single-digit
percent range.
"""

from __future__ import annotations

import pytest

from repro.calibration import nccl_ring_allreduce_reference_ns
from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.stats import format_table
from repro.system import SendRecvCollectiveExecutor

from conftest import write_result

MiB = 1 << 20
LINK_BW_GBPS = 150.0
# 64 MB .. 1.5 GB, the Fig. 4 x-axis.
PAYLOAD_SWEEP = [64 * MiB, 128 * MiB, 256 * MiB, 384 * MiB, 512 * MiB,
                 768 * MiB, 1024 * MiB, 1280 * MiB, 1536 * MiB]


def _simulated_allreduce_ns(num_gpus: int, payload: int) -> float:
    """Run the ring algorithm as explicit sends over the analytical backend."""
    topo = parse_topology(f"Ring({num_gpus})", [LINK_BW_GBPS],
                          latencies_ns=[700.0])
    engine = EventEngine()
    executor = SendRecvCollectiveExecutor(engine, AnalyticalNetwork(engine, topo))
    out = {}
    executor.run_ring_allreduce(list(range(num_gpus)), payload,
                                on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"]


def _error_table():
    rows = []
    errors = []
    for num_gpus in (4, 16):
        for payload in PAYLOAD_SWEEP:
            simulated = _simulated_allreduce_ns(num_gpus, payload)
            measured = nccl_ring_allreduce_reference_ns(
                num_gpus, payload, LINK_BW_GBPS)
            error = abs(simulated - measured) / measured
            errors.append(error)
            rows.append([
                num_gpus, f"{payload / MiB:.0f}",
                f"{simulated / 1e6:.2f}", f"{measured / 1e6:.2f}",
                f"{100 * error:.1f}%",
            ])
    return rows, errors


def test_fig4_mean_error_single_digit_percent(benchmark, results_dir):
    rows, errors = benchmark.pedantic(_error_table, rounds=1, iterations=1)
    mean_error = sum(errors) / len(errors)
    text = format_table(
        ["GPUs", "payload (MiB)", "simulated (ms)", "measured (ms)", "error"],
        rows,
    ) + f"\n\nmean error: {100 * mean_error:.2f}%  (paper: 5%)"
    write_result(results_dir, "fig4_validation.txt", text)
    assert mean_error < 0.10, f"mean error {mean_error:.1%} exceeds 10%"
    assert max(errors) < 0.20


def test_fig4_simulation_runtime(benchmark, results_dir):
    """Cost of one validation point (16 GPUs, 1.5 GB) on the analytical
    backend — the speed that makes the sweep practical."""
    result = benchmark.pedantic(
        _simulated_allreduce_ns, args=(16, 1536 * MiB), rounds=3, iterations=1
    )
    assert result > 0

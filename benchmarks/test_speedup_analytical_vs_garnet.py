"""Sec. IV-C speedup study — analytical backend vs Garnet(-lite).

The paper runs a 1 MB All-Reduce on a 64-NPU 3D torus (4x4x4): Garnet
takes 21.42 minutes, the analytical backend 1.70 seconds (756x), and the
analytical backend handles a 4K-NPU torus (16x16x16) in 3.14 seconds.

We replay the same experiment with Garnet-lite as the packet-level
reference.  Python-to-Python the gap is narrower than C++-Garnet vs the
closed form, but the structure is identical: per-packet-per-hop events vs
one closed-form evaluation per phase.  Assertions: an order-of-magnitude
or more wall-clock gap at 64 NPUs, matching collective times between
backends, and 4K-NPU capability on the analytical path in seconds.
"""

from __future__ import annotations

import time

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology
from repro.stats import format_table
from repro.system import SendRecvCollectiveExecutor
from repro.trace import CollectiveType
from repro.workload import generate_single_collective
import repro

from conftest import write_result

MiB = 1 << 20


def _torus(k: int):
    return parse_topology(
        f"Ring({k})_Ring({k})_Ring({k})", [150, 150, 150],
        latencies_ns=[100, 100, 100],
    )


def _hierarchical_allreduce_send_recv(backend_cls, k: int, payload: int, **kw):
    """Dim-by-dim hierarchical ring All-Reduce via explicit sends.

    Runs RS+AG per dimension for every dimension group — the traffic the
    speedup experiment pushes through both backends.  Returns (collective
    time ns, wall seconds, events).
    """
    topo = _torus(k)
    engine = EventEngine()
    net = backend_cls(engine, topo, **kw)
    executor = SendRecvCollectiveExecutor(engine, net)
    finished = []

    # One ring All-Reduce per dim-0 group (k^2 groups), the dominant phase
    # of the hierarchical algorithm; enough traffic to expose per-packet
    # simulation cost.
    groups = [topo.dim_group(npu, 0) for npu in range(topo.num_npus)
              if topo.coords(npu)[0] == 0]
    for group in groups:
        executor.run_ring_allreduce(list(group), payload,
                                    on_complete=finished.append)
    wall_start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - wall_start
    assert len(finished) == len(groups)
    return max(finished), wall, engine.events_processed


def test_speedup_64npu_torus(benchmark, results_dir):
    payload = 1 * MiB

    def run_both():
        analytical = _hierarchical_allreduce_send_recv(
            AnalyticalNetwork, 4, payload)
        garnet = _hierarchical_allreduce_send_recv(
            GarnetLiteNetwork, 4, payload, packet_bytes=512)
        return analytical, garnet

    (a_time, a_wall, a_events), (g_time, g_wall, g_events) = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    speedup = g_wall / max(a_wall, 1e-9)
    text = format_table(
        ["backend", "collective (us)", "wall (s)", "events"],
        [
            ["analytical", f"{a_time / 1e3:.2f}", f"{a_wall:.4f}", a_events],
            ["garnet-lite", f"{g_time / 1e3:.2f}", f"{g_wall:.4f}", g_events],
        ],
    ) + (f"\n\nwall-clock speedup: {speedup:.0f}x"
         f"  (paper: 756x for C++ Garnet vs closed form)")
    write_result(results_dir, "secIVC_speedup_64npu.txt", text)
    # Same congestion-free traffic -> same collective time.
    assert g_time == pytest.approx(a_time, rel=0.01)
    # Packet-level simulation is at least an order of magnitude slower.
    assert speedup > 10
    assert g_events > 50 * a_events


def test_analytical_handles_4k_npus_in_seconds(benchmark, results_dir):
    """16x16x16 torus — impractical for packet-level, seconds analytically."""
    payload = 1 * MiB

    def run():
        return _hierarchical_allreduce_send_recv(
            AnalyticalNetwork, 16, payload)

    collective_ns, wall, events = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (f"4096-NPU torus 1MB All-Reduce: collective {collective_ns / 1e3:.2f} us, "
            f"wall {wall:.2f} s, {events} events  (paper: 3.14 s)")
    write_result(results_dir, "secIVC_speedup_4k_npu.txt", text)
    assert wall < 60


def test_phase_level_collective_cost(benchmark):
    """Production path: the phase-level collective op is cheaper still —
    independent of NPU count for symmetric groups."""
    topo = parse_topology("Ring(16)_Ring(16)_Ring(16)", [150, 150, 150])
    traces = generate_single_collective(topo, CollectiveType.ALL_REDUCE, MiB)

    def run():
        return repro.simulate(
            traces, repro.SystemConfig(topology=topo, collective_chunks=16))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_time_ns > 0
    assert result.events_processed < 500

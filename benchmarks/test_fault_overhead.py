"""Fault-subsystem cost checks.

Two claims the fault subsystem makes about itself:

1. **No-fault hook overhead < 2%**: the ``if faults is not None`` guards
   on the hot paths (serialization, phase stretch, compute issue) must
   not slow fault-free simulations measurably.  Timed on a 64-NPU
   All-Reduce, min-of-N wall clock, comparing ``faults=None`` against an
   installed injector whose only fault never activates (so the hooks are
   *called* but inject nothing).
2. **Straggler amplification table**: one slow rank paces the whole
   synchronous collective; the sweep regenerates the severity-vs-slowdown
   curve (`examples/fault_injection.py`) as a results table.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.faults import FaultSchedule
from repro.stats import format_table

from conftest import write_result

MiB = 1 << 20

TOPO_64 = "Ring(8)_Switch(8)"


def _run(faults=None, payload=64 * MiB):
    # 32 back-to-back All-Reduces at 32 chunks each: a few thousand
    # events, so per-phase hook cost (not one-time setup) is what's
    # being measured.
    topology = repro.parse_topology(TOPO_64, [100, 25])
    traces = repro.generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, payload, count=32)
    config = repro.SystemConfig(topology=topology, scheduler="baseline",
                                collective_chunks=32, faults=faults)
    return repro.simulate(traces, config)


def _min_wall_clock(fn, rounds=9):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_no_fault_hook_overhead(results_dir):
    """Installed-but-idle injector must cost < 2% on a 64-NPU All-Reduce."""
    # One straggler far beyond the run's end: the injector installs, the
    # hot-path hooks run on every phase, but the active-state tables stay
    # empty, so this isolates pure hook-call overhead.
    clean_total = _run().total_time_ns
    idle_schedule = FaultSchedule.parse(
        f"straggler@npu0:2x@t={clean_total * 10:.0f}ns")

    idle_result = _run(faults=idle_schedule)
    assert idle_result.total_time_ns == clean_total  # hooks are identity

    base_s = _min_wall_clock(lambda: _run())
    hooked_s = _min_wall_clock(lambda: _run(faults=idle_schedule))
    overhead = hooked_s / base_s - 1.0

    text = format_table(
        ["variant", "min wall clock (ms)", "overhead"],
        [["faults=None", f"{base_s * 1e3:.2f}", "--"],
         ["injector idle", f"{hooked_s * 1e3:.2f}", f"{overhead:+.2%}"]])
    write_result(results_dir, "fault_hook_overhead.txt", text)
    assert overhead < 0.02, (
        f"idle fault hooks cost {overhead:.2%} (budget 2%)")


def test_straggler_sweep_table(results_dir):
    topology = repro.parse_topology("Ring(16)", [100])

    def total(faults=None):
        traces = repro.generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, 256 * MiB)
        config = repro.SystemConfig(topology=topology, scheduler="baseline",
                                    faults=faults)
        return repro.simulate(traces, config).total_time_ns

    baseline = total()
    rows = []
    for factor in (1.1, 1.25, 1.5, 2.0, 3.0):
        stretched = total(FaultSchedule.parse(f"straggler@npu3:{factor}x@t=0"))
        ratio = stretched / baseline
        rows.append([f"{factor:g}x", f"{stretched / 1e6:.3f}",
                     f"{ratio:.3f}"])
        # Amplification: the whole ring paces at the one slow member.
        assert ratio == pytest.approx(factor, rel=0.05)
    text = (
        f"Ring(16) All-Reduce 256 MiB, baseline {baseline / 1e6:.3f} ms\n"
        "one straggler rank of 16; collective slowdown ~= straggler factor\n\n"
        + format_table(["straggler", "total (ms)", "vs clean"], rows))
    write_result(results_dir, "fault_straggler_sweep.txt", text)

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it
simulates the configurations, prints the same rows/series the paper
reports, writes them under ``benchmarks/results/``, and asserts the
qualitative shape (who wins, by roughly what factor, where crossovers
fall).  Absolute numbers are not expected to match the authors' testbed.

Run with::

    pytest benchmarks/ --benchmark-only

(Under ``--benchmark-only`` pytest-benchmark skips the handful of
fixture-less fine-grained shape checks; their assertions are duplicated
inside the regenerator tests, and ``pytest benchmarks/`` runs all of
them.)
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to stdout."""
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")

"""Table IV — per-dimension message sizes and collective time when scaling.

The paper takes Conv-4D, raises the on-chip (Dim 1) bandwidth to
1000 GB/s, and scales it two ways while running a 1 GB All-Reduce with
the baseline hierarchical schedule:

- **scale-out** (2_8_8_k, k = 4..32): only the last-dim (NIC) message
  size grows slightly; collective time stays identical;
- **wafer scale-up** (k_8_8_4, k = 2..16): the on-wafer message grows
  while every other dimension's load collapses; collective time drops
  (up to 2.51x) until the on-wafer dimension itself becomes the
  bottleneck (16_8_8_4 bounces back up).

Message sizes must match the paper's cells *exactly* (they are closed
form); collective times must match the paper's shape.
"""

from __future__ import annotations

import pytest

import repro
from repro.configs import conv_4d_scaled
from repro.stats import format_table
from repro.workload import generate_single_collective

from conftest import write_result

MiB = 1 << 20
GiB = 1 << 30

# Paper Table IV: shape -> per-dim message sizes (MB).
PAPER_MESSAGE_SIZES = {
    (2, 8, 8, 4): [1024, 896, 112, 12],
    (2, 8, 8, 8): [1024, 896, 112, 14],
    (2, 8, 8, 16): [1024, 896, 112, 15],
    (2, 8, 8, 32): [1024, 896, 112, 15.5],
    (4, 8, 8, 4): [1536, 448, 56, 6],
    (8, 8, 8, 4): [1792, 224, 28, 3],
    (16, 8, 8, 4): [1920, 112, 14, 1.5],
}
PAPER_TIMES_US = {
    (2, 8, 8, 4): 4392.85,
    (2, 8, 8, 8): 4392.85,
    (2, 8, 8, 16): 4392.85,
    (2, 8, 8, 32): 4392.85,
    (4, 8, 8, 4): 2212.60,
    (8, 8, 8, 4): 1753.48,
    (16, 8, 8, 4): 1879.17,
}


def _run_shape(dim1: int, last: int):
    topology = conv_4d_scaled(last_dim=last, dim1=dim1)
    traces = generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, GiB)
    config = repro.SystemConfig(
        topology=topology, scheduler="baseline", collective_chunks=64)
    result = repro.simulate(traces, config)
    record = result.collectives[0]
    sizes = [record.traffic_by_dim.get(d, 0.0) / MiB for d in range(4)]
    return sizes, result.total_time_us


def _sweep():
    out = {}
    for (dim1, _, _, last) in PAPER_MESSAGE_SIZES:
        out[(dim1, 8, 8, last)] = _run_shape(dim1, last)
    return out


def test_table4_regenerate(benchmark, results_dir):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for shape, (sizes, t_us) in sweep.items():
        rows.append([
            "_".join(map(str, shape)),
            *(f"{s:g}" for s in sizes),
            f"{t_us:.2f}",
            f"{PAPER_TIMES_US[shape]:.2f}",
        ])
    text = format_table(
        ["shape", "dim1 (MB)", "dim2", "dim3", "dim4",
         "time (us)", "paper (us)"],
        rows,
    )
    write_result(results_dir, "table4_message_sizes.txt", text)

    # Message sizes: exact match with the paper.
    for shape, (sizes, _) in sweep.items():
        assert sizes == pytest.approx(PAPER_MESSAGE_SIZES[shape]), shape

    # Collective-time shape.
    scale_out = [sweep[(2, 8, 8, k)][1] for k in (4, 8, 16, 32)]
    for t in scale_out[1:]:
        assert t == pytest.approx(scale_out[0], rel=0.02)
    wafer = {k: sweep[(k, 8, 8, 4)][1] for k in (2, 4, 8, 16)}
    assert wafer[4] < wafer[2]
    assert wafer[8] < wafer[4]
    assert wafer[16] > wafer[8]  # the on-wafer dim becomes the bottleneck
    speedup = scale_out[0] / wafer[8]
    assert 2.0 < speedup < 3.2  # paper: up to 2.51x

    # Absolute times within ~15% of the paper's.
    for shape, (_, t_us) in sweep.items():
        assert t_us == pytest.approx(PAPER_TIMES_US[shape], rel=0.15), shape

"""Perf smoke suite — CI gate for the hot-path optimisations.

Runs every benchmark family at quick size and enforces the PR's
acceptance floors:

- the batched event-kernel hot loop is at least 3x the seed engine's
  events/sec (per-call paths must merely not regress);
- end-to-end simulation wall time is measurably better than with the
  seed engine patched in;
- the committed ``BENCH_perf.json`` baseline exists, parses, and has
  every section.

Lives outside the tier-1 ``tests/`` tree (``pyproject.toml`` testpaths):
run with ``PYTHONPATH=src python -m pytest benchmarks/perf -q``.
"""

from __future__ import annotations

import json
from pathlib import Path

from perf.harness import (
    bench_adaptive,
    bench_backend_speedup,
    bench_campaign,
    bench_event_kernel,
    bench_invariant_overhead,
    bench_scaling,
    bench_telemetry_overhead,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

# Acceptance gate: the batched hot loop must beat the seed engine 3x.
BATCH_SPEEDUP_FLOOR = 3.0
# Stability floor for the bulk per-call path: it must not be slower than
# the seed (kept below 1.0 only to absorb CI timer noise).
PER_CALL_SPEEDUP_FLOOR = 0.9
# The self-scheduling chain shape must beat the seed outright: its
# regression was fixed by inlining Event construction on the schedule
# hot path, so anything below parity is a real regression.
CHAIN_SPEEDUP_FLOOR = 1.0
# Installed-but-idle telemetry must cost < 2% wall clock (same budget as
# the fault-injection hooks).
TELEMETRY_OVERHEAD_BUDGET = 0.02
# A fully-warm content-addressed cache must replay a campaign at least
# 10x faster than simulating it.
WARM_CACHE_SPEEDUP_FLOOR = 10.0
# The *enabled* invariant checker actively validates on every hook, so
# its budget is looser than idle telemetry's — but still < 3% wall
# clock, and it must never move simulated time.
INVARIANT_OVERHEAD_BUDGET = 0.03
# O(npus)-free path: wall time across the 512 -> 1M NPU rows must stay
# flat.  The rows run in ~20 ms each, where timer noise easily doubles a
# single measurement, so the ceiling is a loose 10x — the regression it
# guards against (O(npus) construction) measured ~175x at this spread.
SCALING_FLATNESS_CEILING = 10.0
# The million-NPU analytical row must finish in single-digit seconds
# (ISSUE 9 acceptance: "1M NPUs in seconds, not hours").
MILLION_NPU_WALL_CEILING_S = 9.0
# Full runs only: the 32K-NPU row against the frozen pre-optimization
# baseline (3.113 s committed before the symbolic-group work).
PRE_FOLD_32K_SPEEDUP_FLOOR = 20.0
# Adaptive granularity (ISSUE 10): on the contended reference scenario
# the controller must simulate at most 1/3 of the pure-packet event
# count while staying within the garnet error band (the same REL_PACKET
# tolerance the conformance matrix uses for fluid-vs-packet pairs).
ADAPTIVE_EVENT_REDUCTION_FLOOR = 3.0
ADAPTIVE_REL_BAND = 0.02


def test_event_kernel_speedup_gates():
    kernel = bench_event_kernel(quick=True)
    assert kernel["batch"]["speedup"] >= BATCH_SPEEDUP_FLOOR, kernel
    assert kernel["bulk"]["speedup"] >= PER_CALL_SPEEDUP_FLOOR, kernel
    assert kernel["chain"]["speedup"] >= CHAIN_SPEEDUP_FLOOR, kernel


def test_scaling_scenario_and_seed_ab():
    scaling = bench_scaling(quick=True)
    rows = scaling["rows"]
    assert [r["npus"] for r in rows] == [512, 1024, 1_048_576]
    for row in rows:
        # A dp-GPT-3 step runs hundreds of per-layer compute/All-Reduce
        # events — a tiny count means the recorded metric regressed to
        # the old single-collective fluid-limit shape (2 events).
        assert row["events"] > 100, row
        assert row["nodes"] > 100 and row["wall_s"] > 0
        assert row["simulated_ms"] > 0
    # Symmetric collective: event count must not grow with system size
    # (the representative-port model, paper Sec. IV-C).
    assert rows[1]["events"] <= rows[0]["events"] * 1.5
    assert rows[2]["events"] <= rows[0]["events"] * 1.5
    # Event-bound end-to-end run must be measurably faster than with the
    # seed engine (typically ~1.5-1.8x; 1.2 absorbs CI noise).
    ab = scaling["seed_engine_ab"]
    assert ab["end_to_end_speedup"] >= 1.2, ab


def test_scaling_flatness_gate():
    """O(npus)-free: a million-NPU system must cost what 512 NPUs costs.

    The symbolic communicator groups and lazy link graph make per-step
    cost a function of the event count only, so wall time across a
    2048x spread in system size must stay within ``SCALING_FLATNESS_
    CEILING`` — and the 1M-NPU row must finish in single-digit seconds.
    """
    scaling = bench_scaling(quick=True)
    assert scaling["flatness"] <= SCALING_FLATNESS_CEILING, scaling
    assert scaling["million_npu_wall_s"] <= MILLION_NPU_WALL_CEILING_S, \
        scaling


def test_backend_speedup_direction():
    speedup = bench_backend_speedup(quick=True)
    assert speedup["wall_clock_speedup"] > 1.0, speedup
    assert speedup["event_ratio"] > 1.0, speedup
    # Same traffic, same closed-form bandwidths: simulated times agree
    # to within the store-and-forward offset (see the differential suite).
    analytical_ns = speedup["analytical"]["collective_ns"]
    garnet_ns = speedup["garnet_lite"]["collective_ns"]
    assert abs(garnet_ns - analytical_ns) / analytical_ns < 0.05


def test_adaptive_granularity_gates():
    """Adaptive vs pure packet: within the band at a fraction of the
    events, with real escalations (the controller actually ran)."""
    report = bench_adaptive(quick=True)
    assert report["rel_error"] <= ADAPTIVE_REL_BAND, report
    assert (report["event_reduction"]
            >= ADAPTIVE_EVENT_REDUCTION_FLOOR), report
    assert report["escalations"] > 0, report
    assert report["adaptive"]["events"] < report["garnet_lite"]["events"]


def _overhead_within_budget(bench, budget, attempts=3):
    """Run an overhead bench until one attempt lands within budget.

    Scheduler interference on a busy runner can only *inflate* the
    measured overhead (both arms use best-of-repeats with GC off, so
    there is no mechanism for noise to hide a real cost across every
    attempt).  A single clean attempt is therefore proof the true
    overhead is within budget; three sustained-interference attempts in
    a row is a real regression.
    """
    reports = []
    for _ in range(attempts):
        report = bench(quick=False, repeats=15)
        assert report["bit_identical"], report
        reports.append(report)
        if report["overhead"] < budget:
            return report
    raise AssertionError(
        f"overhead exceeded {budget} on all {attempts} attempts: "
        f"{[r['overhead'] for r in reports]}")


def test_telemetry_overhead_gate():
    """Idle telemetry hooks: bit-identical results, < 2% wall clock.

    Full-size scenario with extra interleaved repeats: the quick sizes
    finish in ~10 ms per run, where timer noise alone exceeds the 2%
    budget; the full scenario still costs < 1 s total.
    """
    _overhead_within_budget(bench_telemetry_overhead,
                            TELEMETRY_OVERHEAD_BUDGET)


def test_invariant_overhead_gate():
    """Enabled invariant checking: observation-only, < 3% wall clock.

    Full-size scenario for the same timer-noise reason as the telemetry
    gate.  ``bit_identical`` here means *enabled vs disabled* simulated
    time — the checker observes reservations and records; it must never
    change what the simulator computes.
    """
    _overhead_within_budget(bench_invariant_overhead,
                            INVARIANT_OVERHEAD_BUDGET)


# On a single CPU no pool can beat serial, so the absolute speedup floor
# is only a catastrophic backstop, asserted on the committed full-size
# baseline.  The symbolic-group work cut per-point simulation ~10x
# (the 16-point serial sweep dropped from ~5.7 s to ~0.35 s), so fixed
# IPC dispatch overhead now dominates the ratio on a starved 1-core
# generation host (~0.14 there).  The *relative* gate — warm fleet at
# least as fast as cold spawn — is the real regression check and holds
# at any core count and any size; parallel_speedup > 1.0 is enforced
# wherever the runner actually has a second core to fan out onto.
PARALLEL_SPEEDUP_FLOOR_1CPU = 0.1


def test_campaign_gates():
    """Sweep engine: bit-identical across execution modes, fast fan-out.

    The headline pool gate — warm-fleet fan-out strictly faster than
    serial — is asserted whenever the runner has at least a second core
    to fan out onto; a 1-core container physically cannot beat serial
    (the workers time-slice one CPU), so there the gates are the
    unconditional ones: bit-identical merges, warm fleet at least as
    fast as the legacy cold-spawn pool, and the catastrophic-regression
    speedup backstop.
    """
    report = bench_campaign(quick=True)
    assert report["bit_identical"], report
    assert report["errors"] == 0, report
    assert report["warm_cache_speedup"] >= WARM_CACHE_SPEEDUP_FLOOR, report
    assert report["warm_cache_counters"] == {
        "hits": report["points"], "misses": 0, "corrupted": 0}, report
    # Warm fleet beats the legacy cold-spawn pool everywhere (it skips
    # worker start-up and per-point dispatch; core count is irrelevant).
    # No absolute speedup floor at quick size: 4 points of ~0.1 s each
    # on a 1-CPU runner put fixed dispatch overhead in charge of the
    # ratio, which makes any absolute threshold a coin flip.
    assert report["parallel_wall_s"] <= report["cold_spawn_wall_s"], report
    if report["cpus"] >= 2:
        assert report["parallel_speedup"] > 1.0, report


def test_committed_baseline_is_fresh_and_complete():
    path = REPO_ROOT / "BENCH_perf.json"
    assert path.exists(), "BENCH_perf.json missing; run benchmarks/perf/run_perf.py"
    data = json.loads(path.read_text())
    assert data["quick"] is False, "committed baseline must be a full run"
    for key in ("event_kernel", "scaling", "backend_speedup",
                "adaptive", "telemetry_overhead", "campaign"):
        assert key in data, f"baseline missing section {key!r}"
    assert data["event_kernel"]["batch"]["speedup"] >= BATCH_SPEEDUP_FLOOR
    assert data["event_kernel"]["chain"]["speedup"] >= CHAIN_SPEEDUP_FLOOR
    assert data["scaling"]["seed_engine_ab"]["end_to_end_speedup"] >= 1.0
    for row in data["scaling"]["rows"]:
        assert row["events"] > 100, row
    # The symmetry-folded, O(npus)-free scale path (ISSUE 9): a 1M-NPU
    # row in single-digit seconds, flat wall time across the rows, and
    # >= 20x on the 32K row vs the frozen pre-optimization baseline.
    scaling = data["scaling"]
    assert any(r["npus"] == 1_048_576 for r in scaling["rows"]), scaling
    assert scaling["million_npu_wall_s"] <= MILLION_NPU_WALL_CEILING_S
    assert scaling["flatness"] <= SCALING_FLATNESS_CEILING, scaling
    assert (scaling["speedup_vs_pre_fold_32k"]
            >= PRE_FOLD_32K_SPEEDUP_FLOOR), scaling
    adaptive = data["adaptive"]
    assert adaptive["rel_error"] <= ADAPTIVE_REL_BAND, adaptive
    assert (adaptive["event_reduction"]
            >= ADAPTIVE_EVENT_REDUCTION_FLOOR), adaptive
    assert adaptive["escalations"] > 0, adaptive
    telemetry = data["telemetry_overhead"]
    assert telemetry["bit_identical"] is True
    assert telemetry["overhead"] < TELEMETRY_OVERHEAD_BUDGET
    campaign = data["campaign"]
    assert campaign["points"] >= 16, campaign
    assert campaign["bit_identical"] is True
    assert campaign["errors"] == 0
    assert campaign["warm_cache_speedup"] >= WARM_CACHE_SPEEDUP_FLOOR
    # The committed baseline must carry the warm-fleet measurements and
    # must not have regressed to the cold-spawn fan-out it replaced.
    for key in ("cold_spawn_wall_s", "parallel_wall_s",
                "warm_vs_cold_spawn_speedup", "start_method", "cpus"):
        assert key in campaign, f"campaign baseline missing {key!r}"
    assert campaign["parallel_wall_s"] <= campaign["cold_spawn_wall_s"]
    assert campaign["parallel_speedup"] >= PARALLEL_SPEEDUP_FLOOR_1CPU
    if campaign["cpus"] >= 2:
        assert campaign["parallel_speedup"] > 1.0, campaign

"""Performance measurement library for the event kernel and backends.

Three benchmark families, all pure functions returning plain dicts:

- :func:`bench_event_kernel` — events/second of the optimised
  :class:`~repro.events.EventEngine` against the frozen seed engine
  (:mod:`repro.events._seed_reference`) on three microbench shapes:
  *bulk* (pre-scheduled heap drain), *batch* (the
  :meth:`~repro.events.EventEngine.schedule_many` fire-and-forget path
  vs the seed's one-by-one equivalent), and *chain* (self-scheduling
  callback chain, heap stays tiny).
- :func:`bench_scaling` — end-to-end simulation cost of a data-parallel
  GPT-3 step on the paper's Conv-4D system scaled from 512 NPUs up to
  32K NPUs (Sec. IV-C's "profiling systems of scale at speed"), plus an
  A/B of an event-bound scenario with the seed engine patched in.
- :func:`bench_backend_speedup` — wall-clock gap between the analytical
  and Garnet-lite backends on the Sec. IV-C torus experiment.
- :func:`bench_adaptive` — the adaptive granularity controller
  (:mod:`repro.network.adaptive`) against pure packet simulation on the
  contended Ring(8) all-to-all reference scenario: accuracy band,
  event reduction, and wall-clock speedup.
- :func:`bench_campaign` — the sweep/campaign engine
  (:mod:`repro.campaign`): serial vs legacy cold-spawn fan-out vs the
  persistent warm worker fleet vs warm content-addressed cache on a
  Conv-4D chunk-count design-space sweep, with a bit-identical check
  across all execution modes.

``quick=True`` shrinks problem sizes so the whole suite runs in a few
seconds — used by the CI smoke job; the committed ``BENCH_perf.json`` is
produced by the full run (``python benchmarks/perf/run_perf.py``).

Wall times are the best of ``repeats`` runs with GC disabled — the
standard recipe for stable Python microbenchmarks.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List

import repro
from repro.events import EventEngine
from repro.events._seed_reference import SeedEventEngine
from repro.network import (
    AdaptiveFlowNetwork,
    AnalyticalNetwork,
    GarnetLiteNetwork,
    parse_topology,
)
from repro.system import SendRecvCollectiveExecutor
from repro.trace import CollectiveType
from repro.workload import (
    generate_data_parallel,
    generate_single_collective,
    gpt3_175b,
)

GiB = 1 << 30
MiB = 1 << 20


def _noop() -> None:
    pass


def _best_wall(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    """Run ``fn`` (returns an event count) ``repeats`` times; keep the best."""
    best = float("inf")
    events = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            events = fn()
            wall = time.perf_counter() - start
            best = min(best, wall)
    finally:
        if gc_was_enabled:
            gc.enable()
    return {"wall_s": best, "events": events,
            "events_per_sec": events / max(best, 1e-12)}


# -- event-kernel microbenchmarks -------------------------------------------------


def _run_bulk(engine_cls, n: int) -> int:
    engine = engine_cls()
    schedule = engine.schedule
    for i in range(n):
        schedule(float(i % 97), _noop)
    engine.run()
    return engine.events_processed


def _run_batch_new(n: int) -> int:
    engine = EventEngine()
    items = [(float(i % 97), _noop) for i in range(n)]
    engine.schedule_many(items)
    engine.run()
    return engine.events_processed


def _run_batch_seed(n: int) -> int:
    # The seed engine has no batch API: the equivalent is n schedule calls.
    engine = SeedEventEngine()
    items = [(float(i % 97), _noop) for i in range(n)]
    schedule = engine.schedule
    for delay, fn in items:
        schedule(delay, fn)
    engine.run()
    return engine.events_processed


def _run_chain(engine_cls, n: int) -> int:
    engine = engine_cls()
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            engine.schedule(1.0, tick)

    engine.schedule(1.0, tick)
    engine.run()
    return engine.events_processed


def bench_event_kernel(quick: bool = False, repeats: int = 3) -> Dict[str, dict]:
    """Seed-vs-new events/sec on bulk, batch, and chain shapes."""
    n_bulk = 60_000 if quick else 200_000
    n_chain = 20_000 if quick else 100_000
    shapes = {
        "bulk": (lambda: _run_bulk(SeedEventEngine, n_bulk),
                 lambda: _run_bulk(EventEngine, n_bulk)),
        "batch": (lambda: _run_batch_seed(n_bulk),
                  lambda: _run_batch_new(n_bulk)),
        "chain": (lambda: _run_chain(SeedEventEngine, n_chain),
                  lambda: _run_chain(EventEngine, n_chain)),
    }
    out: Dict[str, dict] = {}
    for name, (seed_fn, new_fn) in shapes.items():
        seed = _best_wall(seed_fn, repeats)
        new = _best_wall(new_fn, repeats)
        out[name] = {
            "n_events": seed["events"],
            "seed_events_per_sec": round(seed["events_per_sec"]),
            "new_events_per_sec": round(new["events_per_sec"]),
            "speedup": round(new["events_per_sec"] / seed["events_per_sec"], 2),
        }
    return out


# -- end-to-end scaling -----------------------------------------------------------


def _conv4d_system(scale: int):
    """Paper Conv-4D scaled out: ``512 * scale`` NPUs."""
    return repro.parse_topology(
        f"Ring(2)_FC(8)_Ring(8)_Switch({4 * scale})",
        [250, 200, 100, 50],
        latencies_ns=[50, 250, 250, 500],
    )


def _run_scaling_scenario(scale: int) -> Dict[str, float]:
    # Data-parallel GPT-3 (per-layer compute + gradient All-Reduce)
    # rather than a lone collective: Themis' fluid-limit path resolves a
    # single All-Reduce in ~2 engine events, which made the recorded
    # "events" column meaningless as a cost metric.
    topology = _conv4d_system(scale)
    traces = generate_data_parallel(gpt3_175b(), topology)
    config = repro.SystemConfig(
        topology=topology, scheduler="themis", collective_chunks=32)
    start = time.perf_counter()
    result = repro.simulate(traces, config)
    wall = time.perf_counter() - start
    return {
        "scale": scale,
        "npus": topology.num_npus,
        "simulated_ms": result.total_time_ms,
        "wall_s": round(wall, 4),
        "events": result.events_processed,
        "nodes": result.nodes_executed,
    }


def _ab_seed_engine(quick: bool, repeats: int) -> Dict[str, object]:
    """End-to-end A/B: the Sec. IV-C packet-level torus experiment run
    with the production engine vs the frozen seed engine.

    The analytical scaling scenario schedules too few events for the
    kernel to matter (the representative-port model is the whole point),
    so the end-to-end claim is measured where the engine *is* the
    bottleneck: one event per packet-hop through the full
    backend/executor stack.
    """
    payload = 128 * 1024 if quick else 1 * MiB
    packet = 1024 if quick else 512

    def run_with(engine_cls) -> Callable[[], int]:
        def run_once() -> int:
            return _torus_allreduce(
                GarnetLiteNetwork, 4, payload,
                engine_cls=engine_cls, packet_bytes=packet)["events"]
        return run_once

    new = _best_wall(run_with(EventEngine), repeats)
    seed = _best_wall(run_with(SeedEventEngine), repeats)
    return {
        "scenario": "garnet-lite 64-NPU torus all-reduce (event-bound)",
        "payload_bytes": payload,
        "events": new["events"],
        "seed_wall_s": round(seed["wall_s"], 4),
        "new_wall_s": round(new["wall_s"], 4),
        "end_to_end_speedup": round(seed["wall_s"] / max(new["wall_s"], 1e-12), 2),
    }


# 32K-NPU wall time of the scaling scenario before the symbolic-group /
# lazy-link-graph work (committed BENCH_perf.json baseline at the time):
# the O(npus) construction and group materialization made wall time grow
# linearly in system size.  The symmetry-folded path must beat this by
# >= 20x (ISSUE 9 acceptance floor).
PRE_FOLD_32K_BASELINE_WALL_S = 3.113

#: scale factor whose Conv-4D system is 1,048,576 NPUs
#: (2 * 8 * 8 * (4 * 2048)).
MILLION_NPU_SCALE = 2048


def bench_scaling(quick: bool = False, repeats: int = 3) -> Dict[str, object]:
    """512 -> 1M NPU scaling rows plus a seed-engine A/B.

    The O(npus)-free path makes wall time a function of the *event
    count*, not the system size, so the million-NPU row costs the same
    as the 512-NPU one; both quick and full runs include it.  Reported
    alongside the rows:

    - ``flatness`` — largest-to-smallest wall-time ratio across the
      rows (1.0 is perfectly flat; the committed baseline before the
      symbolic-group work measured ~42x between 512 and 32K NPUs);
    - ``speedup_vs_pre_fold_32k`` — the 32K-NPU row against the frozen
      pre-optimization baseline (full runs only; quick runs skip 32K).
    """
    scales = ((1, 2, MILLION_NPU_SCALE) if quick
              else (1, 2, 8, 16, 64, MILLION_NPU_SCALE))
    _run_scaling_scenario(1)  # warm-up: first-use imports (scipy LP) etc.
    rows: List[Dict[str, float]] = [_run_scaling_scenario(s) for s in scales]
    walls = [r["wall_s"] for r in rows]
    out: Dict[str, object] = {
        "rows": rows,
        "flatness": round(max(walls) / max(min(walls), 1e-12), 2),
        "million_npu_wall_s": next(
            r["wall_s"] for r in rows if r["scale"] == MILLION_NPU_SCALE),
    }
    for row in rows:
        if row["scale"] == 64:
            out["speedup_vs_pre_fold_32k"] = round(
                PRE_FOLD_32K_BASELINE_WALL_S / max(row["wall_s"], 1e-12), 1)
    out["seed_engine_ab"] = _ab_seed_engine(
        quick, repeats=2 if quick else repeats)
    return out


# -- sweep campaigns --------------------------------------------------------------


def _campaign_spec(quick: bool):
    """Conv-4D chunk-count DSE: topology last dim x collective chunks."""
    from repro.campaign import SweepSpec

    last_dims = (4, 8) if quick else (4, 8, 12, 16)
    chunk_counts = (16, 32) if quick else (8, 16, 32, 64)
    return SweepSpec(
        base={
            "workload": "dp-gpt3",
            "scheduler": "themis",
            "bandwidths": "250,200,100,50",
            "latencies": "50,250,250,500",
        },
        grid={
            "topology": [f"Ring(2)_FC(8)_Ring(8)_Switch({d})"
                         for d in last_dims],
            "chunks": list(chunk_counts),
        },
    )


def _usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS
        return os.cpu_count() or 1


def bench_campaign(quick: bool = False, jobs: int = 4) -> Dict[str, object]:
    """Serial vs cold-spawn vs warm-fleet vs warm-cache cost of one campaign.

    Runs the same sweep five ways and checks the merged documents are
    bit-identical after canonical serialisation:

    - serial in-process (the reference);
    - *cold spawn* — a private single-use ``spawn`` pool with one point
      per task and no base broadcast, i.e. the pre-warm-pool fan-out
      whose ``parallel_speedup`` regressed to ~0.4 on starved runners;
    - *warm fleet* — the shared pre-imported fleet
      (:func:`repro.campaign.pool.get_shared_pool`) with batched
      dispatch and base-config broadcast, measured after ``warm_up`` so
      the number reflects steady state (what a second sweep or any
      ``repro serve`` request pays);
    - cold and warm through the content-addressed run cache.

    ``cpus`` records the affinity-visible core count because pool
    speedup over serial is physically bounded by it: a 1-core container
    cannot beat the serial run (the gate in ``test_perf_smoke`` only
    requires ``parallel_speedup > 1`` when ``cpus >= 2``); it still must
    match it bit-for-bit, and the warm fleet must beat cold spawn
    everywhere.
    """
    import tempfile

    from repro.campaign import (
        CampaignRunner,
        canonical_campaign_json,
        get_shared_pool,
        shutdown_shared_pool,
    )

    spec = _campaign_spec(quick)
    if quick:
        jobs = min(jobs, 2)

    def timed(runner) -> tuple:
        start = time.perf_counter()
        result = runner.run(spec)
        return result, time.perf_counter() - start

    serial, serial_wall = timed(CampaignRunner(jobs=0))
    cold_spawn, cold_spawn_wall = timed(CampaignRunner(
        jobs=jobs, warm=False, start_method="spawn", batch_size=1))
    shutdown_shared_pool()  # measure the warm fleet from a known state
    pool = get_shared_pool(jobs)
    pool.warm_up()
    warm_fleet, warm_fleet_wall = timed(CampaignRunner(jobs=jobs))
    start_method = pool.start_method
    shutdown_shared_pool()
    with tempfile.TemporaryDirectory() as cache_dir:
        cold, cold_wall = timed(CampaignRunner(jobs=0, cache_dir=cache_dir))
        warm, warm_wall = timed(CampaignRunner(jobs=0, cache_dir=cache_dir))
    docs = {canonical_campaign_json(r.to_dict())
            for r in (serial, cold_spawn, warm_fleet, cold, warm)}
    return {
        "scenario": "Conv-4D dp-gpt3 chunk-count sweep "
                    "(topology last dim x collective chunks)",
        "points": len(spec),
        "cpus": _usable_cpus(),
        "jobs": jobs,
        "start_method": start_method,
        "errors": len(serial.errors),
        "serial_wall_s": round(serial_wall, 4),
        "cold_spawn_wall_s": round(cold_spawn_wall, 4),
        "parallel_wall_s": round(warm_fleet_wall, 4),
        "parallel_speedup": round(
            serial_wall / max(warm_fleet_wall, 1e-12), 2),
        "warm_vs_cold_spawn_speedup": round(
            cold_spawn_wall / max(warm_fleet_wall, 1e-12), 2),
        "cold_cache_wall_s": round(cold_wall, 4),
        "warm_cache_wall_s": round(warm_wall, 4),
        "warm_cache_speedup": round(cold_wall / max(warm_wall, 1e-12), 2),
        "warm_cache_counters": warm.cache_counters,
        "bit_identical": len(docs) == 1,
    }


# -- telemetry overhead -----------------------------------------------------------


def _telemetry_scenario(telemetry, payload: int, count: int) -> float:
    """64-NPU All-Reduce burst (same shape as the fault-overhead bench)."""
    topology = repro.parse_topology("Ring(8)_Switch(8)", [100, 25])
    traces = generate_single_collective(
        topology, CollectiveType.ALL_REDUCE, payload, count=count)
    config = repro.SystemConfig(
        topology=topology, scheduler="baseline", collective_chunks=32,
        telemetry=telemetry)
    return repro.simulate(traces, config).total_time_ns


def bench_telemetry_overhead(quick: bool = False,
                             repeats: int = 9) -> Dict[str, object]:
    """Cost of the installed-but-idle telemetry collector.

    Mirrors ``benchmarks/test_fault_overhead.py``: the ``if telemetry is
    not None`` guards on the hot paths (phase reservation, collective
    completion, memory issue) must not slow uninstrumented simulations.
    Compares ``telemetry=None`` against a collector at trace level *off*
    with the sampler disabled, so the hooks run but record only counters.

    The full-size collective count is sized so one run costs ~150 ms:
    the symbolic-group fast path made the old 32-collective scenario
    finish in ~20 ms, where timer noise alone exceeds the 2% budget.
    """
    from repro.telemetry import TelemetryConfig, TraceLevel

    payload = 16 * MiB if quick else 64 * MiB
    count = 16 if quick else 256
    idle = TelemetryConfig(trace_level=TraceLevel.OFF, sample_interval_ns=0)

    base_total = _telemetry_scenario(None, payload, count)
    idle_total = _telemetry_scenario(idle, payload, count)

    # Interleave the A/B rounds so clock drift (thermal throttling, cache
    # state left by earlier benchmarks) hits both variants equally.
    base_best = idle_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            _telemetry_scenario(None, payload, count)
            base_best = min(base_best, time.perf_counter() - start)
            start = time.perf_counter()
            _telemetry_scenario(idle, payload, count)
            idle_best = min(idle_best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead = idle_best / max(base_best, 1e-12) - 1.0
    return {
        "scenario": "64-NPU Ring(8)_Switch(8) All-Reduce x%d, 32 chunks" % count,
        "payload_bytes": payload,
        "bit_identical": base_total == idle_total,
        "base_wall_s": round(base_best, 4),
        "idle_wall_s": round(idle_best, 4),
        "overhead": round(overhead, 4),
    }


# -- invariant-checker overhead ---------------------------------------------------


def _invariant_scenario(invariants, payload: int, count: int) -> float:
    """Same 64-NPU All-Reduce burst as the telemetry bench."""
    topology = repro.parse_topology("Ring(8)_Switch(8)", [100, 25])
    traces = generate_single_collective(
        topology, CollectiveType.ALL_REDUCE, payload, count=count)
    config = repro.SystemConfig(
        topology=topology, scheduler="baseline", collective_chunks=32,
        invariants=invariants)
    return repro.simulate(traces, config).total_time_ns


def bench_invariant_overhead(quick: bool = False,
                             repeats: int = 9) -> Dict[str, object]:
    """Cost of the *enabled* runtime invariant checker.

    Unlike the telemetry bench (which measures an installed-but-idle
    collector), the checker has no idle mode: enabled means every hook
    actively validates.  Disabled (``invariants=None``) is the exact
    un-instrumented code path, so the interesting numbers are the
    enabled-run wall-clock overhead and whether checking perturbs
    simulated time (it must not — the checker only observes).

    Full-size collective count sized for a ~150 ms run, same reasoning
    as :func:`bench_telemetry_overhead`.
    """
    from repro.validate import InvariantConfig

    payload = 16 * MiB if quick else 64 * MiB
    count = 16 if quick else 256
    checked = InvariantConfig()

    base_total = _invariant_scenario(None, payload, count)
    checked_total = _invariant_scenario(checked, payload, count)

    base_best = checked_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            gc.collect()
            start = time.perf_counter()
            _invariant_scenario(None, payload, count)
            base_best = min(base_best, time.perf_counter() - start)
            start = time.perf_counter()
            _invariant_scenario(checked, payload, count)
            checked_best = min(checked_best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead = checked_best / max(base_best, 1e-12) - 1.0
    return {
        "scenario": "64-NPU Ring(8)_Switch(8) All-Reduce x%d, 32 chunks" % count,
        "payload_bytes": payload,
        "bit_identical": base_total == checked_total,
        "base_wall_s": round(base_best, 4),
        "checked_wall_s": round(checked_best, 4),
        "overhead": round(overhead, 4),
    }


# -- backend speedup --------------------------------------------------------------


def _torus_allreduce(backend_cls, k: int, payload: int,
                     engine_cls=EventEngine, **kw) -> Dict[str, float]:
    topo = parse_topology(
        f"Ring({k})_Ring({k})_Ring({k})", [150, 150, 150],
        latencies_ns=[100, 100, 100])
    engine = engine_cls()
    net = backend_cls(engine, topo, **kw)
    executor = SendRecvCollectiveExecutor(engine, net)
    finished: List[float] = []
    groups = [topo.dim_group(npu, 0) for npu in range(topo.num_npus)
              if topo.coords(npu)[0] == 0]
    for group in groups:
        executor.run_ring_allreduce(list(group), payload,
                                    on_complete=finished.append)
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    return {"collective_ns": max(finished), "wall_s": round(wall, 4),
            "events": engine.events_processed}


def bench_backend_speedup(quick: bool = False) -> Dict[str, object]:
    """Sec. IV-C: analytical vs Garnet-lite on the 64-NPU torus."""
    payload = 64 * 1024 if quick else 1 * MiB
    packet = 1024 if quick else 512
    analytical = _torus_allreduce(AnalyticalNetwork, 4, payload)
    garnet = _torus_allreduce(GarnetLiteNetwork, 4, payload,
                              packet_bytes=packet)
    return {
        "payload_bytes": payload,
        "packet_bytes": packet,
        "analytical": analytical,
        "garnet_lite": garnet,
        "wall_clock_speedup": round(
            garnet["wall_s"] / max(analytical["wall_s"], 1e-9), 1),
        "event_ratio": round(garnet["events"] / analytical["events"], 1),
    }


# -- adaptive granularity ---------------------------------------------------------


def _contended_alltoall(backend_cls, payload: int, **kw) -> Dict[str, object]:
    """Ring(8) all-to-all — the adaptive pillar's contended scenario."""
    topo = parse_topology("Ring(8)", [100.0], latencies_ns=[100.0])
    engine = EventEngine()
    net = backend_cls(engine, topo, **kw)
    executor = SendRecvCollectiveExecutor(engine, net)
    out: Dict[str, float] = {}
    executor.run_alltoall(list(range(topo.num_npus)), payload,
                          on_complete=lambda t: out.update(t=t))
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    return {"collective_ns": out["t"], "wall_s": round(wall, 4),
            "events": engine.events_processed, "net": net}


def bench_adaptive(quick: bool = False) -> Dict[str, object]:
    """Adaptive granularity vs pure packet on the contended scenario.

    ISSUE 10's headline number: on Ring(8) all-to-all (multi-hop routes
    genuinely converge onto shared links) the runtime controller must
    stay within the garnet error band while simulating a small fraction
    of the pure-packet event count.  Payloads match the adaptive
    pillar's contended axis — large enough that the backends' constant
    ~hop-latency offset is small against the serialization time.
    """
    payload = 2 * MiB if quick else 4 * MiB
    packet = 4096
    garnet = _contended_alltoall(GarnetLiteNetwork, payload,
                                 packet_bytes=packet)
    adaptive = _contended_alltoall(
        AdaptiveFlowNetwork, payload, escalation_threshold=1.0,
        deescalation_hysteresis=1.0, escalation_packet_bytes=packet)
    net = adaptive.pop("net")
    garnet.pop("net")
    rel = (abs(adaptive["collective_ns"] - garnet["collective_ns"])
           / garnet["collective_ns"])
    return {
        "scenario": "Ring(8) all-to-all, threshold=1, hysteresis=1",
        "payload_bytes": payload,
        "packet_bytes": packet,
        "garnet_lite": garnet,
        "adaptive": adaptive,
        "rel_error": round(rel, 6),
        "event_reduction": round(
            garnet["events"] / max(1, adaptive["events"]), 1),
        "wall_clock_speedup": round(
            garnet["wall_s"] / max(adaptive["wall_s"], 1e-9), 1),
        "escalations": net.escalations,
        "deescalations": net.deescalations,
        "granularity_handoffs": net.handoffs,
    }


def run_all(quick: bool = False) -> Dict[str, object]:
    """The full perf sweep as one JSON-serialisable dict."""
    import platform
    import sys

    return {
        "description": "Perf baseline for the event kernel and network "
                       "backends; regenerate with "
                       "`python benchmarks/perf/run_perf.py`.",
        "quick": quick,
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "event_kernel": bench_event_kernel(quick=quick),
        "scaling": bench_scaling(quick=quick),
        "backend_speedup": bench_backend_speedup(quick=quick),
        "adaptive": bench_adaptive(quick=quick),
        "telemetry_overhead": bench_telemetry_overhead(quick=quick),
        "invariant_overhead": bench_invariant_overhead(quick=quick),
        "campaign": bench_campaign(quick=quick),
    }

#!/usr/bin/env python
"""Regenerate the committed perf baseline (``BENCH_perf.json``).

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py [--quick] [--out PATH]

``--quick`` shrinks every benchmark to smoke-test size (seconds, used by
CI); without it the full sweep runs and the result is meant to be
committed at the repo root.  See ``docs/performance.md`` for what each
section measures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.harness import run_all  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizes (do not commit the output)")
    parser.add_argument("--out", type=Path,
                        default=REPO_ROOT / "BENCH_perf.json",
                        help="output path (default: repo-root BENCH_perf.json)")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    kernel = results["event_kernel"]
    print(f"wrote {args.out}")
    for shape, row in kernel.items():
        print(f"  event kernel [{shape:5s}]: "
              f"{row['seed_events_per_sec']:>10,} -> "
              f"{row['new_events_per_sec']:>10,} ev/s  "
              f"({row['speedup']:.2f}x)")
    ab = results["scaling"]["seed_engine_ab"]
    print(f"  end-to-end ({ab['scenario']}): "
          f"{ab['seed_wall_s']}s -> {ab['new_wall_s']}s "
          f"({ab['end_to_end_speedup']}x)")
    print(f"  backend speedup: {results['backend_speedup']['wall_clock_speedup']}x "
          f"wall-clock (analytical vs garnet-lite)")
    adaptive = results["adaptive"]
    print(f"  adaptive granularity: {adaptive['event_reduction']}x fewer "
          f"events than pure packet at rel error {adaptive['rel_error']} "
          f"({adaptive['escalations']} escalations)")
    campaign = results["campaign"]
    print(f"  campaign ({campaign['points']} points, {campaign['cpus']} cpus): "
          f"serial {campaign['serial_wall_s']}s, "
          f"jobs={campaign['jobs']} {campaign['parallel_wall_s']}s "
          f"({campaign['parallel_speedup']}x), "
          f"warm cache {campaign['warm_cache_wall_s']}s "
          f"({campaign['warm_cache_speedup']}x), "
          f"bit_identical={campaign['bit_identical']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

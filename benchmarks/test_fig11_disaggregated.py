"""Fig. 11 + Table V — disaggregated memory systems on MoE-1T training.

Regenerates the runtime breakdown (compute / exposed local memory /
exposed remote memory / exposed communication / idle) for:

- **ZeRO-Infinity** — per-GPU dedicated 100 GB/s slow path; ZeRO-sharded
  dense parameters gathered with explicit network collectives;
- **HierMem (Baseline)** — pooled hierarchical memory with equivalent
  aggregate resources; same network collectives;
- **HierMem (Opt)** — the swept configuration (fabric 512 GB/s, groups
  500 GB/s) with in-switch collectives: parameters gather while loading
  and shard while storing, hiding the communication inside the memory
  path.

Shape assertions (the paper's reading):

- ZeRO-Infinity and the baseline are nearly identical (paper: 0.1%),
  with ZeRO marginally ahead (the pool's extra switch stages);
- exposed communication dominates both;
- the optimized HierMem is several times faster (paper: 4.6x; our
  substrate lands in the 3-5x band) and is no longer
  communication-bound.
"""

from __future__ import annotations

import pytest

import repro
from repro.configs import (
    hiermem_baseline,
    hiermem_opt,
    moe_npu_network,
    zero_infinity_table5,
)
from repro.stats import format_breakdown_table
from repro.workload import generate_moe, moe_1t

from conftest import write_result

SYSTEMS = {
    "ZeRO-Infinity": (zero_infinity_table5, False),
    "HierMem(Baseline)": (hiermem_baseline, False),
    "HierMem(Opt)": (hiermem_opt, True),
}


def _run_all():
    topology = moe_npu_network()
    model = moe_1t()
    results = {}
    for name, (config_factory, inswitch) in SYSTEMS.items():
        traces = generate_moe(
            model, topology, remote_parameters=True,
            inswitch_collectives=inswitch)
        results[name] = repro.simulate(traces, config_factory())
    return results


def test_fig11_regenerate(benchmark, results_dir):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    breakdowns = {name: r.breakdown for name, r in results.items()}
    totals = {name: r.total_time_ms for name, r in results.items()}
    speedup = totals["HierMem(Baseline)"] / totals["HierMem(Opt)"]
    zero_vs_base = totals["HierMem(Baseline)"] / totals["ZeRO-Infinity"] - 1
    text = format_breakdown_table(breakdowns) + (
        f"\n\nHierMem(Opt) speedup over baseline: {speedup:.2f}x (paper: 4.6x)"
        f"\nZeRO-Infinity ahead of baseline by: {100 * zero_vs_base:.2f}% "
        f"(paper: 0.1%)"
    )
    write_result(results_dir, "fig11_disaggregated.txt", text)

    zero = results["ZeRO-Infinity"]
    base = results["HierMem(Baseline)"]
    opt = results["HierMem(Opt)"]

    # ZeRO-Infinity and baseline nearly identical, ZeRO marginally ahead.
    assert zero.total_time_ns == pytest.approx(base.total_time_ns, rel=0.03)
    assert zero.total_time_ns <= base.total_time_ns

    # Exposed communication dominates the non-compute time of both.
    for r in (zero, base):
        b = r.breakdown
        assert b.exposed_comm_ns > b.exposed_mem_remote_ns
        assert b.exposed_comm_ns > b.compute_ns

    # The optimized configuration is several times faster and is no longer
    # communication-bound.
    assert 2.5 < speedup < 6.0
    assert opt.breakdown.exposed_comm_ns < 0.1 * base.breakdown.exposed_comm_ns
    assert opt.breakdown.compute_ns > opt.breakdown.exposed_comm_ns

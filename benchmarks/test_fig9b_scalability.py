"""Fig. 9(b) — conventional scale-out vs wafer scale-up, end-to-end.

Starting from the Base-512 system (2_8_8_4 with Dim-1 bandwidth raised to
1000 GB/s), the paper scales to 4K NPUs two ways and trains GPT-3 and
Transformer-1T end to end:

- **Conv-k**: scale-out by growing the last (NIC) dimension;
- **W-k**: wafer scale-up by growing Dim 1.

Expected shape (the "equivalent trend" to Table IV in the end-to-end
regime): scale-out leaves per-iteration time roughly flat, wafer scale-up
cuts exposed communication — until the on-wafer dimension saturates.

The 14-point sweep (2 models x 7 systems) runs through the campaign
engine (:mod:`repro.campaign`): model and tensor-parallel degree are a
zip axis, the system topologies a grid axis.  Set
``REPRO_CAMPAIGN_JOBS`` to fan it out over a process pool.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import CampaignRunner, SweepSpec, results_by_config
from repro.configs import conv_4d_scaled, wafer_scaled
from repro.stats import format_table

from conftest import write_result

MODELS = {
    "GPT-3": ("gpt3", 16),
    "Transformer-1T": ("transformer1t", 128),
}


def _systems():
    systems = {"Base-512": conv_4d_scaled(last_dim=4, dim1=2)}
    for k in (8, 16, 32):
        systems[f"Conv-{128 * k}"] = conv_4d_scaled(last_dim=k, dim1=2)
    for k in (4, 8, 16):
        systems[f"W-{256 * k}"] = wafer_scaled(k)
    return systems


def _sweep():
    systems = _systems()
    spec = SweepSpec(
        base={
            "bandwidths": "1000,200,100,50",
            "latencies": "25,250,250,500",
            "scheduler": "themis",
            "chunks": 32,
        },
        grid={"topology": [t.notation() for t in systems.values()]},
        zip_axes={
            "workload": [w for w, _ in MODELS.values()],
            "mp": [mp for _, mp in MODELS.values()],
        },
    )
    jobs = int(os.environ.get("REPRO_CAMPAIGN_JOBS", "0"))
    campaign = CampaignRunner(jobs=jobs).run(spec)
    assert not campaign.errors, campaign.errors
    by_config = results_by_config(campaign.to_dict(), "workload", "topology")
    return {
        (model_name, system_name):
            by_config[(workload, topology.notation())]
        for model_name, (workload, _) in MODELS.items()
        for system_name, topology in systems.items()
    }


def test_fig9b_regenerate(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    sections = []
    for model_name in MODELS:
        base = results[(model_name, "Base-512")]
        rows = []
        for (m, system_name), r in results.items():
            if m != model_name:
                continue
            b = r["breakdown"]
            rows.append([
                system_name,
                f"{r['total_time_ns'] * 1e-6:.1f}",
                f"{b['compute_ns'] * 1e-6:.1f}",
                f"{b['comm_ns'] * 1e-6:.1f}",
                f"{r['total_time_ns'] / base['total_time_ns']:.3f}",
            ])
        sections.append(
            f"[{model_name}] per-iteration time\n"
            + format_table(
                ["system", "total (ms)", "compute (ms)",
                 "exposed comm (ms)", "vs Base-512"],
                rows,
            )
        )
    write_result(results_dir, "fig9b_scalability.txt", "\n\n".join(sections))

    for model_name in MODELS:
        base = results[(model_name, "Base-512")]["total_time_ns"]
        # Scale-out: no improvement — flat for GPT-3, mildly degrading for
        # Transformer-1T whose large DP communicator rides the NIC dim.
        for k in (8, 16, 32):
            t = results[(model_name, f"Conv-{128 * k}")]["total_time_ns"]
            assert base * 0.99 < t < base * 1.25, (model_name, k)
        # Wafer scale-up: strictly better than scale-out at every size,
        # with shrinking (or at least non-exploding) exposed comm.
        for factor, (conv_name, wafer_name) in {
            2: ("Conv-1024", "W-1024"),
            4: ("Conv-2048", "W-2048"),
            8: ("Conv-4096", "W-4096"),
        }.items():
            conv = results[(model_name, conv_name)]["total_time_ns"]
            wafer = results[(model_name, wafer_name)]["total_time_ns"]
            assert wafer < conv, (model_name, factor)
        # Wafer scale-up reduces exposed communication vs the base system.
        base_comm = results[(model_name, "Base-512")]["breakdown"]["comm_ns"]
        w_comm = results[(model_name, "W-2048")]["breakdown"]["comm_ns"]
        assert w_comm < base_comm, model_name

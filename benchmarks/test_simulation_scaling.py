"""Simulation-cost scaling — the infrastructure claim behind the paper.

The point of the analytical backend is "profiling systems of scale at
speed" (Sec. IV-C): simulation cost must not grow with the number of
NPUs for symmetric workloads.  This regenerates that claim end to end:
1 GB All-Reduces and full GPT-3 iterations on systems from 512 NPUs to
32K NPUs, reporting simulated time, wall-clock cost, and event counts.
"""

from __future__ import annotations

import time

import pytest

import repro
from repro.stats import format_table
from repro.workload import ParallelismSpec, generate_megatron_hybrid, generate_single_collective, gpt3_175b

from conftest import write_result

GiB = 1 << 30


def _system(scale: int):
    """Conv-4D-style system scaled out to ``512 * scale`` NPUs."""
    return repro.parse_topology(
        f"Ring(2)_FC(8)_Ring(8)_Switch({4 * scale})",
        [250, 200, 100, 50],
        latencies_ns=[50, 250, 250, 500],
    )


def _run(topology, traces):
    config = repro.SystemConfig(
        topology=topology, scheduler="themis", collective_chunks=32)
    start = time.perf_counter()
    result = repro.simulate(traces, config)
    wall = time.perf_counter() - start
    return result, wall


def test_simulation_cost_flat_in_system_size(benchmark, results_dir):
    def sweep():
        rows = []
        walls = {}
        for scale in (1, 2, 8, 16, 64):
            topology = _system(scale)
            npus = topology.num_npus
            ar_result, ar_wall = _run(
                topology,
                generate_single_collective(
                    topology, repro.CollectiveType.ALL_REDUCE, GiB))
            mp, dp = 16, npus // 16
            gpt_result, gpt_wall = _run(
                topology,
                generate_megatron_hybrid(
                    gpt3_175b(), topology, ParallelismSpec(mp=mp, dp=dp)))
            walls[npus] = (ar_wall, gpt_wall)
            rows.append([
                npus,
                f"{ar_result.total_time_us:.0f}",
                f"{1e3 * ar_wall:.1f}",
                f"{gpt_result.total_time_ms:.0f}",
                f"{1e3 * gpt_wall:.1f}",
                gpt_result.events_processed,
            ])
        return rows, walls

    rows, walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["NPUs", "AllReduce sim (us)", "wall (ms)",
         "GPT-3 iter sim (ms)", "wall (ms)", "GPT-3 events"],
        rows,
    ) + ("\n\nSimulation wall-clock cost is flat in system size for"
         " symmetric workloads — the representative-communicator design"
         " (paper Sec. IV-C: 4K NPUs 'at speed').")
    write_result(results_dir, "simulation_scaling.txt", text)

    # Every point simulates in well under a second — the headline claim.
    for npus, (ar_wall, gpt_wall) in walls.items():
        assert ar_wall < 1.0, npus
        assert gpt_wall < 5.0, npus
    # Growing the system 64x costs far less than 64x the wall clock
    # (group enumeration is the only O(NPUs) term left).
    biggest, smallest = max(walls), min(walls)
    growth = biggest / smallest
    wall_growth = walls[biggest][1] / max(walls[smallest][1], 1e-3)
    assert wall_growth < growth / 4

"""Unit tests for the model zoo (paper Table III parameter counts)."""

import pytest

from repro.workload import (
    DLRMSpec,
    MoESpec,
    TransformerSpec,
    dlrm_paper,
    gpt3_175b,
    moe_1t,
    transformer_1t,
)


class TestTransformerSpecs:
    def test_gpt3_parameter_count(self):
        """Table III: GPT-3 has 175B parameters."""
        model = gpt3_175b()
        assert model.total_params == pytest.approx(175e9, rel=0.01)

    def test_transformer_1t_parameter_count(self):
        """Table III: Transformer-1T has 1T parameters."""
        model = transformer_1t()
        assert model.total_params == pytest.approx(1e12, rel=0.01)

    def test_backward_is_twice_forward(self):
        model = gpt3_175b()
        assert model.bwd_flops_per_layer() == 2 * model.fwd_flops_per_layer()

    def test_fwd_flops_dominated_by_matmul_term(self):
        model = gpt3_175b(batch_per_replica=1)
        tokens = model.seq_len
        matmul = 2 * model.params_per_layer * tokens
        assert model.fwd_flops_per_layer() > matmul

    def test_activation_scales_with_batch(self):
        small = gpt3_175b(batch_per_replica=1)
        big = gpt3_175b(batch_per_replica=4)
        assert big.activation_bytes() == 4 * small.activation_bytes()

    def test_grad_bytes(self):
        model = gpt3_175b()
        assert model.layer_grad_bytes() == model.params_per_layer * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TransformerSpec("x", num_layers=0, hidden=8, seq_len=8)


class TestDLRM:
    def test_paper_mlp_params(self):
        """Table III: DLRM has 57M MLP parameters."""
        assert dlrm_paper().mlp_params == 57_000_000

    def test_alltoall_payload_structure(self):
        model = DLRMSpec("d", mlp_params=1000, num_tables=4, emb_dim=8,
                         batch_per_npu=2, dtype_bytes=4)
        assert model.alltoall_bytes_per_npu() == 2 * 4 * 8 * 4

    def test_grad_bytes_and_flops(self):
        model = dlrm_paper()
        assert model.mlp_grad_bytes() == 57_000_000 * 4
        assert model.mlp_flops() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DLRMSpec("d", mlp_params=0, num_tables=1, emb_dim=1, batch_per_npu=1)


class TestMoE:
    def test_moe_1t_parameter_count(self):
        """Sec. V-B: the MoE model has 1 trillion parameters."""
        model = moe_1t()
        assert model.total_params == pytest.approx(1e12, rel=0.05)

    def test_moe_layer_count(self):
        model = moe_1t()
        assert model.num_moe_layers == model.num_layers // model.moe_every

    def test_expert_params_formula(self):
        model = MoESpec("m", num_layers=4, hidden=16, seq_len=8, num_experts=2)
        assert model.expert_params == 8 * 16 * 16

    def test_expert_sharding_across_gpus(self):
        model = moe_1t()
        per_gpu_256 = model.expert_params_per_gpu(256)
        per_gpu_64 = model.expert_params_per_gpu(64)
        assert per_gpu_64 == 4 * per_gpu_256

    def test_sharding_floors_at_one_expert(self):
        model = MoESpec("m", num_layers=2, hidden=16, seq_len=8, num_experts=2)
        assert model.expert_params_per_gpu(1000) == model.expert_params

    def test_alltoall_payload(self):
        model = moe_1t(batch_per_gpu=2)
        expected = 2 * model.seq_len * model.top_k * model.hidden * model.dtype_bytes
        assert model.alltoall_bytes_per_gpu() == expected

    def test_flops_positive(self):
        model = moe_1t()
        assert model.expert_flops_per_gpu() > 0
        assert model.dense_flops_per_gpu() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MoESpec("m", num_layers=1, hidden=1, seq_len=1, num_experts=0)
        with pytest.raises(ValueError):
            moe_1t().expert_params_per_gpu(0)

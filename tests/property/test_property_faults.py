"""Property-based tests (hypothesis) for fault-schedule determinism.

The subsystem's contract: fault studies are *reproducible*.  The same
seed and generator arguments always produce the same schedule; the same
schedule driven through a simulation always produces the same
:class:`~repro.stats.resilience.ResilienceReport` and total time; and
different seeds genuinely explore the space (schedules differ).
"""

from hypothesis import given, settings, strategies as st

import repro
from repro.faults import FaultKind, FaultSchedule, FaultSpec

MiB = 1 << 20

RING8 = repro.parse_topology("Ring(8)", [100])

seeds = st.integers(min_value=0, max_value=2**32 - 1)

# -- spec strategies ------------------------------------------------------------------


@st.composite
def fault_specs(draw, num_npus=8, num_dims=1, horizon_ns=5e6):
    kind = draw(st.sampled_from(list(FaultKind)))
    start = draw(st.floats(min_value=0.0, max_value=horizon_ns,
                           allow_nan=False, allow_infinity=False))
    duration = draw(st.one_of(
        st.none(),
        st.floats(min_value=1.0, max_value=horizon_ns,
                  allow_nan=False, allow_infinity=False)))
    npu = draw(st.integers(min_value=0, max_value=num_npus - 1))
    dim = draw(st.integers(min_value=0, max_value=num_dims - 1))
    if kind is FaultKind.STRAGGLER:
        factor = draw(st.floats(min_value=1.0, max_value=4.0))
        return FaultSpec(kind=kind, start_ns=start, duration_ns=duration,
                         npu=npu, factor=factor)
    if kind is FaultKind.STALL:
        duration = duration if duration is not None else 1e5
        return FaultSpec(kind=kind, start_ns=start, duration_ns=duration,
                         npu=npu)
    if kind is FaultKind.NPU_FAIL:
        return FaultSpec(kind=kind, start_ns=start, npu=npu)
    factor = draw(st.floats(min_value=0.1, max_value=1.0))
    if kind is FaultKind.LINK_DOWN:
        return FaultSpec(kind=kind, start_ns=start, duration_ns=duration,
                         dim=dim, npu=npu, factor=factor)
    return FaultSpec(kind=kind, start_ns=start, duration_ns=duration,
                     dim=dim, factor=factor)


# -- generator determinism ------------------------------------------------------------


@given(seed=seeds)
@settings(max_examples=25, deadline=None)
def test_same_seed_same_schedule(seed):
    kwargs = dict(num_npus=8, num_dims=1, horizon_ns=5e6,
                  straggler_mtbf_ns=0.5e6, stall_mtbf_ns=1e6,
                  degrade_mtbf_ns=1e6, linkdown_mtbf_ns=1e6, fail_mtbf_ns=2e6)
    a = FaultSchedule.generate(seed=seed, **kwargs)
    b = FaultSchedule.generate(seed=seed, **kwargs)
    assert a == b
    assert a.describe() == b.describe()


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_different_seeds_differ(seed):
    kwargs = dict(num_npus=64, num_dims=2, horizon_ns=20e6,
                  straggler_mtbf_ns=0.2e6, stall_mtbf_ns=0.5e6,
                  degrade_mtbf_ns=0.5e6)
    a = FaultSchedule.generate(seed=seed, **kwargs)
    b = FaultSchedule.generate(seed=seed + 1, **kwargs)
    # With ~100 expected faults per schedule a collision means the seed is
    # being ignored, which is exactly the regression this guards against.
    assert a != b


@given(spec=fault_specs())
@settings(max_examples=50, deadline=None)
def test_spec_describe_round_trips(spec):
    from repro.faults import parse_fault
    parsed = parse_fault(spec.describe())
    assert parsed.kind is spec.kind
    assert parsed.npu == spec.npu
    assert parsed.dim == spec.dim
    # Times go through %g formatting: exact for these magnitudes.
    assert parsed.start_ns == spec.start_ns


# -- end-to-end determinism -----------------------------------------------------------


@given(seed=seeds)
@settings(max_examples=5, deadline=None)
def test_simulation_deterministic_under_schedule(seed):
    """Same seed + spec => identical ResilienceReport and total time."""
    schedule = FaultSchedule.generate(
        seed=seed, num_npus=8, num_dims=1, horizon_ns=2e6,
        straggler_mtbf_ns=0.5e6, degrade_mtbf_ns=1e6)

    def run():
        traces = repro.generate_single_collective(
            RING8, repro.CollectiveType.ALL_REDUCE, 64 * MiB)
        config = repro.SystemConfig(topology=RING8, faults=schedule)
        return repro.simulate(traces, config)

    r1, r2 = run(), run()
    assert r1.total_time_ns == r2.total_time_ns
    assert r1.resilience == r2.resilience
    if schedule:
        assert r1.resilience is not None
        assert len(r1.resilience.records) == len(schedule)

"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, DimSpec, MultiDimTopology, parse_topology
from repro.network.building_blocks import BuildingBlock, hops_between, latency_steps
from repro.stats import Activity, compute_breakdown
from repro.system import decompose_collective, make_scheduler, CollectiveOperation
from repro.system.phases import PhaseKind, phase_traffic_bytes
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType
from repro.trace.serialization import dumps_trace, loads_trace

# -- strategies -----------------------------------------------------------------------

blocks = st.sampled_from(list(BuildingBlock))
dim_sizes = st.integers(min_value=1, max_value=16)


@st.composite
def topologies(draw, max_dims=4, max_npus=512):
    n_dims = draw(st.integers(min_value=1, max_value=max_dims))
    dims = []
    total = 1
    for _ in range(n_dims):
        size = draw(st.integers(min_value=1, max_value=8))
        if total * size > max_npus:
            size = 1
        total *= size
        bw = draw(st.floats(min_value=1.0, max_value=1000.0,
                            allow_nan=False, allow_infinity=False))
        dims.append(DimSpec(draw(blocks), size, bw, latency_ns=draw(
            st.floats(min_value=0.0, max_value=1000.0))))
    return MultiDimTopology(dims)


@st.composite
def random_dags(draw, max_nodes=20):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    nodes = []
    for i in range(n):
        deps = ()
        if i > 0:
            deps = tuple(sorted(draw(st.sets(
                st.integers(min_value=0, max_value=i - 1), max_size=3))))
        nodes.append(ETNode(i, NodeType.COMPUTE, flops=draw(
            st.integers(min_value=1, max_value=10**9)), deps=deps))
    return ExecutionTrace(0, nodes)


# -- event engine ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    engine = EventEngine()
    fired = []
    for d in delays:
        engine.schedule(d, lambda: fired.append(engine.now))
    engine.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# -- topology --------------------------------------------------------------------------


@given(topologies())
def test_coords_roundtrip(topo):
    for npu in range(topo.num_npus):
        assert topo.npu_id(topo.coords(npu)) == npu


@given(topologies())
def test_dim_group_partitions_system(topo):
    for dim in range(topo.num_dims):
        seen = set()
        for npu in range(topo.num_npus):
            group = topo.dim_group(npu, dim)
            assert npu in group
            assert len(group) == topo.dims[dim].size
            seen.update(group)
        assert seen == set(range(topo.num_npus))


@given(topologies(), st.data())
def test_hops_symmetric_and_zero_on_diagonal(topo, data):
    a = data.draw(st.integers(min_value=0, max_value=topo.num_npus - 1))
    b = data.draw(st.integers(min_value=0, max_value=topo.num_npus - 1))
    assert topo.hops(a, b) == topo.hops(b, a)
    assert topo.hops(a, a) == 0


@given(blocks, st.integers(min_value=2, max_value=64), st.data())
def test_hops_bounded_by_block_diameter(block, size, data):
    a = data.draw(st.integers(min_value=0, max_value=size - 1))
    b = data.draw(st.integers(min_value=0, max_value=size - 1))
    h = hops_between(block, size, a, b)
    if block is BuildingBlock.RING:
        assert h <= size // 2
    else:
        assert h <= 2


# -- traces ----------------------------------------------------------------------------


@given(random_dags())
def test_topological_order_is_a_valid_schedule(trace):
    seen = set()
    for node in trace.topological_order():
        assert all(dep in seen for dep in node.deps)
        seen.add(node.node_id)
    assert len(seen) == len(trace)


@given(random_dags())
def test_serialization_roundtrip_preserves_graph(trace):
    restored = loads_trace(dumps_trace(trace))
    assert len(restored) == len(trace)
    for node in trace:
        copy = restored.node(node.node_id)
        assert copy.deps == node.deps
        assert copy.flops == node.flops


@given(random_dags())
def test_critical_path_bounded_by_node_count(trace):
    assert 1 <= trace.critical_path_length() <= len(trace)


# -- collective phase math ---------------------------------------------------------------


@given(topologies(), st.floats(min_value=1.0, max_value=1e12, allow_nan=False))
def test_allreduce_traffic_telescopes(topo, payload):
    """Total All-Reduce traffic = 2 * S * (1 - 1/K), any dim order."""
    dims = [d for d in range(topo.num_dims) if topo.dims[d].size > 1]
    if not dims:
        return
    group = 1
    for d in dims:
        group *= topo.dims[d].size
    plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, dims, payload)
    total = sum(plan.traffic_by_dim(topo).values())
    assert math.isclose(total, 2 * payload * (1 - 1 / group), rel_tol=1e-9)


@given(topologies(), st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
       st.data())
def test_allreduce_traffic_order_invariant(topo, payload, data):
    dims = [d for d in range(topo.num_dims) if topo.dims[d].size > 1]
    if len(dims) < 2:
        return
    order = data.draw(st.permutations(dims))
    base = decompose_collective(CollectiveType.ALL_REDUCE, topo, dims, payload)
    permuted = decompose_collective(CollectiveType.ALL_REDUCE, topo, order, payload)
    assert math.isclose(
        sum(base.traffic_by_dim(topo).values()),
        sum(permuted.traffic_by_dim(topo).values()),
        rel_tol=1e-9,
    )


@given(st.integers(min_value=1, max_value=1024))
def test_latency_steps_positive_and_log_bounded(size):
    for block in BuildingBlock:
        steps = latency_steps(block, size)
        assert steps >= 0
        if size > 1:
            assert steps >= 1
            if block is BuildingBlock.SWITCH:
                assert steps == math.ceil(math.log2(size))


# -- collective operation -----------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.sampled_from(list(CollectiveType)),
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=1 << 24),
    st.sampled_from(["baseline", "themis"]),
)
def test_collective_always_terminates_with_nonnegative_duration(
    collective, chunks, payload, scheduler
):
    engine = EventEngine()
    topo = parse_topology("Ring(2)_FC(4)_Switch(2)", [100, 50, 25])
    net = AnalyticalNetwork(engine, topo)
    op = CollectiveOperation(
        engine, net, make_scheduler(scheduler), collective,
        (0, 1, 2), 0, payload, num_chunks=chunks,
    )
    op.start()
    engine.run()
    assert op.finish_time is not None
    assert op.duration_ns >= 0
    for traffic in op.traffic_by_dim.values():
        assert traffic >= 0


# -- breakdown -----------------------------------------------------------------------------


@given(st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        st.sampled_from(list(Activity)),
    ),
    max_size=30,
))
def test_breakdown_components_sum_to_total(raw):
    intervals = [(min(a, b), max(a, b), act) for a, b, act in raw]
    horizon = max((end for _, end, _ in intervals), default=0.0)
    b = compute_breakdown(intervals, horizon)
    assert math.isclose(
        sum(b.exposed_ns.values()) + b.idle_ns, horizon,
        rel_tol=1e-9, abs_tol=1e-6,
    )
    for value in b.exposed_ns.values():
        assert value >= 0

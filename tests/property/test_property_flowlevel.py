"""Property-based tests for the flow-level backend."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.network.flowlevel import FlowLevelNetwork


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 24),
                   min_size=1, max_size=8),
)
def test_shared_link_drains_in_total_bytes_over_capacity(sizes):
    """Work conservation: N flows on one 100 GB/s link finish exactly at
    sum(bytes)/100, whatever the size mix (max-min keeps the link busy)."""
    topo = parse_topology("Ring(4)", [100], latencies_ns=[0])
    engine = EventEngine()
    net = FlowLevelNetwork(engine, topo)
    done = []
    for i, size in enumerate(sizes):
        net.sim_recv(1, 0, size, tag=i, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, size, tag=i)
    engine.run()
    assert len(done) == len(sizes)
    assert max(done) == pytest.approx(sum(sizes) / 100, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    n_flows=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=1024, max_value=1 << 22),
)
def test_equal_flows_finish_together(n_flows, size):
    topo = parse_topology("Ring(4)", [100], latencies_ns=[0])
    engine = EventEngine()
    net = FlowLevelNetwork(engine, topo)
    done = []
    for i in range(n_flows):
        net.sim_recv(1, 0, size, tag=i, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, size, tag=i)
    engine.run()
    assert max(done) == pytest.approx(min(done), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=1 << 26),
    src=st.integers(min_value=0, max_value=7),
    dst=st.integers(min_value=0, max_value=7),
)
def test_single_flow_matches_analytical_per_dim_serialization(size, src, dst):
    """One unloaded flow: the fluid model serializes once end-to-end,
    which equals the analytical time minus its per-dim store-and-forward
    (identical whenever the route stays within one dimension)."""
    if src == dst:
        return
    topo = parse_topology("Ring(8)", [100], latencies_ns=[50])
    engine_a = EventEngine()
    analytical = AnalyticalNetwork(engine_a, topo).transfer_time(src, dst, size)

    engine = EventEngine()
    net = FlowLevelNetwork(engine, topo)
    done = []
    net.sim_recv(dst, src, size, callback=lambda m: done.append(engine.now))
    net.sim_send(src, dst, size)
    engine.run()
    assert done[0] == pytest.approx(analytical, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    joins=st.lists(
        st.tuples(st.floats(min_value=0, max_value=500, allow_nan=False),
                  st.integers(min_value=1024, max_value=1 << 20)),
        min_size=1, max_size=5),
)
def test_dynamic_arrivals_never_lose_bytes(joins):
    """Flows joining at arbitrary times all complete; delivery count and
    byte totals are conserved."""
    topo = parse_topology("Ring(4)", [100], latencies_ns=[10])
    engine = EventEngine()
    net = FlowLevelNetwork(engine, topo)
    delivered = []

    def start(tag, size):
        net.sim_recv(1, 0, size, tag=tag,
                     callback=lambda m: delivered.append(m.size_bytes))
        net.sim_send(0, 1, size, tag=tag)

    for tag, (at, size) in enumerate(joins):
        engine.schedule(at, start, tag, size)
    engine.run()
    assert sorted(delivered) == sorted(size for _, size in joins)
    assert net.active_flows == 0

"""Property-based tests: symmetry folding is invisible in the results.

The contract of :mod:`repro.core.folding` is absolute — a folded run's
exported schema-v2 document equals the unfolded run's **byte for byte**,
over any symmetric workload, any backend, any collective, and any
communicator dim-set; and any asymmetry (faults, per-rank trace
differences, point-to-point traffic, observation hooks) forces the
unfolded path.
"""

import copy
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.folding import plan_folding
from repro.core.simulator import Simulator
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.network.topology import parse_topology
from repro.stats.export import result_to_dict
from repro.telemetry.config import TelemetryConfig
from repro.trace.graph import ExecutionTrace
from repro.trace.node import CollectiveType, ETNode, NodeType
from repro.validate.invariants import InvariantConfig

KiB = 1 << 10

#: (notation, bandwidths) — multi-dim shapes small enough to run on the
#: packet backend yet rich enough to give non-trivial dim subsets.
TOPOLOGIES = [
    ("Ring(2)_FC(4)", [100.0, 50.0]),
    ("Ring(4)_Ring(2)", [150.0, 75.0]),
    ("FC(2)_Switch(4)", [200.0, 50.0]),
]

COLLECTIVES = [
    CollectiveType.ALL_REDUCE,
    CollectiveType.ALL_GATHER,
    CollectiveType.REDUCE_SCATTER,
    CollectiveType.ALL_TO_ALL,
]


def _replicated(num_npus, collective, payload, comm_dims):
    base = [
        ETNode(0, NodeType.COMPUTE, name="fwd", flops=1 << 20,
               tensor_bytes=64 * KiB),
        ETNode(1, NodeType.COMM_COLLECTIVE, name="sync",
               tensor_bytes=payload, deps=(0,), collective=collective,
               comm_dims=comm_dims),
        ETNode(2, NodeType.COMPUTE, name="opt", flops=1 << 18,
               tensor_bytes=16 * KiB, deps=(1,)),
    ]
    return {rank: ExecutionTrace(rank, [copy.deepcopy(n) for n in base])
            for rank in range(num_npus)}


def _doc(traces, topo, backend, folding, **extra):
    config = SystemConfig(topology=topo, network_backend=backend,
                          folding=folding, collective_chunks=2, **extra)
    result = Simulator(traces, config).run()
    return json.dumps(result_to_dict(result), sort_keys=True), result.folding


class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        topo_idx=st.integers(min_value=0, max_value=len(TOPOLOGIES) - 1),
        backend=st.sampled_from(["analytical", "flow", "garnet"]),
        collective=st.sampled_from(COLLECTIVES),
        dims_choice=st.sampled_from([(0,), (1,), (0, 1), None]),
        payload_kib=st.integers(min_value=4, max_value=256),
    )
    def test_folded_equals_unfolded_byte_for_byte(
            self, topo_idx, backend, collective, dims_choice, payload_kib):
        notation, bws = TOPOLOGIES[topo_idx]
        traces = None

        def make(num_npus):
            return _replicated(num_npus, collective, payload_kib * KiB,
                               dims_choice)

        topo_a = parse_topology(notation, list(bws))
        doc_auto, report = _doc(make(topo_a.num_npus), topo_a, backend,
                                "auto")
        topo_b = parse_topology(notation, list(bws))
        doc_off, _ = _doc(make(topo_b.num_npus), topo_b, backend, "off")
        assert doc_auto == doc_off
        # Folding over a strict dim subset leaves >1 rank per class;
        # spanning every dim collapses the job to a single class.
        if dims_choice is not None and len(dims_choice) < topo_a.num_dims:
            expected_classes = topo_a.num_npus // topo_a.group_size(
                dims_choice)
        else:
            expected_classes = 1
        assert report is not None and report.active
        assert report.num_classes == expected_classes
        assert report.simulated_ranks < report.traced_ranks

    @settings(max_examples=10, deadline=None)
    @given(
        backend=st.sampled_from(["analytical", "flow"]),
        payload_kib=st.integers(min_value=4, max_value=128),
    )
    def test_two_distinct_classes_fold_independently(
            self, backend, payload_kib):
        """Two different node sequences on interleaved ranks: folding must
        keep one representative of each and still match byte for byte."""
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        payload = payload_kib * KiB

        def make(num_npus):
            traces = _replicated(num_npus, CollectiveType.ALL_REDUCE,
                                 payload, (1,))
            # Shape (2, 4), dim 0 fastest: rank = c0 + 2*c1.  Giving the
            # upper half of each dim-1 communicator (c1 >= 2) a heavier
            # forward pass splits every communicator into two signatures.
            for rank in range(num_npus):
                if rank // 2 >= 2:
                    traces[rank].node(0).flops = 1 << 22
            return traces

        doc_auto, report = _doc(make(topo.num_npus), topo, backend, "auto")
        topo_b = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        doc_off, _ = _doc(make(topo_b.num_npus), topo_b, backend, "off")
        assert doc_auto == doc_off
        assert report.active
        # 2 signatures x 2 communicators over dim 1 = 4 classes.
        assert report.num_classes == 4


class TestAsymmetryForcesUnfolded:
    def _traces(self, topo, payload=64 * KiB):
        return _replicated(topo.num_npus, CollectiveType.ALL_REDUCE,
                           payload, (1,))

    def test_fault_schedule_disables_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        schedule = FaultSchedule((FaultSpec(
            kind=FaultKind.STRAGGLER, start_ns=0.0, duration_ns=1e6,
            npu=3, factor=2.0),))
        config = SystemConfig(topology=topo, faults=schedule)
        plan = plan_folding(self._traces(topo), config)
        assert not plan.active
        assert plan.report.reason == "fault schedule configured"

    def test_telemetry_disables_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        config = SystemConfig(topology=topo, telemetry=TelemetryConfig())
        plan = plan_folding(self._traces(topo), config)
        assert not plan.active
        assert plan.report.reason == "telemetry observes per-rank state"

    def test_invariants_disable_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        config = SystemConfig(topology=topo, invariants=InvariantConfig())
        plan = plan_folding(self._traces(topo), config)
        assert not plan.active
        assert plan.report.reason == ("invariant checker observes "
                                      "per-rank state")

    def test_explicit_off_disables_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        config = SystemConfig(topology=topo, folding="off")
        plan = plan_folding(self._traces(topo), config)
        assert not plan.active
        assert plan.report.reason == "disabled by config"

    def test_unordered_trace_dict_disables_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = self._traces(topo)
        shuffled = dict(sorted(traces.items(), key=lambda kv: -kv[0]))
        plan = plan_folding(shuffled, SystemConfig(topology=topo))
        assert not plan.active
        assert plan.report.reason == "traces not in ascending rank order"

    def test_fully_heterogeneous_traces_disable_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = self._traces(topo)
        for rank, trace in traces.items():
            trace.node(0).flops += rank
        plan = plan_folding(traces, SystemConfig(topology=topo))
        assert not plan.active
        assert plan.report.reason == "no foldable classes"

    def test_single_trace_disables_folding(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = {0: self._traces(topo)[0]}
        plan = plan_folding(traces, SystemConfig(topology=topo))
        assert not plan.active
        assert plan.report.reason == "single trace"

    def test_sendrecv_rank_stays_a_singleton_without_global_disable(self):
        """Point-to-point traffic is *per-rank* asymmetry: the affected
        ranks stay unfolded while the symmetric rest still folds."""
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = self._traces(topo)
        nodes = [copy.deepcopy(n) for n in traces[3].nodes]
        nodes.append(ETNode(3, NodeType.COMM_SEND, name="p2p",
                            tensor_bytes=KiB, deps=(2,), peer=4, tag=9))
        traces[3] = ExecutionTrace(3, nodes)
        plan = plan_folding(traces, SystemConfig(topology=topo))
        assert plan.active
        assert plan.report.asymmetric_ranks == 1
        assert plan.class_members[3] == (3,)

    def test_involved_npus_override_stays_a_singleton(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = self._traces(topo)
        traces[5].node(1).involved_npus = (1, 3, 5, 7)
        plan = plan_folding(traces, SystemConfig(topology=topo))
        assert plan.active
        assert plan.report.asymmetric_ranks == 1
        assert plan.class_members[5] == (5,)

    def test_faulted_run_still_byte_identical_auto_vs_off(self):
        """Even when auto falls back to unfolded, auto == off exactly."""
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        schedule = FaultSchedule((FaultSpec(
            kind=FaultKind.STRAGGLER, start_ns=0.0, duration_ns=1e6,
            npu=1, factor=3.0),))
        doc_auto, report = _doc(self._traces(topo), topo, "analytical",
                                "auto", faults=schedule)
        topo_b = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        doc_off, _ = _doc(self._traces(topo_b), topo_b, "analytical",
                          "off", faults=schedule)
        assert not report.active
        assert doc_auto == doc_off


class TestReconstruction:
    def test_counters_match_unfolded_run_exactly(self):
        topo = parse_topology("Ring(4)_Ring(2)", [150.0, 75.0])
        traces = _replicated(topo.num_npus, CollectiveType.ALL_GATHER,
                             32 * KiB, (0,))
        config_auto = SystemConfig(topology=topo, folding="auto")
        config_off = SystemConfig(topology=topo, folding="off")
        res_auto = Simulator(copy.deepcopy(traces), config_auto).run()
        res_off = Simulator(traces, config_off).run()
        assert res_auto.nodes_executed == res_off.nodes_executed
        assert res_auto.events_processed == res_off.events_processed
        assert res_auto.total_time_ns == res_off.total_time_ns
        assert len(res_auto.per_npu_breakdown) == len(
            res_off.per_npu_breakdown)

    def test_collective_records_list_full_membership(self):
        topo = parse_topology("Ring(2)_FC(4)", [100.0, 50.0])
        traces = _replicated(topo.num_npus, CollectiveType.ALL_REDUCE,
                             64 * KiB, (1,))
        result = Simulator(traces, SystemConfig(topology=topo)).run()
        assert result.folding.active
        for record in result.collectives:
            assert len(record.members) == record.group_size
            assert list(record.members) == sorted(record.members)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))

"""Property-based tests: network backends agree on congestion-free traffic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology
from repro.system import SendRecvCollectiveExecutor


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=1 << 20),
    src=st.integers(min_value=0, max_value=7),
    dst=st.integers(min_value=0, max_value=7),
)
def test_single_transfer_garnet_matches_analytical_on_ring(size, src, dst):
    """One unloaded message along one ring dim: both backends agree when the
    packet size covers the message (no store-and-forward segmentation)."""
    if src == dst:
        return
    topo = parse_topology("Ring(8)", [100], latencies_ns=[100])
    engine_a = EventEngine()
    analytical = AnalyticalNetwork(engine_a, topo)
    expected = analytical.transfer_time(src, dst, size)

    engine_g = EventEngine()
    garnet = GarnetLiteNetwork(engine_g, topo, packet_bytes=max(size, 1))
    done = []
    garnet.sim_recv(dst, src, size, callback=lambda m: done.append(engine_g.now))
    garnet.sim_send(src, dst, size)
    engine_g.run()
    hops = topo.hops(src, dst)
    # Garnet serializes per hop (store-and-forward); analytical serializes
    # once.  They agree exactly for 1 hop, and garnet adds (hops-1) extra
    # serializations otherwise.
    extra = (hops - 1) * (size / 100)
    assert done[0] == pytest.approx(expected + extra, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    k=st.sampled_from([2, 4, 8]),
    size=st.integers(min_value=1024, max_value=1 << 20),
)
def test_ring_allreduce_agrees_across_backends(k, size):
    """Neighbor-only ring collectives are congestion-free: the packet-level
    backend must match the closed form.  The group must be the full
    physical ring — a sub-group's wrap-around edge would relay through
    intermediate NPUs and pay store-and-forward."""
    topo = parse_topology(f"Ring({k})", [150], latencies_ns=[50])
    times = {}
    for name, cls, kwargs in (
        ("analytical", AnalyticalNetwork, {}),
        ("garnet", GarnetLiteNetwork, {"packet_bytes": max(1, size // k)}),
    ):
        engine = EventEngine()
        net = cls(engine, topo, **kwargs)
        executor = SendRecvCollectiveExecutor(engine, net)
        out = {}
        executor.run_ring_allreduce(list(range(k)), size,
                                    on_complete=lambda t: out.update(t=t))
        engine.run()
        times[name] = out["t"]
    assert times["garnet"] == pytest.approx(times["analytical"], rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    n_flows=st.integers(min_value=1, max_value=6),
    size=st.integers(min_value=4096, max_value=1 << 16),
)
def test_shared_link_throughput_conserved(n_flows, size):
    """N same-link flows drain in N * (one flow's serialization) — the
    packet backend neither creates nor destroys bandwidth."""
    topo = parse_topology("Ring(4)", [100], latencies_ns=[0])
    engine = EventEngine()
    net = GarnetLiteNetwork(engine, topo, packet_bytes=1024)
    done = []
    for i in range(n_flows):
        net.sim_recv(1, 0, size, tag=i, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, size, tag=i)
    engine.run()
    assert len(done) == n_flows
    assert max(done) == pytest.approx(n_flows * size / 100, rel=0.05)

"""Observational equivalence of the optimised event kernel vs the seed.

Random schedule/cancel/step/run(until)/run(max_events) programs are
replayed on the frozen seed engine (:mod:`repro.events._seed_reference`)
and the production :class:`~repro.events.EventEngine`.  The two must
produce identical ``(time, event-id)`` firing sequences and identical
``(now, pending, events_processed)`` observations after every operation
— the seed's ``(time, priority, seq)`` FIFO contract, bit for bit.

Also pins end-to-end determinism: two simulations of the same workload
yield byte-identical serialized :class:`RunResult`\\ s.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import repro
from repro.events import EventEngine
from repro.events._seed_reference import SeedEventEngine
from repro.stats.export import result_to_dict
from repro.workload import generate_single_collective

# One program operation.  Delays are drawn from a small grid so that
# same-timestamp collisions (the FIFO-sensitive case) are common.
_delays = st.sampled_from([0.0, 0.5, 1.0, 1.0, 2.0, 3.5, 7.0])
_priorities = st.sampled_from([-1, 0, 0, 0, 1, 2])
_nested = st.one_of(
    st.none(), st.tuples(_delays, _priorities))

_op = st.one_of(
    st.tuples(st.just("schedule"), _delays, _priorities, _nested),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("run_until"), _delays),
    st.tuples(st.just("step")),
    st.tuples(st.just("run_max"), st.integers(min_value=1, max_value=4)),
)
_programs = st.lists(_op, min_size=1, max_size=40)


def _replay(engine, program):
    """Run a program; return the full observation log."""
    log = []
    handles = []
    counter = [0]

    def fire(event_id, nested):
        log.append(("fire", engine.now, event_id))
        if nested is not None:
            delay, priority = nested
            child_id = f"{event_id}.n"
            handles.append(engine.schedule(
                delay, fire, child_id, None, priority=priority))

    for op in program:
        kind = op[0]
        if kind == "schedule":
            _, delay, priority, nested = op
            event_id = counter[0]
            counter[0] += 1
            handles.append(engine.schedule(
                delay, fire, event_id, nested, priority=priority))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run_until":
            engine.run(until=engine.now + op[1])
        elif kind == "step":
            engine.step()
        elif kind == "run_max":
            engine.run(max_events=op[1])
        log.append(("obs", engine.now, engine.pending,
                    engine.events_processed))
    engine.run()
    log.append(("end", engine.now, engine.pending, engine.events_processed))
    return log


@settings(max_examples=200, deadline=None)
@given(program=_programs)
def test_engine_observationally_equivalent_to_seed(program):
    assert _replay(EventEngine(), program) == \
        _replay(SeedEventEngine(), program)


@settings(max_examples=100, deadline=None)
@given(program=_programs)
def test_engine_deterministic_across_replays(program):
    assert _replay(EventEngine(), program) == _replay(EventEngine(), program)


@settings(max_examples=50, deadline=None)
@given(
    n_cancel=st.integers(min_value=0, max_value=30),
    n_keep=st.integers(min_value=0, max_value=10),
)
def test_pending_counts_exact_under_mass_cancellation(n_cancel, n_keep):
    """Counted-live ``pending`` (and lazy compaction) must agree with the
    seed's O(n) scan through arbitrary schedule/cancel/step interleaving."""
    new, seed = EventEngine(), SeedEventEngine()
    for engine in (new, seed):
        cancels = [engine.schedule(1.0 + i, lambda: None)
                   for i in range(n_cancel)]
        for i in range(n_keep):
            engine.schedule(100.0 + i, lambda: None)
        for event in cancels:
            event.cancel()
            event.cancel()  # double-cancel must not double-count
    assert new.pending == seed.pending == n_keep
    assert new.step() == seed.step()
    assert new.pending == seed.pending
    assert new.now == seed.now


@settings(max_examples=10, deadline=None)
@given(
    shape=st.sampled_from(["Ring(4)", "Ring(2)_Switch(4)", "Switch(8)"]),
    chunks=st.sampled_from([1, 4, 16]),
    scheduler=st.sampled_from(["baseline", "themis"]),
)
def test_run_result_bit_identical_across_runs(shape, chunks, scheduler):
    bws = [100.0] * (shape.count("_") + 1)
    topo = repro.parse_topology(shape, bws)
    traces = generate_single_collective(
        topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
    config = repro.SystemConfig(
        topology=topo, scheduler=scheduler, collective_chunks=chunks)
    first = result_to_dict(repro.simulate(traces, config))
    second = result_to_dict(repro.simulate(traces, config))
    assert first == second

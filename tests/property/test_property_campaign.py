"""Property: campaign results are byte-identical across worker counts.

The campaign runner's core contract (and what makes the run cache
sound): the merged document depends only on the spec — not on how many
processes executed it, not on completion order, not on cache
temperature.  We run the same sweep serially (``jobs=0``), with one
worker, and with four workers, and compare the canonical JSON
byte-for-byte — including a telemetry-bearing point, whose per-run
metrics are embedded in the result payloads.
"""

from repro.campaign import CampaignRunner, SweepSpec

# Small enough to keep three executions (one per jobs count) cheap, but
# covering both schedulers and a telemetry-embedding trace level.
SPEC = SweepSpec(
    base={
        "topology": "Ring(4)", "bandwidths": "100",
        "workload": "allreduce", "trace_level": "collective",
    },
    grid={
        "payload_mib": [1, 2],
        "scheduler": ["baseline", "themis"],
    },
)


def test_results_identical_across_jobs_counts(tmp_path):
    docs = {}
    for jobs in (0, 1, 4):
        campaign = CampaignRunner(jobs=jobs).run(SPEC)
        assert not campaign.errors, campaign.errors
        docs[jobs] = campaign.canonical_results_json()
        # every payload carries the embedded telemetry block
        assert all("telemetry" in r for r in campaign.results)
    assert docs[0] == docs[1] == docs[4]

    # and a warm cache replays the same bytes without executing anything
    CampaignRunner(jobs=0, cache_dir=tmp_path).run(SPEC)
    warm = CampaignRunner(jobs=0, cache_dir=tmp_path).run(SPEC)
    assert warm.cache_counters["hits"] == len(SPEC)
    assert warm.canonical_results_json() == docs[0]

"""Property: campaign results are byte-identical across execution modes.

The campaign runner's core contract (and what makes the run cache
sound): the merged document depends only on the spec — not on how many
processes executed it, not on completion order, not on batch size, not
on whether the workers were warm (the shared persistent fleet) or cold
(a private single-use pool), not on cache temperature.  We run the same
sweep across ``jobs`` x ``batch_size`` x warm/cold combinations and
compare the canonical JSON byte-for-byte — including a
telemetry-bearing point, whose per-run metrics are embedded in the
result payloads.
"""

import pytest

from repro.campaign import CampaignRunner, SweepSpec, shutdown_shared_pool

# Small enough to keep three executions (one per jobs count) cheap, but
# covering both schedulers and a telemetry-embedding trace level.
SPEC = SweepSpec(
    base={
        "topology": "Ring(4)", "bandwidths": "100",
        "workload": "allreduce", "trace_level": "collective",
    },
    grid={
        "payload_mib": [1, 2],
        "scheduler": ["baseline", "themis"],
    },
)


@pytest.fixture(autouse=True)
def _clean_shared_pool():
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


def test_results_identical_across_jobs_counts(tmp_path):
    docs = {}
    for jobs in (0, 1, 4):
        campaign = CampaignRunner(jobs=jobs).run(SPEC)
        assert not campaign.errors, campaign.errors
        docs[jobs] = campaign.canonical_results_json()
        # every payload carries the embedded telemetry block
        assert all("telemetry" in r for r in campaign.results)
    assert docs[0] == docs[1] == docs[4]

    # and a warm cache replays the same bytes without executing anything
    CampaignRunner(jobs=0, cache_dir=tmp_path).run(SPEC)
    warm = CampaignRunner(jobs=0, cache_dir=tmp_path).run(SPEC)
    assert warm.cache_counters["hits"] == len(SPEC)
    assert warm.canonical_results_json() == docs[0]


def test_results_identical_across_batching_and_worker_reuse():
    """jobs x batch_size x warm/cold worker reuse: one merged document.

    The warm runs deliberately share one persistent fleet (that *is* the
    reuse under test: later runs hit workers already warmed by earlier
    ones); the cold runs each build and tear down a private pool.  Batch
    size changes how points pack into tasks — and therefore completion
    order — which the spec-order merge must erase.
    """
    reference = CampaignRunner(jobs=0).run(SPEC).canonical_results_json()
    for jobs in (1, 2, 4):
        for batch_size in (1, 4):
            warm = CampaignRunner(jobs=jobs, batch_size=batch_size,
                                  warm=True).run(SPEC)
            assert not warm.errors, warm.errors
            assert warm.canonical_results_json() == reference, (
                f"warm jobs={jobs} batch_size={batch_size} diverged")
    for batch_size in (1, 4):
        cold = CampaignRunner(jobs=2, batch_size=batch_size,
                              warm=False).run(SPEC)
        assert not cold.errors, cold.errors
        assert cold.canonical_results_json() == reference, (
            f"cold jobs=2 batch_size={batch_size} diverged")

"""Property test: phase-level collectives match the algorithm executors.

The production path times a collective with per-dimension phase math
(:class:`CollectiveOperation`); the validation path replays the actual
Table I algorithm as explicit sends (:class:`SendRecvCollectiveExecutor`).
On a 1-D topology with a single chunk the two must agree — the phase
equations *are* the closed form of the algorithms.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.system import CollectiveOperation, SendRecvCollectiveExecutor, make_scheduler
from repro.trace import CollectiveType


def _phase_level_time(notation, bw, lat, payload, chunks=1):
    engine = EventEngine()
    topo = parse_topology(notation, [bw], latencies_ns=[lat])
    net = AnalyticalNetwork(engine, topo)
    op = CollectiveOperation(
        engine, net, make_scheduler("baseline"), CollectiveType.ALL_REDUCE,
        (0,), 0, payload, num_chunks=chunks)
    op.start()
    engine.run()
    return op.duration_ns


def _executor_time(method, notation, bw, lat, payload):
    engine = EventEngine()
    topo = parse_topology(notation, [bw], latencies_ns=[lat])
    net = AnalyticalNetwork(engine, topo)
    executor = SendRecvCollectiveExecutor(engine, net)
    out = {}
    getattr(executor, method)(list(range(topo.num_npus)), payload,
                              on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"]


@settings(max_examples=30, deadline=None)
@given(
    k=st.sampled_from([2, 4, 8, 16]),
    payload_kib=st.integers(min_value=16, max_value=4096),
    bw=st.floats(min_value=10, max_value=500, allow_nan=False),
)
def test_ring_phase_matches_ring_executor(k, payload_kib, bw):
    payload = payload_kib << 10
    phase = _phase_level_time(f"Ring({k})", bw, 0.0, payload)
    executor = _executor_time("run_ring_allreduce", f"Ring({k})", bw, 0.0,
                              payload)
    # The executor rounds the per-step chunk to payload // k.
    assert phase == pytest.approx(executor, rel=0.01)


@settings(max_examples=30, deadline=None)
@given(
    k=st.sampled_from([2, 4, 8]),
    payload_kib=st.integers(min_value=16, max_value=4096),
    bw=st.floats(min_value=10, max_value=500, allow_nan=False),
)
def test_direct_phase_matches_direct_executor(k, payload_kib, bw):
    payload = payload_kib << 10
    phase = _phase_level_time(f"FC({k})", bw, 0.0, payload)
    executor = _executor_time("run_direct_allreduce", f"FC({k})", bw, 0.0,
                              payload)
    assert phase == pytest.approx(executor, rel=0.01)


@settings(max_examples=30, deadline=None)
@given(
    k=st.sampled_from([2, 4, 8, 16]),
    payload_kib=st.integers(min_value=64, max_value=4096),
    bw=st.floats(min_value=10, max_value=500, allow_nan=False),
)
def test_hd_phase_matches_hd_executor(k, payload_kib, bw):
    payload = payload_kib << 10
    phase = _phase_level_time(f"Switch({k})", bw, 0.0, payload)
    executor = _executor_time("run_halving_doubling_allreduce",
                              f"Switch({k})", bw, 0.0, payload)
    assert phase == pytest.approx(executor, rel=0.02)


@settings(max_examples=20, deadline=None)
@given(
    k=st.sampled_from([4, 8]),
    chunks=st.sampled_from([1, 2, 4, 8]),
    payload_kib=st.integers(min_value=64, max_value=2048),
)
def test_chunking_does_not_change_1d_bandwidth_time(k, chunks, payload_kib):
    """On one dimension there is nothing to pipeline against: the chunked
    time equals the single-chunk time at zero latency."""
    payload = payload_kib << 10
    one = _phase_level_time(f"Ring({k})", 100.0, 0.0, payload, chunks=1)
    many = _phase_level_time(f"Ring({k})", 100.0, 0.0, payload, chunks=chunks)
    assert many == pytest.approx(one, rel=1e-9)

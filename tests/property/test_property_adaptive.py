"""Property-based tests for the adaptive granularity controller.

Four controller laws from ISSUE 10, checked over randomized scenarios,
algorithms, payloads, and threshold pairs:

1. ``threshold=inf`` is **bit-identical** to the pure fluid backend
   (same simulated time, same event count, zero escalations).
2. ``threshold=0`` matches the pure packet backend within the
   saf-adjusted band (:data:`repro.validate.conformance.REL_SAF`) on the
   conformance-matrix algorithms, at strictly fewer events.
3. The escalation count is monotonically non-increasing in the
   threshold for a fixed workload.
4. Hysteresis prevents oscillation: a single contention episode (flows
   only drain after the initial burst) escalates each link at most
   once, and an uncontended link never escalates at all.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.events import EventEngine
from repro.network import AdaptiveFlowNetwork, parse_topology
from repro.validate.adaptive import _matrix_algorithms, _run_case
from repro.validate.conformance import (
    REL_SAF,
    SCENARIO_TOPOLOGIES,
    _saf_allowance_ns,
)

KiB = 1 << 10

SCENARIOS = sorted(SCENARIO_TOPOLOGIES)


def _burst(net, engine, sizes, dst=1):
    """One contention episode: all flows join at t=0, then only drain."""
    done = []
    for i, size in enumerate(sizes):
        net.sim_recv(dst, 0, size, tag=i,
                     callback=lambda m: done.append(engine.now))
        net.sim_send(0, dst, size, tag=i)
    engine.run()
    return done


def _adaptive(threshold, hysteresis=1.0, packet=1024):
    engine = EventEngine()
    topo = parse_topology("Ring(4)", [100.0], latencies_ns=[0.0])
    net = AdaptiveFlowNetwork(
        engine, topo, escalation_threshold=threshold,
        deescalation_hysteresis=hysteresis,
        escalation_packet_bytes=packet)
    return engine, net


@settings(max_examples=12, deadline=None)
@given(
    scenario=st.sampled_from(SCENARIOS),
    payload=st.integers(min_value=8 * KiB, max_value=1 << 21),
    data=st.data(),
)
def test_infinite_threshold_is_bit_identical_to_fluid(scenario, payload,
                                                      data):
    notation, bws, lats = SCENARIO_TOPOLOGIES[scenario]
    algorithm = data.draw(st.sampled_from(_matrix_algorithms(notation)))
    base_ns, base_ev, _, _ = _run_case(
        "flow", notation, bws, lats, algorithm, payload, 4096, False)
    cand_ns, cand_ev, _, net = _run_case(
        "adaptive", notation, bws, lats, algorithm, payload, 4096, False,
        threshold=math.inf)
    assert cand_ns == base_ns          # exact, not approx: bit identity
    assert cand_ev == base_ev
    assert net.escalations == 0
    assert net.deescalations == 0


@settings(max_examples=10, deadline=None)
@given(
    scenario=st.sampled_from(SCENARIOS),
    # >= 64 KiB keeps every per-step chunk above packet_bytes, the
    # regime where the closed-form saf correction is exact (the
    # conformance matrix starts at the same floor).
    payload=st.integers(min_value=64 * KiB, max_value=1 << 21),
    data=st.data(),
)
def test_zero_threshold_matches_packet_within_saf_band(scenario, payload,
                                                       data):
    notation, bws, lats = SCENARIO_TOPOLOGIES[scenario]
    algorithm = data.draw(st.sampled_from(_matrix_algorithms(notation)))
    k = parse_topology(notation, list(bws)).num_npus
    base_ns, base_ev, _, _ = _run_case(
        "garnet", notation, bws, lats, algorithm, payload, 4096, False)
    cand_ns, cand_ev, _, net = _run_case(
        "adaptive", notation, bws, lats, algorithm, payload, 4096, False,
        threshold=0.0)
    saf = _saf_allowance_ns(notation, bws[0], k, algorithm, 4096)
    assert abs(cand_ns + saf - base_ns) / base_ns <= REL_SAF
    assert cand_ev < base_ev
    assert net.escalations > 0
    assert net.deescalations == 0      # threshold 0 never de-escalates


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=4 * KiB, max_value=256 * KiB),
                   min_size=2, max_size=8),
    t_low=st.integers(min_value=0, max_value=6),
    t_step=st.integers(min_value=1, max_value=6),
)
def test_escalations_monotone_non_increasing_in_threshold(sizes, t_low,
                                                          t_step):
    counts = []
    for threshold in (float(t_low), float(t_low + t_step)):
        engine, net = _adaptive(threshold)
        _burst(net, engine, sizes)
        counts.append(net.escalations)
    assert counts[0] >= counts[1]


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=4 * KiB, max_value=256 * KiB),
                   min_size=2, max_size=8),
    threshold=st.integers(min_value=1, max_value=6),
    hysteresis=st.integers(min_value=0, max_value=6),
)
def test_single_episode_never_oscillates(sizes, threshold, hysteresis):
    """Flows only drain after the burst, so each link sees at most one
    contention episode: at most one escalate/de-escalate round trip per
    link, whatever the hysteresis."""
    engine, net = _adaptive(float(threshold),
                            hysteresis=float(min(hysteresis, threshold)))
    done = _burst(net, engine, sizes)
    assert len(done) == len(sizes)
    links_used = 1                     # 0 -> 1 is a single-link route
    assert net.escalations <= links_used
    assert net.deescalations <= net.escalations
    assert net.bytes_delivered == pytest.approx(sum(sizes))


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=4 * KiB, max_value=256 * KiB),
                   min_size=1, max_size=6),
    threshold=st.integers(min_value=1, max_value=4),
    hysteresis=st.integers(min_value=0, max_value=4),
)
def test_uncontended_link_never_escalates(sizes, threshold, hysteresis):
    """Sequential (back-to-back) flows keep concurrency at 1, which
    never crosses a threshold >= 1: the controller must stay fluid."""
    engine, net = _adaptive(float(threshold),
                            hysteresis=float(min(hysteresis, threshold)))
    done = []

    def start(i):
        size = sizes[i]
        follow = ((lambda m: (done.append(engine.now), start(i + 1)))
                  if i + 1 < len(sizes)
                  else (lambda m: done.append(engine.now)))
        net.sim_recv(1, 0, size, tag=i, callback=follow)
        net.sim_send(0, 1, size, tag=i)

    start(0)
    engine.run()
    assert len(done) == len(sizes)
    assert net.escalations == 0
    assert net.deescalations == 0
    assert all(state.mode == "fluid" for state in net._gran.values())

"""Property-based tests on the memory models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import (
    HierMemConfig,
    HierarchicalRemoteMemory,
    InSwitchCollectiveMemory,
    LocalMemory,
    MemoryRequest,
    ZeroInfinityConfig,
    ZeroInfinityMemory,
)
from repro.memory.capacity import MemoryFootprint, check_capacity
from repro.trace import TensorLocation

sizes = st.integers(min_value=0, max_value=1 << 34)
bandwidths = st.floats(min_value=1.0, max_value=10000.0, allow_nan=False)


@st.composite
def pool_configs(draw):
    return HierMemConfig(
        num_nodes=draw(st.integers(min_value=1, max_value=32)),
        gpus_per_node=draw(st.integers(min_value=1, max_value=32)),
        num_out_switches=draw(st.integers(min_value=1, max_value=32)),
        num_remote_groups=draw(st.integers(min_value=1, max_value=512)),
        mem_side_bw_gbps=draw(bandwidths),
        gpu_side_out_bw_gbps=draw(bandwidths),
        in_node_bw_gbps=draw(bandwidths),
        chunk_bytes=draw(st.sampled_from([1 << 16, 1 << 20, 1 << 22])),
        access_latency_ns=draw(st.floats(min_value=0, max_value=1e5)),
    )


def _remote(size):
    return MemoryRequest(size, location=TensorLocation.REMOTE)


@given(bandwidths, st.floats(min_value=0, max_value=1e6, allow_nan=False),
       sizes)
def test_local_memory_monotone_in_size(bw, lat, size):
    mem = LocalMemory(bandwidth_gbps=bw, latency_ns=lat)
    t1 = mem.access_time_ns(MemoryRequest(size))
    t2 = mem.access_time_ns(MemoryRequest(size + 4096))
    assert t2 >= t1 >= lat


@settings(max_examples=50)
@given(pool_configs(), sizes)
def test_hierarchical_pool_time_nonnegative_and_monotone(config, size):
    mem = HierarchicalRemoteMemory(config)
    t = mem.access_time_ns(_remote(size))
    assert t >= config.access_latency_ns
    bigger = mem.access_time_ns(_remote(size + (1 << 22)))
    assert bigger >= t - 1e-6


@settings(max_examples=50)
@given(pool_configs(), st.integers(min_value=1, max_value=1 << 30))
def test_pool_effective_bandwidth_bounded_by_resources(config, size):
    """No pool access can beat its binding resource: the aggregate group
    bandwidth shared across GPUs, or the per-GPU in-node link."""
    mem = HierarchicalRemoteMemory(config)
    t = mem.access_time_ns(_remote(size)) - config.access_latency_ns
    per_gpu_share = (
        config.num_remote_groups * config.mem_side_bw_gbps / config.num_gpus
    )
    binding = min(per_gpu_share, config.in_node_bw_gbps)
    lower_bound = size / binding
    assert t >= lower_bound * (1 - 1e-9)


@settings(max_examples=50)
@given(pool_configs(), st.integers(min_value=1, max_value=1 << 28))
def test_inswitch_never_cheaper_than_plain_per_byte_delivered(config, size):
    """An in-switch gather-load delivers num_gpus x the bytes of a plain
    load of the same shard; its time must be at least the plain load's."""
    plain = HierarchicalRemoteMemory(config).access_time_ns(_remote(size))
    gathered = InSwitchCollectiveMemory(config).access_time_ns(_remote(size))
    assert gathered >= plain * (1 - 1e-9)


@given(bandwidths, sizes)
def test_zero_infinity_linear_in_size(bw, size):
    mem = ZeroInfinityMemory(ZeroInfinityConfig(
        path_bandwidth_gbps=bw, access_latency_ns=0.0))
    t = mem.access_time_ns(_remote(size))
    assert t == pytest.approx(size / bw)


@given(
    st.integers(min_value=0, max_value=1 << 45),
    st.integers(min_value=0, max_value=1 << 45),
    st.integers(min_value=0, max_value=1 << 45),
    st.integers(min_value=0, max_value=1 << 45),
    st.floats(min_value=0.001, max_value=4096, allow_nan=False),
)
def test_capacity_report_invariants(p, g, o, a, hbm_gib):
    fp = MemoryFootprint(params=p, grads=g, optimizer=o, activations=a)
    report = check_capacity(fp, hbm_gib=hbm_gib)
    assert 0 <= report.offload_bytes <= fp.model_state
    if report.fits:
        assert report.offload_bytes == 0
    if report.offload_bytes < fp.total - report.hbm_bytes:
        # Couldn't offload enough model state: activations must be the
        # reason it stays infeasible.
        assert not report.feasible_with_offload or report.fits

"""Unit tests for ET JSON (de)serialization."""

import json

import pytest

from repro.trace import (
    CollectiveType,
    ETNode,
    ExecutionTrace,
    NodeType,
    TensorLocation,
    TraceValidationError,
    load_trace,
    save_trace,
)
from repro.trace.serialization import dumps_trace, loads_trace


def _rich_trace():
    nodes = [
        ETNode(0, NodeType.COMPUTE, name="mm", flops=1000, tensor_bytes=64),
        ETNode(1, NodeType.MEMORY_LOAD, tensor_bytes=4096, deps=(0,),
               location=TensorLocation.REMOTE),
        ETNode(2, NodeType.COMM_COLLECTIVE, tensor_bytes=8192, deps=(1,),
               collective=CollectiveType.ALL_TO_ALL, comm_dims=(0, 2),
               attrs={"via": "fabric"}),
        ETNode(3, NodeType.COMM_SEND, tensor_bytes=16, deps=(2,), peer=7, tag=3),
        ETNode(4, NodeType.COMM_RECV, tensor_bytes=16, deps=(2,), peer=7, tag=4),
        ETNode(5, NodeType.MEMORY_STORE, tensor_bytes=128, deps=(3, 4)),
    ]
    return ExecutionTrace(9, nodes)


def test_roundtrip_preserves_everything():
    trace = _rich_trace()
    restored = loads_trace(dumps_trace(trace))
    assert restored.npu_id == 9
    assert len(restored) == len(trace)
    for original in trace:
        copy = restored.node(original.node_id)
        assert copy.node_type == original.node_type
        assert copy.deps == original.deps
        assert copy.tensor_bytes == original.tensor_bytes
        assert copy.flops == original.flops
        assert copy.collective == original.collective
        assert copy.comm_dims == original.comm_dims
        assert copy.peer == original.peer
        assert copy.tag == original.tag
        assert copy.location == original.location
        assert copy.attrs == original.attrs


def test_file_roundtrip(tmp_path):
    path = tmp_path / "trace.json"
    save_trace(_rich_trace(), path)
    assert load_trace(path).npu_id == 9


def test_default_fields_omitted_from_json():
    trace = ExecutionTrace(0, [ETNode(0, NodeType.COMPUTE, flops=5)])
    payload = json.loads(dumps_trace(trace))
    node = payload["nodes"][0]
    assert "deps" not in node
    assert "location" not in node
    assert "tensor_bytes" not in node


def test_wrong_format_rejected():
    with pytest.raises(TraceValidationError):
        loads_trace(json.dumps({"format": "something-else", "version": 1}))


def test_wrong_version_rejected():
    with pytest.raises(TraceValidationError):
        loads_trace(json.dumps({"format": "astra-sim-et", "version": 99}))


def test_bad_node_type_rejected():
    payload = {
        "format": "astra-sim-et", "version": 1, "npu_id": 0,
        "nodes": [{"id": 0, "type": "quantum"}],
    }
    with pytest.raises(TraceValidationError):
        loads_trace(json.dumps(payload))


def test_loaded_graph_is_validated():
    payload = {
        "format": "astra-sim-et", "version": 1, "npu_id": 0,
        "nodes": [
            {"id": 0, "type": "compute", "flops": 1, "deps": [1]},
            {"id": 1, "type": "compute", "flops": 1, "deps": [0]},
        ],
    }
    with pytest.raises(TraceValidationError):
        loads_trace(json.dumps(payload))


def test_indent_option_produces_pretty_json():
    text = dumps_trace(_rich_trace(), indent=2)
    assert "\n" in text
    loads_trace(text)

"""Unit tests for the runtime invariant checker (repro.validate pillar 1)."""

import json
import math

import pytest

from repro.core import SystemConfig, simulate
from repro.network import parse_topology
from repro.stats.export import result_to_dict
from repro.telemetry import Telemetry, TelemetryConfig
from repro.trace.node import CollectiveType
from repro.validate import (
    InvariantChecker,
    InvariantConfig,
    InvariantError,
    InvariantReport,
    InvariantViolation,
    expected_collective_traffic,
)

MiB = 1 << 20


def _simulate(payload=4 * MiB, invariants=None, telemetry=None,
              scheduler="themis"):
    from repro.workload.generators import generate_single_collective

    topo = parse_topology("Ring(2)_Switch(4)", [200.0, 50.0])
    traces = generate_single_collective(
        topo, CollectiveType.ALL_REDUCE, payload_bytes=payload)
    config = SystemConfig(topology=topo, scheduler=scheduler,
                          invariants=invariants, telemetry=telemetry)
    return simulate(traces, config)


class TestExpectedTraffic:
    def test_allreduce_telescopes(self):
        # 2p(1 - 1/G), independent of how the dims were ordered.
        assert expected_collective_traffic(
            CollectiveType.ALL_REDUCE, 1024.0, 8) == pytest.approx(
                2 * 1024 * (1 - 1 / 8))

    def test_reduce_scatter_and_allgather_match(self):
        rs = expected_collective_traffic(
            CollectiveType.REDUCE_SCATTER, 4096.0, 4)
        ag = expected_collective_traffic(
            CollectiveType.ALL_GATHER, 4096.0, 4)
        assert rs == ag == pytest.approx(4096 * (1 - 1 / 4))

    def test_trivial_group_is_free(self):
        assert expected_collective_traffic(
            CollectiveType.ALL_REDUCE, 1024.0, 1) == 0.0
        assert expected_collective_traffic(
            CollectiveType.ALL_REDUCE, 0.0, 8) == 0.0

    def test_alltoall_sums_active_dims(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100.0, 50.0])
        specs = {i: d for i, d in enumerate(topo.dims)}
        total = expected_collective_traffic(
            CollectiveType.ALL_TO_ALL, 1024.0, 8,
            dim_specs=specs, active_dims=(0, 1))
        assert total > 0
        # Each dim contributes payload * fraction(block, size).
        one = expected_collective_traffic(
            CollectiveType.ALL_TO_ALL, 1024.0, 8,
            dim_specs=specs, active_dims=(0,))
        two = expected_collective_traffic(
            CollectiveType.ALL_TO_ALL, 1024.0, 8,
            dim_specs=specs, active_dims=(1,))
        assert total == pytest.approx(one + two)

    def test_unsupported_collective_rejected(self):
        with pytest.raises(ValueError):
            expected_collective_traffic("broadcast", 1024.0, 8)


class TestRecording:
    def test_record_appends_and_counts(self):
        inv = InvariantChecker()
        inv.record("events", "causality", "went backwards", time_ns=5.0,
                   scheduled=3.0)
        assert inv.violations_total == 1
        v = inv.violations[0]
        assert (v.layer, v.name) == ("events", "causality")
        assert dict(v.context) == {"scheduled": 3.0}

    def test_strict_raises(self):
        inv = InvariantChecker(InvariantConfig(strict=True))
        with pytest.raises(InvariantError, match="events/causality"):
            inv.record("events", "causality", "boom")

    def test_max_violations_bounds_memory_but_not_count(self):
        inv = InvariantChecker(InvariantConfig(max_violations=3))
        for i in range(10):
            inv.record("network", "leak", f"leak {i}")
        assert inv.violations_total == 10
        assert len(inv.violations) == 3

    def test_counts_by_name(self):
        report = InvariantReport(checks=5, violations_total=3, violations=[
            InvariantViolation("network", "leak", "a", 0.0),
            InvariantViolation("network", "leak", "b", 0.0),
            InvariantViolation("events", "causality", "c", 0.0),
        ])
        assert report.counts_by_name() == {
            "network/leak": 2, "events/causality": 1}
        assert not report.ok

    def test_report_to_dict_roundtrips_json(self):
        report = InvariantReport(checks=2, violations_total=1, violations=[
            InvariantViolation("memory", "conservation", "chunks", 7.0,
                               context=(("stages", 3),)),
        ])
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema_version"] == 1
        assert doc["checks"] == 2
        assert doc["ok"] is False
        assert doc["violations"][0]["context"] == {"stages": 3}


class TestHotHooks:
    def test_event_time_nan_and_inf_caught(self):
        inv = InvariantChecker()
        inv.check_event_time(float("nan"), now=0.0)
        inv.check_event_time(math.inf, now=0.0)
        assert inv.violations_total == 2
        assert all(v.name == "finite_time" for v in inv.violations)

    def test_event_time_causality(self):
        inv = InvariantChecker()
        inv.check_event_time(5.0, now=10.0)
        assert inv.violations[0].name == "causality"
        inv2 = InvariantChecker()
        inv2.check_event_time(10.0, now=10.0)  # equal is fine
        assert inv2.violations_total == 0

    def test_reservation_backwards(self):
        inv = InvariantChecker()
        inv.check_reservation(start=10.0, end=5.0, now=10.0)
        assert inv.violations[0].name == "causality"

    def test_reservation_nonfinite(self):
        inv = InvariantChecker()
        inv.check_reservation(start=0.0, end=math.inf, now=0.0)
        assert inv.violations[0].name == "finite_time"


class TestSimulatorIntegration:
    def test_clean_run_has_zero_violations(self):
        result = _simulate(invariants=InvariantConfig())
        assert result.invariants is not None
        assert result.invariants.ok
        assert result.invariants.checks > 0

    def test_baseline_scheduler_also_clean(self):
        result = _simulate(invariants=InvariantConfig(), scheduler="baseline")
        assert result.invariants.ok
        # The chunked baseline path exercises far more hooks than the
        # fluid-limit themis path.
        assert result.invariants.checks > 50

    def test_disabled_run_has_no_report_and_identical_result(self):
        checked = _simulate(invariants=InvariantConfig())
        plain = _simulate()
        assert plain.invariants is None
        checked_doc = result_to_dict(checked)
        assert checked_doc.pop("invariants")["ok"] is True
        assert json.dumps(checked_doc, sort_keys=True) == json.dumps(
            result_to_dict(plain), sort_keys=True)

    def test_violations_surface_in_telemetry_registry(self):
        result = _simulate(invariants=InvariantConfig(),
                           telemetry=TelemetryConfig())
        assert result.telemetry.metric_value(
            "validate", "checks") == result.invariants.checks
        assert result.telemetry.metric_value("validate", "violations") == 0.0

    def test_install_uninstall_restores_slots(self):
        from repro.events import EventEngine
        from repro.network import AnalyticalNetwork

        topo = parse_topology("Ring(4)", [100.0])
        engine = EventEngine()
        net = AnalyticalNetwork(engine, topo)
        inv = InvariantChecker().install(engine, network=net)
        assert engine.invariants is inv and net.invariants is inv
        inv.uninstall()
        assert engine.invariants is None and net.invariants is None

    def test_finalize_exports_counters_to_metrics(self):
        telemetry = Telemetry(TelemetryConfig())
        inv = InvariantChecker()
        inv.checks = 4
        inv.record("network", "leak", "posted receives")
        report = inv.finalize(total_ns=100.0, telemetry=telemetry)
        assert report.violations_total == 1
        reg = telemetry.metrics
        assert reg.counter("validate", "checks").value == 4.0
        assert reg.counter("validate", "violations").value == 1.0
        assert reg.counter("validate", "violation", subsystem="network",
                           invariant="leak").value == 1.0

"""Mutation smoke tests: seeded semantic bugs must be *caught*.

Each test monkeypatches one plausible bug into a hot code path —
double-booked ports, dropped traffic fractions, broken packet queueing,
collapsed memory pipelines — and asserts the validation stack detects
it: an invariant violation, a conformance-suite failure, or a hard
exception.  A mutation that sails through silently means the checkers
have a blind spot; these tests pin the blind-spot count at zero for the
mutations below.
"""

import math

import pytest

import repro.network.adaptive as adaptive_mod
import repro.network.analytical as analytical_mod
import repro.network.flowlevel as flowlevel_mod
import repro.network.garnetlite as garnetlite_mod
import repro.system.collective_op as collective_op_mod
import repro.system.scheduler as scheduler_mod
from repro.core import SystemConfig, simulate
from repro.memory import HierMemConfig, HierarchicalRemoteMemory
from repro.network import parse_topology
from repro.trace import (
    CollectiveType,
    ETNode,
    ExecutionTrace,
    NodeType,
    TensorLocation,
)
from repro.validate import InvariantConfig
from repro.validate.adaptive import run_adaptive_suite
from repro.validate.conformance import run_backend_pairs
from repro.workload.generators import generate_single_collective

MiB = 1 << 20


def _violations(remote_memory=None, traces=None):
    """Invariant-checked analytical run; -1 means it blew up outright."""
    topo = parse_topology("Ring(2)_Switch(4)", [200.0, 50.0])
    if traces is None:
        traces = generate_single_collective(
            topo, CollectiveType.ALL_REDUCE, payload_bytes=4 * MiB)
    config = SystemConfig(
        topology=topo, scheduler="baseline", collective_chunks=4,
        remote_memory=remote_memory, invariants=InvariantConfig())
    try:
        result = simulate(traces, config)
    except Exception:
        return -1
    return result.invariants.violations_total


def _caught_by_invariants(**kwargs):
    return _violations(**kwargs) != 0


def _caught_by_conformance():
    try:
        cases = run_backend_pairs(quick=True, check_invariants=True)
    except Exception:
        return True
    return any(not c.passed for c in cases)


def _caught_by_adaptive():
    try:
        report = run_adaptive_suite(quick=True, check_invariants=True)
    except Exception:
        return True
    return not report.passed


def _hiermem_traces():
    nodes = [
        ETNode(0, NodeType.MEMORY_LOAD, name="load", tensor_bytes=4 * MiB,
               location=TensorLocation.REMOTE),
        ETNode(1, NodeType.MEMORY_STORE, name="store", tensor_bytes=4 * MiB,
               deps=(0,), location=TensorLocation.REMOTE),
    ]
    return {0: ExecutionTrace(0, nodes)}


def _hiermem_model():
    return HierarchicalRemoteMemory(HierMemConfig(
        num_nodes=2, gpus_per_node=4, num_out_switches=2,
        num_remote_groups=8, mem_side_bw_gbps=100.0,
        gpu_side_out_bw_gbps=256.0, in_node_bw_gbps=256.0,
        chunk_bytes=1 * MiB, access_latency_ns=1000.0))


class TestControl:
    def test_unmutated_stack_is_clean(self):
        """Baseline: with no mutation nothing fires (no false alarms)."""
        assert _violations() == 0
        assert not _caught_by_conformance()


class TestPortMutations:
    def test_double_booked_port_caught(self, monkeypatch):
        # Bug: reservations start at min(now, free_at) — overlapping
        # transfers serialize on top of each other.
        def reserve(self, now, duration):
            start = min(now, self.free_at)
            end = start + duration
            self.free_at = end
            self.busy_ns += duration
            self.reservations += 1
            return start, end

        monkeypatch.setattr(analytical_mod.DimPort, "reserve", reserve)
        assert _caught_by_invariants()

    def test_backwards_reservation_caught(self, monkeypatch):
        # Bug: sign slip makes the reservation end before it starts.
        def reserve(self, now, duration):
            start = max(now, self.free_at)
            end = start - duration
            self.free_at = max(self.free_at, start)
            self.busy_ns += duration
            self.reservations += 1
            return start, end

        monkeypatch.setattr(analytical_mod.DimPort, "reserve", reserve)
        assert _caught_by_invariants()


class TestTrafficMutations:
    def test_reduce_scatter_drops_fraction_caught(self, monkeypatch):
        # Bug: RS phases "forget" the (k-1)/k telescoping fraction.
        original = collective_op_mod.phase_traffic_bytes

        def mutated(spec, kind, payload_bytes):
            if kind is collective_op_mod.PhaseKind.REDUCE_SCATTER:
                return float(payload_bytes)
            return original(spec, kind, payload_bytes)

        monkeypatch.setattr(collective_op_mod, "phase_traffic_bytes", mutated)
        monkeypatch.setattr(scheduler_mod, "phase_traffic_bytes", mutated)
        assert _caught_by_invariants()

    def test_all_gather_overcounts_caught(self, monkeypatch):
        # Bug: AG serializes payload*k instead of payload*(k-1).
        original = collective_op_mod.phase_traffic_bytes

        def mutated(spec, kind, payload_bytes):
            if kind is collective_op_mod.PhaseKind.ALL_GATHER:
                return float(payload_bytes) * spec.size
            return original(spec, kind, payload_bytes)

        monkeypatch.setattr(collective_op_mod, "phase_traffic_bytes", mutated)
        monkeypatch.setattr(scheduler_mod, "phase_traffic_bytes", mutated)
        assert _caught_by_invariants()

    def test_traffic_fraction_off_by_one_caught(self, monkeypatch):
        # Bug: the classic k/(k-1) slip — every NPU sends the full
        # payload in every phase.
        import repro.system.phases as phases_mod

        monkeypatch.setattr(phases_mod, "collective_traffic_fraction",
                            lambda k: 1.0)
        assert _caught_by_invariants()

    def test_nan_latency_caught(self, monkeypatch):
        # Bug: a 0/0 in the latency model poisons event timestamps.
        monkeypatch.setattr(collective_op_mod, "phase_latency_ns",
                            lambda spec: math.nan)
        assert _caught_by_invariants()


class TestBackendMutations:
    def test_analytical_bandwidth_doubled_caught(self, monkeypatch):
        # Bug: serialization uses half the real byte time — analytical
        # drifts away from the packet/flow backends.
        original = analytical_mod.AnalyticalNetwork.serialization_time

        def mutated(self, size_bytes, dim):
            return original(self, size_bytes, dim) / 2.0

        monkeypatch.setattr(analytical_mod.AnalyticalNetwork,
                            "serialization_time", mutated)
        assert _caught_by_conformance()

    def test_garnet_link_without_queueing_caught(self, monkeypatch):
        # Bug: packet links never advance free_at, so packets overlap
        # instead of serializing.
        def transmit(self, now, size_bytes):
            done = now + size_bytes / self.bandwidth
            self.bytes_carried += size_bytes
            return done, done + self.latency_ns

        monkeypatch.setattr(garnetlite_mod._Link, "transmit", transmit)
        assert _caught_by_conformance()

    def test_flow_capacity_doubled_caught(self, monkeypatch):
        # Bug: flow links allocate against twice their physical capacity.
        original = flowlevel_mod._FlowLink.__init__

        def mutated(self, bandwidth_gbps, latency_ns):
            original(self, 2.0 * bandwidth_gbps, latency_ns)

        monkeypatch.setattr(flowlevel_mod._FlowLink, "__init__", mutated)
        assert _caught_by_conformance()

    def test_garnet_arrival_double_count_caught(self, monkeypatch):
        # Bug: packet arrivals are double-counted, so bookkeeping claims
        # more packets landed than were ever sent.
        def mutated(self, flow, count):
            flow.packets_arrived += count + 1
            if self.invariants is not None:
                self.invariants.check_packet_flow(flow, self.engine.now)
            if flow.packets_arrived == flow.packets_total:
                self._deliver(flow.message)

        monkeypatch.setattr(garnetlite_mod.GarnetLiteNetwork,
                            "_segment_arrived", mutated)
        assert _caught_by_conformance()


class TestAdaptiveControllerMutations:
    """ISSUE 10 satellite: seeded granularity-controller bugs must be
    caught by the adaptive pillar or the invariant sweep it runs."""

    def test_inverted_threshold_comparison_caught(self, monkeypatch):
        # Bug: the classic comparison flip — links escalate while
        # *uncontended* and never when loaded.  threshold=inf then
        # escalates everything, so the identity axis (bit-parity with
        # the fluid backend) fails immediately.
        monkeypatch.setattr(
            adaptive_mod.AdaptiveFlowNetwork, "_should_escalate",
            lambda self, n: n < self.escalation_threshold)
        assert _caught_by_adaptive()

    def test_dropped_inflight_bytes_on_handoff_caught(self, monkeypatch):
        # Bug: the fluid->packet handoff segments only half the
        # remaining bytes — in-flight data silently vanishes.  The
        # byte-conservation invariant on the handoff (and the finalize
        # sweep) must flag it.
        original = adaptive_mod.AdaptiveFlowNetwork._segments

        def mutated(self, size):
            return original(self, max(1.0, size * 0.5))

        monkeypatch.setattr(adaptive_mod.AdaptiveFlowNetwork,
                            "_segments", mutated)
        assert _caught_by_adaptive()

    def test_missed_deescalation_caught(self, monkeypatch):
        # Bug: de-escalation is a no-op, so links stay packet-mode
        # forever once contention clears.  The finalize leak check
        # ("still escalated at end of run with no flows") must fire.
        monkeypatch.setattr(adaptive_mod.AdaptiveFlowNetwork,
                            "_deescalate",
                            lambda self, link, state: None)
        assert _caught_by_adaptive()


class TestMemoryMutations:
    def test_hiermem_pipeline_collapse_caught(self, monkeypatch):
        # Bug: the chunk pipeline always reports a single stage, so one
        # chunk "carries" the whole per-link byte share.
        monkeypatch.setattr(
            HierarchicalRemoteMemory, "num_pipeline_stages",
            lambda self, tensor_bytes_per_gpu: 1)
        assert _caught_by_invariants(remote_memory=_hiermem_model(),
                                     traces=_hiermem_traces())

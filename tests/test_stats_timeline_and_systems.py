"""Unit tests for timeline rendering and the Fig. 3(c) system catalog."""

import pytest

import repro
from repro.configs.systems import (
    dgx_a100_cluster,
    dragonfly,
    tpu_v4_pod,
    wafer_cluster,
    wafer_scale,
)
from repro.network import BuildingBlock
from repro.stats import Activity, ActivityLog, render_timeline, utilization_by_npu
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.models import TransformerSpec


class TestSystemCatalog:
    def test_dgx_cluster_shape(self):
        topo = dgx_a100_cluster(16)
        assert topo.shape == (8, 16)
        assert topo.num_npus == 128
        assert topo.dims[0].block is BuildingBlock.SWITCH
        assert topo.dims[0].bandwidth_gbps == 300.0
        assert topo.dims[1].bandwidth_gbps == 25.0

    def test_tpu_v4_is_3d_torus(self):
        topo = tpu_v4_pod(4, 4, 4)
        assert topo.num_npus == 64
        assert all(d.block is BuildingBlock.RING for d in topo.dims)
        assert all(d.bandwidth_gbps == 56.0 for d in topo.dims)

    def test_dragonfly_matches_paper_example(self):
        """Fig. 3c: FC(4)_FC(2)_FC(2) is a fully-populated DragonFly."""
        topo = dragonfly(routers_per_group=4, groups=2, npus_per_router=2)
        assert topo.shape == (2, 4, 2)
        assert all(d.block is BuildingBlock.FULLY_CONNECTED for d in topo.dims)

    def test_wafer_variants(self):
        assert wafer_scale(512).num_npus == 512
        cluster = wafer_cluster(512, 4)
        assert cluster.num_npus == 2048
        assert cluster.dims[0].bandwidth_gbps == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            dgx_a100_cluster(0)
        with pytest.raises(ValueError):
            tpu_v4_pod(0, 4, 4)
        with pytest.raises(ValueError):
            dragonfly(0, 1)
        with pytest.raises(ValueError):
            wafer_scale(0)

    def test_systems_are_simulatable(self):
        for topo in (dgx_a100_cluster(4), tpu_v4_pod(2, 2, 2),
                     dragonfly(2, 2), wafer_scale(16)):
            traces = repro.generate_single_collective(
                topo, repro.CollectiveType.ALL_REDUCE, 1 << 24)
            result = repro.simulate(
                traces, repro.SystemConfig(topology=topo))
            assert result.total_time_ns > 0


class TestTimeline:
    def _log(self):
        log = ActivityLog()
        log.record(0, 0, 50, Activity.COMPUTE)
        log.record(0, 50, 100, Activity.COMM)
        log.record(1, 25, 75, Activity.MEM_REMOTE)
        return log

    def test_render_shape(self):
        text = render_timeline(self._log(), total_ns=100, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert lines[1] == "npu 0 |#####~~~~~|"
        # Columns touched by [25, 75) at 10 ns/col: 2 through 7 inclusive.
        assert lines[2] == "npu 1 |..RRRRRR..|"
        assert "legend" in lines[-1]

    def test_priority_in_overlaps(self):
        log = ActivityLog()
        log.record(0, 0, 100, Activity.COMM)
        log.record(0, 0, 50, Activity.COMPUTE)
        text = render_timeline(log, total_ns=100, width=10)
        assert "|#####~~~~~|" in text

    def test_npus_filter(self):
        text = render_timeline(self._log(), total_ns=100, width=10, npus=[1])
        assert "npu 0" not in text
        assert "npu 1" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_timeline(self._log(), total_ns=0)
        with pytest.raises(ValueError):
            render_timeline(self._log(), total_ns=10, width=0)

    def test_utilization_sums_to_one(self):
        util = utilization_by_npu(self._log(), total_ns=100)
        for npu, fractions in util.items():
            assert sum(fractions.values()) == pytest.approx(1.0)
        assert util[0]["compute"] == pytest.approx(0.5)
        assert util[1]["mem_remote"] == pytest.approx(0.5)

    def test_pipeline_bubbles_visible_end_to_end(self):
        """The canonical use: see GPipe bubbles in the timeline."""
        topo = repro.parse_topology("Ring(4)_Switch(2)", [100, 50])
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        traces = generate_pipeline_parallel(
            model, topo, ParallelismSpec(pp=4, dp=2), microbatches=2)
        result = repro.simulate(traces, repro.SystemConfig(topology=topo))
        assert result.activity is not None
        text = render_timeline(result.activity, result.total_time_ns, width=40)
        # One row per stage representative plus header and legend.
        assert len(text.splitlines()) == len(traces) + 2
        assert "." in text  # bubbles exist

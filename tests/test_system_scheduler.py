"""Unit tests for chunk-to-dimension schedulers."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.system import BaselineScheduler, PhaseKind, ThemisScheduler, make_scheduler
from repro.system.scheduler import chunk_traffic_vector, chunk_work_vector


def _network(bws=(100, 100, 100), sizes=None):
    engine = EventEngine()
    sizes = sizes or [4] * len(bws)
    notation = "_".join(f"Ring({k})" for k in sizes)
    topo = parse_topology(notation, list(bws), latencies_ns=[0] * len(bws))
    return engine, AnalyticalNetwork(engine, topo)


class TestWorkVectors:
    def test_single_pass_vector(self):
        _, net = _network(bws=(100, 100), sizes=(4, 4))
        work = chunk_work_vector(net.topology.dims, (0, 1), PhaseKind.REDUCE_SCATTER,
                                 1000, roundtrip=False)
        assert work[0] == pytest.approx(750 / 100)
        assert work[1] == pytest.approx(250 * 0.75 / 100)

    def test_roundtrip_doubles(self):
        _, net = _network(bws=(100,), sizes=(4,))
        single = chunk_work_vector(net.topology.dims, (0,), PhaseKind.REDUCE_SCATTER,
                                   1000, roundtrip=False)
        double = chunk_work_vector(net.topology.dims, (0,), PhaseKind.REDUCE_SCATTER,
                                   1000, roundtrip=True)
        assert double[0] == pytest.approx(2 * single[0])

    def test_traffic_vector_matches_table_iv_structure(self):
        _, net = _network(bws=(100, 100), sizes=(2, 8))
        traffic = chunk_traffic_vector(net.topology.dims, (0, 1),
                                       PhaseKind.REDUCE_SCATTER, 1024,
                                       roundtrip=True)
        assert traffic[0] == pytest.approx(1024)       # 2 * 1024 * 1/2
        assert traffic[1] == pytest.approx(896)        # 2 * 512 * 7/8


class TestBaseline:
    def test_ascending_order(self):
        _, net = _network()
        sched = BaselineScheduler()
        order = sched.plan_order(net, 0, [2, 0, 1], PhaseKind.REDUCE_SCATTER,
                                 100, {})
        assert order == (0, 1, 2)

    def test_empty_dims_rejected(self):
        _, net = _network()
        with pytest.raises(ValueError):
            BaselineScheduler().plan_order(net, 0, [], PhaseKind.REDUCE_SCATTER,
                                           1, {})


class TestThemisGreedy:
    def test_plan_starts_on_best_dim_when_idle(self):
        # dim 1 is 4x faster: greedy should shrink payload there first.
        _, net = _network(bws=(50, 400, 100))
        sched = ThemisScheduler()
        order = sched.plan_order(net, 0, [0, 1, 2], PhaseKind.REDUCE_SCATTER,
                                 100000, {})
        assert order[0] == 1

    def test_backlog_steers_away(self):
        _, net = _network(bws=(100, 100), sizes=(4, 4))
        net.reserve_port(0, 0, 1e9)
        sched = ThemisScheduler()
        order = sched.plan_order(net, 0, [0, 1], PhaseKind.REDUCE_SCATTER,
                                 1000, {})
        assert order[0] == 1

    def test_pending_load_counts_like_backlog(self):
        _, net = _network(bws=(100, 100), sizes=(4, 4))
        sched = ThemisScheduler()
        order = sched.plan_order(net, 0, [0, 1], PhaseKind.REDUCE_SCATTER,
                                 1000, {0: 1e9})
        assert order[0] == 1

    def test_deterministic(self):
        _, net = _network()
        sched = ThemisScheduler()
        a = sched.plan_order(net, 0, [0, 1, 2], PhaseKind.REDUCE_SCATTER, 500, {})
        b = sched.plan_order(net, 0, [0, 1, 2], PhaseKind.REDUCE_SCATTER, 500, {})
        assert a == b

    def test_empty_dims_rejected(self):
        _, net = _network()
        with pytest.raises(ValueError):
            ThemisScheduler().plan_order(net, 0, [], PhaseKind.REDUCE_SCATTER,
                                         1, {})


class TestThemisBalancedPlan:
    def test_loads_balanced_on_heterogeneous_topology(self):
        engine = EventEngine()
        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)",
                              [250, 200, 100, 50], latencies_ns=[0, 0, 0, 0])
        net = AnalyticalNetwork(engine, topo)
        plan = ThemisScheduler().balanced_plan(
            network=net, dims=(0, 1, 2, 3), kind=PhaseKind.REDUCE_SCATTER,
            payload_bytes=1 << 30, num_chunks=32, roundtrip=True)
        assert plan is not None
        loads = list(plan.loads_ns.values())
        assert max(loads) == pytest.approx(min(loads), rel=0.01)
        # Balanced bottleneck approaches 2S/sum(BW) = 2*2^30/600 ns.
        assert max(loads) == pytest.approx(2 * (1 << 30) / 600, rel=0.05)

    def test_traffic_conserved(self):
        engine = EventEngine()
        topo = parse_topology("Ring(2)_FC(8)", [100, 100],
                              latencies_ns=[0, 0])
        net = AnalyticalNetwork(engine, topo)
        plan = ThemisScheduler().balanced_plan(
            network=net, dims=(0, 1), kind=PhaseKind.REDUCE_SCATTER,
            payload_bytes=1 << 20, num_chunks=8, roundtrip=True)
        # Total traffic is order-independent: 2 * S * (1 - 1/16).
        assert sum(plan.traffic_bytes.values()) == pytest.approx(
            2 * (1 << 20) * (1 - 1 / 16), rel=1e-6)

    def test_fill_smaller_than_loads(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)_Ring(4)", [100, 100])
        net = AnalyticalNetwork(engine, topo)
        plan = ThemisScheduler().balanced_plan(
            network=net, dims=(0, 1), kind=PhaseKind.REDUCE_SCATTER,
            payload_bytes=1 << 30, num_chunks=32, roundtrip=True)
        assert 0 <= plan.fill_ns < max(plan.loads_ns.values())


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_scheduler("baseline"), BaselineScheduler)
        assert isinstance(make_scheduler("themis"), ThemisScheduler)
        assert isinstance(make_scheduler("Themis"), ThemisScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("magic")

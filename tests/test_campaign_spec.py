"""Unit tests for the sweep-spec grammar (grid / zip / points)."""

import pytest

from repro.campaign import SweepSpec, SweepSpecError, canonical_json


class TestExpansion:
    def test_grid_is_cartesian_product_last_axis_fastest(self):
        spec = SweepSpec(
            base={"workload": "allreduce"},
            grid={"payload_mib": [1, 4], "chunks": [8, 16]},
        )
        assert len(spec) == 4
        assert spec.expand() == [
            {"workload": "allreduce", "payload_mib": 1, "chunks": 8},
            {"workload": "allreduce", "payload_mib": 1, "chunks": 16},
            {"workload": "allreduce", "payload_mib": 4, "chunks": 8},
            {"workload": "allreduce", "payload_mib": 4, "chunks": 16},
        ]

    def test_zip_axes_vary_together_outside_the_grid(self):
        spec = SweepSpec(
            zip_axes={"topology": ["Ring(4)", "Switch(4)"],
                      "bandwidths": ["100", "600"]},
            grid={"chunks": [8, 16]},
        )
        assert len(spec) == 4
        assert spec.expand() == [
            {"topology": "Ring(4)", "bandwidths": "100", "chunks": 8},
            {"topology": "Ring(4)", "bandwidths": "100", "chunks": 16},
            {"topology": "Switch(4)", "bandwidths": "600", "chunks": 8},
            {"topology": "Switch(4)", "bandwidths": "600", "chunks": 16},
        ]

    def test_explicit_points_merge_over_base(self):
        spec = SweepSpec(
            base={"scheduler": "themis", "chunks": 8},
            points=[{"chunks": 16}, {"scheduler": "baseline"}],
        )
        assert spec.expand() == [
            {"scheduler": "themis", "chunks": 16},
            {"scheduler": "baseline", "chunks": 8},
        ]

    def test_base_only_spec_is_one_point(self):
        spec = SweepSpec(base={"payload_mib": 1})
        assert len(spec) == 1
        assert spec.expand() == [{"payload_mib": 1}]

    def test_varying_fields_in_first_seen_order(self):
        spec = SweepSpec(
            base={"workload": "allreduce"},
            zip_axes={"topology": ["Ring(4)", "Switch(4)"],
                      "bandwidths": ["100", "600"]},
            grid={"chunks": [8, 16]},
        )
        assert spec.varying_fields() == ["topology", "bandwidths", "chunks"]

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(grid={"a": [1, 2, 3], "b": [4, 5]})
        assert spec.expand() == spec.expand()


class TestValidation:
    def test_points_exclusive_with_axes(self):
        with pytest.raises(SweepSpecError, match="mutually exclusive"):
            SweepSpec(points=[{"a": 1}], grid={"b": [1, 2]})

    def test_zip_axes_must_be_equal_length(self):
        with pytest.raises(SweepSpecError, match="same length"):
            SweepSpec(zip_axes={"a": [1, 2], "b": [1, 2, 3]})

    def test_grid_and_zip_must_be_disjoint(self):
        with pytest.raises(SweepSpecError, match="both grid and zip"):
            SweepSpec(grid={"a": [1]}, zip_axes={"a": [1]})

    def test_axis_values_must_be_a_list(self):
        with pytest.raises(SweepSpecError, match="list/tuple"):
            SweepSpec(grid={"a": "12"})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepSpecError, match="empty"):
            SweepSpec(grid={"a": []})


class TestSerialization:
    def test_round_trip_through_dict(self):
        spec = SweepSpec(
            base={"workload": "allreduce"},
            zip_axes={"topology": ["Ring(4)"], "bandwidths": ["100"]},
            grid={"chunks": [8, 16]},
        )
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone.expand() == spec.expand()
        assert clone.to_dict() == spec.to_dict()

    def test_canonical_json_is_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1})

    def test_canonical_json_rejects_unserializable(self):
        with pytest.raises(SweepSpecError, match="JSON-serializable"):
            canonical_json({"fn": canonical_json})


class TestCliGrammar:
    def test_parse_axis_splits_on_pipe(self):
        assert SweepSpec.parse_axis("payload-mib=1|4|16") == (
            "payload_mib", ["1", "4", "16"])

    def test_parse_axis_keeps_commas_inside_values(self):
        field, values = SweepSpec.parse_axis("bandwidths=100,25|600")
        assert field == "bandwidths"
        assert values == ["100,25", "600"]

    @pytest.mark.parametrize("text", ["payload", "=1|2", "a=1||2"])
    def test_malformed_axis_rejected(self, text):
        with pytest.raises(SweepSpecError):
            SweepSpec.parse_axis(text)

    def test_from_cli_builds_grid_and_zip(self):
        spec = SweepSpec.from_cli(
            base={"workload": "allreduce"},
            grid_texts=["chunks=8|16"],
            zip_texts=["topology=Ring(4)|Switch(4)",
                       "bandwidths=100|600"],
        )
        assert len(spec) == 4
        assert spec.expand()[0] == {
            "workload": "allreduce", "topology": "Ring(4)",
            "bandwidths": "100", "chunks": "8"}

    def test_from_cli_rejects_duplicate_axis(self):
        with pytest.raises(SweepSpecError, match="duplicate"):
            SweepSpec.from_cli(base={}, grid_texts=["a=1|2", "a=3|4"])

"""Unit tests for the content-addressed run cache."""

import json
import shutil
from pathlib import Path

from repro.campaign import (
    CACHE_SCHEMA_VERSION,
    RunCache,
    code_fingerprint,
    fingerprint_sources,
)

POINT = {"topology": "Ring(4)", "bandwidths": "100", "payload_mib": 1.0}
RESULT = {"total_time_ns": 123.0, "events_processed": 7}


class TestHitMiss:
    def test_roundtrip_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get(POINT) is None
        cache.put(POINT, RESULT)
        assert cache.get(POINT) == RESULT
        assert cache.counters() == {"hits": 1, "misses": 1, "corrupted": 0}

    def test_key_is_stable_and_key_order_independent(self, tmp_path):
        cache = RunCache(tmp_path)
        reordered = dict(reversed(list(POINT.items())))
        assert cache.key(POINT) == cache.key(reordered)

    def test_any_config_field_change_is_a_different_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        changed = dict(POINT, payload_mib=2.0)
        assert cache.key(changed) != cache.key(POINT)
        assert cache.get(changed) is None
        assert cache.get(POINT) == RESULT

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache.put(POINT, RESULT)
        assert (tmp_path / key[:2] / (key + ".json")).exists()


class TestInvalidation:
    def test_code_fingerprint_change_invalidates(self, tmp_path):
        old = RunCache(tmp_path, fingerprint="aaaa")
        old.put(POINT, RESULT)
        new = RunCache(tmp_path, fingerprint="bbbb")
        assert new.get(POINT) is None
        # the stale entry is untouched; the same fingerprint still hits
        assert RunCache(tmp_path, fingerprint="aaaa").get(POINT) == RESULT

    def test_default_fingerprint_is_the_package_hash(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.fingerprint == code_fingerprint()
        assert len(cache.fingerprint) == 64

    def test_resimulated_point_overwrites_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        cache.put(POINT, {"total_time_ns": 456.0})
        assert cache.get(POINT) == {"total_time_ns": 456.0}


class TestSourceFingerprint:
    """Every result-shaping subpackage must participate in the key.

    Regression guard: the fingerprint once risked covering only the flat
    core — a cached result would then survive edits to
    :mod:`repro.frontend`'s planner/costing code and serve stale
    payloads.
    """

    def _package_root(self) -> Path:
        import repro

        return Path(repro.__file__).resolve().parent

    def test_fingerprint_sources_cover_every_subpackage(self):
        root = self._package_root()
        rels = {p.relative_to(root).as_posix()
                for p in fingerprint_sources()}
        assert "__init__.py" in rels
        for subpackage in ("frontend", "campaign", "validate"):
            assert any(r.startswith(subpackage + "/") for r in rels), (
                f"{subpackage}/ missing from the code fingerprint")
        assert "frontend/planner.py" in rels

    def test_touching_a_frontend_file_changes_the_fingerprint(
            self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(self._package_root(), copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        before = code_fingerprint(copy)
        planner = copy / "frontend" / "planner.py"
        planner.write_text(planner.read_text() + "\n# perturbed\n")
        after = code_fingerprint(copy)
        assert before != after

    def test_frontend_edit_invalidates_cache_entries(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(self._package_root(), copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        stale = RunCache(tmp_path / "cache",
                         fingerprint=code_fingerprint(copy))
        stale.put(POINT, RESULT)
        planner = copy / "frontend" / "planner.py"
        planner.write_text(planner.read_text() + "\n# perturbed\n")
        fresh = RunCache(tmp_path / "cache",
                         fingerprint=code_fingerprint(copy))
        assert fresh.key(POINT) != stale.key(POINT)
        assert fresh.get(POINT) is None  # the stale entry cannot hit


class TestCorruption:
    def _entry_path(self, cache):
        return cache._path(cache.key(POINT))

    def test_unparsable_entry_is_a_counted_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        self._entry_path(cache).write_text("{not json")
        assert cache.get(POINT) is None
        assert cache.counters() == {"hits": 0, "misses": 1, "corrupted": 1}

    def test_wrong_schema_version_is_corrupted(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        path = self._entry_path(cache)
        entry = json.loads(path.read_text())
        entry["schema_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(POINT) is None
        assert cache.corrupted == 1

    def test_key_mismatch_is_corrupted(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        path = self._entry_path(cache)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert cache.get(POINT) is None
        assert cache.corrupted == 1

    def test_corrupted_entry_recovers_after_rewrite(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        self._entry_path(cache).write_text("")
        assert cache.get(POINT) is None
        cache.put(POINT, RESULT)
        assert cache.get(POINT) == RESULT
        assert cache.counters() == {"hits": 1, "misses": 1, "corrupted": 1}

"""Unit tests for the content-addressed run cache."""

import json

from repro.campaign import CACHE_SCHEMA_VERSION, RunCache, code_fingerprint

POINT = {"topology": "Ring(4)", "bandwidths": "100", "payload_mib": 1.0}
RESULT = {"total_time_ns": 123.0, "events_processed": 7}


class TestHitMiss:
    def test_roundtrip_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.get(POINT) is None
        cache.put(POINT, RESULT)
        assert cache.get(POINT) == RESULT
        assert cache.counters() == {"hits": 1, "misses": 1, "corrupted": 0}

    def test_key_is_stable_and_key_order_independent(self, tmp_path):
        cache = RunCache(tmp_path)
        reordered = dict(reversed(list(POINT.items())))
        assert cache.key(POINT) == cache.key(reordered)

    def test_any_config_field_change_is_a_different_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        changed = dict(POINT, payload_mib=2.0)
        assert cache.key(changed) != cache.key(POINT)
        assert cache.get(changed) is None
        assert cache.get(POINT) == RESULT

    def test_entries_shard_by_key_prefix(self, tmp_path):
        cache = RunCache(tmp_path)
        key = cache.put(POINT, RESULT)
        assert (tmp_path / key[:2] / (key + ".json")).exists()


class TestInvalidation:
    def test_code_fingerprint_change_invalidates(self, tmp_path):
        old = RunCache(tmp_path, fingerprint="aaaa")
        old.put(POINT, RESULT)
        new = RunCache(tmp_path, fingerprint="bbbb")
        assert new.get(POINT) is None
        # the stale entry is untouched; the same fingerprint still hits
        assert RunCache(tmp_path, fingerprint="aaaa").get(POINT) == RESULT

    def test_default_fingerprint_is_the_package_hash(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.fingerprint == code_fingerprint()
        assert len(cache.fingerprint) == 64

    def test_resimulated_point_overwrites_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        cache.put(POINT, {"total_time_ns": 456.0})
        assert cache.get(POINT) == {"total_time_ns": 456.0}


class TestCorruption:
    def _entry_path(self, cache):
        return cache._path(cache.key(POINT))

    def test_unparsable_entry_is_a_counted_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        self._entry_path(cache).write_text("{not json")
        assert cache.get(POINT) is None
        assert cache.counters() == {"hits": 0, "misses": 1, "corrupted": 1}

    def test_wrong_schema_version_is_corrupted(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        path = self._entry_path(cache)
        entry = json.loads(path.read_text())
        entry["schema_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.get(POINT) is None
        assert cache.corrupted == 1

    def test_key_mismatch_is_corrupted(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        path = self._entry_path(cache)
        entry = json.loads(path.read_text())
        entry["key"] = "0" * 64
        path.write_text(json.dumps(entry))
        assert cache.get(POINT) is None
        assert cache.corrupted == 1

    def test_corrupted_entry_recovers_after_rewrite(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put(POINT, RESULT)
        self._entry_path(cache).write_text("")
        assert cache.get(POINT) is None
        cache.put(POINT, RESULT)
        assert cache.get(POINT) == RESULT
        assert cache.counters() == {"hits": 1, "misses": 1, "corrupted": 1}

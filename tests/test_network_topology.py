"""Unit tests for the multi-dimensional topology representation."""

import pytest

from repro.network import (
    BuildingBlock,
    CommGroup,
    CoordinateError,
    DimSpec,
    MultiDimTopology,
    TopologyError,
    parse_topology,
)


def _conv4d():
    return parse_topology(
        "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50]
    )


class TestParser:
    def test_paper_notation(self):
        topo = _conv4d()
        assert topo.shape == (2, 8, 8, 4)
        assert topo.num_npus == 512
        assert [d.block for d in topo.dims] == [
            BuildingBlock.RING, BuildingBlock.FULLY_CONNECTED,
            BuildingBlock.RING, BuildingBlock.SWITCH,
        ]
        assert [d.bandwidth_gbps for d in topo.dims] == [250, 200, 100, 50]

    def test_notation_roundtrip(self):
        topo = _conv4d()
        again = parse_topology(topo.notation(), [d.bandwidth_gbps for d in topo.dims])
        assert again.shape == topo.shape

    def test_aliases_in_notation(self):
        topo = parse_topology("r(4)_sw(2)", [10, 10])
        assert topo.dims[0].block is BuildingBlock.RING
        assert topo.dims[1].block is BuildingBlock.SWITCH

    def test_bandwidth_count_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            parse_topology("Ring(4)_Ring(4)", [10])

    def test_latency_count_mismatch_rejected(self):
        with pytest.raises(TopologyError):
            parse_topology("Ring(4)", [10], latencies_ns=[1, 2])

    def test_malformed_dim_rejected(self):
        with pytest.raises(TopologyError):
            parse_topology("Ring[4]", [10])
        with pytest.raises(TopologyError):
            parse_topology("", [])

    def test_custom_latencies(self):
        topo = parse_topology("Ring(4)_Switch(2)", [10, 10],
                              latencies_ns=[100, 700])
        assert topo.dims[0].latency_ns == 100
        assert topo.dims[1].latency_ns == 700


class TestDimSpec:
    def test_invalid_values_rejected(self):
        with pytest.raises(TopologyError):
            DimSpec(BuildingBlock.RING, 0, 10)
        with pytest.raises(TopologyError):
            DimSpec(BuildingBlock.RING, 4, 0)
        with pytest.raises(TopologyError):
            DimSpec(BuildingBlock.RING, 4, 10, latency_ns=-1)


class TestCoordinates:
    def test_dim0_varies_fastest(self):
        topo = _conv4d()
        assert topo.coords(0) == (0, 0, 0, 0)
        assert topo.coords(1) == (1, 0, 0, 0)
        assert topo.coords(2) == (0, 1, 0, 0)
        assert topo.coords(511) == (1, 7, 7, 3)

    def test_roundtrip_all_npus(self):
        topo = parse_topology("Ring(3)_FC(4)_Switch(5)", [1, 1, 1])
        for npu in range(topo.num_npus):
            assert topo.npu_id(topo.coords(npu)) == npu

    def test_out_of_range_rejected(self):
        topo = _conv4d()
        with pytest.raises(TopologyError):
            topo.coords(512)
        with pytest.raises(TopologyError):
            topo.npu_id((2, 0, 0, 0))
        with pytest.raises(TopologyError):
            topo.npu_id((0, 0, 0))


class TestCoordinateError:
    def test_structured_fields_name_the_offending_dim(self):
        topo = _conv4d()  # shape (2, 8, 8, 4)
        with pytest.raises(CoordinateError) as exc_info:
            topo.npu_id((0, 8, 0, 0))
        err = exc_info.value
        assert err.dim_index == 1
        assert err.coordinate == 8
        assert err.size == 8

    def test_negative_coordinate_rejected(self):
        topo = _conv4d()
        with pytest.raises(CoordinateError) as exc_info:
            topo.npu_id((0, 0, -1, 0))
        err = exc_info.value
        assert err.dim_index == 2
        assert err.coordinate == -1

    def test_message_spells_out_the_valid_range(self):
        topo = _conv4d()
        with pytest.raises(
                CoordinateError,
                match=r"coordinate 4 out of range for dimension 3 "
                      r"\(size 4; valid range 0\.\.3\)"):
            topo.npu_id((0, 0, 0, 4))

    def test_never_wraps_modulo(self):
        # A wrapped coordinate would alias a valid NPU id; it must raise.
        topo = parse_topology("Ring(4)", [10])
        with pytest.raises(CoordinateError):
            topo.npu_id((4,))
        with pytest.raises(CoordinateError):
            topo.npu_id((-4,))

    def test_is_a_topology_error(self):
        # Existing callers catching TopologyError keep working.
        assert issubclass(CoordinateError, TopologyError)

    def test_wrong_arity_stays_plain_topology_error(self):
        topo = _conv4d()
        with pytest.raises(TopologyError) as exc_info:
            topo.npu_id((0, 0))
        assert not isinstance(exc_info.value, CoordinateError)


class TestCommGroup:
    def test_matches_group_across_dims(self):
        topo = _conv4d()
        for npu in (0, 5, 311, 511):
            for dims in [(0,), (1,), (3,), (0, 1), (1, 3), (0, 2, 3)]:
                group = topo.comm_group(npu, dims)
                assert group.members() == topo.group_across_dims(npu, dims)

    def test_closed_form_rep_and_size(self):
        topo = _conv4d()
        for npu in (0, 17, 442):
            for dims in [(0,), (2,), (1, 2), (0, 1, 2, 3)]:
                group = topo.comm_group(npu, dims)
                assert group.rep == min(group.members())
                assert group.size == len(group.members())

    def test_membership_without_materialization(self):
        topo = _conv4d()
        group = topo.comm_group(7, (1, 2))
        expected = set(topo.group_across_dims(7, (1, 2)))
        for npu in range(topo.num_npus):
            assert (npu in group) == (npu in expected)
        # Membership tests above must not have materialized the list.
        assert group._members == ()

    def test_intersection(self):
        topo = _conv4d()
        group = topo.comm_group(0, (0,))
        assert group.intersection([0, 1, 2, 3]) == {0, 1}
        assert group.intersection(iter(range(512))) == {0, 1}

    def test_duplicate_and_unsorted_dims_normalized(self):
        topo = _conv4d()
        assert topo.comm_group(9, (2, 0, 2)) == topo.comm_group(9, (0, 2))

    def test_equal_groups_hash_alike(self):
        topo = _conv4d()
        a = topo.comm_group(0, (1,))
        b = topo.comm_group(2, (1,))  # same communicator, other member
        assert a == b
        assert hash(a) == hash(b)
        assert topo.comm_group(0, (0,)) != topo.comm_group(0, (1,))

    def test_iteration_yields_sorted_members(self):
        topo = _conv4d()
        group = topo.comm_group(100, (0, 3))
        assert list(group) == sorted(group.members())

    def test_rejects_bad_inputs(self):
        topo = _conv4d()
        with pytest.raises(TopologyError):
            topo.comm_group(0, (4,))
        with pytest.raises(TopologyError):
            topo.group_rep(512, (0,))
        with pytest.raises(TopologyError):
            topo.group_size((7,))

    def test_group_size_closed_form(self):
        topo = _conv4d()  # shape (2, 8, 8, 4)
        assert topo.group_size(()) == 1
        assert topo.group_size((0,)) == 2
        assert topo.group_size((1, 2)) == 64
        assert topo.group_size((0, 1, 2, 3)) == 512

    def test_million_npu_group_is_cheap(self):
        # The whole point: symbolic groups never touch O(npus) state.
        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(8192)",
                              [250, 200, 100, 50])
        assert topo.num_npus == 1_048_576
        group = topo.comm_group(1_000_000, (3,))
        assert group.size == 8192
        assert 1_000_000 in group
        assert group.rep == topo.group_rep(1_000_000, (3,))
        assert isinstance(group, CommGroup)


class TestGroups:
    def test_dim_group_members(self):
        topo = _conv4d()
        group = topo.dim_group(0, 0)
        assert group == (0, 1)
        group1 = topo.dim_group(0, 1)
        assert group1 == tuple(2 * i for i in range(8))

    def test_group_across_dims_is_product(self):
        topo = _conv4d()
        group = topo.group_across_dims(0, (0, 1))
        assert len(group) == 16
        assert group == tuple(range(16))

    def test_group_across_outer_dims(self):
        topo = _conv4d()
        group = topo.group_across_dims(0, (2, 3))
        assert len(group) == 32
        assert 0 in group

    def test_group_contains_origin(self):
        topo = _conv4d()
        for dims in [(0,), (1, 2), (0, 3)]:
            assert 5 in topo.group_across_dims(5, dims)

    def test_bad_dim_rejected(self):
        topo = _conv4d()
        with pytest.raises(TopologyError):
            topo.dim_group(0, 4)


class TestHopsAndRouting:
    def test_hops_sum_over_dims(self):
        topo = _conv4d()
        # coords (1,0,0,0): 1 ring hop; (0,1,0,0): 1 fc hop
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 2) == 1
        # differ in switch dim: 2 hops
        assert topo.hops(0, 128) == 2

    def test_shared_dim(self):
        topo = _conv4d()
        assert topo.shared_dim(0, 1) == 0
        assert topo.shared_dim(0, 2) == 1
        with pytest.raises(TopologyError):
            topo.shared_dim(0, 3)  # differs in dims 0 and 1
        with pytest.raises(TopologyError):
            topo.shared_dim(0, 0)


class TestAggregates:
    def test_total_bandwidth(self):
        assert _conv4d().total_bandwidth_gbps() == 600

    def test_singleton_dims_excluded_from_bandwidth(self):
        topo = parse_topology("Ring(1)_Switch(4)", [999, 50])
        assert topo.total_bandwidth_gbps() == 50

    def test_total_links(self):
        topo = parse_topology("Ring(4)_Switch(2)", [10, 10])
        # 2 ring groups x 4 NPUs x 2 links + 4 switch groups x 2 x 1 uplink
        assert topo.total_links() == 16 + 8

    def test_empty_topology_rejected(self):
        with pytest.raises(TopologyError):
            MultiDimTopology([])

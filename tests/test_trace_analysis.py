"""Unit tests for static trace analysis."""

import pytest

from repro.network import parse_topology
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType, TensorLocation
from repro.trace.analysis import (
    communication_matrix,
    lower_bound_time_ns,
    summarize,
)
from repro.workload import ParallelismSpec, generate_megatron_hybrid, gpt3_175b


def _mixed_trace():
    nodes = [
        ETNode(0, NodeType.COMPUTE, flops=1000),
        ETNode(1, NodeType.COMPUTE, flops=2000, deps=(0,)),
        ETNode(2, NodeType.COMPUTE, flops=500, deps=(0,)),
        ETNode(3, NodeType.COMM_COLLECTIVE, tensor_bytes=4096, deps=(1, 2),
               collective=CollectiveType.ALL_REDUCE),
        ETNode(4, NodeType.COMM_SEND, tensor_bytes=128, deps=(3,), peer=7),
        ETNode(5, NodeType.MEMORY_LOAD, tensor_bytes=256, deps=(3,),
               location=TensorLocation.REMOTE),
        ETNode(6, NodeType.MEMORY_STORE, tensor_bytes=64, deps=(3,)),
    ]
    return ExecutionTrace(0, nodes)


class TestSummarize:
    def test_counts_and_totals(self):
        s = summarize(_mixed_trace())
        assert s.num_nodes == 7
        assert s.total_flops == 3500
        assert s.comm_bytes_by_collective == {"all_reduce": 4096}
        assert s.p2p_bytes == 128
        assert s.memory_bytes_remote == 256
        assert s.memory_bytes_local == 64
        assert s.total_comm_bytes == 4096 + 128

    def test_critical_path_flops_takes_longest_branch(self):
        s = summarize(_mixed_trace())
        # 1000 -> 2000 branch beats 1000 -> 500.
        assert s.critical_path_flops == 3000
        # Longest chain: 0 -> 1 -> 3 -> {4,5,6}.
        assert s.critical_path_nodes == 4

    def test_max_parallelism(self):
        s = summarize(_mixed_trace())
        # Nodes 1,2 at depth 2; nodes 4,5,6 at depth 4.
        assert s.max_parallelism == 3

    def test_intensity(self):
        s = summarize(_mixed_trace())
        assert s.flops_per_comm_byte == pytest.approx(3500 / 4224)

    def test_empty_trace(self):
        s = summarize(ExecutionTrace(0))
        assert s.num_nodes == 0
        assert s.flops_per_comm_byte == float("inf")

    def test_format_is_readable(self):
        text = summarize(_mixed_trace()).format()
        assert "trace for NPU 0" in text
        assert "all_reduce" in text
        assert "p2p" in text

    def test_on_generated_workload(self):
        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)",
                              [250, 200, 100, 50])
        traces = generate_megatron_hybrid(
            gpt3_175b(), topo, ParallelismSpec(mp=16, dp=32))
        s = summarize(traces[0])
        assert s.total_flops > 1e12
        assert "all_reduce" in s.comm_bytes_by_collective


class TestCommunicationMatrix:
    def test_pairwise_bytes(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_SEND, tensor_bytes=100, peer=1, tag=1),
            ETNode(1, NodeType.COMM_SEND, tensor_bytes=50, peer=1, tag=2),
        ])
        t1 = ExecutionTrace(1, [
            ETNode(0, NodeType.COMM_RECV, tensor_bytes=100, peer=0, tag=1),
            ETNode(1, NodeType.COMM_RECV, tensor_bytes=50, peer=0, tag=2),
            ETNode(2, NodeType.COMM_SEND, tensor_bytes=25, peer=0, tag=3),
        ])
        matrix = communication_matrix({0: t0, 1: t1})
        assert matrix == {(0, 1): 150, (1, 0): 25}


class TestLowerBound:
    def test_bound_never_beaten_by_simulation(self):
        import repro

        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)",
                              [250, 200, 100, 50])
        traces = generate_megatron_hybrid(
            gpt3_175b(), topo, ParallelismSpec(mp=16, dp=32))
        bound = lower_bound_time_ns(
            traces[0], peak_tflops=234.0,
            injection_bw_gbps=topo.total_bandwidth_gbps())
        result = repro.simulate(
            traces, repro.SystemConfig(topology=topo, scheduler="themis"))
        assert result.total_time_ns >= bound

    def test_validation(self):
        with pytest.raises(ValueError):
            lower_bound_time_ns(_mixed_trace(), peak_tflops=0,
                                injection_bw_gbps=100)

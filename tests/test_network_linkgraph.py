"""LazyLinkGraph / link_spec equivalence with the eager reference.

:func:`repro.network.linkgraph.build_links` enumerates every directed
link of a topology up front; :class:`LazyLinkGraph` answers the same
questions in closed form and materializes links on first touch.  These
tests pin the two representations to each other on every building-block
kind and their compositions.
"""

import pytest

from repro.network.linkgraph import (
    LazyLinkGraph,
    build_links,
    dimension_order_route,
    link_spec,
    total_link_count,
)
from repro.network.topology import parse_topology

TOPOLOGIES = [
    ("Ring(2)", [100.0]),
    ("Ring(4)", [150.0]),
    ("FC(4)", [200.0]),
    ("Switch(4)", [50.0]),
    ("Ring(4)_Switch(2)", [100.0, 50.0]),
    ("Ring(2)_FC(3)_Switch(4)", [250.0, 200.0, 50.0]),
]


def _topo(notation, bws):
    return parse_topology(notation, list(bws),
                          latencies_ns=[100.0 * (i + 1)
                                        for i in range(len(bws))])


class TestLinkSpec:
    @pytest.mark.parametrize("notation,bws", TOPOLOGIES)
    def test_matches_eager_enumeration(self, notation, bws):
        topo = _topo(notation, bws)
        eager = build_links(topo, lambda bw, lat: (bw, lat))
        for key, spec in eager.items():
            assert link_spec(topo, key[0], key[1]) == spec

    @pytest.mark.parametrize("notation,bws", TOPOLOGIES)
    def test_rejects_every_non_link(self, notation, bws):
        topo = _topo(notation, bws)
        eager = build_links(topo, lambda bw, lat: (bw, lat))
        nodes = set(range(topo.num_npus))
        nodes.update(k for key in eager for k in key
                     if not isinstance(k, int))
        for a in nodes:
            for b in nodes:
                if (a, b) not in eager:
                    assert link_spec(topo, a, b) is None

    def test_rejects_garbage_keys(self):
        topo = _topo("Ring(4)_Switch(2)", [100.0, 50.0])
        assert link_spec(topo, 0, 0) is None
        assert link_spec(topo, -1, 0) is None
        assert link_spec(topo, 0, topo.num_npus) is None
        assert link_spec(topo, "a", "b") is None
        # Wrong fabric node for the NPU's group.
        assert link_spec(topo, 0, ("sw", 1, (1, 0))) is None
        # Ring dim never routes through a fabric node.
        assert link_spec(topo, 0, ("sw", 0, (0, 0))) is None


class TestTotalLinkCount:
    @pytest.mark.parametrize("notation,bws", TOPOLOGIES)
    def test_matches_eager_enumeration(self, notation, bws):
        topo = _topo(notation, bws)
        assert total_link_count(topo) == len(
            build_links(topo, lambda bw, lat: object()))

    def test_closed_form_at_million_npus(self):
        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(8192)",
                              [250.0, 200.0, 100.0, 50.0])
        n = topo.num_npus
        assert n == 1_048_576
        # ring(2): 1/npu, fc(8): 7/npu, ring(8): 2/npu, switch: 2/npu.
        assert total_link_count(topo) == n * (1 + 7 + 2 + 2)


class TestLazyLinkGraph:
    @pytest.mark.parametrize("notation,bws", TOPOLOGIES)
    def test_get_agrees_with_eager(self, notation, bws):
        topo = _topo(notation, bws)
        eager = build_links(topo, lambda bw, lat: (bw, lat))
        lazy = LazyLinkGraph(topo, lambda bw, lat: (bw, lat))
        for key, spec in eager.items():
            assert lazy.get(key) == spec
        assert len(lazy) == len(eager)
        assert lazy.total_count() == len(eager)

    def test_construction_materializes_nothing(self):
        topo = _topo("Ring(2)_FC(3)_Switch(4)", [250.0, 200.0, 50.0])
        lazy = LazyLinkGraph(topo, lambda bw, lat: (bw, lat))
        assert len(lazy) == 0
        assert lazy.total_count() == total_link_count(topo)

    def test_materializes_only_touched_links(self):
        topo = _topo("Ring(4)_Switch(2)", [100.0, 50.0])
        lazy = LazyLinkGraph(topo, lambda bw, lat: (bw, lat))
        path = dimension_order_route(topo, 0, 1)
        for a, b in zip(path, path[1:]):
            assert lazy.get((a, b)) is not None
        assert len(lazy) == len(path) - 1
        assert set(lazy) == set(zip(path, path[1:]))

    def test_get_is_idempotent(self):
        topo = _topo("Ring(4)", [100.0])
        lazy = LazyLinkGraph(topo, lambda bw, lat: object())
        first = lazy.get((0, 1))
        assert lazy.get((0, 1)) is first
        assert len(lazy) == 1

    def test_non_link_keys_create_nothing(self):
        topo = _topo("Ring(4)", [100.0])
        lazy = LazyLinkGraph(topo, lambda bw, lat: object())
        assert lazy.get((0, 2)) is None  # two hops apart on the ring
        assert len(lazy) == 0

    def test_on_create_hook_sees_key_and_link(self):
        topo = _topo("Ring(4)", [100.0])
        seen = []
        lazy = LazyLinkGraph(topo, lambda bw, lat: (bw, lat),
                             on_create=lambda key, link: seen.append(
                                 (key, link)))
        link = lazy.get((1, 2))
        assert seen == [((1, 2), link)]
        lazy.get((1, 2))  # cached: hook must not fire again
        assert len(seen) == 1

    @pytest.mark.parametrize("notation,bws", TOPOLOGIES)
    def test_every_route_resolves(self, notation, bws):
        topo = _topo(notation, bws)
        lazy = LazyLinkGraph(topo, lambda bw, lat: (bw, lat))
        for src in range(topo.num_npus):
            for dst in range(topo.num_npus):
                if src == dst:
                    continue
                path = dimension_order_route(topo, src, dst)
                for a, b in zip(path, path[1:]):
                    assert lazy.get((a, b)) is not None, (src, dst, a, b)

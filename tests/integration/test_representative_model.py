"""Validation of the representative-NPU modeling assumption.

The simulator times collectives from a canonical representative's ports
and lets symmetric group members skip simulation entirely (paper
Sec. IV-C scaling argument).  These tests check the assumption against
ground truth: simulating *every* member with its own trace must produce
the same collective times and totals as simulating one representative.
"""

import pytest

import repro
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.memory import LocalMemory
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType
from repro.workload import generate_single_collective
from repro.workload.generators import TraceBuilder

MiB = 1 << 20


def _config(topology, scheduler="baseline"):
    return repro.SystemConfig(
        topology=topology,
        scheduler=scheduler,
        collective_chunks=8,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
    )


def _clone_trace_for(npu_id, trace):
    return ExecutionTrace(npu_id, [
        ETNode(
            node_id=n.node_id, node_type=n.node_type, name=n.name,
            deps=n.deps, tensor_bytes=n.tensor_bytes, flops=n.flops,
            collective=n.collective, comm_dims=n.comm_dims, peer=n.peer,
            tag=n.tag, location=n.location, involved_npus=n.involved_npus,
            attrs=dict(n.attrs),
        )
        for n in trace
    ])


class TestRepresentativeEqualsFullMembership:
    @pytest.mark.parametrize("scheduler", ["baseline", "themis"])
    def test_single_collective(self, scheduler):
        topo = parse_topology("Ring(2)_FC(4)", [100, 50], latencies_ns=[0, 0])
        rep_traces = generate_single_collective(
            topo, CollectiveType.ALL_REDUCE, 64 * MiB)
        full_traces = {
            npu: _clone_trace_for(npu, rep_traces[0])
            for npu in range(topo.num_npus)
        }
        rep = repro.simulate(rep_traces, _config(topo, scheduler))
        full = repro.simulate(full_traces, _config(topo, scheduler))
        assert full.total_time_ns == pytest.approx(rep.total_time_ns)
        assert len(full.collectives) == 1  # one shared op, all members
        assert full.collectives[0].group_size == rep.collectives[0].group_size

    def test_compute_comm_workload(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50],
                              latencies_ns=[0, 0])

        def build(npu):
            b = TraceBuilder(npu)
            c1 = b.compute("fwd", 1_000_000)
            ar1 = b.collective("ar1", CollectiveType.ALL_REDUCE, 8 * MiB,
                               (0, 1), deps=(c1,))
            c2 = b.compute("bwd", 2_000_000, deps=(ar1,))
            b.collective("ar2", CollectiveType.ALL_REDUCE, 16 * MiB,
                         (0, 1), deps=(c2,))
            return b.build()

        rep = repro.simulate({0: build(0)}, _config(topo))
        full = repro.simulate(
            {npu: build(npu) for npu in range(topo.num_npus)}, _config(topo))
        assert full.total_time_ns == pytest.approx(rep.total_time_ns)
        assert len(full.collectives) == 2

    def test_subgroup_collectives_per_group(self):
        """Different dim-0 groups each get their own collective instance,
        and all instances finish at the representative-model time."""
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50],
                              latencies_ns=[0, 0])

        def build(npu):
            b = TraceBuilder(npu)
            b.collective("ar", CollectiveType.ALL_REDUCE, 8 * MiB, (0,))
            return b.build()

        full = repro.simulate(
            {npu: build(npu) for npu in range(topo.num_npus)}, _config(topo))
        # 2 dim-0 groups of 4 NPUs -> 2 collective instances.
        assert len(full.collectives) == 2
        durations = [c.duration_ns for c in full.collectives]
        assert durations[0] == pytest.approx(durations[1])
        rep = repro.simulate({0: build(0)}, _config(topo))
        assert durations[0] == pytest.approx(rep.collectives[0].duration_ns)

    def test_rendezvous_start_time_is_last_arrival(self):
        """With full membership, the collective starts only when the
        slowest member arrives — a behaviour the representative model
        cannot capture alone (it is the documented approximation)."""
        topo = parse_topology("Ring(2)", [100], latencies_ns=[0])

        def build(npu, flops):
            b = TraceBuilder(npu)
            c = b.compute("warmup", flops)
            b.collective("ar", CollectiveType.ALL_REDUCE, 1 * MiB, (0,),
                         deps=(c,))
            return b.build()

        full = repro.simulate(
            {0: build(0, 1_000), 1: build(1, 50_000_000)}, _config(topo))
        record = full.collectives[0]
        # Start gated by NPU 1's 500 us of compute.
        assert record.start_ns == pytest.approx(50_000_000 / 100e3, rel=0.01)

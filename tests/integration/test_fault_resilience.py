"""Integration tests for fault injection and resilience accounting.

Covers the two hard requirements of the subsystem:

1. an **empty** fault schedule is bit-identical to no schedule at all
   (the hooks must be zero-cost no-ops), and
2. a single 1.5x straggler on one rank of a Ring(16) All-Reduce stretches
   the collective by the expected amplification factor — a synchronous
   ring step paces at its slowest member, so the whole collective runs
   ~1.5x slower while the straggler is active.
"""

import dataclasses

import pytest

import repro
from repro.faults import CheckpointConfig, FaultSchedule

MiB = 1 << 20

RING16 = repro.parse_topology("Ring(16)", [100])


def run_allreduce(topology, faults=None, scheduler="baseline",
                  payload=256 * MiB, checkpoint=None):
    traces = repro.generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, payload)
    config = repro.SystemConfig(topology=topology, scheduler=scheduler,
                                faults=faults, checkpoint=checkpoint)
    return repro.simulate(traces, config)


class TestStragglerAmplification:
    """Acceptance: 1.5x straggler on one rank stretches Ring(16) AR ~1.5x."""

    @pytest.mark.parametrize("scheduler", ["baseline", "themis"])
    def test_single_straggler_paces_the_ring(self, scheduler):
        baseline = run_allreduce(RING16, scheduler=scheduler)
        faulted = run_allreduce(
            RING16,
            faults=FaultSchedule.parse("straggler@npu3:1.5x@t=0"),
            scheduler=scheduler)
        ratio = faulted.total_time_ns / baseline.total_time_ns
        # The serialization term dominates at 256 MiB (per-hop latency is
        # negligible), so amplification lands essentially on the straggler
        # factor despite only 1 of 16 ranks being slow.
        # (Themis lands a hair above 1.5: the fault fallback to chunked
        # execution forgoes the fluid limit's slightly tighter pipelining.)
        assert ratio == pytest.approx(1.5, rel=0.05)
        assert ratio > 1.0

    def test_amplification_scales_with_severity(self):
        baseline = run_allreduce(RING16).total_time_ns
        totals = [
            run_allreduce(
                RING16,
                faults=FaultSchedule.parse(f"straggler@npu3:{f}x@t=0"),
            ).total_time_ns
            for f in (1.25, 1.5, 2.0)
        ]
        assert totals[0] < totals[1] < totals[2]
        assert totals[2] / baseline == pytest.approx(2.0, rel=0.05)

    def test_windowed_straggler_costs_less_than_permanent(self):
        permanent = run_allreduce(
            RING16, faults=FaultSchedule.parse("straggler@npu3:1.5x@t=0"))
        windowed = run_allreduce(
            RING16,
            faults=FaultSchedule.parse("straggler@npu3:1.5x@t=0@for=1ms"))
        baseline = run_allreduce(RING16)
        assert (baseline.total_time_ns
                < windowed.total_time_ns
                < permanent.total_time_ns)

    def test_resilience_report_attached_and_attributed(self):
        result = run_allreduce(
            RING16, faults=FaultSchedule.parse("straggler@npu3:1.5x@t=0"))
        report = result.resilience
        assert report is not None
        assert len(report.records) == 1
        record = report.records[0]
        assert record.fired
        assert record.extra_ns > 0
        assert report.injected_ns == pytest.approx(record.extra_ns)


class TestEmptyScheduleBitIdentical:
    """Hard requirement: empty schedule => bit-identical to faults=None."""

    def test_totals_and_records_identical(self):
        clean = run_allreduce(RING16, faults=None)
        empty = run_allreduce(RING16, faults=FaultSchedule.empty())
        assert empty.total_time_ns == clean.total_time_ns  # exact, not approx
        assert empty.resilience is None  # no injector was ever built
        assert [dataclasses.astuple(c) for c in empty.collectives] == \
            [dataclasses.astuple(c) for c in clean.collectives]

    def test_breakdowns_identical(self):
        topo = repro.parse_topology("Ring(4)_Switch(4)", [100, 50])
        traces = repro.generate_megatron_hybrid(
            repro.gpt3_175b(), topo, repro.ParallelismSpec(mp=4, dp=4))
        clean = repro.simulate(
            traces, repro.SystemConfig(topology=topo, faults=None))
        traces = repro.generate_megatron_hybrid(
            repro.gpt3_175b(), topo, repro.ParallelismSpec(mp=4, dp=4))
        empty = repro.simulate(
            traces,
            repro.SystemConfig(topology=topo, faults=FaultSchedule.empty()))
        assert empty.total_time_ns == clean.total_time_ns
        assert empty.breakdown == clean.breakdown


class TestDeterminism:
    def test_same_schedule_same_result(self):
        schedule = FaultSchedule.generate(
            seed=42, num_npus=16, num_dims=1, horizon_ns=5e6,
            straggler_mtbf_ns=1e6, degrade_mtbf_ns=2e6)
        r1 = run_allreduce(RING16, faults=schedule)
        r2 = run_allreduce(RING16, faults=schedule)
        assert r1.total_time_ns == r2.total_time_ns
        assert r1.resilience == r2.resilience

    def test_different_seed_different_impact(self):
        def total(seed):
            schedule = FaultSchedule.generate(
                seed=seed, num_npus=16, num_dims=1, horizon_ns=5e6,
                straggler_mtbf_ns=0.5e6, straggler_factor=(1.5, 3.0))
            return run_allreduce(RING16, faults=schedule).total_time_ns

        totals = {total(s) for s in (1, 2, 3)}
        assert len(totals) > 1


class TestFailureAndCheckpoint:
    def test_permanent_failure_restart_accounting(self):
        checkpoint = CheckpointConfig(interval_ns=1e6, snapshot_bytes=1e6,
                                      write_bandwidth_gbps=100.0,
                                      restart_overhead_ns=1e6)
        result = run_allreduce(
            RING16,
            faults=FaultSchedule.parse("fail@npu5@t=2.5ms"),
            checkpoint=checkpoint)
        report = result.resilience
        assert report.num_failures == 1
        # Replay since the 2 ms checkpoint boundary: 0.5 ms, plus fixed
        # overhead (1 ms) and snapshot reload (0.01 ms).
        assert report.restart_lost_ns == pytest.approx(1e6 + 1e4 + 0.5e6)
        assert report.effective_total_ns > result.total_time_ns

    def test_tighter_checkpointing_reduces_restart_loss(self):
        def lost(interval_ns):
            result = run_allreduce(
                RING16,
                faults=FaultSchedule.parse("fail@npu5@t=4.9ms"),
                checkpoint=CheckpointConfig(
                    interval_ns=interval_ns, snapshot_bytes=1e6,
                    write_bandwidth_gbps=100.0, restart_overhead_ns=1e6))
            return result.resilience.restart_lost_ns

        assert lost(0.5e6) < lost(2.5e6)

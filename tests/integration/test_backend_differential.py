"""Cross-backend differential suite (paper Sec. IV-C fidelity spectrum).

On congestion-free collective traffic the three network backends model
the *same* physics at different granularity, so they must agree:

- **flow-level vs analytical**: a congestion-free flow runs at full link
  rate, which is exactly the closed form — agreement to float noise
  (``REL_FLOW``).
- **Garnet-lite vs analytical**: packet segmentation adds exactly one
  store-and-forward packet serialization per extra link crossed per
  step (zero on a neighbor ring, one through a switch fabric), so the
  difference is the *closed-form* ``saf`` term asserted below.  Packet
  coalescing (``train_packets``) grows that term to train granularity;
  ``REL_PACKET`` (2%) is the documented end-to-end tolerance such
  coalescing must stay within.

Any hot-path rewrite of a backend has to keep this suite green — it pins
the backends to each other, while ``tests/test_golden_numbers.py`` pins
them to the frozen seed numbers.
"""

from __future__ import annotations

import pytest

from repro.events import EventEngine
from repro.network import (
    AnalyticalNetwork,
    GarnetLiteNetwork,
    parse_topology,
)
from repro.network.flowlevel import FlowLevelNetwork
from repro.system import SendRecvCollectiveExecutor

KiB = 1 << 10

# Documented cross-backend tolerances for congestion-free traffic.
REL_FLOW = 1e-6      # fluid limit == closed form
REL_PACKET = 2e-2    # store-and-forward quantization at packet scale

TOPOLOGIES = {
    "ring4": ("Ring(4)", [150.0], [50.0]),
    "ring8": ("Ring(8)", [100.0], [100.0]),
    "switch4": ("Switch(4)", [200.0], [250.0]),
    "switch8": ("Switch(8)", [50.0], [500.0]),
}
MESSAGE_SIZES = [64 * KiB, 1 * KiB * KiB, 4 * KiB * KiB]


def _allreduce_time(backend_cls, notation, bws, lats, payload, **kwargs):
    topo = parse_topology(notation, bws, latencies_ns=lats)
    engine = EventEngine()
    net = backend_cls(engine, topo, **kwargs)
    executor = SendRecvCollectiveExecutor(engine, net)
    out = {}
    executor.run_ring_allreduce(
        list(range(topo.num_npus)), payload, on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"]


@pytest.mark.parametrize("size", MESSAGE_SIZES, ids=lambda s: f"{s // KiB}KiB")
@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
def test_flow_matches_analytical(topo_name, size):
    notation, bws, lats = TOPOLOGIES[topo_name]
    analytical = _allreduce_time(AnalyticalNetwork, notation, bws, lats, size)
    flow = _allreduce_time(FlowLevelNetwork, notation, bws, lats, size)
    assert flow == pytest.approx(analytical, rel=REL_FLOW)


def _store_and_forward_ns(notation, bw_gbps, k, packet_bytes):
    """Extra time the packet backend pays per ring-allreduce run: one
    packet serialization per extra link per step (switch = 2 links)."""
    extra_links = 1 if notation.startswith("Switch") else 0
    steps = 2 * (k - 1)
    return steps * extra_links * packet_bytes / bw_gbps


@pytest.mark.parametrize("size", MESSAGE_SIZES, ids=lambda s: f"{s // KiB}KiB")
@pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
def test_garnet_matches_analytical(topo_name, size):
    notation, bws, lats = TOPOLOGIES[topo_name]
    analytical = _allreduce_time(AnalyticalNetwork, notation, bws, lats, size)
    garnet = _allreduce_time(
        GarnetLiteNetwork, notation, bws, lats, size, packet_bytes=4096)
    k = int(notation.split("(")[1].rstrip(")"))
    saf = _store_and_forward_ns(notation, bws[0], k, 4096)
    # Exact closed-form agreement at default (per-packet) granularity...
    assert garnet == pytest.approx(analytical + saf, rel=1e-9)
    # ...and inside the documented coalescing tolerance regardless.
    assert garnet == pytest.approx(analytical, rel=REL_PACKET, abs=saf * 1.01)


@pytest.mark.parametrize("topo_name", ["ring4", "switch4"])
def test_three_way_agreement_2d(topo_name):
    """A 2-D stack (inner dim x Switch scale-out): per-dim hierarchical
    All-Reduce over the inner dim must agree across all three backends."""
    inner, bws, lats = TOPOLOGIES[topo_name]
    notation = f"{inner}_Switch(2)"
    bws = bws + [25.0]
    lats = lats + [500.0]
    size = 1 * KiB * KiB
    topo = parse_topology(notation, bws, latencies_ns=lats)
    times = {}
    for name, cls, kwargs in (
        ("analytical", AnalyticalNetwork, {}),
        ("flow", FlowLevelNetwork, {}),
        ("garnet", GarnetLiteNetwork, {"packet_bytes": 4096}),
    ):
        engine = EventEngine()
        net = cls(engine, topo, **kwargs)
        executor = SendRecvCollectiveExecutor(engine, net)
        finished = []
        groups = [topo.dim_group(npu, 0) for npu in range(topo.num_npus)
                  if topo.coords(npu)[0] == 0]
        for group in groups:
            executor.run_ring_allreduce(list(group), size,
                                        on_complete=finished.append)
        engine.run()
        times[name] = max(finished)
    k = int(inner.split("(")[1].rstrip(")"))
    saf = _store_and_forward_ns(inner, bws[0], k, 4096)
    assert times["flow"] == pytest.approx(times["analytical"], rel=REL_FLOW)
    assert times["garnet"] == pytest.approx(times["analytical"] + saf, rel=1e-9)

"""Integration tests: full-stack simulations reproducing paper-level trends.

These are fast (seconds) shape checks; the exact figure/table regenerators
live in ``benchmarks/``.
"""

import pytest

import repro
from repro.configs import CONV_4D, W_1D_600, conv_4d_scaled, wafer_scaled
from repro.workload import (
    ParallelismSpec,
    generate_megatron_hybrid,
    generate_single_collective,
    gpt3_175b,
)

GiB = 1 << 30


def _allreduce_time(topology, scheduler, chunks=32, payload=GiB):
    traces = generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, payload)
    config = repro.SystemConfig(topology=topology, scheduler=scheduler,
                                collective_chunks=chunks)
    return repro.simulate(traces, config).total_time_ns


class TestSchedulingTrends:
    """Fig. 9(a) directional checks."""

    def test_themis_improves_multidim_allreduce(self):
        base = _allreduce_time(CONV_4D, "baseline")
        themis = _allreduce_time(CONV_4D, "themis")
        assert themis < base * 0.95

    def test_themis_no_gain_on_1d_wafer(self):
        base = _allreduce_time(W_1D_600, "baseline")
        themis = _allreduce_time(W_1D_600, "themis")
        assert themis == pytest.approx(base, rel=1e-3)

    def test_conv4d_themis_matches_equal_bw_wafer(self):
        """Conv-4D totals 600 GB/s/NPU; with Themis it should approach
        W-1D-600 (paper: 'identical results ... with equivalent BW/NPU')."""
        wafer = _allreduce_time(W_1D_600, "baseline")
        conv = _allreduce_time(CONV_4D, "themis")
        assert conv == pytest.approx(wafer, rel=0.25)


class TestScalingTrends:
    """Table IV / Fig. 9(b) directional checks."""

    def test_scale_out_collective_time_flat(self):
        times = [_allreduce_time(conv_4d_scaled(last_dim=k), "baseline")
                 for k in (4, 8, 16, 32)]
        for t in times[1:]:
            assert t == pytest.approx(times[0], rel=0.02)

    def test_wafer_scale_up_reduces_then_bounces(self):
        times = {k: _allreduce_time(wafer_scaled(k), "baseline")
                 for k in (2, 4, 8, 16)}
        assert times[4] < times[2]
        assert times[8] < times[4]
        assert times[16] > times[8]  # on-wafer dim becomes the bottleneck

    def test_wafer_speedup_roughly_2_5x(self):
        """Paper: up to 2.51x speedup of scale-up over scale-out."""
        scale_out = _allreduce_time(conv_4d_scaled(last_dim=4), "baseline")
        best_wafer = min(_allreduce_time(wafer_scaled(k), "baseline")
                         for k in (2, 4, 8, 16))
        speedup = scale_out / best_wafer
        assert 2.0 < speedup < 3.2


class TestEndToEndWorkloads:
    def test_gpt3_hybrid_runs_on_conv4d(self):
        traces = generate_megatron_hybrid(
            gpt3_175b(), CONV_4D, ParallelismSpec(mp=16, dp=32))
        result = repro.simulate(
            traces, repro.SystemConfig(topology=CONV_4D, scheduler="themis"))
        assert result.total_time_ns > 0
        b = result.breakdown
        covered = sum(b.exposed_ns.values()) + b.idle_ns
        assert covered == pytest.approx(result.total_time_ns, rel=1e-6)

    def test_faster_network_reduces_exposed_comm(self):
        traces = generate_megatron_hybrid(
            gpt3_175b(), CONV_4D, ParallelismSpec(mp=16, dp=32))
        slow = repro.simulate(
            traces, repro.SystemConfig(topology=CONV_4D)).breakdown
        fast_topo = repro.parse_topology(
            "Ring(2)_FC(8)_Ring(8)_Switch(4)", [2500, 2000, 1000, 500])
        traces_fast = generate_megatron_hybrid(
            gpt3_175b(), fast_topo, ParallelismSpec(mp=16, dp=32))
        fast = repro.simulate(
            traces_fast, repro.SystemConfig(topology=fast_topo)).breakdown
        assert fast.exposed_comm_ns < slow.exposed_comm_ns
        assert fast.compute_ns == pytest.approx(slow.compute_ns, rel=1e-6)

    def test_collective_records_cover_all_collectives(self):
        traces = generate_megatron_hybrid(
            gpt3_175b(), CONV_4D, ParallelismSpec(mp=16, dp=32))
        n_coll = sum(1 for n in traces[0] if n.is_collective)
        result = repro.simulate(
            traces, repro.SystemConfig(topology=CONV_4D))
        assert len(result.collectives) == n_coll

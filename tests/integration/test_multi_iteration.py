"""Integration tests: multi-iteration training runs.

Iteration chaining must be linear — iteration N+1 starts where N's
optimizer finished, so total time scales with iteration count (modulo the
first iteration's pipeline fill).
"""

import pytest

import repro
from repro.configs import CONV_4D
from repro.workload import (
    ParallelismSpec,
    generate_data_parallel,
    generate_fsdp,
    generate_megatron_hybrid,
    gpt3_175b,
)
from repro.workload.models import TransformerSpec


def _model():
    return TransformerSpec("small", num_layers=8, hidden=512, seq_len=128,
                           batch_per_replica=2)


def _time(generator, iterations, **kwargs):
    traces = generator(_model(), CONV_4D, iterations=iterations, **kwargs)
    config = repro.SystemConfig(topology=CONV_4D, scheduler="themis",
                                collective_chunks=8)
    return repro.simulate(traces, config).total_time_ns


class TestIterationLinearity:
    @pytest.mark.parametrize("generator,kwargs", [
        (generate_data_parallel, {}),
        (generate_fsdp, {}),
    ])
    def test_three_iterations_cost_three_times_one(self, generator, kwargs):
        one = _time(generator, 1, **kwargs)
        three = _time(generator, 3, **kwargs)
        assert three == pytest.approx(3 * one, rel=0.05)

    def test_hybrid_iterations_linear(self):
        def gen(model, topo, iterations):
            return generate_megatron_hybrid(
                model, topo, ParallelismSpec(mp=16, dp=32),
                iterations=iterations)

        one = _time(gen, 1)
        four = _time(gen, 4)
        assert four == pytest.approx(4 * one, rel=0.05)

    def test_iterations_do_not_leak_state_across_runs(self):
        """Two runs of the same workload give bit-identical results —
        determinism of the whole stack."""
        def run():
            traces = generate_megatron_hybrid(
                gpt3_175b(), CONV_4D, ParallelismSpec(mp=16, dp=32))
            config = repro.SystemConfig(topology=CONV_4D, scheduler="themis")
            return repro.simulate(traces, config)

        a, b = run(), run()
        assert a.total_time_ns == b.total_time_ns
        assert a.events_processed == b.events_processed
        assert [c.duration_ns for c in a.collectives] == \
            [c.duration_ns for c in b.collectives]

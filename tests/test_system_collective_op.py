"""Unit tests for the chunked collective operation."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.system import CollectiveOperation, make_scheduler
from repro.system.phases import PhaseKind, phase_duration_ns
from repro.trace import CollectiveType

MiB = 1 << 20
GiB = 1 << 30


def _run_collective(topo_str, bws, payload, collective=CollectiveType.ALL_REDUCE,
                    scheduler="baseline", chunks=1, dims=None, lats=None):
    engine = EventEngine()
    topo = parse_topology(topo_str, bws, latencies_ns=lats or [0] * len(bws))
    net = AnalyticalNetwork(engine, topo)
    op = CollectiveOperation(
        engine=engine,
        network=net,
        scheduler=make_scheduler(scheduler),
        collective=collective,
        comm_dims=dims if dims is not None else range(topo.num_dims),
        rep_npu=0,
        payload_bytes=payload,
        num_chunks=chunks,
    )
    op.start()
    engine.run()
    return op


class TestSingleDimension:
    def test_allreduce_matches_closed_form(self):
        # Ring(4) @100 GB/s, zero latency: 2 * 3/4 * S / 100.
        op = _run_collective("Ring(4)", [100], 1000)
        assert op.duration_ns == pytest.approx(2 * 750 / 100)

    def test_latency_steps_included(self):
        op = _run_collective("Ring(4)", [100], 1000, lats=[500])
        # RS: 3 steps, AG: 3 steps -> 6 * 500 latency on top.
        assert op.duration_ns == pytest.approx(2 * 750 / 100 + 6 * 500)

    def test_allgather_single_pass(self):
        op = _run_collective("Ring(4)", [100], 1000,
                             collective=CollectiveType.ALL_GATHER)
        # Gathered 1000 -> traffic 750 per NPU, one pass.
        assert op.duration_ns == pytest.approx(750 / 100)

    def test_alltoall_direct_on_switch(self):
        op = _run_collective("Switch(4)", [100], 1000,
                             collective=CollectiveType.ALL_TO_ALL)
        assert op.duration_ns == pytest.approx(750 / 100)


class TestChunking:
    def test_single_chunk_is_sequential_sum(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)_FC(4)", [100, 50], latencies_ns=[0, 0])
        from repro.system.phases import decompose_collective

        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1), GiB)
        op = _run_collective("Ring(4)_FC(4)", [100, 50], GiB, chunks=1)
        assert op.duration_ns == pytest.approx(plan.total_duration_ns(topo))

    def test_more_chunks_pipeline_toward_max_dim(self):
        times = {
            chunks: _run_collective("Ring(4)_FC(4)", [100, 50], GiB,
                                    chunks=chunks).duration_ns
            for chunks in (1, 4, 16, 64)
        }
        assert times[4] < times[1]
        assert times[16] <= times[4] * (1 + 1e-9)
        assert times[64] <= times[16] * (1 + 1e-9)
        # Bottleneck dim 0: Ring(4) at 100 GB/s sees 2 * S * 3/4 traffic.
        bottleneck = 2 * GiB * 0.75 / 100
        assert times[64] == pytest.approx(bottleneck, rel=0.15)

    def test_traffic_independent_of_chunk_count(self):
        t1 = _run_collective("Ring(2)_FC(8)", [100, 100], GiB, chunks=1).traffic_by_dim
        t16 = _run_collective("Ring(2)_FC(8)", [100, 100], GiB, chunks=16).traffic_by_dim
        for d in t1:
            assert t1[d] == pytest.approx(t16[d])

    def test_invalid_chunks_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100])
        net = AnalyticalNetwork(engine, topo)
        with pytest.raises(ValueError):
            CollectiveOperation(engine, net, make_scheduler("baseline"),
                                CollectiveType.ALL_REDUCE, (0,), 0, 100,
                                num_chunks=0)


class TestDegenerateCases:
    def test_all_singleton_dims_complete_immediately(self):
        op = _run_collective("Ring(1)_Ring(1)", [100, 100], 1000)
        assert op.duration_ns == 0.0
        assert op.group_size == 1

    def test_zero_payload_completes(self):
        op = _run_collective("Ring(4)", [100], 0)
        assert op.duration_ns == 0.0

    def test_subset_dims_only(self):
        op = _run_collective("Ring(4)_FC(8)", [100, 100], 1000, dims=[1])
        assert op.group_size == 8
        # All-Reduce: RS + AG both move 875 bytes on the dim.
        assert op.traffic_by_dim == {1: pytest.approx(1750)}

    def test_double_start_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100])
        net = AnalyticalNetwork(engine, topo)
        op = CollectiveOperation(engine, net, make_scheduler("baseline"),
                                 CollectiveType.ALL_REDUCE, (0,), 0, 100)
        op.start()
        with pytest.raises(RuntimeError):
            op.start()

    def test_duration_before_completion_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100])
        net = AnalyticalNetwork(engine, topo)
        op = CollectiveOperation(engine, net, make_scheduler("baseline"),
                                 CollectiveType.ALL_REDUCE, (0,), 0, 100)
        with pytest.raises(RuntimeError):
            _ = op.duration_ns


class TestThemisVsBaseline:
    def test_themis_not_slower_on_unbalanced_topology(self):
        base = _run_collective(
            "Ring(2)_FC(8)_Ring(8)_Switch(4)", [1000, 200, 100, 50], GiB,
            scheduler="baseline", chunks=32).duration_ns
        themis = _run_collective(
            "Ring(2)_FC(8)_Ring(8)_Switch(4)", [1000, 200, 100, 50], GiB,
            scheduler="themis", chunks=32).duration_ns
        assert themis <= base

    def test_one_dim_schedulers_identical(self):
        base = _run_collective("Switch(16)", [100], GiB,
                               scheduler="baseline", chunks=16).duration_ns
        themis = _run_collective("Switch(16)", [100], GiB,
                                 scheduler="themis", chunks=16).duration_ns
        assert base == pytest.approx(themis)

    def test_allreduce_correctness_ag_replays_rs_order_reversed(self):
        # With Themis the per-chunk AG order must mirror its RS order; the
        # total per-dim traffic is then order-independent in aggregate.
        op = _run_collective(
            "Ring(2)_FC(8)", [100, 100], GiB, scheduler="themis", chunks=8)
        total = sum(op.traffic_by_dim.values())
        # Every chunk moves 2 * S_chunk * (1 - 1/16) in total across dims,
        # regardless of the order it picked.
        assert total == pytest.approx(2 * GiB * (1 - 1 / 16), rel=1e-6)

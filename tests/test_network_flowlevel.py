"""Unit tests for the flow-level (max-min fair) network backend."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.network.flowlevel import FlowLevelNetwork
from repro.system import SendRecvCollectiveExecutor


def _net(notation="Ring(4)", bws=(100,), lats=(0,)):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    return engine, FlowLevelNetwork(engine, topo)


class TestSingleFlow:
    def test_full_rate_and_latency(self):
        engine, net = _net(lats=(100,))
        done = []
        net.sim_recv(1, 0, 10_000, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, 10_000)
        engine.run()
        assert done == [pytest.approx(10_000 / 100 + 100)]

    def test_on_sent_fires_at_serialization_end(self):
        engine, net = _net(lats=(100,))
        sent = []
        net.sim_send(0, 1, 10_000, callback=lambda: sent.append(engine.now))
        engine.run()
        assert sent == [pytest.approx(100.0)]

    def test_multihop_latency_accumulates(self):
        engine, net = _net("Ring(8)", (100,), (50,))
        done = []
        net.sim_recv(3, 0, 1000, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 3, 1000)
        engine.run()
        # 3 hops x 50 ns latency; fluid serialization happens once.
        assert done == [pytest.approx(1000 / 100 + 150)]


class TestFairSharing:
    def test_two_flows_share_a_link_equally(self):
        engine, net = _net()
        done = []
        for tag in range(2):
            net.sim_recv(1, 0, 10_000, tag=tag,
                         callback=lambda m: done.append(engine.now))
            net.sim_send(0, 1, 10_000, tag=tag)
        engine.run()
        # Each runs at 50 GB/s throughout: both end at 200 ns.
        assert done == [pytest.approx(200.0), pytest.approx(200.0)]

    def test_late_joiner_slows_then_releases(self):
        engine, net = _net()
        done = {}
        net.sim_recv(1, 0, 10_000, tag=0, callback=lambda m: done.update(a=engine.now))
        net.sim_send(0, 1, 10_000, tag=0)
        # Second flow joins halfway through the first.

        def join():
            net.sim_recv(1, 0, 10_000, tag=1,
                         callback=lambda m: done.update(b=engine.now))
            net.sim_send(0, 1, 10_000, tag=1)

        engine.schedule(50.0, join)
        engine.run()
        # Flow A: 5000 bytes at 100, then shares at 50: 50 + 5000/50 = 150.
        assert done["a"] == pytest.approx(150.0)
        # Flow B: 5000 left when A finishes; 100 ns shared + 50 at full rate.
        assert done["b"] == pytest.approx(200.0)

    def test_max_min_gives_unbottlenecked_flow_the_residue(self):
        # Flows: X crosses links L01 and L12; Y crosses only L01... use a
        # ring: X: 0->2 (links 0-1, 1-2), Y: 0->1 (link 0-1), Z: 1->2.
        engine, net = _net("Ring(8)", (100,), (0,))
        done = {}
        net.sim_recv(2, 0, 10_000, tag=0, callback=lambda m: done.update(x=engine.now))
        net.sim_send(0, 2, 10_000, tag=0)
        net.sim_recv(1, 0, 10_000, tag=1, callback=lambda m: done.update(y=engine.now))
        net.sim_send(0, 1, 10_000, tag=1)
        net.sim_recv(2, 1, 10_000, tag=2, callback=lambda m: done.update(z=engine.now))
        net.sim_send(1, 2, 10_000, tag=2)
        engine.run()
        # Both links carry two flows -> everyone gets 50 GB/s initially.
        # X is bottlenecked on both; Y and Z speed to 100 once X/partner
        # finish.  All complete, fairness preserved.
        assert set(done) == {"x", "y", "z"}
        assert done["x"] >= done["y"] - 1e-6
        assert done["x"] >= done["z"] - 1e-6

    def test_disjoint_flows_run_at_line_rate(self):
        engine, net = _net()
        done = []
        net.sim_recv(1, 0, 10_000, callback=lambda m: done.append(engine.now))
        net.sim_recv(3, 2, 10_000, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, 10_000)
        net.sim_send(2, 3, 10_000)
        engine.run()
        assert done == [pytest.approx(100.0), pytest.approx(100.0)]


class TestCollectivesOnFlows:
    def test_ring_allreduce_matches_analytical(self):
        """Neighbor-only ring traffic never shares links: the flow model
        reduces to the closed form."""
        payload = 1 << 20
        times = {}
        for cls in (AnalyticalNetwork, FlowLevelNetwork):
            engine = EventEngine()
            topo = parse_topology("Ring(4)", [150], latencies_ns=[100])
            net = cls(engine, topo)
            executor = SendRecvCollectiveExecutor(engine, net)
            out = {}
            executor.run_ring_allreduce([0, 1, 2, 3], payload,
                                        on_complete=lambda t: out.update(t=t))
            engine.run()
            times[cls.__name__] = out["t"]
        assert times["FlowLevelNetwork"] == pytest.approx(
            times["AnalyticalNetwork"], rel=1e-9)

    def test_events_scale_with_rate_changes_not_packets(self):
        engine, net = _net()
        net.sim_recv(1, 0, 1 << 24, callback=lambda m: None)
        net.sim_send(0, 1, 1 << 24)
        engine.run()
        # One flow: a couple of events regardless of the 16 MiB size.
        assert engine.events_processed < 10


class TestValidation:
    def test_send_to_self_rejected(self):
        engine, net = _net()
        with pytest.raises(ValueError):
            net.sim_send(2, 2, 100)

    def test_active_flow_accounting(self):
        engine, net = _net()
        net.sim_send(0, 1, 1000)
        assert net.active_flows == 1
        engine.run()
        assert net.active_flows == 0


class TestPureFluidContract:
    """The base backend is pure fluid: escalation moved to the runtime
    controller in ``repro.network.adaptive`` (see
    tests/test_network_adaptive.py for the controller suite)."""

    def test_no_static_escalation_params(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100.0])
        with pytest.raises(TypeError):
            FlowLevelNetwork(engine, topo, escalation_threshold=1)

    def test_never_escalates(self):
        engine, net = _net()
        for tag in (0, 1, 2):
            net.sim_recv(1, 0, 64 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 64 * 1024, tag=tag)
        engine.run()
        assert net.granularity_escalations == 0

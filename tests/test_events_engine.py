"""Unit tests for the discrete-event engine."""

import pytest

from repro.events import EventEngine, SimulationError


def test_schedule_and_run_advances_clock():
    engine = EventEngine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(engine.now))
    engine.schedule(5.0, lambda: fired.append(engine.now))
    end = engine.run()
    assert fired == [5.0, 10.0]
    assert end == 10.0


def test_same_time_events_fire_fifo():
    engine = EventEngine()
    order = []
    for i in range(5):
        engine.schedule(1.0, order.append, i)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_overrides_fifo_at_same_time():
    engine = EventEngine()
    order = []
    engine.schedule(1.0, order.append, "low", priority=1)
    engine.schedule(1.0, order.append, "high", priority=0)
    engine.run()
    assert order == ["high", "low"]


def test_callback_can_schedule_more_events():
    engine = EventEngine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(0.0, chain, 0)
    end = engine.run()
    assert seen == [0, 1, 2, 3]
    assert end == 3.0


def test_zero_delay_event_fires_at_current_time():
    engine = EventEngine()
    times = []
    engine.schedule(2.0, lambda: engine.schedule(0.0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [2.0]


def test_negative_delay_rejected():
    engine = EventEngine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    engine = EventEngine()
    engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
    with pytest.raises(SimulationError):
        engine.run()


def test_cancelled_event_does_not_fire():
    engine = EventEngine()
    fired = []
    event = engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, fired.append, "b")
    event.cancel()
    engine.run()
    assert fired == ["b"]


def test_run_until_is_inclusive():
    engine = EventEngine()
    fired = []
    engine.schedule(5.0, fired.append, "at")
    engine.schedule(6.0, fired.append, "after")
    engine.run(until=5.0)
    assert fired == ["at"]
    assert engine.now == 5.0
    engine.run()
    assert fired == ["at", "after"]


def test_run_max_events():
    engine = EventEngine()
    fired = []
    for i in range(10):
        engine.schedule(float(i), fired.append, i)
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
    engine.schedule(2.0, fired.append, 2)
    engine.run()
    assert fired == [1]
    assert engine.pending == 1


def test_step_fires_exactly_one_event():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, fired.append, "b")
    assert engine.step() is True
    assert fired == ["a"]
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled():
    engine = EventEngine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    e1.cancel()
    assert engine.peek_time() == 2.0


def test_reset_clears_state():
    engine = EventEngine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    engine.schedule(1.0, lambda: None)
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending == 0
    assert engine.events_processed == 0


def test_events_processed_counter():
    engine = EventEngine()
    for i in range(7):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_processed == 7


def test_reentrant_run_rejected():
    engine = EventEngine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1


class TestRunUntilClockSemantics:
    """run(until=T) must always leave the clock at T unless cut short."""

    def test_empty_queue_advances_to_until(self):
        engine = EventEngine()
        assert engine.run(until=7.0) == 7.0
        assert engine.now == 7.0

    def test_queue_drains_before_until_advances_to_until(self):
        engine = EventEngine()
        fired = []
        engine.schedule(2.0, fired.append, "a")
        assert engine.run(until=10.0) == 10.0
        assert fired == ["a"]
        assert engine.now == 10.0

    def test_only_cancelled_events_advances_to_until(self):
        engine = EventEngine()
        engine.schedule(3.0, lambda: None).cancel()
        assert engine.run(until=5.0) == 5.0

    def test_run_until_after_stop_advances(self):
        engine = EventEngine()
        engine.schedule(1.0, engine.stop)
        engine.schedule(9.0, lambda: None)
        engine.run()
        assert engine.now == 1.0  # stop leaves the clock at the event
        # A fresh run(until=...) resumes normal clock semantics.
        assert engine.run(until=20.0) == 20.0

    def test_stop_does_not_advance_to_until(self):
        engine = EventEngine()
        engine.schedule(1.0, engine.stop)
        assert engine.run(until=50.0) == 1.0

    def test_max_events_does_not_advance_to_until(self):
        engine = EventEngine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        assert engine.run(until=100.0, max_events=2) == 1.0
        assert engine.pending == 3

    def test_until_in_the_past_rejected(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=5.0)

    def test_scheduling_relative_to_advanced_clock(self):
        engine = EventEngine()
        engine.run(until=100.0)
        fired = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [101.0]

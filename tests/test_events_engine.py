"""Unit tests for the discrete-event engine."""

import pytest

from repro.events import EventEngine, SimulationError


def test_schedule_and_run_advances_clock():
    engine = EventEngine()
    fired = []
    engine.schedule(10.0, lambda: fired.append(engine.now))
    engine.schedule(5.0, lambda: fired.append(engine.now))
    end = engine.run()
    assert fired == [5.0, 10.0]
    assert end == 10.0


def test_same_time_events_fire_fifo():
    engine = EventEngine()
    order = []
    for i in range(5):
        engine.schedule(1.0, order.append, i)
    engine.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_overrides_fifo_at_same_time():
    engine = EventEngine()
    order = []
    engine.schedule(1.0, order.append, "low", priority=1)
    engine.schedule(1.0, order.append, "high", priority=0)
    engine.run()
    assert order == ["high", "low"]


def test_callback_can_schedule_more_events():
    engine = EventEngine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            engine.schedule(1.0, chain, n + 1)

    engine.schedule(0.0, chain, 0)
    end = engine.run()
    assert seen == [0, 1, 2, 3]
    assert end == 3.0


def test_zero_delay_event_fires_at_current_time():
    engine = EventEngine()
    times = []
    engine.schedule(2.0, lambda: engine.schedule(0.0, lambda: times.append(engine.now)))
    engine.run()
    assert times == [2.0]


def test_negative_delay_rejected():
    engine = EventEngine()
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    engine = EventEngine()
    engine.schedule(5.0, lambda: engine.schedule_at(1.0, lambda: None))
    with pytest.raises(SimulationError):
        engine.run()


def test_cancelled_event_does_not_fire():
    engine = EventEngine()
    fired = []
    event = engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, fired.append, "b")
    event.cancel()
    engine.run()
    assert fired == ["b"]


def test_run_until_is_inclusive():
    engine = EventEngine()
    fired = []
    engine.schedule(5.0, fired.append, "at")
    engine.schedule(6.0, fired.append, "after")
    engine.run(until=5.0)
    assert fired == ["at"]
    assert engine.now == 5.0
    engine.run()
    assert fired == ["at", "after"]


def test_run_max_events():
    engine = EventEngine()
    fired = []
    for i in range(10):
        engine.schedule(float(i), fired.append, i)
    engine.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_halts_run():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
    engine.schedule(2.0, fired.append, 2)
    engine.run()
    assert fired == [1]
    assert engine.pending == 1


def test_step_fires_exactly_one_event():
    engine = EventEngine()
    fired = []
    engine.schedule(1.0, fired.append, "a")
    engine.schedule(2.0, fired.append, "b")
    assert engine.step() is True
    assert fired == ["a"]
    assert engine.step() is True
    assert engine.step() is False


def test_peek_time_skips_cancelled():
    engine = EventEngine()
    e1 = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    e1.cancel()
    assert engine.peek_time() == 2.0


def test_reset_clears_state():
    engine = EventEngine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    engine.schedule(1.0, lambda: None)
    engine.reset()
    assert engine.now == 0.0
    assert engine.pending == 0
    assert engine.events_processed == 0


def test_events_processed_counter():
    engine = EventEngine()
    for i in range(7):
        engine.schedule(float(i), lambda: None)
    engine.run()
    assert engine.events_processed == 7


def test_reentrant_run_rejected():
    engine = EventEngine()
    errors = []

    def reenter():
        try:
            engine.run()
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run()
    assert len(errors) == 1


class TestRunUntilClockSemantics:
    """run(until=T) must always leave the clock at T unless cut short."""

    def test_empty_queue_advances_to_until(self):
        engine = EventEngine()
        assert engine.run(until=7.0) == 7.0
        assert engine.now == 7.0

    def test_queue_drains_before_until_advances_to_until(self):
        engine = EventEngine()
        fired = []
        engine.schedule(2.0, fired.append, "a")
        assert engine.run(until=10.0) == 10.0
        assert fired == ["a"]
        assert engine.now == 10.0

    def test_only_cancelled_events_advances_to_until(self):
        engine = EventEngine()
        engine.schedule(3.0, lambda: None).cancel()
        assert engine.run(until=5.0) == 5.0

    def test_run_until_after_stop_advances(self):
        engine = EventEngine()
        engine.schedule(1.0, engine.stop)
        engine.schedule(9.0, lambda: None)
        engine.run()
        assert engine.now == 1.0  # stop leaves the clock at the event
        # A fresh run(until=...) resumes normal clock semantics.
        assert engine.run(until=20.0) == 20.0

    def test_stop_does_not_advance_to_until(self):
        engine = EventEngine()
        engine.schedule(1.0, engine.stop)
        assert engine.run(until=50.0) == 1.0

    def test_max_events_does_not_advance_to_until(self):
        engine = EventEngine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        assert engine.run(until=100.0, max_events=2) == 1.0
        assert engine.pending == 3

    def test_until_in_the_past_rejected(self):
        engine = EventEngine()
        engine.schedule(10.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=5.0)

    def test_scheduling_relative_to_advanced_clock(self):
        engine = EventEngine()
        engine.run(until=100.0)
        fired = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [101.0]


class TestCountedPendingAndCompaction:
    """pending is counted O(1); cancelled entries are compacted lazily."""

    def test_interleaved_schedule_cancel_step_run_counts(self):
        engine = EventEngine()
        a = engine.schedule(1.0, lambda: None)
        b = engine.schedule(2.0, lambda: None)
        engine.schedule(3.0, lambda: None)
        assert engine.pending == 3
        a.cancel()
        assert engine.pending == 2
        a.cancel()  # idempotent
        assert engine.pending == 2
        assert engine.step() is True  # skips cancelled a, fires b (t=2)
        assert engine.pending == 1
        b.cancel()  # already fired: must not affect the count
        assert engine.pending == 1
        engine.run()
        assert engine.pending == 0
        assert engine.events_processed == 2

    def test_cancel_after_fire_is_noop_for_counts(self):
        engine = EventEngine()
        event = engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.pending == 0
        event.cancel()
        assert engine.pending == 0

    def test_mass_cancellation_compacts_heap(self):
        engine = EventEngine()
        events = [engine.schedule(float(i), lambda: None) for i in range(500)]
        keep = engine.schedule(1000.0, lambda: None)
        for event in events:
            event.cancel()
        # More than half the heap was cancelled: it must have been swept.
        assert len(engine._queue) < 250
        assert engine.pending == 1
        assert engine.peek_time() == 1000.0
        engine.run()
        assert engine.events_processed == 1
        assert not keep.cancelled

    def test_compaction_preserves_order(self):
        engine = EventEngine()
        order = []
        cancels = [engine.schedule(float(i), order.append, -1)
                   for i in range(200)]
        for i in range(10):
            engine.schedule(300.0, order.append, i)  # same time: FIFO
        for event in cancels:
            event.cancel()
        engine.run()
        assert order == list(range(10))


class TestScheduleMany:
    def test_matches_sequential_schedule_order(self):
        sequential = EventEngine()
        batched = EventEngine()
        order_a, order_b = [], []
        items = [(5.0, order_b.append, (i,)) for i in range(4)]
        items += [(1.0, order_b.append, (10 + i,)) for i in range(4)]
        for delay, _, args in items:
            sequential.schedule(delay, order_a.append, *args)
        assert batched.schedule_many(items) == 8
        assert batched.pending == 8
        sequential.run()
        batched.run()
        assert order_a == order_b
        assert sequential.now == batched.now

    def test_interleaves_with_schedule_fifo(self):
        engine = EventEngine()
        order = []
        engine.schedule(1.0, order.append, "a")
        engine.schedule_many([(1.0, order.append, ("b",)),
                              (1.0, order.append, ("c",))])
        engine.schedule(1.0, order.append, "d")
        engine.run()
        assert order == ["a", "b", "c", "d"]

    def test_priority_applies_to_batch(self):
        engine = EventEngine()
        order = []
        engine.schedule_many([(1.0, order.append, ("low",))], priority=1)
        engine.schedule_many([(1.0, order.append, ("high",))], priority=-1)
        engine.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self):
        engine = EventEngine()
        with pytest.raises(SimulationError):
            engine.schedule_many([(1.0, lambda: None), (-0.5, lambda: None)])

    def test_bounded_run_and_step_handle_batched_entries(self):
        engine = EventEngine()
        fired = []
        engine.schedule_many([(float(i), fired.append, (i,)) for i in range(6)])
        engine.run(until=2.0)
        assert fired == [0, 1, 2]
        assert engine.step() is True
        assert fired == [0, 1, 2, 3]
        engine.run(max_events=1)
        assert fired == [0, 1, 2, 3, 4]
        engine.run()
        assert fired == [0, 1, 2, 3, 4, 5]
        assert engine.pending == 0

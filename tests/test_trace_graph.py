"""Unit tests for the execution-trace DAG."""

import pytest

from repro.trace import (
    CollectiveType,
    ETNode,
    ExecutionTrace,
    NodeType,
    TraceValidationError,
)


def _compute(node_id, deps=()):
    return ETNode(node_id, NodeType.COMPUTE, flops=10, deps=deps)


def _chain(n):
    return [_compute(i, deps=(i - 1,) if i else ()) for i in range(n)]


def test_empty_trace_is_valid():
    trace = ExecutionTrace(0)
    assert len(trace) == 0
    assert trace.roots() == []


def test_duplicate_node_id_rejected():
    with pytest.raises(TraceValidationError):
        ExecutionTrace(0, [_compute(1), _compute(1)])


def test_unknown_dependency_rejected():
    with pytest.raises(TraceValidationError):
        ExecutionTrace(0, [_compute(0, deps=(99,))])


def test_cycle_detected():
    a = ETNode(0, NodeType.COMPUTE, flops=1, deps=(1,))
    b = ETNode(1, NodeType.COMPUTE, flops=1, deps=(0,))
    with pytest.raises(TraceValidationError):
        ExecutionTrace(0, [a, b])


def test_negative_npu_id_rejected():
    with pytest.raises(TraceValidationError):
        ExecutionTrace(-1)


def test_roots_and_children():
    nodes = [_compute(0), _compute(1), _compute(2, deps=(0, 1))]
    trace = ExecutionTrace(0, nodes)
    assert {n.node_id for n in trace.roots()} == {0, 1}
    assert trace.children_of(0) == [2]
    assert trace.children_of(2) == []


def test_topological_order_respects_deps():
    nodes = [
        _compute(3, deps=(1, 2)),
        _compute(1, deps=(0,)),
        _compute(2, deps=(0,)),
        _compute(0),
    ]
    trace = ExecutionTrace(0, nodes)
    order = [n.node_id for n in trace.topological_order()]
    assert order.index(0) < order.index(1)
    assert order.index(1) < order.index(3)
    assert order.index(2) < order.index(3)
    assert sorted(order) == [0, 1, 2, 3]


def test_topological_order_deterministic_tiebreak():
    nodes = [_compute(2), _compute(0), _compute(1)]
    trace = ExecutionTrace(0, nodes)
    assert [n.node_id for n in trace.topological_order()] == [0, 1, 2]


def test_critical_path_of_chain():
    trace = ExecutionTrace(0, _chain(5))
    assert trace.critical_path_length() == 5


def test_critical_path_of_diamond():
    nodes = [_compute(0), _compute(1, deps=(0,)), _compute(2, deps=(0,)),
             _compute(3, deps=(1, 2))]
    trace = ExecutionTrace(0, nodes)
    assert trace.critical_path_length() == 3


def test_add_node_requires_existing_deps():
    trace = ExecutionTrace(0, [_compute(0)])
    trace.add_node(_compute(1, deps=(0,)))
    assert len(trace) == 2
    with pytest.raises(TraceValidationError):
        trace.add_node(_compute(2, deps=(42,)))


def test_statistics():
    nodes = [
        _compute(0),
        ETNode(1, NodeType.MEMORY_LOAD, tensor_bytes=100, deps=(0,)),
        ETNode(2, NodeType.COMM_COLLECTIVE, tensor_bytes=200, deps=(1,),
               collective=CollectiveType.ALL_REDUCE),
    ]
    trace = ExecutionTrace(0, nodes)
    assert trace.total_flops() == 10
    assert trace.total_memory_bytes() == 100
    assert trace.total_comm_bytes() == 200
    counts = trace.count_by_type()
    assert counts[NodeType.COMPUTE] == 1
    assert counts[NodeType.MEMORY_LOAD] == 1


def test_contains_and_node_lookup():
    trace = ExecutionTrace(0, [_compute(7)])
    assert 7 in trace
    assert 8 not in trace
    assert trace.node(7).node_id == 7

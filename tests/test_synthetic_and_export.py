"""Unit tests for the synthetic PyTorch-EG generator and result export."""

import json

import pytest

import repro
from repro.network import parse_topology
from repro.stats.export import (
    collectives_to_csv,
    dump_result_json,
    load_result_json,
    result_to_dict,
)
from repro.trace.converters import convert_pytorch_eg
from repro.trace.converters.synthetic import synthesize_pytorch_eg
from repro.workload import ParallelismSpec, generate_megatron_hybrid
from repro.workload.models import TransformerSpec


def _model():
    return TransformerSpec("tiny", num_layers=3, hidden=64, seq_len=32,
                           batch_per_replica=2)


class TestSyntheticEG:
    def test_converts_cleanly(self):
        payload = synthesize_pytorch_eg(_model(), mp_degree=4)
        trace = convert_pytorch_eg(payload)
        assert len(trace) > 0
        assert trace.npu_id == 0

    def test_control_nodes_elided(self):
        payload = synthesize_pytorch_eg(_model(), mp_degree=4)
        n_control = sum(1 for n in payload["nodes"]
                        if n["name"].startswith("autograd"))
        assert n_control == 1
        trace = convert_pytorch_eg(payload)
        assert len(trace) == len(payload["nodes"]) - n_control

    def test_equivalent_to_direct_generator(self):
        """The converted synthetic EG times the same as the directly
        generated hybrid trace (same compute/comm volumes and structure)."""
        topo = parse_topology("Ring(4)_Switch(4)", [100, 25],
                              latencies_ns=[0, 0])
        model = _model()
        config = repro.SystemConfig(topology=topo, collective_chunks=4)

        synthetic = convert_pytorch_eg(
            synthesize_pytorch_eg(model, mp_degree=4,
                                  mp_dims=(0,), dp_dims=(1,)))
        direct = generate_megatron_hybrid(
            model, topo, ParallelismSpec(mp=4, dp=4))[0]

        r_syn = repro.simulate({0: synthetic}, config)
        r_dir = repro.simulate({0: direct}, config)
        # Identical comm volume; compute differs only by the tiny
        # embedding/optimizer bookkeeping nodes.
        assert r_syn.total_collective_time_ns() == pytest.approx(
            r_dir.total_collective_time_ns(), rel=0.02)
        assert r_syn.total_time_ns == pytest.approx(
            r_dir.total_time_ns, rel=0.05)

    def test_pure_dp_has_no_mp_allreduces(self):
        payload = synthesize_pytorch_eg(_model(), mp_degree=1)
        trace = convert_pytorch_eg(payload)
        collectives = [n for n in trace if n.is_collective]
        # Only per-layer gradient all-reduces remain.
        assert len(collectives) == 3

    def test_invalid_mp_rejected(self):
        with pytest.raises(ValueError):
            synthesize_pytorch_eg(_model(), mp_degree=0)


class TestResultExport:
    def _result(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
        return repro.simulate(traces, repro.SystemConfig(topology=topo))

    def test_dict_structure(self):
        data = result_to_dict(self._result())
        assert data["total_time_ns"] > 0
        assert data["nodes_executed"] == 1
        assert "comm_ns" in data["breakdown"]
        assert len(data["collectives"]) == 1
        record = data["collectives"][0]
        assert record["group_size"] == 8
        assert set(record["traffic_by_dim"]) == {"0", "1"}

    def test_json_roundtrip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        dump_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded["total_time_ns"] == pytest.approx(result.total_time_ns)
        json.loads(path.read_text())  # valid JSON on disk

    def test_schema_version_and_members(self):
        data = result_to_dict(self._result())
        assert data["schema_version"] == 2
        record = data["collectives"][0]
        assert record["members"] == [0]

    def test_telemetry_embedded_without_profile(self, tmp_path):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
        config = repro.SystemConfig(
            topology=topo,
            telemetry=repro.TelemetryConfig(
                trace_level=repro.TraceLevel.COLLECTIVE))
        result = repro.simulate(traces, config)
        data = result_to_dict(result)
        assert data["telemetry"]["schema_version"] == 1
        assert "profile" not in data["telemetry"]
        path = tmp_path / "result.json"
        dump_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded["schema_version"] == 2
        assert loaded["telemetry"]["metrics"]

    def test_csv_has_one_row_per_collective(self):
        text = collectives_to_csv(self._result())
        lines = text.strip().splitlines()
        assert len(lines) == 2  # header + 1 collective
        assert lines[0].startswith("name,collective")


class TestExportEdgeCases:
    def _collective_free_result(self):
        # A compute-only trace produces no collective records at all.
        from repro.trace import ETNode, ExecutionTrace, NodeType

        topo = parse_topology("Ring(4)", [100])
        traces = {0: ExecutionTrace(0, [
            ETNode(0, NodeType.COMPUTE, name="fwd", flops=1 << 20),
        ])}
        return repro.simulate(traces, repro.SystemConfig(topology=topo))

    def test_csv_of_collective_free_run_is_header_only(self):
        text = collectives_to_csv(self._collective_free_result())
        assert text.strip().splitlines() == [
            "name,collective,payload_bytes,group_size,start_ns,finish_ns,"
            "duration_ns"]

    def test_invariants_block_present_only_when_checked(self, tmp_path):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
        plain = repro.simulate(traces, repro.SystemConfig(topology=topo))
        assert "invariants" not in result_to_dict(plain)
        checked = repro.simulate(traces, repro.SystemConfig(
            topology=topo, invariants=repro.InvariantConfig()))
        doc = result_to_dict(checked)
        assert doc["invariants"]["ok"] is True
        assert doc["invariants"]["schema_version"] == 1
        # And the block survives a disk roundtrip.
        path = tmp_path / "checked.json"
        dump_result_json(checked, path)
        assert load_result_json(path)["invariants"]["checks"] > 0

    def test_load_result_json_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result_json(tmp_path / "nope.json")

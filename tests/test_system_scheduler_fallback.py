"""Unit tests for the Themis greedy fallback (no-scipy path)."""

import pytest

import repro
from repro.system.scheduler import ThemisScheduler
from repro.workload import generate_single_collective

GiB = 1 << 30


@pytest.fixture
def no_lp(monkeypatch):
    """Force the scipy-less code path: balanced_plan returns None."""
    monkeypatch.setattr(ThemisScheduler, "_solve_mix",
                        lambda self, *args, **kwargs: [])


def _allreduce(topology, scheduler, chunks=32):
    traces = generate_single_collective(
        topology, repro.CollectiveType.ALL_REDUCE, GiB)
    config = repro.SystemConfig(topology=topology, scheduler=scheduler,
                                collective_chunks=chunks)
    return repro.simulate(traces, config)


def test_fallback_completes_and_conserves_traffic(no_lp):
    topo = repro.parse_topology(
        "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])
    result = _allreduce(topo, "themis")
    assert result.total_time_ns > 0
    total = sum(result.collectives[0].traffic_by_dim.values())
    assert total == pytest.approx(2 * GiB * (1 - 1 / 512), rel=1e-6)


def test_fallback_no_worse_than_2x_baseline(no_lp):
    topo = repro.parse_topology(
        "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])
    base = _allreduce(topo, "baseline").total_time_ns
    greedy = _allreduce(topo, "themis").total_time_ns
    assert greedy < 2.0 * base


def test_fallback_matches_baseline_on_1d(no_lp):
    topo = repro.parse_topology("Switch(64)", [200], latencies_ns=[25])
    base = _allreduce(topo, "baseline").total_time_ns
    greedy = _allreduce(topo, "themis").total_time_ns
    assert greedy == pytest.approx(base, rel=1e-6)


def test_fluid_path_engages_when_lp_available():
    """Sanity: without the monkeypatch, the LP/fluid path is used and its
    result differs from the greedy fallback on a heterogeneous shape."""
    topo = repro.parse_topology(
        "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])
    fluid = _allreduce(topo, "themis").total_time_ns
    base = _allreduce(topo, "baseline").total_time_ns
    assert fluid < base

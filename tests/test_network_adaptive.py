"""Unit tests for the adaptive granularity controller
(:class:`repro.network.adaptive.AdaptiveFlowNetwork`)."""

import math

import pytest

from repro.events import EventEngine
from repro.network import (
    AdaptiveFlowNetwork,
    FlowLevelNetwork,
    GarnetLiteNetwork,
    parse_topology,
)
from repro.system import SendRecvCollectiveExecutor
from repro.validate import InvariantChecker, InvariantConfig


def _net(threshold=1.0, hysteresis=1.0, packet=1024, notation="Ring(4)",
         bws=(100,), lats=(0,), invariants=False):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    net = AdaptiveFlowNetwork(
        engine, topo, escalation_threshold=threshold,
        deescalation_hysteresis=hysteresis, escalation_packet_bytes=packet)
    checker = None
    if invariants:
        checker = InvariantChecker(InvariantConfig()).install(
            engine, network=net)
    return engine, net, checker


def _collective(net_cls, notation, bws, lats, algorithm, payload, **kw):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    net = net_cls(engine, topo, **kw)
    executor = SendRecvCollectiveExecutor(engine, net)
    out = {}
    getattr(executor, f"run_{algorithm}")(
        list(range(topo.num_npus)), payload,
        on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"], engine.events_processed, net


class TestControllerStateMachine:
    def test_uncontended_link_stays_fluid(self):
        engine, net, _ = _net(threshold=1.0)
        net.sim_recv(1, 0, 64 * 1024, callback=lambda m: None)
        net.sim_send(0, 1, 64 * 1024)
        engine.run()
        assert net.escalations == 0
        assert net.deescalations == 0
        assert engine.events_processed < 10

    def test_contended_link_escalates(self):
        engine, net, _ = _net(threshold=1.0, packet=1024)
        done = []
        for tag in (0, 1):
            net.sim_recv(1, 0, 16 * 1024, tag=tag,
                         callback=lambda m: done.append(engine.now))
            net.sim_send(0, 1, 16 * 1024, tag=tag)
        engine.run()
        assert net.escalations == 1
        assert len(done) == 2
        # Packet granularity: many more rate solves than 2 fluid flows.
        assert net.rate_recomputations >= 16

    def test_deescalates_after_drain(self):
        engine, net, _ = _net(threshold=1.0, hysteresis=1.0)
        for tag in (0, 1):
            net.sim_recv(1, 0, 16 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 16 * 1024, tag=tag)
        engine.run()
        assert net.escalations >= 1
        assert net.deescalations == net.escalations
        # End of run: every link back in fluid mode.
        assert not net._packet_links
        for state in net._gran.values():
            assert state.mode == "fluid"

    def test_hysteresis_blocks_reescalation_churn(self):
        # threshold 2, hysteresis 2: de-escalate only when the link is
        # fully drained (n <= 0), so a 3->2 drain cannot oscillate.
        engine, net, _ = _net(threshold=2.0, hysteresis=2.0)
        for tag in range(3):
            net.sim_recv(1, 0, 8 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 8 * 1024, tag=tag)
        engine.run()
        assert net.escalations == 1
        assert net.deescalations == 1

    def test_threshold_zero_always_packet(self):
        engine, net, _ = _net(threshold=0.0, packet=1024)
        net.sim_recv(1, 0, 8 * 1024, callback=lambda m: None)
        net.sim_send(0, 1, 8 * 1024)
        engine.run()
        assert net.escalations == 1
        # threshold - hysteresis < 0: the link legitimately never
        # de-escalates (pure-packet work-alike).
        assert net.deescalations == 0

    def test_threshold_inf_never_escalates(self):
        engine, net, _ = _net(threshold=math.inf)
        for tag in range(8):
            net.sim_recv(1, 0, 64 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 64 * 1024, tag=tag)
        engine.run()
        assert net.escalations == 0
        assert net._gran == {}

    def test_messages_joining_escalated_route_start_as_packets(self):
        engine, net, _ = _net(threshold=1.0, packet=1024)
        for tag in (0, 1):
            net.sim_recv(1, 0, 64 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 64 * 1024, tag=tag)
        # Join mid-flight, after the link has escalated.
        engine.run(until=5.0)
        assert net.escalations == 1
        before = net.escalated_messages
        net.sim_recv(1, 0, 4 * 1024, tag=9, callback=lambda m: None)
        net.sim_send(0, 1, 4 * 1024, tag=9)
        engine.run()
        assert net.escalated_messages > before

    def test_invalid_parameters_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100.0])
        with pytest.raises(ValueError):
            AdaptiveFlowNetwork(engine, topo, escalation_threshold=-1.0)
        with pytest.raises(ValueError):
            AdaptiveFlowNetwork(engine, topo,
                                escalation_threshold=float("nan"))
        with pytest.raises(ValueError):
            AdaptiveFlowNetwork(engine, topo,
                                deescalation_hysteresis=float("inf"))
        with pytest.raises(ValueError):
            AdaptiveFlowNetwork(engine, topo, escalation_packet_bytes=0)


class TestIdentityAndParity:
    def test_threshold_inf_bit_identical_to_fluid(self):
        t_f, e_f, _ = _collective(
            FlowLevelNetwork, "Ring(8)", (100,), (100,), "alltoall",
            1 << 20)
        t_a, e_a, net = _collective(
            AdaptiveFlowNetwork, "Ring(8)", (100,), (100,), "alltoall",
            1 << 20, escalation_threshold=math.inf)
        assert t_a == t_f
        assert e_a == e_f
        assert net.escalations == 0

    def test_threshold_zero_matches_garnet_on_neighbor_ring(self):
        # Neighbor-ring steps have no extra store-and-forward links, so
        # the sub-flow model must land exactly on garnet-lite.
        t_g, e_g, _ = _collective(
            GarnetLiteNetwork, "Ring(4)", (150,), (50,), "ring_allreduce",
            64 * 1024)
        t_a, e_a, net = _collective(
            AdaptiveFlowNetwork, "Ring(4)", (150,), (50,), "ring_allreduce",
            64 * 1024, escalation_threshold=0.0)
        assert t_a == pytest.approx(t_g, rel=1e-9)
        assert e_a < e_g
        assert net.escalations > 0

    def test_contended_time_within_packet_band_at_fewer_events(self):
        t_g, e_g, _ = _collective(
            GarnetLiteNetwork, "Ring(8)", (100,), (100,), "alltoall",
            2 << 20)
        t_a, e_a, net = _collective(
            AdaptiveFlowNetwork, "Ring(8)", (100,), (100,), "alltoall",
            2 << 20, escalation_threshold=1.0)
        assert abs(t_a - t_g) / t_g <= 0.02
        assert e_a * 3 <= e_g
        assert net.escalations > 0


class TestByteConservation:
    """Satellite: the granularity-handoff byte-conservation invariant."""

    def test_clean_contended_run_attributes_every_byte(self):
        engine, net, checker = _net(threshold=1.0, invariants=True)
        payload = 64 * 1024
        for tag in range(4):
            net.sim_recv(1, 0, payload, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, payload, tag=tag)
        engine.run()
        report = checker.finalize(engine.now)
        assert report.ok, report.to_dict()
        assert net.handoffs > 0
        total = net.fluid_bytes + net.escalated_bytes
        assert total == pytest.approx(net.bytes_delivered, rel=1e-6)

    def test_escalate_deescalate_cycle_conserves(self):
        engine, net, checker = _net(threshold=1.0, hysteresis=1.0,
                                    invariants=True)
        # Staggered sizes force a mid-flight escalation, a drain, a
        # de-escalation, and a second wave re-escalation.
        for tag, size in enumerate((96 * 1024, 32 * 1024, 64 * 1024)):
            net.sim_recv(1, 0, size, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, size, tag=tag)
        engine.run()
        report = checker.finalize(engine.now)
        assert report.ok, report.to_dict()
        assert net.escalations >= 1 and net.deescalations >= 1
        total = net.fluid_bytes + net.escalated_bytes
        assert total == pytest.approx(net.bytes_delivered, rel=1e-6)

    def test_dropped_handoff_bytes_flagged(self):
        """A controller that loses in-flight bytes at the switch must be
        caught by check_granularity_handoff and the finalize sweep."""
        engine, net, checker = _net(threshold=1.0, invariants=True)

        original = net._segments
        net._segments = lambda size: original(size * 0.5)  # drop half

        for tag in (0, 1):
            net.sim_recv(1, 0, 64 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 64 * 1024, tag=tag)
        engine.run()
        report = checker.finalize(engine.now)
        assert not report.ok
        assert any(v.name == "conservation" for v in report.violations)

    def test_finalize_flags_missed_deescalation(self):
        engine, net, checker = _net(threshold=1.0, hysteresis=1.0,
                                    invariants=True)
        net._deescalate = lambda link, state: None  # controller bug

        for tag in (0, 1):
            net.sim_recv(1, 0, 32 * 1024, tag=tag, callback=lambda m: None)
            net.sim_send(0, 1, 32 * 1024, tag=tag)
        engine.run()
        report = checker.finalize(engine.now)
        assert any(v.name == "leak" and "escalated" in v.message
                   for v in report.violations)


def _symmetric_traces(topo, payload=1 << 20):
    """Per-rank replicas of one All-Reduce (fold-eligible workload)."""
    import copy

    from repro.trace.graph import ExecutionTrace
    from repro.trace.node import CollectiveType, ETNode, NodeType

    base = [ETNode(0, NodeType.COMM_COLLECTIVE, name="sync",
                   tensor_bytes=payload,
                   collective=CollectiveType.ALL_REDUCE)]
    return {rank: ExecutionTrace(rank, [copy.deepcopy(n) for n in base])
            for rank in range(topo.num_npus)}


class TestTelemetry:
    def test_escalation_counters_and_residency(self):
        from repro.core.config import SystemConfig
        from repro.core.simulator import simulate
        from repro.telemetry.config import TelemetryConfig

        topo = parse_topology("Ring(8)", [100.0], latencies_ns=[100.0])
        config = SystemConfig(
            topology=topo, granularity="adaptive",
            escalation_threshold=1.0, packet_bytes=4096,
            telemetry=TelemetryConfig())
        result = simulate(_symmetric_traces(topo), config)
        metrics = result.telemetry.metrics
        assert metrics.value("network", "escalations") >= 0
        assert metrics.get("network", "granularity_handoffs") is not None
        assert metrics.get("network", "fluid_bytes") is not None
        assert metrics.get("network", "escalated_bytes") is not None
        residency = [
            entry for entry in metrics.to_list()
            if entry["layer"] == "network"
            and entry["name"].startswith("granularity_residency_ns")
        ]
        if metrics.value("network", "escalations") > 0:
            assert residency


class TestFoldingInteraction:
    def test_adaptive_granularity_disables_folding(self):
        from repro.core.config import SystemConfig
        from repro.core.simulator import Simulator

        topo = parse_topology("Ring(8)", [100.0], latencies_ns=[100.0])
        config = SystemConfig(topology=topo, granularity="adaptive")
        sim = Simulator(_symmetric_traces(topo), config)
        assert not sim.folding.active
        assert (sim.folding.report.reason
                == "adaptive granularity observes per-link contention")

    def test_fluid_granularity_keeps_folding(self):
        from repro.core.config import SystemConfig
        from repro.core.simulator import Simulator

        topo = parse_topology("Ring(8)", [100.0], latencies_ns=[100.0])
        config = SystemConfig(topology=topo, granularity="fluid")
        sim = Simulator(_symmetric_traces(topo), config)
        assert sim.folding.active


class TestConfigWiring:
    def test_effective_backend_mapping(self):
        from repro.core.config import SystemConfig

        topo = parse_topology("Ring(4)", [100.0])
        assert SystemConfig(topology=topo).effective_backend() == "analytical"
        assert SystemConfig(
            topology=topo, granularity="fluid").effective_backend() == "flow"
        assert SystemConfig(
            topology=topo,
            granularity="packet").effective_backend() == "garnet"
        assert SystemConfig(
            topology=topo,
            granularity="adaptive").effective_backend() == "adaptive"
        assert SystemConfig(
            topology=topo,
            network_backend="garnet").effective_backend() == "garnet"

    def test_conflicting_granularity_backend_rejected(self):
        from repro.core.config import SystemConfig

        topo = parse_topology("Ring(4)", [100.0])
        with pytest.raises(ValueError):
            SystemConfig(topology=topo, granularity="adaptive",
                         network_backend="garnet")
        with pytest.raises(ValueError):
            SystemConfig(topology=topo, granularity="packet",
                         network_backend="flow")
        with pytest.raises(ValueError):
            SystemConfig(topology=topo, escalation_threshold=-2.0)
        with pytest.raises(ValueError):
            SystemConfig(topology=topo,
                         deescalation_hysteresis=float("inf"))

    def test_cli_adaptive_run(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--topology", "Ring(8)", "--bandwidths", "100",
            "--workload", "allreduce", "--payload-mib", "1",
            "--granularity", "adaptive", "--escalation-threshold", "1",
            "--deescalation-hysteresis", "1",
        ])
        assert code == 0
        assert "total    :" in capsys.readouterr().out

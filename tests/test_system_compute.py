"""Unit tests for the roofline compute model."""

import pytest

from repro.system import RooflineCompute


class TestRoofline:
    def test_compute_bound(self):
        # 234 TFLOP/s = 234e3 FLOP/ns.
        model = RooflineCompute(peak_tflops=234.0, mem_bandwidth_gbps=2039.0)
        flops = 234_000_000  # 1000 ns of compute
        assert model.compute_time_ns(flops, tensor_bytes=0) == pytest.approx(1000.0)

    def test_memory_bound(self):
        model = RooflineCompute(peak_tflops=234.0, mem_bandwidth_gbps=100.0)
        # 1 FLOP but 1e6 bytes: memory arm dominates.
        assert model.compute_time_ns(1, tensor_bytes=1_000_000) == pytest.approx(10000.0)

    def test_max_of_both_arms(self):
        model = RooflineCompute(peak_tflops=1.0, mem_bandwidth_gbps=1.0)
        t = model.compute_time_ns(5000, tensor_bytes=3000)
        assert t == pytest.approx(max(5000 / 1e3, 3000 / 1.0))

    def test_kernel_overhead_added(self):
        model = RooflineCompute(peak_tflops=1.0, kernel_overhead_ns=42.0)
        assert model.compute_time_ns(0) == pytest.approx(42.0)

    def test_no_memory_arm_when_unset(self):
        model = RooflineCompute(peak_tflops=1.0)
        assert model.compute_time_ns(0, tensor_bytes=10**12) == 0.0

    def test_intensity_break(self):
        model = RooflineCompute(peak_tflops=1.0, mem_bandwidth_gbps=500.0)
        assert model.operational_intensity_break() == pytest.approx(2.0)
        assert RooflineCompute(peak_tflops=1.0).operational_intensity_break() == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            RooflineCompute(peak_tflops=0)
        with pytest.raises(ValueError):
            RooflineCompute(peak_tflops=1, mem_bandwidth_gbps=-1)
        with pytest.raises(ValueError):
            RooflineCompute(peak_tflops=1, kernel_overhead_ns=-1)
        model = RooflineCompute(peak_tflops=1)
        with pytest.raises(ValueError):
            model.compute_time_ns(-1)

"""Unit tests for the send/recv collective executor."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology
from repro.system import SendRecvCollectiveExecutor


def _run(backend_cls, group, payload, notation="Ring(4)", bws=(150,),
         lats=(100,), gather_only=False, **backend_kwargs):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    net = backend_cls(engine, topo, **backend_kwargs)
    executor = SendRecvCollectiveExecutor(engine, net)
    result = {}
    if gather_only:
        executor.run_ring_allgather(group, payload,
                                    on_complete=lambda t: result.update(t=t))
    else:
        executor.run_ring_allreduce(group, payload,
                                    on_complete=lambda t: result.update(t=t))
    engine.run()
    return result["t"]


class TestRingAllReduce:
    def test_matches_closed_form_on_analytical(self):
        payload = 1 << 20
        t = _run(AnalyticalNetwork, [0, 1, 2, 3], payload)
        chunk = payload // 4
        expected = 2 * 3 * (100 + chunk / 150)
        assert t == pytest.approx(expected)

    def test_backends_agree_on_congestion_free_ring(self):
        payload = 1 << 20
        t_analytical = _run(AnalyticalNetwork, [0, 1, 2, 3], payload)
        t_garnet = _run(GarnetLiteNetwork, [0, 1, 2, 3], payload,
                        packet_bytes=payload // 4)
        assert t_garnet == pytest.approx(t_analytical, rel=1e-9)

    def test_time_scales_with_group_size(self):
        payload = 1 << 20
        t4 = _run(AnalyticalNetwork, list(range(4)), payload,
                  notation="Ring(16)", bws=(150,))
        t16 = _run(AnalyticalNetwork, list(range(16)), payload,
                   notation="Ring(16)", bws=(150,))
        # 2(k-1)/k * S serialization: grows with k (and latency steps too).
        assert t16 > t4

    def test_trivial_group_completes_at_zero(self):
        t = _run(AnalyticalNetwork, [0], 1 << 20)
        assert t == 0.0

    def test_duplicate_group_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [150])
        executor = SendRecvCollectiveExecutor(engine, AnalyticalNetwork(engine, topo))
        with pytest.raises(ValueError):
            executor.run_ring_allreduce([0, 0, 1], 100)


class TestRingAllGather:
    def test_half_the_steps_of_allreduce(self):
        payload = 1 << 20
        t_ar = _run(AnalyticalNetwork, [0, 1, 2, 3], payload)
        t_ag = _run(AnalyticalNetwork, [0, 1, 2, 3], payload, gather_only=True)
        assert t_ag == pytest.approx(t_ar / 2)


class TestConcurrentCollectives:
    def test_tag_isolation_between_runs(self):
        engine = EventEngine()
        topo = parse_topology("Ring(8)", [150], latencies_ns=[100])
        net = AnalyticalNetwork(engine, topo)
        executor = SendRecvCollectiveExecutor(engine, net)
        done = []
        executor.run_ring_allreduce([0, 1, 2, 3], 1 << 16,
                                    on_complete=lambda t: done.append(("a", t)))
        executor.run_ring_allreduce([4, 5, 6, 7], 1 << 16,
                                    on_complete=lambda t: done.append(("b", t)))
        engine.run()
        assert len(done) == 2
        # Disjoint rings on disjoint links: identical times.
        assert done[0][1] == pytest.approx(done[1][1])

"""Unit tests for ZeRO-Infinity and the Fig. 5 pool-architecture variants."""

import pytest

from repro.memory import (
    HierMemConfig,
    HierarchicalRemoteMemory,
    MemoryRequest,
    MeshPool,
    MultiLevelSwitchPool,
    RingPool,
    ZeroInfinityConfig,
    ZeroInfinityMemory,
)
from repro.trace import TensorLocation

MiB = 1 << 20


def _remote(size):
    return MemoryRequest(size, location=TensorLocation.REMOTE)


class TestZeroInfinity:
    def test_dedicated_path_equation(self):
        mem = ZeroInfinityMemory(ZeroInfinityConfig(
            path_bandwidth_gbps=100.0, access_latency_ns=2000.0))
        assert mem.access_time_ns(_remote(100 * MiB)) == pytest.approx(
            2000.0 + 100 * MiB / 100.0
        )

    def test_local_rejected(self):
        mem = ZeroInfinityMemory(ZeroInfinityConfig())
        with pytest.raises(ValueError):
            mem.access_time_ns(MemoryRequest(10, location=TensorLocation.LOCAL))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZeroInfinityConfig(path_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            ZeroInfinityConfig(access_latency_ns=-1)
        with pytest.raises(ValueError):
            ZeroInfinityConfig(num_gpus=0)

    def test_time_independent_of_pool_shape(self):
        # ZeRO-Infinity's slow path is per-GPU: no sharing effects.
        small = ZeroInfinityMemory(ZeroInfinityConfig(num_gpus=16))
        large = ZeroInfinityMemory(ZeroInfinityConfig(num_gpus=1024))
        assert small.access_time_ns(_remote(MiB)) == large.access_time_ns(_remote(MiB))


def _pool_config(**overrides):
    params = dict(
        num_nodes=16, gpus_per_node=16, num_out_switches=4,
        num_remote_groups=16, mem_side_bw_gbps=100.0,
        gpu_side_out_bw_gbps=100.0, in_node_bw_gbps=100.0,
        chunk_bytes=MiB, access_latency_ns=0.0,
    )
    params.update(overrides)
    return HierMemConfig(**params)


class TestPoolArchitectures:
    def test_all_designs_return_positive_times(self):
        config = _pool_config()
        for cls in (MultiLevelSwitchPool, RingPool, MeshPool):
            assert cls(config).access_time_ns(_remote(64 * MiB)) > 0

    def test_ring_slowest_due_to_relaying(self):
        """Fig. 5's qualitative point: rings relay, switches don't."""
        config = _pool_config()
        switch_t = MultiLevelSwitchPool(config).access_time_ns(_remote(64 * MiB))
        mesh_t = MeshPool(config).access_time_ns(_remote(64 * MiB))
        ring_t = RingPool(config).access_time_ns(_remote(64 * MiB))
        assert ring_t > mesh_t > switch_t

    def test_hierarchical_tracks_multilevel_switch_when_mem_bound(self):
        """With the group bandwidth as the bottleneck, the hierarchical
        design and the two-level switch fabric deliver the same steady
        state; the hierarchical pipeline only adds its (tiny) fill."""
        config = _pool_config()
        hier = HierarchicalRemoteMemory(config).access_time_ns(_remote(64 * MiB))
        switch = MultiLevelSwitchPool(config).access_time_ns(_remote(64 * MiB))
        assert hier == pytest.approx(switch, rel=0.01)

    def test_zero_size_costs_latency_only(self):
        config = _pool_config(access_latency_ns=3.0)
        for cls in (MultiLevelSwitchPool, RingPool, MeshPool):
            assert cls(config).access_time_ns(_remote(0)) == 3.0

    def test_local_rejected(self):
        pool = RingPool(_pool_config())
        with pytest.raises(ValueError):
            pool.access_time_ns(MemoryRequest(10, location=TensorLocation.LOCAL))

    def test_larger_pools_relay_more_on_ring(self):
        small = RingPool(_pool_config(num_remote_groups=8))
        large = RingPool(_pool_config(num_remote_groups=128))
        # Per-GPU demand held constant; the bigger ring relays further but
        # also has more groups serving, so compare per-chunk beats.
        assert large.per_chunk_beat_ns() > small.per_chunk_beat_ns()

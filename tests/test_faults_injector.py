"""Unit tests for the runtime fault injector and the checkpoint model."""

import math

import pytest

from repro.events import EventEngine
from repro.faults import (
    CheckpointConfig,
    FaultInjector,
    FaultSchedule,
    FaultSpecError,
    checkpoint_overhead_ns,
    num_checkpoints,
    optimal_interval_ns,
    restart_cost_ns,
)
from repro.faults.checkpoint import DEFAULT_RESTART_OVERHEAD_NS
from repro.memory.capacity import TransformerSpec, transformer_footprint
from repro.network import AnalyticalNetwork, parse_topology
from repro.workload import ParallelismSpec


def make_injector(spec_text, topo_text="Ring(8)_Switch(2)"):
    topology = parse_topology(topo_text, [100] * len(topo_text.split("_")))
    engine = EventEngine()
    network = AnalyticalNetwork(engine, topology)
    injector = FaultInjector(FaultSchedule.parse(spec_text), topology)
    injector.install(engine, network)
    return engine, network, injector


class TestTargetValidation:
    def test_npu_out_of_range(self):
        topology = parse_topology("Ring(4)", [100])
        with pytest.raises(FaultSpecError, match="npu 9"):
            FaultInjector(FaultSchedule.parse("fail@npu9@t=0"), topology)

    def test_dim_out_of_range(self):
        topology = parse_topology("Ring(4)", [100])
        with pytest.raises(FaultSpecError, match="dim 1"):
            FaultInjector(
                FaultSchedule.parse("degrade@dim1:0.5x@t=0"), topology)

    def test_valid_targets_accepted(self):
        topology = parse_topology("Ring(4)_Switch(2)", [100, 50])
        FaultInjector(
            FaultSchedule.parse(
                "fail@npu7@t=0; degrade@dim1:0.5x@t=0; linkdown@dim0:link3@t=0"),
            topology)


class TestActivationWindows:
    def test_straggler_active_only_in_window(self):
        engine, _, injector = make_injector(
            "straggler@npu3:2x@t=100@for=100")
        assert injector.compute_factor(3) == 1.0
        engine.run(until=150)
        assert injector.compute_factor(3) == 2.0
        assert injector.compute_factor(4) == 1.0
        engine.run(until=300)
        assert injector.compute_factor(3) == 1.0

    def test_open_ended_fault_never_clears(self):
        engine, _, injector = make_injector("degrade@dim0:0.5x@t=100")
        engine.run(until=1e9)
        assert injector.bandwidth_scale(0) == 0.5

    def test_overlapping_faults_compose(self):
        engine, _, injector = make_injector(
            "straggler@npu0:2x@t=0@for=1000; straggler@npu0:3x@t=0@for=1000")
        engine.run(until=10)
        assert injector.compute_factor(0) == 6.0

    def test_linkdown_scale(self):
        engine, _, injector = make_injector("linkdown@dim1:link2@t=0@for=500")
        engine.run(until=10)
        assert injector.link_scale(1, 2) == 0.5
        assert injector.link_scale(1, 3) == 1.0
        assert injector.link_scale(0, 2) == 1.0

    def test_records_track_lifecycle(self):
        engine, _, injector = make_injector("straggler@npu0:2x@t=100@for=50")
        (record,) = injector.records
        assert record.activated_ns is None and not record.fired
        engine.run(until=1000)
        assert record.activated_ns == 100
        assert record.cleared_ns == 150

    def test_failure_times_recorded(self):
        engine, _, injector = make_injector("fail@npu1@t=250; fail@npu2@t=750")
        engine.run(until=1000)
        assert injector.failure_times == [250, 750]


class TestStretchHooks:
    def test_stretch_compute_charges_straggler(self):
        engine, _, injector = make_injector("straggler@npu5:1.5x@t=0@for=1e6")
        engine.run(until=10)
        assert injector.stretch_compute(5, 1000.0) == 1500.0
        assert injector.stretch_compute(6, 1000.0) == 1000.0
        (record,) = injector.records
        assert record.extra_ns == pytest.approx(500.0)

    def test_stretch_p2p_combines_straggler_and_link(self):
        engine, _, injector = make_injector(
            "straggler@npu2:2x@t=0@for=1e6; linkdown@dim0:link2@t=0@for=1e6")
        engine.run(until=10)
        # 2x slower sender through a half-bandwidth link: 4x injection time.
        assert injector.stretch_p2p(2, 0, 100.0) == pytest.approx(400.0)
        # Even attribution split between the two contributing faults.
        extras = sorted(r.extra_ns for r in injector.records)
        assert extras == pytest.approx([150.0, 150.0])

    def test_stretch_collective_uses_worst_member(self):
        engine, _, injector = make_injector(
            "straggler@npu1:1.2x@t=0@for=1e6; straggler@npu4:1.5x@t=0@for=1e6")
        engine.run(until=10)
        assert injector.stretch_collective(0, None, 1000.0) == \
            pytest.approx(1500.0)

    def test_stretch_collective_respects_membership(self):
        engine, _, injector = make_injector("straggler@npu4:1.5x@t=0@for=1e6")
        engine.run(until=10)
        stretched = injector.stretch_collective(0, frozenset({0, 1, 2}), 1000.0)
        assert stretched == 1000.0  # straggler not in the group
        stretched = injector.stretch_collective(0, frozenset({3, 4, 5}), 1000.0)
        assert stretched == pytest.approx(1500.0)

    def test_stretch_collective_dim_degrade(self):
        engine, _, injector = make_injector("degrade@dim1:0.5x@t=0@for=1e6")
        engine.run(until=10)
        assert injector.stretch_collective(1, None, 1000.0) == \
            pytest.approx(2000.0)
        assert injector.stretch_collective(0, None, 1000.0) == 1000.0

    def test_serialization_time_scales_with_degrade(self):
        engine, network, injector = make_injector("degrade@dim0:0.5x@t=0")
        # Before activation (t=0 event not fired yet) vs after.
        base = network.serialization_time(1000, 0)
        engine.run(until=10)
        degraded = network.serialization_time(1000, 0)
        assert degraded == pytest.approx(2 * base)


class TestReport:
    def test_report_counts_failures_and_restarts(self):
        engine, _, injector = make_injector("fail@npu0@t=1e6")
        engine.run(until=2e6)
        config = CheckpointConfig(interval_ns=1e5, snapshot_bytes=1e6,
                                  write_bandwidth_gbps=100.0,
                                  restart_overhead_ns=1e6)
        report = injector.report(total_ns=2e6, checkpoint=config)
        assert report.num_failures == 1
        assert report.num_checkpoints == 20
        assert report.checkpoint_overhead_ns == pytest.approx(20 * 1e4)
        # Failure at exactly a boundary: replay 0, overhead + reload only.
        assert report.restart_lost_ns == pytest.approx(1e6 + 1e4)

    def test_report_baseline_degradation(self):
        engine, _, injector = make_injector("straggler@npu0:2x@t=0@for=1e6")
        engine.run(until=1e6)
        report = injector.report(total_ns=1.5e6, baseline_ns=1.0e6)
        assert report.degradation_ns == pytest.approx(0.5e6)
        assert report.effective_total_ns == pytest.approx(1.5e6)

    def test_format_renders(self):
        engine, _, injector = make_injector(
            "straggler@npu0:2x@t=0@for=100; fail@npu1@t=500")
        engine.run(until=1000)
        text = injector.report(total_ns=1000.0).format()
        assert "straggler" in text
        assert "fail" in text
        assert "permanent failure" in text


class TestCheckpointModel:
    def test_snapshot_ns(self):
        config = CheckpointConfig(interval_ns=1e9, snapshot_bytes=2.5e9,
                                  write_bandwidth_gbps=25.0)
        assert config.snapshot_ns == pytest.approx(1e8)

    def test_num_checkpoints_and_overhead(self):
        config = CheckpointConfig(interval_ns=1e6, snapshot_bytes=100.0,
                                  write_bandwidth_gbps=1.0)
        assert num_checkpoints(config, 5.5e6) == 5
        assert checkpoint_overhead_ns(config, 5.5e6) == pytest.approx(500.0)
        assert num_checkpoints(config, 0.0) == 0

    def test_no_interval_means_no_checkpoints(self):
        config = CheckpointConfig(interval_ns=None)
        assert num_checkpoints(config, 1e9) == 0
        assert checkpoint_overhead_ns(config, 1e9) == 0.0

    def test_restart_cost_replays_since_last_checkpoint(self):
        config = CheckpointConfig(interval_ns=1e6, snapshot_bytes=1e3,
                                  write_bandwidth_gbps=1.0,
                                  restart_overhead_ns=5e5)
        # Failure at 3.25e6: last checkpoint at 3e6, replay 0.25e6.
        cost = restart_cost_ns(config, 3.25e6)
        assert cost == pytest.approx(5e5 + 1e3 + 0.25e6)

    def test_restart_cost_without_config_loses_prefix(self):
        assert restart_cost_ns(None, 7e6) == \
            pytest.approx(DEFAULT_RESTART_OVERHEAD_NS + 7e6)

    def test_restart_cost_without_interval_loses_prefix(self):
        config = CheckpointConfig(interval_ns=None, restart_overhead_ns=1e6)
        assert restart_cost_ns(config, 7e6) == pytest.approx(1e6 + 7e6)

    def test_restart_cost_rejects_negative_time(self):
        with pytest.raises(ValueError):
            restart_cost_ns(None, -1.0)

    def test_from_footprint_uses_model_state(self):
        model = TransformerSpec(name="toy", num_layers=12, hidden=2048,
                                seq_len=2048)
        footprint = transformer_footprint(model, ParallelismSpec(dp=8))
        config = CheckpointConfig.from_footprint(footprint, interval_ns=1e9)
        assert config.snapshot_bytes == float(footprint.model_state)
        assert config.snapshot_ns > 0

    def test_optimal_interval_is_youngs_formula(self):
        assert optimal_interval_ns(1e8, 1e12) == \
            pytest.approx(math.sqrt(2 * 1e8 * 1e12))
        with pytest.raises(ValueError):
            optimal_interval_ns(1e8, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval_ns=0.0)
        with pytest.raises(ValueError):
            CheckpointConfig(interval_ns=1.0, snapshot_bytes=-1.0)
        with pytest.raises(ValueError):
            CheckpointConfig(interval_ns=1.0, write_bandwidth_gbps=0.0)

"""Unit tests for parallelism-to-dimension assignment."""

import pytest

from repro.network import parse_topology
from repro.workload import ParallelismSpec, assign_dims
from repro.workload.parallelism import DimAssignmentError, fit_hybrid


def _conv4d():
    return parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])


class TestAssignDims:
    def test_paper_gpt3_mapping(self):
        """GPT-3 on Conv-4D: MP=16 on dims (0,1), DP=32 on dims (2,3)."""
        assignment = assign_dims(_conv4d(), ParallelismSpec(mp=16, dp=32))
        assert assignment["mp"] == (0, 1)
        assert assignment["dp"] == (2, 3)

    def test_transformer_1t_mapping(self):
        """T-1T: MP=128 on dims (0,1,2), DP=4 on dim 3."""
        assignment = assign_dims(_conv4d(), ParallelismSpec(mp=128, dp=4))
        assert assignment["mp"] == (0, 1, 2)
        assert assignment["dp"] == (3,)

    def test_pure_dp_takes_all_dims(self):
        assignment = assign_dims(_conv4d(), ParallelismSpec(dp=512))
        assert assignment["dp"] == (0, 1, 2, 3)
        assert assignment["mp"] == ()

    def test_pipeline_between_mp_and_dp(self):
        topo = parse_topology("Ring(4)_Ring(8)_Switch(2)", [100, 100, 50])
        assignment = assign_dims(topo, ParallelismSpec(mp=4, pp=8, dp=2))
        assert assignment["mp"] == (0,)
        assert assignment["pp"] == (1,)
        assert assignment["dp"] == (2,)

    def test_expert_parallelism_slot(self):
        topo = parse_topology("Ring(4)_Ring(8)_Switch(2)", [100, 100, 50])
        assignment = assign_dims(topo, ParallelismSpec(mp=4, ep=8, dp=2))
        assert assignment["ep"] == (1,)

    def test_total_mismatch_rejected(self):
        with pytest.raises(DimAssignmentError):
            assign_dims(_conv4d(), ParallelismSpec(mp=16, dp=16))

    def test_misaligned_degree_rejected(self):
        # MP=4 cannot align: dims are 2 then 8 (product 2 -> 16, never 4).
        with pytest.raises(DimAssignmentError):
            assign_dims(_conv4d(), ParallelismSpec(mp=4, dp=128))

    def test_degrees_validated(self):
        with pytest.raises(ValueError):
            ParallelismSpec(mp=0)


class TestFitHybrid:
    def test_fills_remaining_with_dp(self):
        spec = fit_hybrid(_conv4d(), mp=16)
        assert spec.mp == 16 and spec.dp == 32
        assert spec.total == 512

    def test_indivisible_rejected(self):
        with pytest.raises(DimAssignmentError):
            fit_hybrid(_conv4d(), mp=7)

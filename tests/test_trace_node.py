"""Unit tests for the ET node schema."""

import pytest

from repro.trace import CollectiveType, ETNode, NodeType, TensorLocation


def test_compute_node_classification():
    node = ETNode(0, NodeType.COMPUTE, flops=100)
    assert node.is_compute
    assert not node.is_comm
    assert not node.is_memory


def test_memory_node_classification():
    load = ETNode(0, NodeType.MEMORY_LOAD, tensor_bytes=64)
    store = ETNode(1, NodeType.MEMORY_STORE, tensor_bytes=64)
    assert load.is_memory and store.is_memory
    assert load.location is TensorLocation.LOCAL


def test_collective_node_requires_collective_type():
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=4)


def test_collective_node_classification():
    node = ETNode(
        0, NodeType.COMM_COLLECTIVE, tensor_bytes=4,
        collective=CollectiveType.ALL_REDUCE,
    )
    assert node.is_comm and node.is_collective and not node.is_p2p


def test_p2p_node_requires_peer():
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMM_SEND, tensor_bytes=4)
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMM_RECV, tensor_bytes=4, peer=-1)


def test_p2p_node_classification():
    node = ETNode(0, NodeType.COMM_SEND, tensor_bytes=4, peer=3)
    assert node.is_p2p and node.is_comm and not node.is_collective


def test_self_dependency_rejected():
    with pytest.raises(ValueError):
        ETNode(5, NodeType.COMPUTE, flops=1, deps=(5,))


def test_negative_sizes_rejected():
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMPUTE, flops=-1)
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMPUTE, flops=1, tensor_bytes=-1)
    with pytest.raises(ValueError):
        ETNode(-1, NodeType.COMPUTE, flops=1)


def test_empty_compute_node_rejected():
    with pytest.raises(ValueError):
        ETNode(0, NodeType.COMPUTE)


def test_deps_normalized_to_tuple():
    node = ETNode(3, NodeType.COMPUTE, flops=1, deps=[0, 1])
    assert node.deps == (0, 1)
    node2 = ETNode(
        4, NodeType.COMM_COLLECTIVE, tensor_bytes=1,
        collective=CollectiveType.ALL_GATHER, comm_dims=[0, 2],
    )
    assert node2.comm_dims == (0, 2)

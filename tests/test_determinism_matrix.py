"""Seed-determinism matrix: every backend x memory-model combo, twice.

Two runs of the same configuration must export bit-identical
``result_to_dict`` documents — the reproducibility contract the run
cache, golden suite, and conformance reports all build on.  The matrix
covers what each backend supports: the analytical backend runs every
memory model (collectives + remote I/O); the packet and flow backends
are p2p-only, so they run the local model on a pure-pipeline workload.
"""

import json

import pytest

from repro.core import Simulator, SystemConfig
from repro.memory import (
    HierMemConfig,
    HierarchicalRemoteMemory,
    LocalMemory,
    ZeroInfinityConfig,
    ZeroInfinityMemory,
)
from repro.network import parse_topology
from repro.stats.export import result_to_dict
from repro.system import RooflineCompute
from repro.trace import (
    CollectiveType,
    ETNode,
    ExecutionTrace,
    NodeType,
    TensorLocation,
)
from repro.validate import InvariantConfig
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.models import TransformerSpec

MiB = 1 << 20


def _remote_traces():
    """Remote load -> compute -> All-Reduce -> remote store, 8 NPUs."""
    nodes = [
        ETNode(0, NodeType.MEMORY_LOAD, name="load.params",
               tensor_bytes=4 * MiB, location=TensorLocation.REMOTE),
        ETNode(1, NodeType.COMPUTE, name="fwd", flops=1 << 24,
               tensor_bytes=1 * MiB, deps=(0,)),
        ETNode(2, NodeType.COMM_COLLECTIVE, name="grad.allreduce",
               tensor_bytes=2 * MiB, deps=(1,),
               collective=CollectiveType.ALL_REDUCE),
        ETNode(3, NodeType.MEMORY_STORE, name="store.grads",
               tensor_bytes=4 * MiB, deps=(2,),
               location=TensorLocation.REMOTE),
    ]
    return {0: ExecutionTrace(0, nodes)}


def _pp_traces(topology):
    model = TransformerSpec("tiny", num_layers=8, hidden=64, seq_len=32,
                            batch_per_replica=2)
    return generate_pipeline_parallel(
        model, topology, ParallelismSpec(pp=8), microbatches=2)


def _memory_model(name):
    if name == "local":
        return None
    if name == "hiermem":
        return HierarchicalRemoteMemory(HierMemConfig(
            num_nodes=2, gpus_per_node=4, num_out_switches=2,
            num_remote_groups=8, mem_side_bw_gbps=100.0,
            gpu_side_out_bw_gbps=256.0, in_node_bw_gbps=256.0,
            chunk_bytes=1 * MiB, access_latency_ns=1000.0))
    if name == "zero-infinity":
        return ZeroInfinityMemory(ZeroInfinityConfig(
            path_bandwidth_gbps=100.0, access_latency_ns=2000.0))
    raise ValueError(name)


def _run_once(backend, memory):
    topo = parse_topology("Ring(2)_Switch(4)", [200.0, 50.0],
                          latencies_ns=[100.0, 500.0])
    if backend == "analytical":
        traces = _remote_traces()
        if memory == "local":
            # Local control: same graph with every tensor resident.
            nodes = [ETNode(
                n.node_id, n.node_type, name=n.name, flops=n.flops,
                tensor_bytes=n.tensor_bytes, deps=n.deps,
                collective=n.collective,
            ) for n in traces[0].nodes]
            traces = {0: ExecutionTrace(0, nodes)}
    else:
        traces = _pp_traces(topo)
    config = SystemConfig(
        topology=topo,
        network_backend=backend,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
        remote_memory=_memory_model(memory),
        collective_chunks=4,
    )
    return json.dumps(result_to_dict(Simulator(traces, config).run()),
                      sort_keys=True)


MATRIX = (
    [("analytical", m) for m in ("local", "hiermem", "zero-infinity")]
    + [(b, "local") for b in ("garnet", "flow")]
)


class TestDeterminismMatrix:
    @pytest.mark.parametrize("backend,memory", MATRIX,
                             ids=[f"{b}-{m}" for b, m in MATRIX])
    def test_two_runs_bit_identical(self, backend, memory):
        assert _run_once(backend, memory) == _run_once(backend, memory)

    def test_check_invariants_does_not_perturb_results(self):
        """The checker observes; it must never change simulated time."""
        topo = parse_topology("Ring(2)_Switch(4)", [200.0, 50.0])
        plain = Simulator(
            _remote_traces(),
            SystemConfig(topology=topo,
                         remote_memory=_memory_model("hiermem"))).run()
        checked = Simulator(
            _remote_traces(),
            SystemConfig(topology=topo,
                         remote_memory=_memory_model("hiermem"),
                         invariants=InvariantConfig())).run()
        assert checked.invariants is not None and checked.invariants.ok
        checked_doc = result_to_dict(checked)
        checked_doc.pop("invariants")
        assert json.dumps(checked_doc, sort_keys=True) == json.dumps(
            result_to_dict(plain), sort_keys=True)

"""Unit tests for the fault taxonomy, spec parser, and seeded generator."""

import pytest

from repro.faults import (
    LINK_DOWN_DEFAULT_FACTOR,
    FaultKind,
    FaultSchedule,
    FaultSpec,
    FaultSpecError,
    parse_fault,
    parse_faults,
    parse_time_ns,
)


class TestTimeParsing:
    @pytest.mark.parametrize("text,expected", [
        ("5", 5.0),
        ("5ns", 5.0),
        ("2us", 2e3),
        ("2ms", 2e6),
        ("1.5ms", 1.5e6),
        ("3s", 3e9),
        ("1e3us", 1e6),
    ])
    def test_units(self, text, expected):
        assert parse_time_ns(text) == expected

    @pytest.mark.parametrize("text", ["", "ms", "2 ms", "2m", "-5ns"])
    def test_rejects_garbage(self, text):
        with pytest.raises(FaultSpecError):
            parse_time_ns(text)


class TestParseFault:
    def test_straggler(self):
        fault = parse_fault("straggler@npu3:1.5x@t=2ms")
        assert fault.kind is FaultKind.STRAGGLER
        assert fault.npu == 3
        assert fault.factor == 1.5
        assert fault.start_ns == 2e6
        assert fault.duration_ns is None
        assert fault.end_ns == float("inf")

    def test_straggler_with_duration(self):
        fault = parse_fault("straggler@npu3:2x@t=2ms@for=500us")
        assert fault.duration_ns == 5e5
        assert fault.end_ns == 2e6 + 5e5

    def test_linkdown(self):
        fault = parse_fault("linkdown@dim1:link4@t=5ms")
        assert fault.kind is FaultKind.LINK_DOWN
        assert fault.dim == 1
        assert fault.npu == 4
        assert fault.factor == LINK_DOWN_DEFAULT_FACTOR

    def test_linkdown_explicit_factor(self):
        fault = parse_fault("linkdown@dim0:link2:0.25x@t=0")
        assert fault.factor == 0.25

    def test_degrade(self):
        fault = parse_fault("degrade@dim2:0.5x@t=1us")
        assert fault.kind is FaultKind.DEGRADE
        assert fault.dim == 2
        assert fault.factor == 0.5

    def test_stall(self):
        fault = parse_fault("stall@npu7@t=1ms@for=100us")
        assert fault.kind is FaultKind.STALL
        assert fault.duration_ns == 1e5

    def test_fail(self):
        fault = parse_fault("fail@npu12@t=8ms")
        assert fault.kind is FaultKind.NPU_FAIL
        assert fault.npu == 12

    def test_parse_list(self):
        faults = parse_faults(
            "straggler@npu0:1.5x@t=0; degrade@dim0:0.9x@t=1ms;")
        assert len(faults) == 2
        assert faults[0].kind is FaultKind.STRAGGLER
        assert faults[1].kind is FaultKind.DEGRADE

    @pytest.mark.parametrize("text", [
        "straggler@npu3",                      # missing t=
        "straggler@npu3@t=0",                  # missing factor
        "straggler@npu3:0.5x@t=0",             # slowdown < 1
        "degrade@dim0:1.5x@t=0",               # fraction > 1
        "degrade@dim0:0x@t=0",                 # fraction = 0
        "stall@npu1@t=0",                      # stall needs duration
        "fail@npu1@t=0@for=1ms",               # permanent can't clear
        "linkdown@dim0@t=0",                   # missing link
        "explode@npu1@t=0",                    # unknown kind
        "straggler@gpu3:1.5x@t=0",             # bad target prefix
        "straggler@npu3:1.5x@t=0@huh=2",       # unknown clause
    ])
    def test_rejects_bad_specs(self, text):
        with pytest.raises(FaultSpecError):
            parse_fault(text)

    @pytest.mark.parametrize("text", [
        "straggler@npu3:1.5x@t=2ms",
        "straggler@npu3:2x@t=2ms@for=500us",
        "linkdown@dim1:link4@t=5ms",
        "linkdown@dim0:link2:0.25x@t=0",
        "degrade@dim2:0.5x@t=1us",
        "stall@npu7@t=1ms@for=100us",
        "fail@npu12@t=8ms",
    ])
    def test_describe_round_trips(self, text):
        fault = parse_fault(text)
        assert parse_fault(fault.describe()) == fault


class TestSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule.empty()
        assert not FaultSchedule(())
        assert len(FaultSchedule.empty()) == 0

    def test_nonempty_schedule_is_truthy(self):
        schedule = FaultSchedule.parse("fail@npu0@t=1ms")
        assert schedule
        assert len(schedule) == 1

    def test_sorted_by_start_time(self):
        schedule = FaultSchedule.parse(
            "fail@npu0@t=5ms; stall@npu1@t=1ms@for=1ms; fail@npu2@t=3ms")
        starts = [f.start_ns for f in schedule]
        assert starts == sorted(starts)

    def test_merge(self):
        a = FaultSchedule.parse("fail@npu0@t=5ms")
        b = FaultSchedule.parse("fail@npu1@t=1ms")
        merged = FaultSchedule.merge([a, b])
        assert len(merged) == 2
        assert merged.faults[0].npu == 1  # re-sorted by time

    def test_describe_round_trips(self):
        schedule = FaultSchedule.parse(
            "straggler@npu3:1.5x@t=2ms;linkdown@dim1:link4@t=5ms")
        assert FaultSchedule.parse(schedule.describe()) == schedule


class TestGenerate:
    def test_same_seed_same_schedule(self):
        kwargs = dict(num_npus=64, num_dims=2, horizon_ns=10e6,
                      straggler_mtbf_ns=1e6, stall_mtbf_ns=2e6,
                      degrade_mtbf_ns=2e6, linkdown_mtbf_ns=2e6,
                      fail_mtbf_ns=5e6)
        assert (FaultSchedule.generate(seed=7, **kwargs)
                == FaultSchedule.generate(seed=7, **kwargs))

    def test_different_seeds_differ(self):
        kwargs = dict(num_npus=64, num_dims=2, horizon_ns=10e6,
                      straggler_mtbf_ns=0.5e6)
        assert (FaultSchedule.generate(seed=1, **kwargs)
                != FaultSchedule.generate(seed=2, **kwargs))

    def test_targets_within_bounds(self):
        schedule = FaultSchedule.generate(
            seed=3, num_npus=8, num_dims=2, horizon_ns=50e6,
            straggler_mtbf_ns=1e6, stall_mtbf_ns=1e6, degrade_mtbf_ns=1e6,
            linkdown_mtbf_ns=1e6, fail_mtbf_ns=10e6)
        assert len(schedule) > 0
        for fault in schedule:
            assert 0 <= fault.start_ns < 50e6
            if fault.npu is not None:
                assert 0 <= fault.npu < 8
            if fault.dim is not None:
                assert 0 <= fault.dim < 2

    def test_disabled_kinds_absent(self):
        schedule = FaultSchedule.generate(
            seed=3, num_npus=8, num_dims=1, horizon_ns=50e6,
            straggler_mtbf_ns=1e6)
        kinds = {f.kind for f in schedule}
        assert kinds == {FaultKind.STRAGGLER}

    def test_records_seed_provenance(self):
        schedule = FaultSchedule.generate(
            seed=9, num_npus=4, num_dims=1, horizon_ns=1e6)
        assert schedule.seed == 9

    def test_rejects_bad_args(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule.generate(seed=0, num_npus=0, num_dims=1,
                                   horizon_ns=1e6)
        with pytest.raises(FaultSpecError):
            FaultSchedule.generate(seed=0, num_npus=1, num_dims=1,
                                   horizon_ns=0)
        with pytest.raises(FaultSpecError):
            FaultSchedule.generate(seed=0, num_npus=1, num_dims=1,
                                   horizon_ns=1e6, straggler_mtbf_ns=-1)


class TestFaultSpecValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.NPU_FAIL, start_ns=-1.0, npu=0)

    def test_missing_target_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.STRAGGLER, start_ns=0.0, factor=2.0)
        with pytest.raises(FaultSpecError):
            FaultSpec(kind=FaultKind.DEGRADE, start_ns=0.0, factor=0.5)

"""End-to-end HTTP tests for the ``repro serve`` daemon.

Every test binds a real :class:`~repro.campaign.serve.ReproServer` on an
ephemeral port and talks to it over a socket — the contract under test
is the wire behaviour: served responses bit-identical to in-process
runs, cross-client cache dedup, NDJSON streaming in spec order, 429
backpressure under a saturated queue, and error-path status codes.
"""

import json
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro.campaign import ServeConfig, serve_in_thread, shutdown_shared_pool
from repro.campaign.runner import CampaignRunner, normalize_point, run_point
from repro.campaign.spec import SweepSpec

POINT = {"topology": "Ring(4)", "bandwidths": "100",
         "workload": "allreduce", "trace_level": "collective"}
SWEEP = {"base": POINT, "grid": {"payload_mib": [1, 2, 3]}}


def canon(doc):
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


@contextmanager
def serving(**overrides):
    """A live daemon on an ephemeral port; yields its base URL + server."""
    config = ServeConfig(host="127.0.0.1", port=0, jobs=0,
                         **{k: v for k, v in overrides.items()
                            if k != "executor"})
    server = serve_in_thread(config, executor=overrides.get("executor"))
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.shutdown()
        server.server_close()
        shutdown_shared_pool()


def get(url):
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, dict(resp.headers), resp.read()


def post(url, doc, timeout=60):
    request = urllib.request.Request(
        url, data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestRunEndpoint:
    def test_response_bit_identical_to_in_process_run(self, tmp_path):
        with serving(cache_dir=str(tmp_path)) as (base, _server):
            status, headers, body = post(base + "/run", POINT)
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        local = run_point(normalize_point(POINT))
        assert body.decode() == canon(local)

    def test_identical_clients_dedup_through_the_cache(self, tmp_path):
        with serving(cache_dir=str(tmp_path)) as (base, server):
            _s1, h1, body1 = post(base + "/run", POINT)
            _s2, h2, body2 = post(base + "/run", POINT)
            counters = server.cache.counters()
        assert (h1["X-Repro-Cache"], h2["X-Repro-Cache"]) == ("miss", "hit")
        assert body1 == body2
        assert counters["hits"] == 1 and counters["misses"] == 1

    def test_unnormalized_and_normalized_requests_share_an_entry(
            self, tmp_path):
        # "1" from one client and 1.0 from another are the same config
        with serving(cache_dir=str(tmp_path)) as (base, _server):
            _s1, h1, _b1 = post(base + "/run",
                                dict(POINT, payload_mib="1"))
            _s2, h2, _b2 = post(base + "/run",
                                dict(POINT, payload_mib=1.0))
        assert (h1["X-Repro-Cache"], h2["X-Repro-Cache"]) == ("miss", "hit")

    def test_invalid_config_is_400_with_structured_error(self):
        with serving() as (base, _server):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base + "/run", dict(POINT, no_such_field=1))
            assert excinfo.value.code == 400
            error = json.loads(excinfo.value.read())["error"]
            assert error["type"] == "PointConfigError"
            assert "no_such_field" in error["message"]

    def test_non_object_body_is_400(self):
        with serving() as (base, _server):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base + "/run", [1, 2, 3])
            assert excinfo.value.code == 400

    def test_unknown_endpoint_is_404(self):
        with serving() as (base, _server):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base + "/nope", {})
            assert excinfo.value.code == 404


class TestSweepEndpoint:
    def test_ndjson_streams_in_spec_order_with_summary(self):
        with serving() as (base, _server):
            status, headers, body = post(base + "/sweep", SWEEP)
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = body.decode().splitlines()
        records, summary = lines[:-1], json.loads(lines[-1])
        assert [json.loads(line)["index"] for line in records] == [0, 1, 2]
        assert summary["summary"]["points"] == 3
        assert summary["summary"]["errors"] == 0

    def test_streamed_records_match_in_process_runner(self):
        with serving() as (base, _server):
            _status, _headers, body = post(base + "/sweep", SWEEP)
        lines = body.decode().splitlines()
        local = CampaignRunner(jobs=0).run(SweepSpec.from_dict(SWEEP))
        assert lines[:-1] == [canon(p).rstrip("\n") for p in local.points]

    def test_wrapped_spec_with_options(self):
        with serving() as (base, _server):
            _status, _headers, body = post(
                base + "/sweep",
                {"spec": SWEEP, "jobs": 0, "batch_size": 2})
        summary = json.loads(body.decode().splitlines()[-1])
        assert summary["summary"]["points"] == 3

    def test_failed_point_streams_as_error_record(self):
        bad = {"base": POINT, "grid": {"scheduler": ["nope", "baseline"]}}
        with serving() as (base, _server):
            _status, _headers, body = post(base + "/sweep", bad)
        lines = [json.loads(line) for line in body.decode().splitlines()]
        assert lines[0]["error"]["type"] == "PointConfigError"
        assert lines[1]["error"] is None
        assert lines[-1]["summary"]["errors"] == 1

    def test_invalid_sweep_field_is_400_before_streaming(self):
        bad = {"base": POINT, "grid": {"no_such_field": [1, 2]}}
        with serving() as (base, _server):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base + "/sweep", bad)
            assert excinfo.value.code == 400
            error = json.loads(excinfo.value.read())["error"]
            assert error["type"] == "PointConfigError"


def blocking_executor(point):
    """Parks the request thread until the test releases it."""
    blocking_executor.started.set()
    assert blocking_executor.release.wait(timeout=30)
    return {"total_time_ns": 1.0}


blocking_executor.started = threading.Event()
blocking_executor.release = threading.Event()


class TestBackpressure:
    def test_saturated_queue_answers_429_with_retry_after(self):
        blocking_executor.started = threading.Event()
        blocking_executor.release = threading.Event()
        outcome = {}

        def client_a(base):
            outcome["a"] = post(base + "/run", POINT)[0]

        with serving(queue_depth=1,
                     executor=blocking_executor) as (base, server):
            thread = threading.Thread(target=client_a, args=(base,))
            thread.start()
            assert blocking_executor.started.wait(timeout=30)
            # the single queue slot is now held by the parked request
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(base + "/run", POINT)
            assert excinfo.value.code == 429
            assert excinfo.value.headers["Retry-After"]
            assert "saturated" in json.loads(
                excinfo.value.read())["error"]
            blocking_executor.release.set()
            thread.join(timeout=30)
            rejected = server.metrics.value(
                "campaign", "http_rejected", endpoint="run")
        assert outcome["a"] == 200  # the admitted request still completed
        assert rejected == 1

    def test_slot_is_released_after_completion(self):
        blocking_executor.started = threading.Event()
        blocking_executor.release = threading.Event()
        blocking_executor.release.set()  # never park
        with serving(queue_depth=1,
                     executor=blocking_executor) as (base, _server):
            assert post(base + "/run", POINT)[0] == 200
            assert post(base + "/run", POINT)[0] == 200


class TestIntrospection:
    def test_healthz(self):
        with serving() as (base, _server):
            status, _headers, body = get(base + "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_stats_reports_counters_cache_and_fleet(self, tmp_path):
        with serving(cache_dir=str(tmp_path)) as (base, _server):
            post(base + "/run", POINT)
            post(base + "/sweep", SWEEP)
            _status, _headers, body = get(base + "/stats")
        stats = json.loads(body)
        assert stats["queue_depth"] == 8
        assert stats["uptime_s"] >= 0
        counters = {(m["name"], m["labels"].get("endpoint")): m["value"]
                    for m in stats["counters"]}
        assert counters[("http_requests", "run")] == 1
        assert counters[("http_requests", "sweep")] == 1
        assert counters[("runs_served", None)] == 1
        assert counters[("sweeps_served", None)] == 1
        assert stats["cache"]["misses"] >= 1
        assert stats["pool"] is None  # jobs=0: no fleet was started

    def test_unknown_get_is_404(self):
        with serving() as (base, _server):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(base + "/metrics")
            assert excinfo.value.code == 404

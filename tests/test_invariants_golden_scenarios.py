"""Satellite: the paper's golden scenarios re-run with invariants on.

Two properties per scenario family (Table IV, Fig. 4, Table V):

1. the runs are *invariant-clean* — zero violations on the exact
   configurations the golden suite pins; and
2. the checker is *observation-only* — enabling it does not move
   simulated time by a single ULP relative to the frozen goldens.
"""

import json
from pathlib import Path

import pytest

import repro
from repro.configs import conv_4d_scaled
from repro.configs.table5 import (
    hiermem_baseline,
    hiermem_opt,
    zero_infinity_table5,
)
from repro.core import Simulator, SystemConfig
from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology
from repro.system import SendRecvCollectiveExecutor
from repro.trace import ETNode, ExecutionTrace, NodeType, TensorLocation
from repro.validate import InvariantChecker, InvariantConfig
from repro.workload.generators import generate_single_collective

MiB = 1 << 20
GiB = 1 << 30
GOLDEN_DIR = Path(__file__).parent / "golden"


def _golden(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())["values"]


class TestTable4Checked:
    # One narrow and one wide shape keep the runtime tier-1 friendly
    # while covering both ends of the last-dim scaling axis.
    @pytest.mark.parametrize("shape", ["2_8_8_4", "8_8_8_4"])
    def test_shape_is_clean_and_unperturbed(self, shape):
        dim1, _, _, last = (int(p) for p in shape.split("_"))
        topology = conv_4d_scaled(last_dim=last, dim1=dim1)
        traces = generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, GiB)
        config = SystemConfig(
            topology=topology, scheduler="baseline", collective_chunks=64,
            invariants=InvariantConfig())
        result = repro.simulate(traces, config)
        assert result.invariants.ok, result.invariants.counts_by_name()
        golden = _golden("table4")["shapes"][shape]
        assert result.total_time_ns == golden["total_time_ns"]
        assert result.events_processed == golden["events_processed"]


class TestFig4Checked:
    @pytest.mark.parametrize("num_gpus,payload_mib",
                             [(4, 64), (16, 256)])
    def test_executor_point_is_clean_and_unperturbed(self, num_gpus,
                                                     payload_mib):
        topo = parse_topology(f"Ring({num_gpus})", [150.0],
                              latencies_ns=[700.0])
        engine = EventEngine()
        network = AnalyticalNetwork(engine, topo)
        checker = InvariantChecker(InvariantConfig()).install(
            engine, network=network)
        executor = SendRecvCollectiveExecutor(engine, network)
        out = {}
        executor.run_ring_allreduce(
            list(range(num_gpus)), payload_mib * MiB,
            on_complete=lambda t: out.update(t=t))
        engine.run()
        report = checker.finalize(engine.now)
        assert report.ok, report.counts_by_name()
        assert report.checks > 0
        golden = _golden("fig4")["simulated_ns"]
        assert out["t"] == golden[f"{num_gpus}gpu_{payload_mib}mib"]


def _table5_workload():
    """Cheap stand-in for the moe_1t step: remote I/O around a tiny MoE
    All-to-All + All-Reduce, exercising the same memory path Table V
    measures without simulating 1T parameters."""
    nodes = [
        ETNode(0, NodeType.MEMORY_LOAD, name="load.experts",
               tensor_bytes=8 * MiB, location=TensorLocation.REMOTE),
        ETNode(1, NodeType.COMPUTE, name="moe.fwd", flops=1 << 26,
               tensor_bytes=2 * MiB, deps=(0,)),
        ETNode(2, NodeType.COMM_COLLECTIVE, name="dispatch.alltoall",
               tensor_bytes=4 * MiB, deps=(1,),
               collective=repro.CollectiveType.ALL_TO_ALL),
        ETNode(3, NodeType.COMM_COLLECTIVE, name="grad.allreduce",
               tensor_bytes=4 * MiB, deps=(2,),
               collective=repro.CollectiveType.ALL_REDUCE),
        ETNode(4, NodeType.MEMORY_STORE, name="store.optimizer",
               tensor_bytes=8 * MiB, deps=(3,),
               location=TensorLocation.REMOTE),
    ]
    return {0: ExecutionTrace(0, nodes)}


class TestTable5Checked:
    @pytest.mark.parametrize("make_config", [
        zero_infinity_table5, hiermem_baseline, hiermem_opt,
    ], ids=["zero-infinity", "hiermem-baseline", "hiermem-opt"])
    def test_config_is_invariant_clean(self, make_config):
        config = make_config()
        checked = SystemConfig(
            topology=config.topology,
            scheduler=config.scheduler,
            compute=config.compute,
            local_memory=config.local_memory,
            remote_memory=config.remote_memory,
            collective_chunks=config.collective_chunks,
            invariants=InvariantConfig(),
        )
        result = Simulator(_table5_workload(), checked).run()
        assert result.invariants.ok, result.invariants.counts_by_name()
        assert result.invariants.checks > 0
        assert result.total_time_ns > 0

"""Unit tests for the Direct and Halving-Doubling executors (Table I)."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology
from repro.system import SendRecvCollectiveExecutor


def _run(algorithm, backend_cls, group, payload, notation, bws, lats,
         **backend_kwargs):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    net = backend_cls(engine, topo, **backend_kwargs)
    executor = SendRecvCollectiveExecutor(engine, net)
    result = {}
    getattr(executor, algorithm)(group, payload,
                                 on_complete=lambda t: result.update(t=t))
    engine.run()
    return result["t"]


class TestDirectAllReduce:
    def test_bandwidth_term_matches_phase_model(self):
        """RS + AG each serialize payload*(k-1)/k per NPU."""
        k, payload = 8, 1 << 20
        t = _run("run_direct_allreduce", AnalyticalNetwork, list(range(k)),
                 payload, f"FC({k})", (100,), (0,))
        expected = 2 * (payload * (k - 1) / k) / 100
        assert t == pytest.approx(expected, rel=0.01)

    def test_latency_is_one_step_per_half(self):
        k, payload = 4, 1 << 10
        lat = 10_000.0  # dominate the bandwidth term
        t = _run("run_direct_allreduce", AnalyticalNetwork, list(range(k)),
                 payload, f"FC({k})", (1000,), (lat,))
        # Two phases; each costs ~one propagation on top of serialization.
        assert t == pytest.approx(2 * lat, rel=0.05)

    def test_agrees_with_garnet_on_fc(self):
        k, payload = 4, 1 << 16
        args = (list(range(k)), payload, f"FC({k})", (100,), (100,))
        t_a = _run("run_direct_allreduce", AnalyticalNetwork, *args)
        t_g = _run("run_direct_allreduce", GarnetLiteNetwork, *args,
                   packet_bytes=payload // k)
        # Garnet splits the dim bandwidth across k-1 links, so concurrent
        # personalized sends run in parallel at 1/(k-1) rate each — same
        # aggregate serialization the analytical port enforces.
        assert t_g == pytest.approx(t_a, rel=0.05)

    def test_trivial_group(self):
        t = _run("run_direct_allreduce", AnalyticalNetwork, [0], 1 << 10,
                 "FC(4)", (100,), (0,))
        assert t == 0.0

    def test_duplicates_rejected(self):
        engine = EventEngine()
        topo = parse_topology("FC(4)", [100])
        executor = SendRecvCollectiveExecutor(
            engine, AnalyticalNetwork(engine, topo))
        with pytest.raises(ValueError):
            executor.run_direct_allreduce([0, 0, 1], 100)


class TestHalvingDoublingAllReduce:
    def test_bandwidth_term_is_optimal(self):
        """Total serialized traffic per NPU: payload*(k-1)/k per half."""
        k, payload = 8, 1 << 20
        t = _run("run_halving_doubling_allreduce", AnalyticalNetwork,
                 list(range(k)), payload, f"Switch({k})", (100,), (0,))
        expected = 2 * (payload * (k - 1) / k) / 100
        assert t == pytest.approx(expected, rel=0.01)

    def test_log_k_latency_steps_per_half(self):
        k, payload = 8, 1 << 10
        lat = 10_000.0
        t = _run("run_halving_doubling_allreduce", AnalyticalNetwork,
                 list(range(k)), payload, f"Switch({k})", (1000,), (lat,))
        # 2*log2(8)=6 steps, each crossing the switch (2 hops x lat).
        assert t == pytest.approx(6 * 2 * lat, rel=0.05)

    def test_message_sizes_halve_then_double(self):
        # Indirectly: time for k=4 at zero latency is size/2 + size/4
        # per half over the port.
        k, payload = 4, 1 << 20
        t = _run("run_halving_doubling_allreduce", AnalyticalNetwork,
                 list(range(k)), payload, f"Switch({k})", (100,), (0,))
        expected = 2 * (payload / 2 + payload / 4) / 100
        assert t == pytest.approx(expected, rel=0.01)

    def test_non_power_of_two_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Switch(8)", [100])
        executor = SendRecvCollectiveExecutor(
            engine, AnalyticalNetwork(engine, topo))
        with pytest.raises(ValueError):
            executor.run_halving_doubling_allreduce([0, 1, 2], 100)

    def test_agrees_with_garnet_on_switch(self):
        # Switch paths cross two links (NPU -> fabric -> NPU); with small
        # packets the second hop pipelines behind the first and the
        # store-and-forward penalty vanishes, recovering the analytical
        # single-serialization model.
        k, payload = 8, 1 << 16
        args = (list(range(k)), payload, f"Switch({k})", (100,), (100,))
        t_a = _run("run_halving_doubling_allreduce", AnalyticalNetwork, *args)
        t_g = _run("run_halving_doubling_allreduce", GarnetLiteNetwork, *args,
                   packet_bytes=512)
        assert t_g == pytest.approx(t_a, rel=0.05)


class TestAlgorithmEquivalence:
    def test_all_three_move_the_same_traffic(self):
        """At zero latency every Table I algorithm is bandwidth-optimal:
        identical All-Reduce time on equal-bandwidth dims."""
        k, payload = 8, 1 << 20
        ring = _run("run_ring_allreduce", AnalyticalNetwork, list(range(k)),
                    payload, f"Ring({k})", (100,), (0,))
        direct = _run("run_direct_allreduce", AnalyticalNetwork,
                      list(range(k)), payload, f"FC({k})", (100,), (0,))
        hd = _run("run_halving_doubling_allreduce", AnalyticalNetwork,
                  list(range(k)), payload, f"Switch({k})", (100,), (0,))
        assert ring == pytest.approx(direct, rel=0.01)
        assert ring == pytest.approx(hd, rel=0.01)

    def test_latency_ordering_matches_table(self):
        """Latency-bound regime: Direct (1 step) < HD (log k) < Ring (k-1)."""
        k, payload = 8, 1 << 8
        lat = 50_000.0
        ring = _run("run_ring_allreduce", AnalyticalNetwork, list(range(k)),
                    payload, f"Ring({k})", (1000,), (lat,))
        direct = _run("run_direct_allreduce", AnalyticalNetwork,
                      list(range(k)), payload, f"FC({k})", (1000,), (lat,))
        hd = _run("run_halving_doubling_allreduce", AnalyticalNetwork,
                  list(range(k)), payload, f"Switch({k})", (1000,), (lat,))
        assert direct < hd < ring

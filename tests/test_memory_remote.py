"""Unit tests for the hierarchical remote-memory model (paper Fig. 6-7).

The key checks reproduce the worked example of Sec. IV-D: 16 nodes x 16
GPUs (256 GPUs), 4 out-node switches, 8 remote memory groups; a load of W
per GPU puts 32W on each remote group, 8W on each group->out-switch link,
4W on each out-switch->node link, and W on each GPU.
"""

import pytest

from repro.memory import HierMemConfig, HierarchicalRemoteMemory, MemoryRequest
from repro.trace import TensorLocation

MiB = 1 << 20


def _paper_example_config(chunk_bytes=MiB, **overrides):
    params = dict(
        num_nodes=16,
        gpus_per_node=16,
        num_out_switches=4,
        num_remote_groups=8,
        mem_side_bw_gbps=400.0,  # group total; 4 out-switch links at 100 each
        gpu_side_out_bw_gbps=100.0,
        in_node_bw_gbps=100.0,
        chunk_bytes=chunk_bytes,
        access_latency_ns=0.0,
    )
    params.update(overrides)
    return HierMemConfig(**params)


def _remote_request(size):
    return MemoryRequest(size, location=TensorLocation.REMOTE)


class TestPaperExampleLinkLoads:
    """Aggregate bytes per link, recovered from stages x beats."""

    def test_pipeline_beats_are_8w_over_chunk(self):
        w = 64 * MiB
        mem = HierarchicalRemoteMemory(_paper_example_config())
        # (W * 256 GPUs) / (8 groups * 4 switches) = 8W per link.
        assert mem.num_pipeline_stages(w) == 8 * w // MiB

    def test_outsw_to_node_total_is_4w(self):
        w = 64 * MiB
        config = _paper_example_config()
        mem = HierarchicalRemoteMemory(config)
        beats = mem.num_pipeline_stages(w)
        per_beat = mem.stage_times_ns(config.chunk_bytes)["outSW2inSW"]
        total_bytes = beats * per_beat * config.gpu_side_out_bw_gbps
        assert total_bytes == pytest.approx(4 * w)

    def test_insw_to_gpu_total_is_w(self):
        w = 64 * MiB
        config = _paper_example_config()
        mem = HierarchicalRemoteMemory(config)
        beats = mem.num_pipeline_stages(w)
        per_beat = mem.stage_times_ns(config.chunk_bytes)["inSW2GPU"]
        total_bytes = beats * per_beat * config.in_node_bw_gbps
        assert total_bytes == pytest.approx(w)

    def test_rem_to_outsw_total_is_8w(self):
        w = 64 * MiB
        config = _paper_example_config()
        mem = HierarchicalRemoteMemory(config)
        beats = mem.num_pipeline_stages(w)
        per_link_bw = config.mem_side_bw_gbps / config.num_out_switches
        per_beat = mem.stage_times_ns(config.chunk_bytes)["rem2outSW"]
        total_bytes = beats * per_beat * per_link_bw
        assert total_bytes == pytest.approx(8 * w)


class TestPipelineCriticalPath:
    def test_total_is_fill_plus_steady_state(self):
        config = _paper_example_config()
        mem = HierarchicalRemoteMemory(config)
        w = 16 * MiB
        n = mem.num_pipeline_stages(w)
        stages = mem.stage_times_ns(config.chunk_bytes)
        expected = sum(stages.values()) + (n - 1) * max(stages.values())
        assert mem.access_time_ns(_remote_request(w)) == pytest.approx(expected)

    def test_latency_added_once(self):
        config = _paper_example_config(access_latency_ns=5000.0)
        mem = HierarchicalRemoteMemory(config)
        base = HierarchicalRemoteMemory(_paper_example_config())
        w = 16 * MiB
        assert mem.access_time_ns(_remote_request(w)) == pytest.approx(
            base.access_time_ns(_remote_request(w)) + 5000.0
        )

    def test_zero_size_costs_latency_only(self):
        mem = HierarchicalRemoteMemory(_paper_example_config(access_latency_ns=7.0))
        assert mem.access_time_ns(_remote_request(0)) == 7.0

    def test_loads_and_stores_symmetric(self):
        mem = HierarchicalRemoteMemory(_paper_example_config())
        w = 8 * MiB
        load = MemoryRequest(w, is_store=False, location=TensorLocation.REMOTE)
        store = MemoryRequest(w, is_store=True, location=TensorLocation.REMOTE)
        assert mem.access_time_ns(load) == mem.access_time_ns(store)

    def test_local_request_rejected(self):
        mem = HierarchicalRemoteMemory(_paper_example_config())
        with pytest.raises(ValueError):
            mem.access_time_ns(MemoryRequest(100, location=TensorLocation.LOCAL))


class TestScalingBehaviour:
    def test_more_remote_groups_reduce_time(self):
        w = 64 * MiB
        few = HierarchicalRemoteMemory(_paper_example_config(num_remote_groups=4))
        many = HierarchicalRemoteMemory(_paper_example_config(num_remote_groups=32))
        assert many.access_time_ns(_remote_request(w)) < few.access_time_ns(
            _remote_request(w)
        )

    def test_bottleneck_stage_identification(self):
        slow_mem_side = HierarchicalRemoteMemory(
            _paper_example_config(mem_side_bw_gbps=1.0)
        )
        assert slow_mem_side.bottleneck_stage() == "rem2outSW"
        slow_in_node = HierarchicalRemoteMemory(
            _paper_example_config(in_node_bw_gbps=0.1)
        )
        assert slow_in_node.bottleneck_stage() == "inSW2GPU"

    def test_pool_bandwidth_positive_and_bounded(self):
        config = _paper_example_config()
        mem = HierarchicalRemoteMemory(config)
        bw = mem.pool_bandwidth_gbps()
        # Bounded by the aggregate mem-side bandwidth (8 groups x 4 links).
        assert 0 < bw <= 8 * 4 * config.mem_side_bw_gbps + 1e-9


class TestConfigValidation:
    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            HierMemConfig(num_nodes=0)
        with pytest.raises(ValueError):
            HierMemConfig(chunk_bytes=0)

    def test_bad_bandwidths_rejected(self):
        with pytest.raises(ValueError):
            HierMemConfig(mem_side_bw_gbps=0)
        with pytest.raises(ValueError):
            HierMemConfig(in_node_bw_gbps=-5)

    def test_num_gpus_derived(self):
        assert _paper_example_config().num_gpus == 256

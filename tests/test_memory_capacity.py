"""Unit tests for memory-capacity accounting (Sec. III-C motivation)."""

import pytest

from repro.memory.capacity import (
    GiB,
    MemoryFootprint,
    check_capacity,
    moe_footprint,
    transformer_footprint,
)
from repro.workload import ParallelismSpec, gpt3_175b, moe_1t
from repro.workload.models import TransformerSpec


class TestTransformerFootprint:
    def test_gpt3_does_not_fit_80gb_without_zero(self):
        """The paper's motivating fact: model state alone exceeds HBM."""
        fp = transformer_footprint(gpt3_175b(), ParallelismSpec(mp=16, dp=32))
        report = check_capacity(fp, hbm_gib=80)
        assert not report.fits
        # Optimizer state dominates: 12 B/param over MP=16.
        assert fp.optimizer == pytest.approx(175e9 * 12 / 16, rel=0.02)

    def test_zero3_partitions_everything_across_dp(self):
        spec = ParallelismSpec(mp=16, dp=32)
        base = transformer_footprint(gpt3_175b(), spec, zero_stage=0)
        z3 = transformer_footprint(gpt3_175b(), spec, zero_stage=3)
        assert z3.params == base.params // 32
        assert z3.grads == base.grads // 32
        assert z3.optimizer == base.optimizer // 32
        assert z3.activations == base.activations

    def test_zero_stages_monotone(self):
        spec = ParallelismSpec(mp=16, dp=32)
        totals = [
            transformer_footprint(gpt3_175b(), spec, zero_stage=s).total
            for s in (0, 1, 2, 3)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_mp_and_pp_shard_parameters(self):
        model = TransformerSpec("t", num_layers=8, hidden=1024, seq_len=128)
        a = transformer_footprint(model, ParallelismSpec(mp=2, dp=4))
        b = transformer_footprint(model, ParallelismSpec(mp=2, pp=2, dp=2))
        assert b.params == a.params // 2

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError):
            transformer_footprint(gpt3_175b(), ParallelismSpec(mp=16, dp=32),
                                  zero_stage=4)


class TestMoEFootprint:
    def test_moe_1t_needs_offload_on_40gb(self):
        """The Sec. V-B setting: 1T parameters over 256 GPUs spill a
        40 GiB HBM (optimizer state alone is ~45 GiB per GPU)."""
        fp = moe_footprint(moe_1t(), num_gpus=256)
        report = check_capacity(fp, hbm_gib=40)
        assert not report.fits
        assert report.feasible_with_offload
        assert report.offload_bytes > 0
        assert fp.optimizer > 40 * GiB

    def test_expert_parallelism_shards_experts(self):
        small = moe_footprint(moe_1t(), num_gpus=64)
        large = moe_footprint(moe_1t(), num_gpus=256)
        assert large.params < small.params

    def test_invalid_gpus_rejected(self):
        with pytest.raises(ValueError):
            moe_footprint(moe_1t(), num_gpus=0)


class TestCapacityReport:
    def test_fits(self):
        fp = MemoryFootprint(params=GiB, grads=GiB, optimizer=GiB,
                             activations=GiB)
        assert check_capacity(fp, hbm_gib=5).fits
        assert check_capacity(fp, hbm_gib=5).offload_bytes == 0

    def test_offload_covers_spill(self):
        fp = MemoryFootprint(params=4 * GiB, grads=4 * GiB,
                             optimizer=24 * GiB, activations=8 * GiB)
        report = check_capacity(fp, hbm_gib=16)
        assert not report.fits
        assert report.offload_bytes == fp.total - 16 * GiB
        assert report.feasible_with_offload

    def test_activations_alone_can_be_infeasible(self):
        fp = MemoryFootprint(params=0, grads=0, optimizer=0,
                             activations=100 * GiB)
        report = check_capacity(fp, hbm_gib=80)
        assert not report.feasible_with_offload

    def test_model_state_property(self):
        fp = MemoryFootprint(params=1, grads=2, optimizer=3, activations=4)
        assert fp.model_state == 6
        assert fp.total == 10
        assert "GiB" in str(fp)

    def test_invalid_capacity_rejected(self):
        fp = MemoryFootprint(0, 0, 0, 0)
        with pytest.raises(ValueError):
            check_capacity(fp, hbm_gib=0)


class TestCapacityEdgeCases:
    def test_zero_and_negative_hbm_rejected(self):
        fp = MemoryFootprint(0, 0, 0, 0)
        with pytest.raises(ValueError, match="positive"):
            check_capacity(fp, hbm_gib=0)
        with pytest.raises(ValueError, match="positive"):
            check_capacity(fp, hbm_gib=-40)

    def test_empty_footprint_fits_anything_positive(self):
        report = check_capacity(MemoryFootprint(0, 0, 0, 0), hbm_gib=1e-9)
        assert report.fits
        assert report.offload_bytes == 0
        assert report.feasible_with_offload

    def test_offload_clamped_to_model_state(self):
        # Activations dwarf HBM: the spill exceeds what offload can move.
        fp = MemoryFootprint(params=10, grads=10, optimizer=60,
                             activations=100 * GiB)
        report = check_capacity(fp, hbm_gib=1)
        assert report.offload_bytes == fp.model_state
        assert not report.feasible_with_offload

    def test_pp_deeper_than_layers_keeps_one_layer_resident(self):
        model = TransformerSpec("shallow", num_layers=2, hidden=64,
                                seq_len=32, batch_per_replica=1)
        deep = transformer_footprint(model, ParallelismSpec(pp=8))
        shallow = transformer_footprint(model, ParallelismSpec(pp=2))
        # max(1, layers//pp): an over-deep pipeline still keeps one layer
        # resident per NPU, same as pp == layers.
        assert deep.activations == shallow.activations
        assert deep.activations >= model.seq_len * model.hidden

    def test_zero_stage_boundaries_accepted(self):
        model = gpt3_175b()
        spec = ParallelismSpec(mp=8, dp=8)
        s0 = transformer_footprint(model, spec, zero_stage=0)
        s3 = transformer_footprint(model, spec, zero_stage=3)
        assert s3.total < s0.total

    def test_moe_intermediate_zero_stage_partitions_optimizer(self):
        model = moe_1t()
        s1 = moe_footprint(model, num_gpus=256, zero_stage=1)
        s0 = moe_footprint(model, num_gpus=256, zero_stage=0)
        assert s1.optimizer < s0.optimizer
        assert s1.params == s0.params

    def test_footprint_str_reports_gib(self):
        text = str(MemoryFootprint(GiB, GiB, GiB, GiB))
        assert "GiB" in text and "= 4.0 GiB" in text

"""Unit tests for exposed-time accounting."""

import pytest

from repro.stats import Activity, ActivityLog, Breakdown, compute_breakdown


class TestComputeBreakdown:
    def test_disjoint_intervals(self):
        intervals = [
            (0, 10, Activity.COMPUTE),
            (10, 15, Activity.COMM),
        ]
        b = compute_breakdown(intervals, 20)
        assert b.compute_ns == 10
        assert b.exposed_comm_ns == 5
        assert b.idle_ns == 5
        assert b.total_ns == 20

    def test_comm_hidden_under_compute(self):
        intervals = [
            (0, 10, Activity.COMPUTE),
            (0, 10, Activity.COMM),
        ]
        b = compute_breakdown(intervals, 10)
        assert b.compute_ns == 10
        assert b.exposed_comm_ns == 0

    def test_partially_exposed_comm(self):
        intervals = [
            (0, 10, Activity.COMPUTE),
            (5, 20, Activity.COMM),
        ]
        b = compute_breakdown(intervals, 20)
        assert b.compute_ns == 10
        assert b.exposed_comm_ns == 10

    def test_priority_order_full_stack(self):
        intervals = [
            (0, 4, Activity.COMM),
            (0, 3, Activity.MEM_REMOTE),
            (0, 2, Activity.MEM_LOCAL),
            (0, 1, Activity.COMPUTE),
        ]
        b = compute_breakdown(intervals, 4)
        assert b.compute_ns == 1
        assert b.exposed_mem_local_ns == 1
        assert b.exposed_mem_remote_ns == 1
        assert b.exposed_comm_ns == 1
        assert b.idle_ns == 0

    def test_overlapping_same_activity_not_double_counted(self):
        intervals = [
            (0, 10, Activity.COMM),
            (5, 15, Activity.COMM),
        ]
        b = compute_breakdown(intervals, 15)
        assert b.exposed_comm_ns == 15

    def test_empty_intervals_all_idle(self):
        b = compute_breakdown([], 100)
        assert b.idle_ns == 100
        assert b.compute_ns == 0

    def test_exposure_sums_to_total(self):
        intervals = [
            (0, 7, Activity.COMPUTE),
            (3, 12, Activity.MEM_LOCAL),
            (5, 20, Activity.COMM),
            (25, 30, Activity.MEM_REMOTE),
        ]
        total = 35
        b = compute_breakdown(intervals, total)
        covered = sum(b.exposed_ns.values())
        assert covered + b.idle_ns == pytest.approx(total)

    def test_fraction(self):
        b = compute_breakdown([(0, 5, Activity.COMPUTE)], 10)
        assert b.fraction(Activity.COMPUTE) == 0.5

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            compute_breakdown([], -1)


class TestActivityLog:
    def test_record_and_breakdown_per_npu(self):
        log = ActivityLog()
        log.record(0, 0, 10, Activity.COMPUTE)
        log.record(1, 0, 4, Activity.COMM)
        assert log.npus() == [0, 1]
        assert log.breakdown(0, 10).compute_ns == 10
        assert log.breakdown(1, 10).exposed_comm_ns == 4

    def test_zero_length_interval_ignored(self):
        log = ActivityLog()
        log.record(0, 5, 5, Activity.COMPUTE)
        assert log.intervals(0) == []

    def test_backwards_interval_rejected(self):
        log = ActivityLog()
        with pytest.raises(ValueError):
            log.record(0, 10, 5, Activity.COMPUTE)

    def test_merged_breakdown_averages(self):
        log = ActivityLog()
        log.record(0, 0, 10, Activity.COMPUTE)
        log.record(1, 0, 0.0001, Activity.COMPUTE)
        merged = log.merged_breakdown(10)
        assert merged.compute_ns == pytest.approx(5, rel=0.01)


class TestBreakdownMerge:
    def test_merge_empty(self):
        merged = Breakdown.merge([])
        assert merged.total_ns == 0

    def test_merge_averages_each_component(self):
        a = compute_breakdown([(0, 4, Activity.COMPUTE)], 10)
        b = compute_breakdown([(0, 6, Activity.COMM)], 10)
        merged = Breakdown.merge([a, b])
        assert merged.compute_ns == 2
        assert merged.exposed_comm_ns == 3
        assert merged.idle_ns == pytest.approx((6 + 4) / 2)

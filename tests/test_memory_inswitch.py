"""Unit tests for in-switch collective communication (paper Fig. 8)."""

import pytest

from repro.memory import HierMemConfig, InSwitchCollectiveMemory, MemoryRequest
from repro.memory.remote import HierarchicalRemoteMemory
from repro.trace import CollectiveType, TensorLocation

MiB = 1 << 20


def _config(**overrides):
    params = dict(
        num_nodes=16,
        gpus_per_node=16,
        num_out_switches=4,
        num_remote_groups=8,
        mem_side_bw_gbps=400.0,  # group total; 4 out-switch links at 100 each
        gpu_side_out_bw_gbps=100.0,
        in_node_bw_gbps=100.0,
        chunk_bytes=MiB,
        access_latency_ns=0.0,
    )
    params.update(overrides)
    return HierMemConfig(**params)


def _remote(size):
    return MemoryRequest(size, location=TensorLocation.REMOTE)


class TestFig8StageLoads:
    """In-switch gather changes per-link loads vs. the plain remote model."""

    def test_outsw_to_insw_not_divided_by_nodes(self):
        config = _config()
        plain = HierarchicalRemoteMemory(config).stage_times_ns(config.chunk_bytes)
        gather = InSwitchCollectiveMemory(config).stage_times_ns(config.chunk_bytes)
        assert gather["outSW2inSW"] == pytest.approx(
            plain["outSW2inSW"] * config.num_nodes
        )

    def test_insw_to_gpu_not_divided_by_gpus(self):
        config = _config()
        plain = HierarchicalRemoteMemory(config).stage_times_ns(config.chunk_bytes)
        gather = InSwitchCollectiveMemory(config).stage_times_ns(config.chunk_bytes)
        assert gather["inSW2GPU"] == pytest.approx(
            plain["inSW2GPU"] * config.num_gpus
        )

    def test_mem_side_stage_unchanged(self):
        config = _config()
        plain = HierarchicalRemoteMemory(config).stage_times_ns(config.chunk_bytes)
        gather = InSwitchCollectiveMemory(config).stage_times_ns(config.chunk_bytes)
        assert gather["rem2outSW"] == plain["rem2outSW"]

    def test_each_gpu_receives_gathered_tensor(self):
        """Paper example: every in-node switch reconstructs 256W."""
        config = _config()
        mem = InSwitchCollectiveMemory(config)
        w = 4 * MiB
        beats = mem.num_pipeline_stages(w)
        per_beat = mem.stage_times_ns(config.chunk_bytes)["inSW2GPU"]
        delivered = beats * per_beat * config.in_node_bw_gbps
        assert delivered == pytest.approx(w * config.num_gpus)
        assert mem.gathered_bytes(w) == w * 256


class TestAccessTime:
    def test_pipeline_critical_path(self):
        config = _config()
        mem = InSwitchCollectiveMemory(config)
        w = 8 * MiB
        n = mem.num_pipeline_stages(w)
        stages = mem.stage_times_ns(config.chunk_bytes)
        expected = sum(stages.values()) + (n - 1) * max(stages.values())
        assert mem.access_time_ns(_remote(w)) == pytest.approx(expected)

    def test_local_rejected(self):
        mem = InSwitchCollectiveMemory(_config())
        with pytest.raises(ValueError):
            mem.access_time_ns(MemoryRequest(10, location=TensorLocation.LOCAL))


class TestFabricCollectives:
    def test_allreduce_is_two_passes(self):
        mem = InSwitchCollectiveMemory(_config())
        payload = 256 * MiB
        one = mem.collective_time_ns(CollectiveType.ALL_GATHER, payload)
        two = mem.collective_time_ns(CollectiveType.ALL_REDUCE, payload)
        assert two == pytest.approx(2 * one)

    def test_rs_equals_ag(self):
        mem = InSwitchCollectiveMemory(_config())
        payload = 256 * MiB
        assert mem.collective_time_ns(
            CollectiveType.REDUCE_SCATTER, payload
        ) == pytest.approx(mem.collective_time_ns(CollectiveType.ALL_GATHER, payload))

    def test_alltoall_scales_with_payload(self):
        mem = InSwitchCollectiveMemory(_config())
        t1 = mem.alltoall_time_ns(16 * MiB)
        t2 = mem.alltoall_time_ns(32 * MiB)
        assert t2 > t1

    def test_alltoall_faster_with_wider_fabric(self):
        slow = InSwitchCollectiveMemory(_config(in_node_bw_gbps=100.0,
                                                gpu_side_out_bw_gbps=100.0))
        fast = InSwitchCollectiveMemory(_config(in_node_bw_gbps=400.0,
                                                gpu_side_out_bw_gbps=400.0))
        assert fast.alltoall_time_ns(64 * MiB) < slow.alltoall_time_ns(64 * MiB)

    def test_negative_payload_rejected(self):
        mem = InSwitchCollectiveMemory(_config())
        with pytest.raises(ValueError):
            mem.collective_time_ns(CollectiveType.ALL_GATHER, -1)

"""Unit tests for the graph-based execution engine."""

import pytest

from repro.core import DeadlockError, Simulator, SystemConfig
from repro.memory import HierMemConfig, InSwitchCollectiveMemory, ZeroInfinityConfig, ZeroInfinityMemory
from repro.network import parse_topology
from repro.stats import Activity
from repro.system import RooflineCompute
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType, TensorLocation
from repro.memory import LocalMemory


def _topo(notation="Ring(4)_Switch(2)", bws=(100, 50)):
    return parse_topology(notation, list(bws), latencies_ns=[0] * len(bws))


def _config(topology=None, **kwargs):
    defaults = dict(
        topology=topology or _topo(),
        compute=RooflineCompute(peak_tflops=1.0),  # 1e3 FLOP/ns
        local_memory=LocalMemory(bandwidth_gbps=100.0, latency_ns=0.0),
        collective_chunks=2,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def _compute(node_id, flops, deps=()):
    return ETNode(node_id, NodeType.COMPUTE, flops=flops, deps=deps)


class TestComputeChains:
    def test_serial_chain_times_add(self):
        trace = ExecutionTrace(0, [_compute(0, 1000), _compute(1, 2000, deps=(0,))])
        result = Simulator({0: trace}, _config()).run()
        assert result.total_time_ns == pytest.approx(1.0 + 2.0)
        assert result.nodes_executed == 2

    def test_parallel_nodes_serialize_on_compute_unit(self):
        # Two independent compute nodes: one compute unit -> serialized.
        trace = ExecutionTrace(0, [_compute(0, 1000), _compute(1, 1000)])
        result = Simulator({0: trace}, _config()).run()
        assert result.total_time_ns == pytest.approx(2.0)
        assert result.breakdown.compute_ns == pytest.approx(2.0)

    def test_diamond_dependencies(self):
        nodes = [
            _compute(0, 1000),
            _compute(1, 1000, deps=(0,)),
            _compute(2, 3000, deps=(0,)),
            _compute(3, 1000, deps=(1, 2)),
        ]
        result = Simulator({0: ExecutionTrace(0, nodes)}, _config()).run()
        # Branches serialize on the unit: 1 + (1 + 3) + 1.
        assert result.total_time_ns == pytest.approx(6.0)


class TestMemoryDispatch:
    def test_local_memory_node(self):
        nodes = [ETNode(0, NodeType.MEMORY_LOAD, tensor_bytes=1000)]
        result = Simulator({0: ExecutionTrace(0, nodes)}, _config()).run()
        assert result.total_time_ns == pytest.approx(10.0)
        assert result.breakdown.exposed_mem_local_ns == pytest.approx(10.0)

    def test_remote_memory_requires_model(self):
        nodes = [ETNode(0, NodeType.MEMORY_LOAD, tensor_bytes=1000,
                        location=TensorLocation.REMOTE)]
        sim = Simulator({0: ExecutionTrace(0, nodes)}, _config())
        with pytest.raises(ValueError):
            sim.run()

    def test_remote_memory_dispatches_to_remote_model(self):
        nodes = [ETNode(0, NodeType.MEMORY_LOAD, tensor_bytes=1000,
                        location=TensorLocation.REMOTE)]
        config = _config(remote_memory=ZeroInfinityMemory(
            ZeroInfinityConfig(path_bandwidth_gbps=1.0, access_latency_ns=0.0)))
        result = Simulator({0: ExecutionTrace(0, nodes)}, config).run()
        assert result.total_time_ns == pytest.approx(1000.0)
        assert result.breakdown.exposed_mem_remote_ns == pytest.approx(1000.0)

    def test_memory_overlaps_compute(self):
        nodes = [
            _compute(0, 10_000),
            ETNode(1, NodeType.MEMORY_LOAD, tensor_bytes=500),
        ]
        result = Simulator({0: ExecutionTrace(0, nodes)}, _config()).run()
        # Load (5 ns) hides under compute (10 ns).
        assert result.total_time_ns == pytest.approx(10.0)
        assert result.breakdown.exposed_mem_local_ns == 0.0


class TestCollectives:
    def _ar(self, node_id, size, dims=None, deps=()):
        return ETNode(node_id, NodeType.COMM_COLLECTIVE, tensor_bytes=size,
                      deps=deps, collective=CollectiveType.ALL_REDUCE,
                      comm_dims=dims)

    def test_single_trace_representative_collective(self):
        trace = ExecutionTrace(0, [self._ar(0, 1000, dims=(0,))])
        result = Simulator({0: trace}, _config()).run()
        # Ring(4) @100: 2 * 0.75 * 1000 / 100 = 15 ns.
        assert result.total_time_ns == pytest.approx(15.0)
        assert len(result.collectives) == 1
        assert result.collectives[0].group_size == 4

    def test_multi_trace_rendezvous_waits_for_all(self):
        # NPUs 0 and 1 are both in the dim-0 ring group; NPU 1 computes
        # first, delaying the collective start.
        t0 = ExecutionTrace(0, [self._ar(0, 1000, dims=(0,))])
        t1 = ExecutionTrace(1, [_compute(0, 5000),
                                self._ar(1, 1000, dims=(0,), deps=(0,))])
        result = Simulator({0: t0, 1: t1}, _config()).run()
        assert result.total_time_ns == pytest.approx(5.0 + 15.0)

    def test_collectives_match_in_issue_order(self):
        t0 = ExecutionTrace(0, [self._ar(0, 1000, dims=(0,)),
                                self._ar(1, 2000, dims=(0,), deps=(0,))])
        t1 = ExecutionTrace(1, [self._ar(0, 1000, dims=(0,)),
                                self._ar(1, 2000, dims=(0,), deps=(0,))])
        result = Simulator({0: t0, 1: t1}, _config()).run()
        assert len(result.collectives) == 2
        assert result.collectives[0].payload_bytes == 1000
        assert result.collectives[1].payload_bytes == 2000

    def test_disjoint_groups_run_in_parallel(self):
        # NPUs 0 and 2 are in different dim-0... actually same ring group;
        # use dim-1 groups instead: {0,4} and {1,5}.
        t0 = ExecutionTrace(0, [self._ar(0, 1000, dims=(1,))])
        t1 = ExecutionTrace(1, [self._ar(0, 1000, dims=(1,))])
        result = Simulator({0: t0, 1: t1}, _config()).run()
        # Switch(2) @50: 2 * 0.5 * 1000 / 50 = 20 ns, in parallel.
        assert result.total_time_ns == pytest.approx(20.0)
        assert len(result.collectives) == 2

    def test_collective_activity_recorded_for_all_members(self):
        t0 = ExecutionTrace(0, [self._ar(0, 1000, dims=(0,))])
        t1 = ExecutionTrace(1, [self._ar(0, 1000, dims=(0,))])
        sim = Simulator({0: t0, 1: t1}, _config())
        result = sim.run()
        for npu in (0, 1):
            assert result.per_npu_breakdown[npu].exposed_comm_ns > 0

    def test_fabric_collective_requires_model(self):
        node = ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=1000,
                      collective=CollectiveType.ALL_TO_ALL,
                      attrs={"via": "fabric"})
        sim = Simulator({0: ExecutionTrace(0, [node])}, _config())
        with pytest.raises(ValueError):
            sim.run()

    def test_fabric_collective_uses_inswitch_model(self):
        pool = HierMemConfig(num_nodes=2, gpus_per_node=4, num_out_switches=2,
                             num_remote_groups=4, access_latency_ns=0.0)
        fabric = InSwitchCollectiveMemory(pool)
        node = ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=1 << 20,
                      collective=CollectiveType.ALL_TO_ALL,
                      attrs={"via": "fabric"})
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        config = _config(topology=topo, fabric_collectives=fabric)
        result = Simulator({0: ExecutionTrace(0, [node])}, config).run()
        expected = fabric.alltoall_time_ns(1 << 20)
        assert result.total_time_ns == pytest.approx(expected)


class TestPointToPoint:
    def test_send_recv_pair(self):
        t0 = ExecutionTrace(0, [ETNode(0, NodeType.COMM_SEND, tensor_bytes=1000,
                                       peer=1, tag=5)])
        t1 = ExecutionTrace(1, [ETNode(0, NodeType.COMM_RECV, tensor_bytes=1000,
                                       peer=0, tag=5)])
        result = Simulator({0: t0, 1: t1}, _config()).run()
        assert result.total_time_ns == pytest.approx(10.0)

    def test_unmatched_recv_deadlocks(self):
        t1 = ExecutionTrace(1, [ETNode(0, NodeType.COMM_RECV, tensor_bytes=1000,
                                       peer=0, tag=5)])
        sim = Simulator({1: t1}, _config())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_pipeline_style_dependency_through_recv(self):
        t0 = ExecutionTrace(0, [
            _compute(0, 10_000),
            ETNode(1, NodeType.COMM_SEND, tensor_bytes=1000, peer=1, tag=1,
                   deps=(0,)),
        ])
        t1 = ExecutionTrace(1, [
            ETNode(0, NodeType.COMM_RECV, tensor_bytes=1000, peer=0, tag=1),
            _compute(1, 10_000, deps=(0,)),
        ])
        result = Simulator({0: t0, 1: t1}, _config()).run()
        # 10 compute + 10 transfer + 10 compute.
        assert result.total_time_ns == pytest.approx(30.0)


class TestValidation:
    def test_trace_id_mismatch_rejected(self):
        trace = ExecutionTrace(0, [_compute(0, 1)])
        with pytest.raises(ValueError):
            Simulator({3: trace}, _config())

    def test_trace_for_nonexistent_npu_rejected(self):
        trace = ExecutionTrace(99, [_compute(0, 1)])
        with pytest.raises(Exception):
            Simulator({99: trace}, _config())

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            Simulator({}, _config())

    def test_bad_scheduler_name_rejected_at_config(self):
        with pytest.raises(ValueError):
            SystemConfig(topology=_topo(), scheduler="nope")

    def test_bad_chunks_rejected_at_config(self):
        with pytest.raises(ValueError):
            SystemConfig(topology=_topo(), collective_chunks=0)

"""Unit tests for backend selection in the full simulator."""

import pytest

import repro
from repro.core import Simulator, SystemConfig
from repro.memory import LocalMemory
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.models import TransformerSpec


def _config(topology, backend):
    return SystemConfig(
        topology=topology,
        network_backend=backend,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
        collective_chunks=4,
    )


def _pp_traces(topology):
    # Pure pipeline parallelism (no DP) keeps the workload p2p-only, which
    # is what the packet-level backend supports.
    model = TransformerSpec("tiny", num_layers=8, hidden=64, seq_len=32,
                            batch_per_replica=2)
    return generate_pipeline_parallel(
        model, topology, ParallelismSpec(pp=8), microbatches=2)


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        topo = parse_topology("Ring(4)", [100])
        with pytest.raises(ValueError):
            SystemConfig(topology=topo, network_backend="ns3")

    def test_collectives_lowered_to_sendrecv_on_garnet(self):
        """Collective nodes run on packet backends via the send/recv
        executor (ring algorithm for a Ring dim) instead of raising."""
        topo = parse_topology("Ring(4)", [100])
        trace = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=1 << 20,
                   collective=CollectiveType.ALL_REDUCE),
        ])
        result = Simulator({0: trace}, _config(topo, "garnet")).run()
        assert result.nodes_executed == 1
        assert result.total_time_ns > 0
        assert len(result.collectives) == 1
        assert result.collectives[0].group_size == 4

    def test_pipeline_runs_on_all_backends_and_agrees(self):
        """Pure p2p workloads cross-validate: the packet and flow backends
        must reproduce the analytical result for congestion-free
        activation traffic (within packet-quantization noise)."""
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50],
                              latencies_ns=[100, 500])
        results = {}
        for backend in ("analytical", "garnet", "flow"):
            traces = _pp_traces(topo)
            results[backend] = Simulator(
                traces, _config(topo, backend)).run()
        a = results["analytical"]
        for name in ("garnet", "flow"):
            r = results[name]
            assert r.nodes_executed == a.nodes_executed, name
            assert r.total_time_ns == pytest.approx(
                a.total_time_ns, rel=0.05), name

    def test_garnet_backend_counts_packet_hops(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        traces = _pp_traces(topo)
        sim = Simulator(traces, _config(topo, "garnet"))
        sim.run()
        assert sim.network.packet_hops > 0


class TestSimulationRate:
    def test_run_result_reports_wall_time_and_rate(self):
        topo = parse_topology("Ring(8)", [100])
        result = Simulator(_pp_traces(topo), _config(topo, "analytical")).run()
        assert result.wall_time_s is not None and result.wall_time_s > 0
        assert result.simulation_rate_eps == pytest.approx(
            result.events_processed / result.wall_time_s)

    def test_untimed_result_has_no_rate(self):
        from repro.core.results import RunResult
        from repro.stats.breakdown import Breakdown

        bare = RunResult(
            total_time_ns=1.0,
            breakdown=Breakdown(total_ns=1.0, exposed_ns={}, idle_ns=0.0),
            per_npu_breakdown={}, nodes_executed=0, events_processed=5)
        assert bare.wall_time_s is None
        assert bare.simulation_rate_eps is None

    def test_export_stays_deterministic_without_wall_time(self):
        from repro.stats.export import result_to_dict

        topo = parse_topology("Ring(8)", [100])
        result = Simulator(_pp_traces(topo), _config(topo, "analytical")).run()
        exported = result_to_dict(result)
        assert "wall_time_s" not in exported  # cost metrics are not exported

"""Unit tests for the local HBM model."""

import pytest

from repro.memory import LocalMemory, MemoryRequest
from repro.trace import TensorLocation


def test_latency_plus_bandwidth():
    mem = LocalMemory(bandwidth_gbps=2000.0, latency_ns=100.0)
    # 2 MB at 2000 GB/s = 1000 ns, plus 100 ns latency.
    assert mem.access_time_ns(MemoryRequest(2_000_000)) == pytest.approx(1100.0)


def test_zero_size_costs_latency_only():
    mem = LocalMemory(bandwidth_gbps=2000.0, latency_ns=100.0)
    assert mem.access_time_ns(MemoryRequest(0)) == pytest.approx(100.0)


def test_load_store_symmetric():
    mem = LocalMemory(bandwidth_gbps=1000.0)
    assert mem.load_time_ns(4096) == mem.store_time_ns(4096)


def test_effective_bandwidth_approaches_peak_for_large_tensors():
    mem = LocalMemory(bandwidth_gbps=1000.0, latency_ns=100.0)
    assert mem.effective_bandwidth_gbps(1_000_000_000) == pytest.approx(1000.0, rel=0.01)
    assert mem.effective_bandwidth_gbps(100) < 500.0


def test_validation():
    with pytest.raises(ValueError):
        LocalMemory(bandwidth_gbps=0)
    with pytest.raises(ValueError):
        LocalMemory(bandwidth_gbps=100, latency_ns=-1)
    with pytest.raises(ValueError):
        MemoryRequest(-1)

"""Unit tests for the model-ingestion frontend (repro.frontend)."""

import json

import pytest

from repro.frontend import (
    FrontendError,
    IngestOptions,
    OpGraph,
    OpGraphBuilder,
    OpKind,
    OpNode,
    PlanConfig,
    build_op_graph,
    default_options_for,
    detect_family,
    ingest,
    load_config,
    loads_opgraph,
    opgraph_from_dict,
    plan,
    resolve_parallelism,
    to_opgraph_json,
    zoo_entries,
    zoo_entry,
    zoo_graph,
    zoo_names,
)
from repro.frontend.ir import attention_flops, matmul_flops
from repro.network import parse_topology
from repro.trace import CollectiveType, NodeType
from repro.validate.frontend import run_frontend_suite
from repro.workload.lint import lint_traces

LLAMA_TINY = {
    "model_type": "llama",
    "hidden_size": 256,
    "num_hidden_layers": 4,
    "num_attention_heads": 8,
    "num_key_value_heads": 2,
    "intermediate_size": 1024,
    "hidden_act": "silu",
    "vocab_size": 1000,
    "max_position_embeddings": 512,
}

MIXTRAL_TINY = {
    "model_type": "mixtral",
    "hidden_size": 256,
    "num_hidden_layers": 2,
    "num_attention_heads": 8,
    "intermediate_size": 512,
    "hidden_act": "silu",
    "num_local_experts": 4,
    "num_experts_per_tok": 2,
    "vocab_size": 1000,
    "max_position_embeddings": 512,
}


class TestIR:
    def test_builder_assigns_sequential_ids(self):
        b = OpGraphBuilder("g")
        a = b.add("a", OpKind.MATMUL, flops=10)
        c = b.add("c", OpKind.NORM, deps=(a,), flops=5)
        graph = b.build()
        assert [op.op_id for op in graph] == [0, 1]
        assert graph.op(c).deps == (a,)

    def test_validate_rejects_dangling_dep(self):
        with pytest.raises(FrontendError, match="unknown op"):
            OpGraph("g", [OpNode(0, "a", OpKind.MATMUL, deps=(9,),
                                 flops=1)])

    def test_validate_rejects_cycle(self):
        with pytest.raises(FrontendError, match="cycle"):
            OpGraph("g", [
                OpNode(0, "a", OpKind.MATMUL, deps=(1,), flops=1),
                OpNode(1, "b", OpKind.MATMUL, deps=(0,), flops=1)])

    def test_validate_rejects_duplicate_ids(self):
        with pytest.raises(FrontendError, match="duplicate"):
            OpGraph("g", [OpNode(0, "a", OpKind.MATMUL, flops=1),
                          OpNode(0, "b", OpKind.MATMUL, flops=1)])

    def test_topological_order_is_deterministic(self):
        graph = OpGraph("g", [
            OpNode(2, "c", OpKind.MATMUL, deps=(0, 1), flops=1),
            OpNode(1, "b", OpKind.MATMUL, flops=1),
            OpNode(0, "a", OpKind.MATMUL, flops=1)])
        assert [op.op_id for op in graph.topological_order()] == [0, 1, 2]

    def test_summary_and_layer_groups(self):
        graph = build_op_graph(LLAMA_TINY, IngestOptions(batch=1, seq_len=64))
        summary = graph.summary()
        assert summary["layers"] == 4
        assert summary["ops"] == len(graph)
        assert summary["tensor_parallel_ops"] > 0
        groups = graph.layer_groups()
        # stem, 4 layers, head
        assert [g[0] for g in groups] == [None, 0, 1, 2, 3, None]


class TestHFConfig:
    def test_load_config_from_dict_string_and_path(self, tmp_path):
        assert load_config(LLAMA_TINY)["model_type"] == "llama"
        assert load_config(json.dumps(LLAMA_TINY))["hidden_size"] == 256
        path = tmp_path / "config.json"
        path.write_text(json.dumps(LLAMA_TINY))
        assert load_config(path)["num_hidden_layers"] == 4

    def test_load_config_errors(self, tmp_path):
        with pytest.raises(FrontendError, match="not found"):
            load_config(tmp_path / "missing.json")
        with pytest.raises(FrontendError, match="not valid JSON"):
            load_config("{broken")
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(FrontendError, match="JSON object"):
            load_config(array)

    def test_detect_family(self):
        assert detect_family(LLAMA_TINY) == "decoder"
        assert detect_family({"model_type": "vit", "patch_size": 16,
                              "image_size": 224}) == "vit"
        assert detect_family({"_class_name": "UNet2DConditionModel"}) == "unet"
        assert detect_family({"num_embedding_tables": 26}) == "dlrm"
        with pytest.raises(FrontendError, match="cannot classify"):
            detect_family({"foo": 1})

    def test_decoder_structure_and_gqa(self):
        graph = build_op_graph(LLAMA_TINY, IngestOptions(batch=2, seq_len=64))
        # embed + 7 ops/layer * 4 layers + final_norm + lm_head
        assert len(graph) == 2 + 7 * 4 + 1
        qkv = next(op for op in graph if op.name == "L0.attn.qkv")
        # GQA: 8 heads, 2 kv heads, head_dim 32 → qkv cols = 256 + 2*64
        assert qkv.flops == matmul_flops(2 * 64, 256, 256 + 2 * 64)
        assert qkv.tp == "col"
        out = next(op for op in graph if op.name == "L0.attn.out")
        assert out.tp == "row"

    def test_decoder_divisibility_errors(self):
        bad = dict(LLAMA_TINY, num_attention_heads=7)
        with pytest.raises(FrontendError, match="not divisible"):
            build_op_graph(bad)
        bad = dict(LLAMA_TINY, num_key_value_heads=3)
        with pytest.raises(FrontendError, match="not divisible"):
            build_op_graph(bad)

    def test_moe_layers_are_routed(self):
        graph = build_op_graph(MIXTRAL_TINY, IngestOptions(batch=1,
                                                           seq_len=32))
        routed = [op for op in graph if op.routed]
        # up + down per layer, 2 layers
        assert len(routed) == 4
        assert all(op.route_bytes > 0 for op in routed)
        up = next(op for op in routed if op.name == "L0.mlp.up")
        # expert-replicated params: 4 experts * 2*inter * hidden * 2B
        assert up.param_bytes == 4 * 2 * 512 * 256 * 2

    def test_default_options_per_family(self):
        assert default_options_for(LLAMA_TINY).batch == 1
        dlrm = default_options_for({"num_embedding_tables": 8})
        assert dlrm.batch == 64 and dlrm.dtype_bytes == 4

    def test_ingest_options_validation(self):
        with pytest.raises(FrontendError):
            IngestOptions(batch=0)
        with pytest.raises(FrontendError):
            IngestOptions(dtype_bytes=0)


class TestOpgraphJSON:
    def test_shape_derived_costs(self):
        graph = loads_opgraph(json.dumps({
            "format": "repro-opgraph", "version": 1, "name": "mlp",
            "ops": [
                {"id": 0, "kind": "matmul", "m": 8, "k": 16, "n": 32,
                 "tp": "col"},
                {"id": 1, "kind": "elementwise", "deps": [0],
                 "elements": 256},
                {"id": 2, "kind": "attention", "deps": [1], "batch": 2,
                 "seq": 8, "hidden": 16},
            ]}))
        assert graph.op(0).flops == matmul_flops(8, 16, 32)
        assert graph.op(0).param_bytes == 16 * 32 * 2
        assert graph.op(1).flops == 256
        assert graph.op(2).flops == attention_flops(2, 8, 16)

    def test_round_trip_preserves_costs(self):
        original = zoo_graph("llama3-8b")
        restored = loads_opgraph(to_opgraph_json(original))
        assert restored.name == original.name
        assert len(restored) == len(original)
        assert restored.total_flops() == original.total_flops()
        assert restored.total_param_bytes() == original.total_param_bytes()
        for a, b in zip(original, restored):
            assert (a.op_id, a.kind, a.deps, a.tp, a.routed) == \
                (b.op_id, b.kind, b.deps, b.tp, b.routed)

    def test_format_and_version_gates(self):
        with pytest.raises(FrontendError, match="not a repro opgraph"):
            opgraph_from_dict({"format": "onnx", "ops": []})
        with pytest.raises(FrontendError, match="version"):
            opgraph_from_dict({"format": "repro-opgraph", "version": 99,
                               "ops": []})

    def test_costless_op_rejected(self):
        with pytest.raises(FrontendError, match="no cost derivable"):
            opgraph_from_dict({
                "format": "repro-opgraph", "version": 1,
                "ops": [{"id": 0, "kind": "matmul"}]})


class TestPlanner:
    def _graph(self):
        return build_op_graph(LLAMA_TINY, IngestOptions(batch=4, seq_len=64))

    def test_auto_resolution_uses_inner_dim_for_tp(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        spec = resolve_parallelism(self._graph(), topo, PlanConfig())
        assert (spec.mp, spec.dp, spec.pp, spec.ep) == (4, 2, 1, 1)

    def test_plan_traces_are_lint_clean_and_sharded(self):
        topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
        graph = self._graph()
        planned = plan(graph, topo, PlanConfig(tp=4, dp=2))
        assert lint_traces(planned.traces, topo) == []
        rep = next(iter(planned.traces.values()))
        compute = sum(n.flops for n in rep if n.node_type is NodeType.COMPUTE)
        # fwd+bwd = 3x fwd; TP=4 shards the parallel ops but norms stay
        # replicated, so per-rank compute sits between 1/4 and 1x.
        assert graph.total_flops() * 3 / 4 <= compute < graph.total_flops() * 3
        # DP gradient All-Reduces are present.
        ars = [n for n in rep if n.collective is CollectiveType.ALL_REDUCE]
        assert ars

    def test_ep_plan_emits_alltoalls(self):
        topo = parse_topology("Ring(2)_Switch(4)", [100, 50])
        graph = build_op_graph(MIXTRAL_TINY, IngestOptions(batch=2,
                                                           seq_len=32))
        planned = plan(graph, topo, PlanConfig(tp=2, ep=4))
        rep = next(iter(planned.traces.values()))
        a2a = [n for n in rep if n.collective is CollectiveType.ALL_TO_ALL]
        assert a2a  # dispatch/combine pairs around every routed op
        assert planned.summary()["parallelism"]["ep"] == 4

    def test_pp_plan_has_stage_sendrecv(self):
        topo = parse_topology("Ring(2)_Switch(2)", [100, 50])
        planned = plan(self._graph(), topo,
                       PlanConfig(tp=1, pp=2, dp=2, microbatches=2))
        assert len(planned.stage_layers) == 2
        sends = [n for t in planned.traces.values() for n in t
                 if n.node_type is NodeType.COMM_SEND]
        assert sends
        assert lint_traces(planned.traces, topo) == []

    def test_overcommitted_degrees_rejected(self):
        topo = parse_topology("Ring(4)", [100])
        with pytest.raises(FrontendError):
            plan(self._graph(), topo, PlanConfig(tp=4, dp=4))


class TestZoo:
    def test_names_and_entries_agree(self):
        names = zoo_names()
        assert set(names) == {e.name for e in zoo_entries()}
        assert {"llama3-8b", "llama-70b", "vit-l16", "unet-sd",
                "dlrm-large", "gpt3-175b-hf"} <= set(names)

    def test_unknown_entry_lists_choices(self):
        with pytest.raises(FrontendError, match="llama3-8b"):
            zoo_entry("nope")

    def test_llama_70b_parameter_count(self):
        graph = zoo_graph("llama-70b")
        # Known ~70B dense decoder; analytic accounting lands within 5%.
        assert abs(graph.total_params() - 70e9) / 70e9 < 0.05

    def test_zoo_graphs_build_and_cost(self):
        for entry in zoo_entries():
            graph = entry.graph()
            assert graph.total_flops() > 0
            assert len(graph) > 3


class TestIngestDispatch:
    def test_zoo_name(self):
        assert ingest("llama3-8b").name == "llama3-8b"

    def test_hf_dict_and_path(self, tmp_path):
        assert ingest(LLAMA_TINY).num_layers == 4
        path = tmp_path / "config.json"
        path.write_text(json.dumps(LLAMA_TINY))
        assert ingest(path).num_layers == 4

    def test_opgraph_payload(self):
        graph = ingest({
            "format": "repro-opgraph", "version": 1, "name": "g",
            "ops": [{"id": 0, "kind": "matmul", "m": 4, "k": 4, "n": 4}]})
        assert graph.name == "g" and len(graph) == 1


class TestExampleFixtures:
    @pytest.mark.parametrize("fixture", [
        "examples/llama_70b_config.json",
        "examples/mixtral_8x7b_config.json",
        "examples/tiny_opgraph.json",
    ])
    def test_example_specs_ingest_cleanly(self, fixture):
        from pathlib import Path

        from repro.workload.lint import lint_op_graph
        root = Path(__file__).resolve().parents[1]
        graph = ingest(root / fixture)
        assert lint_op_graph(graph) == []
        assert graph.total_flops() > 0


class TestFrontendConformance:
    def test_quick_suite_passes(self):
        report = run_frontend_suite(quick=True)
        failed = [c for c in report.cases if not c.passed]
        assert report.passed, failed
        axes = {c.axis for c in report.cases}
        assert "gpt3-twin" in axes and "zoo" in axes
        doc = report.to_dict()
        assert doc["passed"] is True
        assert len(doc["cases"]) == len(report.cases)


class TestCLIIngest:
    def test_list_models(self, capsys):
        from repro.cli import main
        assert main(["ingest", "--list-models"]) == 0
        out = capsys.readouterr().out
        for name in zoo_names():
            assert name in out

    def test_ingest_summary_and_lint(self, capsys):
        from repro.cli import main
        assert main(["ingest", "llama3-8b", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "llama3-8b" in out
        assert "lint" in out.lower()

    def test_ingest_export_and_reingest(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "llama.opgraph.json"
        assert main(["ingest", "llama3-8b", "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["ingest", str(out_path)]) == 0
        assert "llama3-8b" in capsys.readouterr().out

    def test_ingest_emit_traces(self, tmp_path, capsys):
        from repro.cli import main
        code = main([
            "ingest", "llama3-8b", "--seq-len", "128",
            "--emit-traces", str(tmp_path), "--topology", "Ring(2)",
            "--bandwidths", "100", "--mp", "1", "--dp", "2"])
        assert code == 0
        files = list(tmp_path.glob("*.json"))
        assert files
        from repro.trace import load_trace
        trace = load_trace(files[0])
        assert len(trace) > 0

    def test_run_with_model_flag(self, capsys):
        from repro.cli import main
        code = main([
            "run", "--model", "llama3-8b", "--seq-len", "128",
            "--topology", "Ring(2)_Switch(2)", "--bandwidths", "100,50",
            "--mp", "2", "--dp", "2"])
        assert code == 0
        assert "ingest:llama3-8b" in capsys.readouterr().out

    def test_run_rejects_model_and_model_json_together(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["run", "--model", "llama3-8b", "--model-json", "x.json",
                  "--topology", "Ring(2)", "--bandwidths", "100"])

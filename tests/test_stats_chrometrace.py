"""Unit tests for Chrome-trace export."""

import json

import pytest

import repro
from repro.stats import Activity, ActivityLog
from repro.stats.chrometrace import (
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry import TelemetryConfig, TraceLevel
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.models import TransformerSpec


def _log():
    log = ActivityLog()
    log.record(0, 100, 200, Activity.COMPUTE, "fwd.L0")
    log.record(0, 200, 500, Activity.COMM, "gradAR")
    log.record(3, 0, 50, Activity.MEM_REMOTE, "paramLoad")
    return log


class TestToChromeTrace:
    def test_event_structure(self):
        doc = to_chrome_trace(_log())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3
        fwd = next(e for e in spans if e["name"] == "fwd.L0")
        assert fwd["ts"] == pytest.approx(0.1)   # 100 ns -> 0.1 us
        assert fwd["dur"] == pytest.approx(0.1)
        assert fwd["tid"] == 0
        assert fwd["cat"] == "compute"

    def test_thread_metadata_per_npu(self):
        doc = to_chrome_trace(_log())
        names = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["tid"] for e in names} == {0, 3}

    def test_unlabeled_intervals_fall_back_to_activity_name(self):
        log = ActivityLog()
        log.record(0, 0, 10, Activity.COMM)
        doc = to_chrome_trace(log)
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["name"] == "comm"

    def test_npu_filter(self):
        doc = to_chrome_trace(_log(), npus=[3])
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["tid"] == 3

    def test_file_dump_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_chrome_trace(_log(), path, process_name="unit-test")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        meta = doc["traceEvents"][0]
        assert meta["args"]["name"] == "unit-test"


class TestEventOrdering:
    def test_metadata_first_then_monotonic_timestamps(self):
        log = ActivityLog()
        # Recorded deliberately out of time order across NPUs.
        log.record(0, 500, 600, Activity.COMM, "late")
        log.record(1, 0, 100, Activity.COMPUTE, "early")
        log.record(0, 200, 300, Activity.COMPUTE, "middle")
        doc = to_chrome_trace(log)
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        first_timed = phases.index("X")
        assert all(ph == "M" for ph in phases[:first_timed])
        timestamps = [e["ts"] for e in events[first_timed:]]
        assert timestamps == sorted(timestamps)

    def test_display_time_unit_present(self):
        assert to_chrome_trace(_log())["displayTimeUnit"] == "ms"


class TestCollectiveFlows:
    def _result(self):
        # Two traced NPUs joining the same dim-0 collectives: the
        # rendezvous makes both members of each record.
        from repro.trace.node import ETNode, NodeType
        from repro.trace.graph import ExecutionTrace
        from repro.trace import CollectiveType

        def ar(node_id, size, deps=()):
            return ETNode(node_id, NodeType.COMM_COLLECTIVE,
                          tensor_bytes=size, deps=deps,
                          collective=CollectiveType.ALL_REDUCE,
                          comm_dims=(0,))

        topo = repro.parse_topology("Ring(4)_Switch(2)", [100, 50])
        t0 = ExecutionTrace(0, [ar(0, 1000), ar(1, 2000, deps=(0,))])
        t1 = ExecutionTrace(1, [ar(0, 1000), ar(1, 2000, deps=(0,))])
        return repro.simulate({0: t0, 1: t1},
                              repro.SystemConfig(topology=topo))

    def test_flow_events_per_member(self):
        result = self._result()
        doc = to_chrome_trace(result.activity, collectives=result.collectives)
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        multi = [c for c in result.collectives if len(c.members) > 1]
        assert multi, "expected multi-member collectives"
        expected = sum(len(c.members) - 1 for c in result.collectives)
        assert len(starts) == len(finishes) == expected
        assert all(e["bp"] == "e" for e in finishes)
        # Arrows start on the representative lane and end on a member lane.
        by_id = {e["id"]: e for e in starts}
        for fin in finishes:
            start = by_id[fin["id"]]
            assert start["tid"] != fin["tid"]
            assert start["ts"] <= fin["ts"]

    def test_validator_accepts_flow_trace(self):
        result = self._result()
        doc = to_chrome_trace(result.activity, collectives=result.collectives)
        validate_chrome_trace(doc)


class TestTelemetryTracks:
    def _result(self):
        topo = repro.parse_topology("Ring(4)_Switch(2)", [100, 50])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 24)
        config = repro.SystemConfig(
            topology=topo,
            telemetry=TelemetryConfig(trace_level=TraceLevel.CHUNK))
        return repro.simulate(traces, config)

    def test_span_tracks_get_named_lanes(self):
        result = self._result()
        doc = to_chrome_trace(result.activity, telemetry=result.telemetry)
        lanes = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"
                 and e["pid"] == 1]
        names = {e["args"]["name"] for e in lanes}
        assert "collectives" in names
        assert any(n.startswith("port npu") for n in names)
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == 1]
        assert spans

    def test_counter_tracks_from_gauge_series(self):
        result = self._result()
        doc = to_chrome_trace(result.activity, telemetry=result.telemetry)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "events.heap_size" in names
        assert all("value" in e["args"] for e in counters)

    def test_validator_accepts_full_trace(self):
        result = self._result()
        doc = to_chrome_trace(result.activity,
                              collectives=result.collectives,
                              telemetry=result.telemetry)
        validate_chrome_trace(doc)

    def test_dump_includes_extras(self, tmp_path):
        result = self._result()
        path = tmp_path / "trace.json"
        dump_chrome_trace(result.activity, path,
                          collectives=result.collectives,
                          telemetry=result.telemetry)
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)
        assert any(e["ph"] == "C" for e in doc["traceEvents"])


class TestValidator:
    def test_missing_trace_events(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})

    def test_missing_field(self):
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "pid": 0}]})

    def test_out_of_order_timestamps(self):
        events = [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 5.0, "dur": 1.0},
            {"ph": "X", "name": "b", "pid": 0, "tid": 0, "ts": 1.0, "dur": 1.0},
        ]
        with pytest.raises(ValueError, match="out of order"):
            validate_chrome_trace({"traceEvents": events})

    def test_metadata_after_timed_events(self):
        events = [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 1.0, "dur": 1.0},
            {"ph": "M", "name": "process_name", "pid": 0, "args": {}},
        ]
        with pytest.raises(ValueError, match="metadata after"):
            validate_chrome_trace({"traceEvents": events})

    def test_unmatched_flow(self):
        events = [
            {"ph": "s", "name": "dep", "pid": 0, "tid": 0, "ts": 1.0, "id": 1},
        ]
        with pytest.raises(ValueError, match="unmatched flow"):
            validate_chrome_trace({"traceEvents": events})

    def test_negative_duration(self):
        events = [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 1.0,
             "dur": -2.0},
        ]
        with pytest.raises(ValueError, match="negative duration"):
            validate_chrome_trace({"traceEvents": events})


class TestEndToEndExport:
    def test_pipeline_run_exports_named_spans(self, tmp_path):
        topo = repro.parse_topology("Ring(4)_Switch(2)", [100, 50])
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        traces = generate_pipeline_parallel(
            model, topo, ParallelismSpec(pp=4, dp=2), microbatches=2)
        result = repro.simulate(traces, repro.SystemConfig(topology=topo))
        doc = to_chrome_trace(result.activity)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert any("fwd.s0" in n for n in names)
        assert any("gradAR" in n for n in names)
        # Spans never exceed the simulated horizon.
        horizon_us = result.total_time_ns / 1e3
        assert all(e["ts"] + e["dur"] <= horizon_us * (1 + 1e-9)
                   for e in spans)

"""Unit tests for Chrome-trace export."""

import json

import pytest

import repro
from repro.stats import Activity, ActivityLog
from repro.stats.chrometrace import dump_chrome_trace, to_chrome_trace
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.models import TransformerSpec


def _log():
    log = ActivityLog()
    log.record(0, 100, 200, Activity.COMPUTE, "fwd.L0")
    log.record(0, 200, 500, Activity.COMM, "gradAR")
    log.record(3, 0, 50, Activity.MEM_REMOTE, "paramLoad")
    return log


class TestToChromeTrace:
    def test_event_structure(self):
        doc = to_chrome_trace(_log())
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 3
        fwd = next(e for e in spans if e["name"] == "fwd.L0")
        assert fwd["ts"] == pytest.approx(0.1)   # 100 ns -> 0.1 us
        assert fwd["dur"] == pytest.approx(0.1)
        assert fwd["tid"] == 0
        assert fwd["cat"] == "compute"

    def test_thread_metadata_per_npu(self):
        doc = to_chrome_trace(_log())
        names = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["tid"] for e in names} == {0, 3}

    def test_unlabeled_intervals_fall_back_to_activity_name(self):
        log = ActivityLog()
        log.record(0, 0, 10, Activity.COMM)
        doc = to_chrome_trace(log)
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["name"] == "comm"

    def test_npu_filter(self):
        doc = to_chrome_trace(_log(), npus=[3])
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["tid"] == 3

    def test_file_dump_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_chrome_trace(_log(), path, process_name="unit-test")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        meta = doc["traceEvents"][0]
        assert meta["args"]["name"] == "unit-test"


class TestEndToEndExport:
    def test_pipeline_run_exports_named_spans(self, tmp_path):
        topo = repro.parse_topology("Ring(4)_Switch(2)", [100, 50])
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        traces = generate_pipeline_parallel(
            model, topo, ParallelismSpec(pp=4, dp=2), microbatches=2)
        result = repro.simulate(traces, repro.SystemConfig(topology=topo))
        doc = to_chrome_trace(result.activity)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert any("fwd.s0" in n for n in names)
        assert any("gradAR" in n for n in names)
        # Spans never exceed the simulated horizon.
        horizon_us = result.total_time_ns / 1e3
        assert all(e["ts"] + e["dur"] <= horizon_us * (1 + 1e-9)
                   for e in spans)

"""Unit tests for the first-order congestion model (oversubscribed fabrics).

The paper lists congestion modeling as the analytical backend's future
work (Sec. IV-C footnote 5); this implements the first-order version: an
oversubscribed dimension's shared fabric caps aggregate throughput at
``size * bandwidth / oversubscription``.
"""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, DimSpec, MultiDimTopology
from repro.network.building_blocks import BuildingBlock
from repro.network.topology import TopologyError, parse_topology


def _switch(size=8, bw=100.0, oversub=1.0):
    topo = MultiDimTopology([
        DimSpec(BuildingBlock.SWITCH, size, bw, latency_ns=0.0,
                oversubscription=oversub)
    ])
    engine = EventEngine()
    return engine, AnalyticalNetwork(engine, topo)


class TestDimSpecOversubscription:
    def test_default_is_nonblocking(self):
        spec = DimSpec(BuildingBlock.SWITCH, 8, 100.0)
        assert spec.oversubscription == 1.0
        assert spec.fabric_bandwidth_gbps == 800.0

    def test_fabric_bandwidth_scales_down(self):
        spec = DimSpec(BuildingBlock.SWITCH, 8, 100.0, oversubscription=4.0)
        assert spec.fabric_bandwidth_gbps == 200.0

    def test_below_one_rejected(self):
        with pytest.raises(TopologyError):
            DimSpec(BuildingBlock.SWITCH, 8, 100.0, oversubscription=0.5)


class TestCongestionBehaviour:
    def test_nonblocking_fabric_never_engages(self):
        engine, net = _switch(oversub=1.0)
        sizes = 1000
        done = []
        for i in range(8):
            src, dst = i, (i + 1) % 8
            net.sim_recv(dst, src, sizes, tag=i,
                         callback=lambda m: done.append(engine.now))
            net.sim_send(src, dst, sizes, tag=i)
        engine.run()
        # 8 concurrent flows, each on its own port: all finish together.
        assert max(done) == pytest.approx(sizes / 100)

    def test_single_flow_unaffected_by_oversubscription(self):
        # One flow uses 1/8 of capacity even at 4:1 oversubscription
        # (fabric share = busy * 4 / 8 < busy), so it runs at full rate.
        for oversub in (1.0, 4.0):
            engine, net = _switch(oversub=oversub)
            done = []
            net.sim_recv(1, 0, 1000, callback=lambda m: done.append(engine.now))
            net.sim_send(0, 1, 1000)
            engine.run()
            assert done[0] == pytest.approx(10.0)

    def test_full_load_throttled_by_fabric(self):
        # 8 concurrent flows at 4:1 oversubscription: aggregate demand
        # 800 GB/s against 200 GB/s of fabric -> 4x slower drain.
        engine, net = _switch(oversub=4.0)
        done = []
        for i in range(8):
            src, dst = i, (i + 1) % 8
            net.sim_recv(dst, src, 1000, tag=i,
                         callback=lambda m: done.append(engine.now))
            net.sim_send(src, dst, 1000, tag=i)
        engine.run()
        assert max(done) == pytest.approx(4 * 1000 / 100)

    def test_separate_groups_have_separate_fabrics(self):
        topo = parse_topology("Switch(4)_Ring(2)", [100, 100],
                              latencies_ns=[0, 0])
        # Make dim 0 heavily oversubscribed.
        dims = list(topo.dims)
        from dataclasses import replace

        dims[0] = replace(dims[0], oversubscription=4.0)
        topo = MultiDimTopology(dims)
        engine = EventEngine()
        net = AnalyticalNetwork(engine, topo)
        done = {}
        # One flow in each dim-0 group (NPUs 0-3 and 4-7): no contention.
        net.sim_recv(1, 0, 1000, callback=lambda m: done.update(a=engine.now))
        net.sim_recv(5, 4, 1000, callback=lambda m: done.update(b=engine.now))
        net.sim_send(0, 1, 1000)
        net.sim_send(4, 5, 1000)
        engine.run()
        assert done["a"] == pytest.approx(done["b"])
        assert done["a"] == pytest.approx(10.0)

    def test_collective_slowed_on_oversubscribed_dim(self):
        import repro
        from repro.workload import generate_single_collective

        results = {}
        for oversub in (1.0, 4.0):
            topo = MultiDimTopology([
                DimSpec(BuildingBlock.SWITCH, 16, 100.0, latency_ns=0.0,
                        oversubscription=oversub)
            ])
            traces = generate_single_collective(
                topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
            config = repro.SystemConfig(topology=topo, scheduler="baseline",
                                        collective_chunks=8)
            results[oversub] = repro.simulate(traces, config).total_time_ns
        # A collective is symmetric: all 16 members load the fabric
        # simultaneously, so 4:1 oversubscription throttles it ~4x.
        assert results[4.0] == pytest.approx(4 * results[1.0], rel=0.05)
"""Unit tests for the workload -> execution-trace generators."""

import pytest

from repro.core import Simulator, SystemConfig
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.memory import LocalMemory, ZeroInfinityConfig, ZeroInfinityMemory
from repro.trace import CollectiveType, NodeType
from repro.workload import (
    ParallelismSpec,
    dlrm_paper,
    generate_data_parallel,
    generate_dlrm,
    generate_megatron_hybrid,
    generate_moe,
    generate_pipeline_parallel,
    generate_single_collective,
    gpt3_175b,
    moe_1t,
)
from repro.workload.models import TransformerSpec, MoESpec


def _topo():
    return parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])


def _small_transformer():
    return TransformerSpec("tiny", num_layers=4, hidden=64, seq_len=32,
                           batch_per_replica=2)


def _fast_config(topology, **kwargs):
    defaults = dict(
        topology=topology,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
        collective_chunks=2,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)


class TestSingleCollective:
    def test_one_node_trace(self):
        traces = generate_single_collective(_topo(), CollectiveType.ALL_REDUCE, 100)
        assert list(traces) == [0]
        assert len(traces[0]) == 1

    def test_repeated_collectives_chain(self):
        traces = generate_single_collective(
            _topo(), CollectiveType.ALL_TO_ALL, 100, count=3)
        trace = traces[0]
        assert len(trace) == 3
        assert trace.critical_path_length() == 3


class TestDataParallel:
    def test_structure(self):
        traces = generate_data_parallel(_small_transformer(), _topo())
        trace = traces[0]
        counts = trace.count_by_type()
        # 4 fwd + 4 bwd + 1 optimizer computes, 4 gradient ARs.
        assert counts[NodeType.COMPUTE] == 9
        assert counts[NodeType.COMM_COLLECTIVE] == 4

    def test_grad_ar_overlaps_backward(self):
        """Layer l's AR must not depend on layers < l's backward."""
        traces = generate_data_parallel(_small_transformer(), _topo())
        trace = traces[0]
        ars = [n for n in trace if n.is_collective]
        for ar in ars:
            assert len(ar.deps) == 1  # only its own layer's bwd

    def test_runs_end_to_end(self):
        traces = generate_data_parallel(_small_transformer(), _topo())
        result = Simulator(traces, _fast_config(_topo())).run()
        assert result.total_time_ns > 0
        assert result.nodes_executed == len(traces[0])

    def test_multiple_iterations_chain(self):
        one = generate_data_parallel(_small_transformer(), _topo(), iterations=1)
        two = generate_data_parallel(_small_transformer(), _topo(), iterations=2)
        assert len(two[0]) == 2 * len(one[0])


class TestMegatronHybrid:
    def test_mp_collectives_on_inner_dims(self):
        traces = generate_megatron_hybrid(
            _small_transformer(), _topo(), ParallelismSpec(mp=16, dp=32))
        trace = traces[0]
        mp_ars = [n for n in trace if n.is_collective and "fwdAR" in n.name]
        assert mp_ars and all(n.comm_dims == (0, 1) for n in mp_ars)
        dp_ars = [n for n in trace if n.is_collective and "gradAR" in n.name]
        assert dp_ars and all(n.comm_dims == (2, 3) for n in dp_ars)

    def test_grad_payload_sharded_by_mp(self):
        model = _small_transformer()
        traces = generate_megatron_hybrid(
            model, _topo(), ParallelismSpec(mp=16, dp=32))
        dp_ars = [n for n in traces[0] if "gradAR" in n.name]
        assert dp_ars[0].tensor_bytes == model.layer_grad_bytes() // 16

    def test_pure_mp_has_no_grad_ar(self):
        topo = parse_topology("Ring(4)_FC(4)", [100, 100])
        traces = generate_megatron_hybrid(
            _small_transformer(), topo, ParallelismSpec(mp=16))
        assert not [n for n in traces[0] if "gradAR" in n.name]

    def test_runs_end_to_end(self):
        traces = generate_megatron_hybrid(
            _small_transformer(), _topo(), ParallelismSpec(mp=16, dp=32))
        result = Simulator(traces, _fast_config(_topo())).run()
        assert result.total_time_ns > 0


class TestPipelineParallel:
    def _traces(self, microbatches=2):
        topo = parse_topology("Ring(4)_Ring(4)_Switch(2)", [100, 100, 50])
        return topo, generate_pipeline_parallel(
            _small_transformer(), topo, ParallelismSpec(mp=4, pp=4, dp=2),
            microbatches=microbatches)

    def test_one_trace_per_stage(self):
        topo, traces = self._traces()
        assert len(traces) == 4

    def test_sends_and_recvs_pair_up(self):
        topo, traces = self._traces()
        sends = sum(
            1 for t in traces.values() for n in t if n.node_type is NodeType.COMM_SEND)
        recvs = sum(
            1 for t in traces.values() for n in t if n.node_type is NodeType.COMM_RECV)
        assert sends == recvs > 0

    def test_interior_stages_have_both_directions(self):
        topo, traces = self._traces()
        reps = sorted(traces)
        interior = traces[reps[1]]
        kinds = {n.node_type for n in interior}
        assert NodeType.COMM_SEND in kinds and NodeType.COMM_RECV in kinds

    def test_runs_end_to_end_no_deadlock(self):
        topo, traces = self._traces()
        result = Simulator(traces, _fast_config(topo)).run()
        assert result.total_time_ns > 0
        assert result.nodes_executed == sum(len(t) for t in traces.values())

    def test_more_microbatches_improve_pipeline_utilization(self):
        topo, traces2 = self._traces(microbatches=2)
        _, traces8 = self._traces(microbatches=8)
        # Same total work per stage (microbatch size fixed in this spec, so
        # 8 microbatches do 4x the work but in a deeper pipeline); idle
        # fraction should shrink.
        r2 = Simulator(traces2, _fast_config(topo)).run()
        r8 = Simulator(traces8, _fast_config(topo)).run()
        idle2 = r2.breakdown.idle_ns / r2.total_time_ns
        idle8 = r8.breakdown.idle_ns / r8.total_time_ns
        assert idle8 < idle2

    def test_requires_pp_degree(self):
        topo = parse_topology("Ring(4)_Ring(4)", [100, 100])
        with pytest.raises(ValueError):
            generate_pipeline_parallel(
                _small_transformer(), topo, ParallelismSpec(mp=16),
                microbatches=2)

    def test_invalid_microbatches(self):
        topo, _ = self._traces()
        with pytest.raises(ValueError):
            generate_pipeline_parallel(
                _small_transformer(), topo, ParallelismSpec(mp=4, pp=4, dp=2),
                microbatches=0)


class TestDLRM:
    def test_structure(self):
        traces = generate_dlrm(dlrm_paper(batch_per_npu=4), _topo())
        trace = traces[0]
        a2as = [n for n in trace if n.collective is CollectiveType.ALL_TO_ALL]
        ars = [n for n in trace if n.collective is CollectiveType.ALL_REDUCE]
        assert len(a2as) == 2  # fwd + bwd embedding exchange
        assert len(ars) == 1   # MLP gradients

    def test_runs_end_to_end(self):
        traces = generate_dlrm(dlrm_paper(batch_per_npu=4), _topo())
        result = Simulator(traces, _fast_config(_topo())).run()
        assert result.total_time_ns > 0


class TestMoE:
    def _model(self):
        return MoESpec("tiny-moe", num_layers=4, hidden=32, seq_len=16,
                       num_experts=8, moe_every=2, batch_per_gpu=2)

    def test_remote_parameter_nodes_present(self):
        traces = generate_moe(self._model(), _topo(), remote_parameters=True)
        trace = traces[0]
        loads = [n for n in trace if n.node_type is NodeType.MEMORY_LOAD]
        stores = [n for n in trace if n.node_type is NodeType.MEMORY_STORE]
        # Dense shard per layer + expert shard per MoE layer.
        assert len(loads) == 4 + 2
        # Expert grads per MoE layer + dense shard per layer.
        assert len(stores) == 2 + 4

    def test_zero_mode_emits_network_gather_scatter(self):
        traces = generate_moe(self._model(), _topo(), remote_parameters=True,
                              inswitch_collectives=False)
        trace = traces[0]
        ags = [n for n in trace if n.collective is CollectiveType.ALL_GATHER]
        rss = [n for n in trace
               if n.collective is not None and "gradRS" in n.name]
        assert len(ags) == 4   # one dense param gather per layer
        assert len(rss) == 4
        assert all(not n.attrs for n in ags)

    def test_local_mode_has_no_memory_nodes(self):
        traces = generate_moe(self._model(), _topo(), remote_parameters=False)
        assert not [n for n in traces[0] if n.is_memory]
        # And no ZeRO gathers either: params are resident.
        assert not [n for n in traces[0]
                    if n.collective is CollectiveType.ALL_GATHER]

    def test_inswitch_mode_fuses_gathers_into_memory_path(self):
        traces = generate_moe(self._model(), _topo(),
                              inswitch_collectives=True)
        trace = traces[0]
        # No explicit network gather/scatter collectives remain...
        assert not [n for n in trace
                    if n.collective is CollectiveType.ALL_GATHER]
        assert not [n for n in trace
                    if n.collective is CollectiveType.REDUCE_SCATTER]
        # ...the dense loads/stores carry the fabric tag instead...
        fabric_mem = [n for n in trace if n.is_memory
                      and n.attrs.get("via") == "fabric"]
        assert len(fabric_mem) == 4 + 4  # gather-loads + scatter-stores
        # ...and the token-routing All-to-Alls ride the fabric too.
        a2as = [n for n in trace if n.collective is CollectiveType.ALL_TO_ALL]
        assert a2as and all(n.attrs.get("via") == "fabric" for n in a2as)

    def test_loads_prefetch_along_a_chain(self):
        traces = generate_moe(self._model(), _topo())
        trace = traces[0]
        loads = [n for n in trace if n.node_type is NodeType.MEMORY_LOAD]
        # Every load except the first depends on exactly one earlier
        # acquisition node, never on compute (prefetch chain).
        compute_ids = {n.node_id for n in trace if n.is_compute}
        for load in loads:
            assert not (set(load.deps) & compute_ids)

    def test_runs_end_to_end_with_zero_infinity(self):
        config = _fast_config(_topo(), remote_memory=ZeroInfinityMemory(
            ZeroInfinityConfig(path_bandwidth_gbps=100.0)))
        traces = generate_moe(self._model(), _topo())
        result = Simulator(traces, config).run()
        assert result.total_time_ns > 0
        assert result.breakdown.exposed_mem_remote_ns >= 0

    def test_inswitch_mode_runs_end_to_end(self):
        from repro.memory import HierMemConfig, InSwitchCollectiveMemory, HierarchicalRemoteMemory

        pool = HierMemConfig(num_nodes=4, gpus_per_node=4, num_out_switches=2,
                             num_remote_groups=16)
        topo = parse_topology("Switch(4)_Switch(4)", [256, 25])
        config = _fast_config(
            topo,
            remote_memory=HierarchicalRemoteMemory(pool),
            fabric_collectives=InSwitchCollectiveMemory(pool),
        )
        traces = generate_moe(self._model(), topo, inswitch_collectives=True)
        result = Simulator(traces, config).run()
        assert result.total_time_ns > 0

"""Unit tests for the campaign runner (serial path, errors, cache)."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignError,
    PointConfigError,
    SweepSpec,
    normalize_point,
    point_to_argv,
)

SMALL_BASE = {
    "topology": "Ring(4)", "bandwidths": "100",
    "workload": "allreduce", "payload_mib": 1,
}


def echo_executor(point):
    """Trivial executor: the 'simulation' result is the payload value."""
    return {"total_time_ns": float(point["payload_mib"]) * 10.0}


def failing_executor(point):
    if point["payload_mib"] >= 2:
        raise RuntimeError("boom at %s" % point["payload_mib"])
    return {"total_time_ns": 1.0}


class TestNormalization:
    def test_string_and_native_values_normalize_identically(self):
        from_cli = normalize_point(dict(SMALL_BASE, payload_mib="64",
                                        chunks="8"))
        from_api = normalize_point(dict(SMALL_BASE, payload_mib=64,
                                        chunks=8))
        assert from_cli == from_api
        assert from_cli["payload_mib"] == 64.0
        assert from_cli["chunks"] == 8

    def test_defaults_track_the_cli_parser(self):
        resolved = normalize_point(SMALL_BASE)
        assert resolved["scheduler"] == "themis"
        assert resolved["chunks"] == 16
        assert resolved["memory_model"] == "local"

    def test_unknown_field_rejected(self):
        with pytest.raises(PointConfigError, match="unknown sweep field"):
            normalize_point(dict(SMALL_BASE, no_such_flag=1))

    def test_topology_and_bandwidths_required(self):
        with pytest.raises(PointConfigError, match="topology"):
            normalize_point({"workload": "allreduce"})

    def test_uninterpretable_value_rejected(self):
        with pytest.raises(PointConfigError, match="chunks"):
            normalize_point(dict(SMALL_BASE, chunks="many"))

    def test_point_to_argv_is_parseable_run_command(self):
        from repro.cli import build_parser

        argv = point_to_argv(dict(SMALL_BASE, inswitch=False))
        args = build_parser().parse_args(["run"] + argv)
        assert args.topology == "Ring(4)"
        assert args.payload_mib == 1.0
        assert args.inswitch is False


class TestSerialExecution:
    def test_results_merge_in_spec_order(self):
        spec = SweepSpec(base=SMALL_BASE,
                         grid={"payload_mib": [3, 1, 2]})
        campaign = CampaignRunner(jobs=0, executor=echo_executor).run(spec)
        assert [p["index"] for p in campaign.points] == [0, 1, 2]
        assert [r["total_time_ns"] for r in campaign.results] == [
            30.0, 10.0, 20.0]
        assert campaign.errors == []

    def test_telemetry_counters(self):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 2]})
        campaign = CampaignRunner(jobs=0, executor=echo_executor).run(spec)
        counters = {m["name"]: m["value"]
                    for m in campaign.telemetry.to_list()}
        assert counters["points_total"] == 2
        assert counters["points_executed"] == 2
        assert counters.get("points_failed", 0) == 0

    def test_default_executor_matches_cli_run(self):
        from repro.cli import build_parser, simulate_from_args
        from repro.campaign import run_point
        from repro.stats import result_to_dict

        args = build_parser().parse_args([
            "run", "--topology", "Ring(4)", "--bandwidths", "100",
            "--workload", "allreduce", "--payload-mib", "1"])
        _topology, result, _resilience = simulate_from_args(args)
        assert run_point(SMALL_BASE) == result_to_dict(result)

    def test_default_executor_flags_bad_config(self):
        with pytest.raises(PointConfigError):
            from repro.campaign import run_point

            run_point(dict(SMALL_BASE, scheduler="nope"))


class TestErrorRecords:
    def test_failed_point_becomes_structured_record(self):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 2]})
        campaign = CampaignRunner(jobs=0, executor=failing_executor).run(spec)
        ok, bad = campaign.points
        assert ok["error"] is None
        assert bad["result"] is None
        assert bad["error"]["type"] == "RuntimeError"
        assert "boom at 2" in bad["error"]["message"]
        assert "RuntimeError" in bad["error"]["traceback"]
        assert bad["config"]["payload_mib"] == 2
        counters = {m["name"]: m["value"]
                    for m in campaign.telemetry.to_list()}
        assert counters["points_failed"] == 1

    def test_fail_fast_serial_aborts(self):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [2, 1]})
        runner = CampaignRunner(jobs=0, executor=failing_executor,
                                fail_fast=True)
        with pytest.raises(CampaignError, match="point 0 failed"):
            runner.run(spec)

    def test_fail_fast_pool_aborts(self):
        # the default executor is importable in spawn workers; a missing
        # topology/bandwidths pair fails inside normalize-free pool path
        spec = SweepSpec(base=SMALL_BASE,
                         grid={"scheduler": ["nope", "baseline"]})
        runner = CampaignRunner(jobs=1, fail_fast=True)
        with pytest.raises(CampaignError, match="failed"):
            runner.run(spec)


class TestExecutorResolution:
    def test_import_string_executor(self):
        runner = CampaignRunner(
            executor="repro.campaign.runner:run_point")
        from repro.campaign import run_point

        assert runner.executor is run_point

    def test_malformed_import_string_rejected(self):
        with pytest.raises(Exception, match="module:function"):
            CampaignRunner(executor="no-colon-here")

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            CampaignRunner(jobs=-1)

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            CampaignRunner(batch_size=-1)


class TestStreaming:
    def test_stream_yields_records_in_spec_order(self):
        spec = SweepSpec(base=SMALL_BASE,
                         grid={"payload_mib": [3, 1, 2]})
        stream = CampaignRunner(jobs=0, executor=echo_executor).stream(spec)
        records = []
        while True:
            try:
                records.append(next(stream))
            except StopIteration as stop:
                result = stop.value
                break
        assert [r["index"] for r in records] == [0, 1, 2]
        # the generator's return value is the full merged result
        assert result.points == records
        assert [r["total_time_ns"] for r in result.results] == [
            30.0, 10.0, 20.0]

    def test_cached_points_stream_before_execution(self, tmp_path):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 2]})
        CampaignRunner(jobs=0, executor=echo_executor,
                       cache_dir=tmp_path).run(spec)
        warm = CampaignRunner(jobs=0, executor=echo_executor,
                              cache_dir=tmp_path).stream(spec)
        first = next(warm)
        assert first["cached"] is True and first["index"] == 0
        warm.close()

    def test_shared_cache_instance_dedups_across_runners(self, tmp_path):
        from repro.campaign import RunCache

        cache = RunCache(tmp_path)
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1]})
        CampaignRunner(jobs=0, executor=echo_executor, cache=cache).run(spec)
        again = CampaignRunner(jobs=0, executor=echo_executor,
                               cache=cache).run(spec)
        assert all(p["cached"] for p in again.points)
        assert cache.counters() == {"hits": 1, "misses": 1, "corrupted": 0}


class TestCacheIntegration:
    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 2]})
        cold = CampaignRunner(jobs=0, cache_dir=tmp_path).run(spec)
        warm = CampaignRunner(jobs=0, cache_dir=tmp_path).run(spec)
        assert cold.cache_counters == {"hits": 0, "misses": 2,
                                       "corrupted": 0}
        assert warm.cache_counters == {"hits": 2, "misses": 0,
                                       "corrupted": 0}
        assert all(p["cached"] for p in warm.points)
        assert warm.canonical_results_json() == cold.canonical_results_json()

    def test_failed_points_are_not_cached(self, tmp_path):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 2]})
        CampaignRunner(jobs=0, executor=failing_executor,
                       cache_dir=tmp_path).run(spec)
        rerun = CampaignRunner(jobs=0, executor=failing_executor,
                               cache_dir=tmp_path).run(spec)
        # the good point hits; the failed one is re-attempted every time
        assert rerun.cache_counters == {"hits": 1, "misses": 1,
                                        "corrupted": 0}
        assert rerun.errors[0]["config"]["payload_mib"] == 2

    def test_cache_counters_surface_in_telemetry(self, tmp_path):
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1]})
        CampaignRunner(jobs=0, cache_dir=tmp_path).run(spec)
        warm = CampaignRunner(jobs=0, cache_dir=tmp_path).run(spec)
        counters = {m["name"]: m["value"] for m in warm.telemetry.to_list()}
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 0
        assert counters["points_executed"] == 0

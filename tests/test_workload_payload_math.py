"""Quantitative checks of generator payload/FLOP metadata.

The case studies are only as good as the byte and FLOP counts the
generators attach to nodes; these tests pin them to the closed-form
model quantities.
"""

import pytest

from repro.network import parse_topology
from repro.trace import CollectiveType, NodeType
from repro.workload import (
    ParallelismSpec,
    generate_data_parallel,
    generate_dlrm,
    generate_fsdp,
    generate_megatron_hybrid,
    generate_moe,
    dlrm_paper,
    gpt3_175b,
    moe_1t,
)


def _topo():
    return parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)",
                          [250, 200, 100, 50])


class TestHybridPayloads:
    def test_mp_allreduce_is_activation_sized(self):
        model = gpt3_175b(batch_per_replica=2)
        traces = generate_megatron_hybrid(
            model, _topo(), ParallelismSpec(mp=16, dp=32))
        fwd_ars = [n for n in traces[0] if "fwdAR" in n.name]
        expected = 2 * 2048 * 12288 * 2  # batch x seq x hidden x fp16
        assert all(n.tensor_bytes == expected for n in fwd_ars)
        # Two per layer (attention + MLP).
        assert len(fwd_ars) == 2 * 96

    def test_dp_allreduce_is_mp_sharded_layer_grads(self):
        model = gpt3_175b()
        traces = generate_megatron_hybrid(
            model, _topo(), ParallelismSpec(mp=16, dp=32))
        grad_ars = [n for n in traces[0] if "gradAR" in n.name]
        expected = 12 * 12288 * 12288 * 2 // 16
        assert all(n.tensor_bytes == expected for n in grad_ars)
        assert len(grad_ars) == 96

    def test_total_dp_traffic_equals_sharded_model(self):
        model = gpt3_175b()
        traces = generate_megatron_hybrid(
            model, _topo(), ParallelismSpec(mp=16, dp=32))
        total = sum(n.tensor_bytes for n in traces[0] if "gradAR" in n.name)
        assert total == pytest.approx(model.total_params * 2 / 16, rel=1e-6)

    def test_compute_flops_match_model_totals(self):
        model = gpt3_175b()
        traces = generate_megatron_hybrid(
            model, _topo(), ParallelismSpec(mp=16, dp=32))
        fwd = sum(n.flops for n in traces[0]
                  if n.is_compute and ".fwd." in n.name)
        # Two halves per layer at fwd_flops/(2*mp) each.
        expected = 96 * 2 * (model.fwd_flops_per_layer() // 32)
        assert fwd == pytest.approx(expected, rel=1e-6)


class TestFSDPPayloads:
    def test_gathers_move_full_layer_params(self):
        model = gpt3_175b()
        traces = generate_fsdp(model, _topo())
        ags = [n for n in traces[0]
               if n.collective is CollectiveType.ALL_GATHER]
        assert all(n.tensor_bytes == model.params_per_layer * 2 for n in ags)

    def test_total_traffic_is_three_model_sizes(self):
        model = gpt3_175b()
        traces = generate_fsdp(model, _topo())
        total = sum(n.tensor_bytes for n in traces[0] if n.is_collective)
        # 2x AG + 1x RS of every layer's fp16 parameters.
        assert total == pytest.approx(3 * model.total_params * 2, rel=1e-6)


class TestDPTotals:
    def test_dp_allreduce_total_is_model_size(self):
        model = gpt3_175b()
        traces = generate_data_parallel(model, _topo())
        total = sum(n.tensor_bytes for n in traces[0] if n.is_collective)
        assert total == pytest.approx(model.total_params * 2, rel=1e-6)


class TestDLRMPayloads:
    def test_mlp_allreduce_is_57m_fp32(self):
        traces = generate_dlrm(dlrm_paper(), _topo())
        ar = next(n for n in traces[0]
                  if n.collective is CollectiveType.ALL_REDUCE)
        assert ar.tensor_bytes == 57_000_000 * 4

    def test_a2a_payload_formula(self):
        model = dlrm_paper(batch_per_npu=64)
        traces = generate_dlrm(model, _topo())
        a2a = next(n for n in traces[0]
                   if n.collective is CollectiveType.ALL_TO_ALL)
        assert a2a.tensor_bytes == 64 * 64 * 128 * 4


class TestMoEPayloads:
    def test_expert_stream_totals_one_trillion_params(self):
        model = moe_1t()
        topo = parse_topology("Switch(16)_Switch(16)", [256, 12.5])
        traces = generate_moe(model, topo, remote_parameters=True)
        loads = [n for n in traces[0]
                 if n.node_type is NodeType.MEMORY_LOAD
                 and "experts" in n.name]
        total_expert_bytes = sum(n.tensor_bytes for n in loads) * 256
        expert_params = model.num_moe_layers * model.num_experts * \
            model.expert_params
        assert total_expert_bytes == pytest.approx(
            expert_params * 2, rel=0.01)

    def test_dense_gather_payloads(self):
        model = moe_1t()
        topo = parse_topology("Switch(16)_Switch(16)", [256, 12.5])
        traces = generate_moe(model, topo, remote_parameters=True)
        ags = [n for n in traces[0]
               if n.collective is CollectiveType.ALL_GATHER]
        dense_layer_bytes = 12 * 4096 * 4096 * 2
        assert all(n.tensor_bytes == dense_layer_bytes for n in ags)
        assert len(ags) == 24

"""Unit tests for the FSDP generator and 3-D pipeline parallelism."""

import pytest

from repro.core import Simulator, SystemConfig
from repro.memory import LocalMemory
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.trace import CollectiveType, NodeType
from repro.workload import (
    ParallelismSpec,
    generate_fsdp,
    generate_pipeline_parallel,
)
from repro.workload.models import TransformerSpec


def _model():
    return TransformerSpec("tiny", num_layers=4, hidden=64, seq_len=32,
                           batch_per_replica=2)


def _topo():
    return parse_topology("Ring(4)_FC(4)_Switch(4)", [200, 100, 50])


def _config(topology):
    return SystemConfig(
        topology=topology,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
        collective_chunks=4,
    )


class TestFSDP:
    def test_structure_gathers_and_scatters(self):
        traces = generate_fsdp(_model(), _topo())
        trace = traces[0]
        ags = [n for n in trace if n.collective is CollectiveType.ALL_GATHER]
        rss = [n for n in trace
               if n.collective is CollectiveType.REDUCE_SCATTER]
        # One gather per layer per pass (fwd + bwd), one RS per layer.
        assert len(ags) == 2 * 4
        assert len(rss) == 4

    def test_gathers_prefetch_along_chain(self):
        traces = generate_fsdp(_model(), _topo())
        trace = traces[0]
        compute_ids = {n.node_id for n in trace if n.is_compute}
        fwd_ags = [n for n in trace if "fwdAG" in n.name]
        for ag in fwd_ags:
            assert not (set(ag.deps) & compute_ids)

    def test_gather_payload_is_layer_params(self):
        model = _model()
        traces = generate_fsdp(model, _topo())
        ag = next(n for n in traces[0] if "fwdAG" in n.name)
        assert ag.tensor_bytes == model.params_per_layer * model.dtype_bytes

    def test_runs_end_to_end(self):
        topo = _topo()
        traces = generate_fsdp(_model(), topo)
        result = Simulator(traces, _config(topo)).run()
        assert result.total_time_ns > 0
        assert result.nodes_executed == len(traces[0])

    def test_fsdp_comm_exceeds_plain_dp(self):
        """FSDP trades memory for communication: it gathers parameters
        three times (2x AG + 1x RS) where DP all-reduces once (~2x RS
        traffic), so total collective traffic is ~1.5x."""
        from repro.workload import generate_data_parallel

        topo = _topo()
        fsdp = Simulator(generate_fsdp(_model(), topo), _config(topo)).run()
        dp = Simulator(generate_data_parallel(_model(), topo),
                       _config(topo)).run()
        fsdp_bytes = sum(sum(c.traffic_by_dim.values())
                         for c in fsdp.collectives)
        dp_bytes = sum(sum(c.traffic_by_dim.values()) for c in dp.collectives)
        assert fsdp_bytes == pytest.approx(1.5 * dp_bytes, rel=0.05)


class Test3DParallelism:
    def _traces(self):
        topo = parse_topology("Ring(4)_Ring(4)_Switch(2)", [100, 100, 50])
        return topo, generate_pipeline_parallel(
            _model(), topo, ParallelismSpec(mp=4, pp=4, dp=2),
            microbatches=2)

    def test_stages_emit_mp_allreduces(self):
        topo, traces = self._traces()
        for trace in traces.values():
            mp_ars = [n for n in trace if n.is_collective
                      and "fwdAR" in n.name]
            assert mp_ars
            assert all(n.comm_dims == (0,) for n in mp_ars)

    def test_all_three_comm_kinds_present(self):
        """MP all-reduce + PP send/recv + DP gradient all-reduce = 3D."""
        topo, traces = self._traces()
        interior = traces[sorted(traces)[1]]
        kinds = {n.node_type for n in interior}
        assert NodeType.COMM_SEND in kinds
        assert NodeType.COMM_RECV in kinds
        names = {n.name.split(".")[1] for n in interior if n.is_collective}
        assert any("fwdAR" in n.name for n in interior)
        assert any("gradAR" in n.name for n in interior)

    def test_runs_end_to_end(self):
        topo, traces = self._traces()
        result = Simulator(traces, _config(topo)).run()
        assert result.total_time_ns > 0
        assert result.nodes_executed == sum(len(t) for t in traces.values())

    def test_mp_groups_disjoint_across_stages(self):
        """Each stage rep's MP communicator is its own dim-0 group; the
        collectives must not rendezvous across stages."""
        topo, traces = self._traces()
        result = Simulator(traces, _config(topo)).run()
        mp_records = [c for c in result.collectives if "fwdAR" in c.name]
        reps = {c.rep_npu for c in mp_records}
        assert len(reps) == 4  # one distinct MP group per stage

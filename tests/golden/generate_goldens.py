"""Regenerate the golden-number JSON files from the current code.

Run only when a *modelling* change intentionally shifts simulated times;
a pure performance refactor must leave every golden file byte-stable::

    PYTHONPATH=src python tests/golden/generate_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).parent
sys.path.insert(0, str(GOLDEN_DIR.parent.parent))

from tests.golden import scenarios  # noqa: E402


def main() -> None:
    meta = {
        "table4": {
            "paper_sizes_mb": scenarios.TABLE4_PAPER_SIZES_MB,
            "paper_speedup": scenarios.TABLE4_PAPER_SPEEDUP,
            "speedup_tolerance": 0.25,
        },
        "fig4": {
            "paper_mean_error": scenarios.FIG4_PAPER_MEAN_ERROR,
            "mean_error_bound": scenarios.FIG4_MEAN_ERROR_BOUND,
        },
        "secivc": {
            "paper_speedup": scenarios.SECIVC_PAPER_SPEEDUP,
            "min_event_ratio": scenarios.SECIVC_MIN_EVENT_RATIO,
        },
    }
    for name, fn in scenarios.SCENARIOS.items():
        payload = {
            "description": fn.__doc__.strip().splitlines()[0],
            "paper": meta[name],
            "values": fn(),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()

"""Deterministic scenarios behind the golden-number regression suite.

Each function reproduces one paper-anchored quantity with the production
code path and returns plain JSON-serializable data.  The committed
``tests/golden/*.json`` files freeze the values these scenarios produced
on the *seed* implementation; ``tests/test_golden_numbers.py`` re-runs
them and compares **exactly** for the analytical backend (perf refactors
must not shift simulated times by a single ULP) and within the recorded
tolerance elsewhere.

Regenerate (only when a modelling change is intended, never for a perf
refactor) with::

    PYTHONPATH=src python tests/golden/generate_goldens.py
"""

from __future__ import annotations

from typing import Dict

import repro
from repro.calibration import nccl_ring_allreduce_reference_ns
from repro.configs import conv_4d_scaled
from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology
from repro.system import SendRecvCollectiveExecutor
from repro.workload import generate_single_collective

MiB = 1 << 20
GiB = 1 << 30

# Paper Table IV cells (MB) and its headline wafer scale-up speedup.
TABLE4_PAPER_SIZES_MB = {
    "2_8_8_4": [1024, 896, 112, 12],
    "2_8_8_8": [1024, 896, 112, 14],
    "2_8_8_16": [1024, 896, 112, 15],
    "2_8_8_32": [1024, 896, 112, 15.5],
    "4_8_8_4": [1536, 448, 56, 6],
    "8_8_8_4": [1792, 224, 28, 3],
    "16_8_8_4": [1920, 112, 14, 1.5],
}
TABLE4_PAPER_SPEEDUP = 2.51

FIG4_LINK_BW_GBPS = 150.0
FIG4_PAYLOADS = [64 * MiB, 128 * MiB, 256 * MiB, 384 * MiB, 512 * MiB,
                 768 * MiB, 1024 * MiB, 1280 * MiB, 1536 * MiB]
FIG4_PAPER_MEAN_ERROR = 0.05
FIG4_MEAN_ERROR_BOUND = 0.10

SECIVC_TORUS_K = 4
SECIVC_PAYLOAD = 1 * MiB
SECIVC_PACKET_BYTES = 4096
SECIVC_PAPER_SPEEDUP = 756.0
SECIVC_MIN_EVENT_RATIO = 20.0


def table4_scenario() -> Dict:
    """Table IV: per-dimension message sizes + collective time per shape."""
    shapes = {}
    for name in TABLE4_PAPER_SIZES_MB:
        dim1, _, _, last = (int(p) for p in name.split("_"))
        topology = conv_4d_scaled(last_dim=last, dim1=dim1)
        traces = generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, GiB)
        config = repro.SystemConfig(
            topology=topology, scheduler="baseline", collective_chunks=64)
        result = repro.simulate(traces, config)
        record = result.collectives[0]
        shapes[name] = {
            "sizes_mib": [record.traffic_by_dim.get(d, 0.0) / MiB
                          for d in range(4)],
            "total_time_ns": result.total_time_ns,
            "events_processed": result.events_processed,
        }
    speedup = (shapes["2_8_8_4"]["total_time_ns"]
               / shapes["8_8_8_4"]["total_time_ns"])
    return {"shapes": shapes, "wafer_speedup": speedup}


def _ring_allreduce_ns(num_gpus: int, payload: int) -> float:
    topo = parse_topology(f"Ring({num_gpus})", [FIG4_LINK_BW_GBPS],
                          latencies_ns=[700.0])
    engine = EventEngine()
    executor = SendRecvCollectiveExecutor(
        engine, AnalyticalNetwork(engine, topo))
    out = {}
    executor.run_ring_allreduce(list(range(num_gpus)), payload,
                                on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"]


def fig4_scenario() -> Dict:
    """Fig. 4: analytical All-Reduce vs the calibrated NCCL reference."""
    errors = []
    points = {}
    for num_gpus in (4, 16):
        for payload in FIG4_PAYLOADS:
            simulated = _ring_allreduce_ns(num_gpus, payload)
            measured = nccl_ring_allreduce_reference_ns(
                num_gpus, payload, FIG4_LINK_BW_GBPS)
            errors.append(abs(simulated - measured) / measured)
            points[f"{num_gpus}gpu_{payload // MiB}mib"] = simulated
    return {
        "simulated_ns": points,
        "mean_error": sum(errors) / len(errors),
        "max_error": max(errors),
    }


def secivc_scenario() -> Dict:
    """Sec. IV-C cost structure: analytical vs Garnet-lite, same traffic.

    Uses a small 4x4x4 torus ring All-Reduce so the scenario stays cheap
    enough for tier-1 while pinning both backends' simulated time and the
    event-count ratio (the deterministic proxy for the wall-clock speedup
    the paper reports as 756x).
    """
    out = {}
    for label, backend_cls, kwargs in (
        ("analytical", AnalyticalNetwork, {}),
        ("garnetlite", GarnetLiteNetwork,
         {"packet_bytes": SECIVC_PACKET_BYTES}),
    ):
        topo = parse_topology(
            f"Ring({SECIVC_TORUS_K})_Ring({SECIVC_TORUS_K})_Ring({SECIVC_TORUS_K})",
            [150, 150, 150], latencies_ns=[100, 100, 100])
        engine = EventEngine()
        net = backend_cls(engine, topo, **kwargs)
        executor = SendRecvCollectiveExecutor(engine, net)
        finished = []
        groups = [topo.dim_group(npu, 0) for npu in range(topo.num_npus)
                  if topo.coords(npu)[0] == 0]
        for group in groups:
            executor.run_ring_allreduce(list(group), SECIVC_PAYLOAD,
                                        on_complete=finished.append)
        engine.run()
        out[label] = {
            "collective_ns": max(finished),
            "events": engine.events_processed,
        }
    out["event_ratio"] = out["garnetlite"]["events"] / out["analytical"]["events"]
    return out


SCENARIOS = {
    "table4": table4_scenario,
    "fig4": fig4_scenario,
    "secivc": secivc_scenario,
}

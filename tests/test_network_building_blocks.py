"""Unit tests for the topology building blocks (paper Fig. 3a, Table I)."""

import pytest

from repro.network.building_blocks import (
    BuildingBlock,
    alltoall_traffic_fraction,
    block_from_name,
    collective_traffic_fraction,
    hops_between,
    latency_steps,
    links_per_npu,
)


class TestAliases:
    def test_full_names(self):
        assert block_from_name("Ring") is BuildingBlock.RING
        assert block_from_name("FullyConnected") is BuildingBlock.FULLY_CONNECTED
        assert block_from_name("Switch") is BuildingBlock.SWITCH

    def test_short_aliases_case_insensitive(self):
        assert block_from_name("r") is BuildingBlock.RING
        assert block_from_name("FC") is BuildingBlock.FULLY_CONNECTED
        assert block_from_name("sw") is BuildingBlock.SWITCH

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            block_from_name("Torus")


class TestCollectiveAlgorithmMapping:
    """Paper Table I: block -> topology-aware collective algorithm."""

    def test_table1(self):
        assert BuildingBlock.RING.collective_algorithm == "ring"
        assert BuildingBlock.FULLY_CONNECTED.collective_algorithm == "direct"
        assert BuildingBlock.SWITCH.collective_algorithm == "halving_doubling"


class TestHops:
    def test_ring_shortest_path_both_directions(self):
        assert hops_between(BuildingBlock.RING, 8, 0, 1) == 1
        assert hops_between(BuildingBlock.RING, 8, 0, 7) == 1
        assert hops_between(BuildingBlock.RING, 8, 0, 4) == 4
        assert hops_between(BuildingBlock.RING, 8, 2, 6) == 4

    def test_fc_is_one_hop(self):
        assert hops_between(BuildingBlock.FULLY_CONNECTED, 16, 3, 12) == 1

    def test_switch_is_two_hops(self):
        assert hops_between(BuildingBlock.SWITCH, 16, 3, 12) == 2

    def test_same_rank_zero_hops(self):
        for block in BuildingBlock:
            assert hops_between(block, 4, 2, 2) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hops_between(BuildingBlock.RING, 4, 0, 4)


class TestLatencySteps:
    def test_ring_k_minus_1(self):
        assert latency_steps(BuildingBlock.RING, 8) == 7

    def test_direct_one_step(self):
        assert latency_steps(BuildingBlock.FULLY_CONNECTED, 8) == 1

    def test_halving_doubling_log(self):
        assert latency_steps(BuildingBlock.SWITCH, 8) == 3
        assert latency_steps(BuildingBlock.SWITCH, 512) == 9
        assert latency_steps(BuildingBlock.SWITCH, 5) == 3  # ceil(log2(5))

    def test_singleton_dim_no_steps(self):
        for block in BuildingBlock:
            assert latency_steps(block, 1) == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            latency_steps(BuildingBlock.RING, 0)


class TestTrafficFractions:
    def test_rs_ag_fraction_is_bandwidth_optimal(self):
        assert collective_traffic_fraction(2) == 0.5
        assert collective_traffic_fraction(512) == 511 / 512

    def test_alltoall_direct_on_fc_and_switch(self):
        for block in (BuildingBlock.FULLY_CONNECTED, BuildingBlock.SWITCH):
            assert alltoall_traffic_fraction(block, 8) == 7 / 8

    def test_alltoall_relayed_on_ring(self):
        # Shortest-path relaying: per-link load k/8 of the payload.
        assert alltoall_traffic_fraction(BuildingBlock.RING, 16) == 2.0

    def test_alltoall_tiny_ring(self):
        assert alltoall_traffic_fraction(BuildingBlock.RING, 2) == 0.5
        assert alltoall_traffic_fraction(BuildingBlock.RING, 1) == 0.0


class TestLinksPerNpu:
    def test_counts(self):
        assert links_per_npu(BuildingBlock.RING, 8) == 2
        assert links_per_npu(BuildingBlock.RING, 2) == 1
        assert links_per_npu(BuildingBlock.FULLY_CONNECTED, 8) == 7
        assert links_per_npu(BuildingBlock.SWITCH, 8) == 1
        assert links_per_npu(BuildingBlock.RING, 1) == 0

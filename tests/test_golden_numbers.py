"""Golden-number regression suite.

Re-runs the paper-anchored scenarios and compares against the frozen
values in ``tests/golden/*.json``.  Analytical-backend simulated times
must match **bit-for-bit**: a performance refactor that shifts them by a
single ULP fails here and must either be fixed or be declared a
modelling change (and the goldens regenerated via
``tests/golden/generate_goldens.py`` with justification).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.golden import scenarios

GOLDEN_DIR = Path(__file__).parent / "golden"


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), f"golden file {path} missing — run generate_goldens.py"
    return json.loads(path.read_text())


@pytest.fixture(scope="module")
def goldens() -> dict:
    return {name: _load(name) for name in scenarios.SCENARIOS}


def test_golden_files_wellformed(goldens):
    for name, payload in goldens.items():
        assert set(payload) == {"description", "paper", "values"}, name
        assert payload["values"], name


class TestTable4:
    """Table IV message sizes, collective times, and the 2.51x speedup."""

    @pytest.fixture(scope="class")
    def run(self):
        return scenarios.table4_scenario()

    def test_simulated_times_bit_identical(self, run, goldens):
        frozen = goldens["table4"]["values"]["shapes"]
        for shape, cells in frozen.items():
            got = run["shapes"][shape]
            assert got["total_time_ns"] == cells["total_time_ns"], shape
            assert got["sizes_mib"] == cells["sizes_mib"], shape

    def test_event_counts_stable(self, run, goldens):
        frozen = goldens["table4"]["values"]["shapes"]
        for shape, cells in frozen.items():
            assert run["shapes"][shape]["events_processed"] == \
                cells["events_processed"], shape

    def test_message_sizes_match_paper_cells(self, run, goldens):
        paper = goldens["table4"]["paper"]["paper_sizes_mb"]
        for shape, sizes_mb in paper.items():
            assert run["shapes"][shape]["sizes_mib"] == \
                pytest.approx(sizes_mb), shape

    def test_wafer_speedup_matches_paper(self, run, goldens):
        paper = goldens["table4"]["paper"]
        assert run["wafer_speedup"] == pytest.approx(
            paper["paper_speedup"], rel=paper["speedup_tolerance"])
        assert run["wafer_speedup"] == \
            goldens["table4"]["values"]["wafer_speedup"]


class TestFig4:
    """Fig. 4 validation error against the calibrated NCCL reference."""

    @pytest.fixture(scope="class")
    def run(self):
        return scenarios.fig4_scenario()

    def test_simulated_points_bit_identical(self, run, goldens):
        assert run["simulated_ns"] == goldens["fig4"]["values"]["simulated_ns"]

    def test_mean_error_frozen_and_bounded(self, run, goldens):
        frozen = goldens["fig4"]["values"]
        paper = goldens["fig4"]["paper"]
        assert run["mean_error"] == frozen["mean_error"]
        assert run["mean_error"] < paper["mean_error_bound"]
        assert run["max_error"] == frozen["max_error"]


class TestSecIVC:
    """Sec. IV-C analytical-vs-packet cost structure."""

    @pytest.fixture(scope="class")
    def run(self):
        return scenarios.secivc_scenario()

    def test_backend_times_bit_identical(self, run, goldens):
        frozen = goldens["secivc"]["values"]
        assert run["analytical"]["collective_ns"] == \
            frozen["analytical"]["collective_ns"]
        assert run["garnetlite"]["collective_ns"] == \
            frozen["garnetlite"]["collective_ns"]

    def test_backends_agree_on_congestion_free_traffic(self, run):
        assert run["garnetlite"]["collective_ns"] == pytest.approx(
            run["analytical"]["collective_ns"], rel=1e-6)

    def test_event_ratio_frozen_and_large(self, run, goldens):
        frozen = goldens["secivc"]["values"]
        paper = goldens["secivc"]["paper"]
        assert run["analytical"]["events"] == frozen["analytical"]["events"]
        assert run["garnetlite"]["events"] == frozen["garnetlite"]["events"]
        assert run["event_ratio"] >= paper["min_event_ratio"]

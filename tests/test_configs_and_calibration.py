"""Unit tests for canned paper configurations and the NCCL reference."""

import pytest

from repro.calibration import (
    NCCL_RING_EFFICIENCY,
    nccl_ring_allreduce_reference_ns,
    reference_curve,
)
from repro.configs import (
    CONV_3D,
    CONV_4D,
    TABLE2_TOPOLOGIES,
    W_1D_600,
    W_2D,
    conv_4d_scaled,
    hiermem_baseline,
    hiermem_opt,
    moe_npu_network,
    wafer_scaled,
    zero_infinity_table5,
)

MiB = 1 << 20


class TestTable2:
    def test_all_systems_have_512_npus(self):
        for name, topo in TABLE2_TOPOLOGIES.items():
            assert topo.num_npus == 512, name

    def test_shapes_match_table(self):
        assert W_2D.shape == (32, 16)
        assert CONV_3D.shape == (16, 8, 4)
        assert CONV_4D.shape == (2, 8, 8, 4)

    def test_bandwidths_match_table(self):
        assert [d.bandwidth_gbps for d in CONV_4D.dims] == [250, 200, 100, 50]
        assert [d.bandwidth_gbps for d in CONV_3D.dims] == [200, 100, 50]
        assert W_1D_600.dims[0].bandwidth_gbps == 600

    def test_scaling_variants(self):
        base = conv_4d_scaled()
        assert base.shape == (2, 8, 8, 4)
        assert base.dims[0].bandwidth_gbps == 1000
        assert conv_4d_scaled(last_dim=32).num_npus == 4096
        assert wafer_scaled(16).shape == (16, 8, 8, 4)

    def test_invalid_scaling_rejected(self):
        with pytest.raises(ValueError):
            conv_4d_scaled(last_dim=0)


class TestTable5:
    def test_zero_infinity_column(self):
        config = zero_infinity_table5()
        assert config.compute.peak_tflops == 2048
        assert config.remote_memory is not None
        assert config.remote_memory.config.path_bandwidth_gbps == 100
        assert config.fabric_collectives is None

    def test_hiermem_baseline_column(self):
        config = hiermem_baseline()
        pool = config.remote_memory.config
        assert pool.in_node_bw_gbps == 256
        assert pool.mem_side_bw_gbps == 100
        assert pool.num_remote_groups == 256
        assert pool.num_out_switches == 16
        assert config.fabric_collectives is not None

    def test_hiermem_opt_column(self):
        pool = hiermem_opt().remote_memory.config
        assert pool.in_node_bw_gbps == 512
        assert pool.mem_side_bw_gbps == 500

    def test_moe_network_is_256_gpus(self):
        assert moe_npu_network().num_npus == 256


class TestNcclReference:
    def test_monotone_in_payload(self):
        times = [nccl_ring_allreduce_reference_ns(4, s * MiB)
                 for s in (64, 128, 256, 512, 1024)]
        assert times == sorted(times)

    def test_more_gpus_more_time_at_fixed_payload(self):
        # 2(k-1)/k grows with k, and step latencies add.
        assert nccl_ring_allreduce_reference_ns(16, 256 * MiB) > \
            nccl_ring_allreduce_reference_ns(4, 256 * MiB)

    def test_deterministic(self):
        a = nccl_ring_allreduce_reference_ns(4, 100 * MiB)
        b = nccl_ring_allreduce_reference_ns(4, 100 * MiB)
        assert a == b

    def test_close_to_ideal_alpha_beta(self):
        payload = 1024 * MiB
        t = nccl_ring_allreduce_reference_ns(4, payload)
        ideal = 2 * 3 * (payload / 4) / 150.0
        # Within protocol efficiency + jitter of the ideal curve.
        assert ideal < t < ideal / (NCCL_RING_EFFICIENCY * 0.9)

    def test_trivial_ring(self):
        assert nccl_ring_allreduce_reference_ns(1, MiB) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            nccl_ring_allreduce_reference_ns(4, -1)

    def test_reference_curve_shape(self):
        sweep = [64 * MiB, 128 * MiB]
        curve = reference_curve(4, sweep)
        assert [s for s, _ in curve] == sweep
        assert all(t > 0 for _, t in curve)

"""Unit tests for the static trace linter."""

import pytest

from repro.network import parse_topology
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType
from repro.workload import (
    ParallelismSpec,
    generate_dlrm,
    generate_megatron_hybrid,
    generate_moe,
    generate_pipeline_parallel,
    gpt3_175b,
    dlrm_paper,
    moe_1t,
)
from repro.frontend import zoo_graph, zoo_names
from repro.frontend.ir import OpGraph, OpKind, OpNode, matmul_flops
from repro.workload.lint import lint_op_graph, lint_traces
from repro.workload.models import TransformerSpec


def _topo():
    return parse_topology("Ring(4)_Switch(2)", [100, 50])


class TestCleanTraces:
    def test_generators_produce_clean_traces(self):
        topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)",
                              [250, 200, 100, 50])
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        cases = [
            generate_megatron_hybrid(gpt3_175b(), topo,
                                     ParallelismSpec(mp=16, dp=32)),
            generate_dlrm(dlrm_paper(), topo),
            generate_moe(moe_1t(), topo),
            generate_pipeline_parallel(
                model, parse_topology("Ring(4)_Switch(2)", [100, 50]),
                ParallelismSpec(pp=4, dp=2), microbatches=3),
        ]
        topos = [topo, topo, topo,
                 parse_topology("Ring(4)_Switch(2)", [100, 50])]
        for traces, t in zip(cases, topos):
            assert lint_traces(traces, t) == []

    def test_flat_group_traces_are_clean(self):
        wafer = parse_topology("Switch(512)", [600])
        traces = generate_megatron_hybrid(
            gpt3_175b(), wafer, ParallelismSpec(mp=16, dp=32))
        assert lint_traces(traces, wafer) == []


class TestFindings:
    def test_unmatched_send(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_SEND, tensor_bytes=8, peer=1, tag=7)])
        findings = lint_traces({0: t0}, _topo())
        assert any("1 sends vs 0 receives" in f for f in findings)

    def test_matched_channel_is_clean(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_SEND, tensor_bytes=8, peer=1, tag=7)])
        t1 = ExecutionTrace(1, [
            ETNode(0, NodeType.COMM_RECV, tensor_bytes=8, peer=0, tag=7)])
        assert lint_traces({0: t0, 1: t1}, _topo()) == []

    def test_nonexistent_peer(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_SEND, tensor_bytes=8, peer=99, tag=1)])
        findings = lint_traces({0: t0}, _topo())
        assert any("nonexistent NPU 99" in f for f in findings)

    def test_bad_comm_dims(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=8,
                   collective=CollectiveType.ALL_REDUCE, comm_dims=(5,))])
        findings = lint_traces({0: t0}, _topo())
        assert any("out of range" in f for f in findings)

    def test_non_cartesian_group(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMM_COLLECTIVE, tensor_bytes=8,
                   collective=CollectiveType.ALL_REDUCE,
                   involved_npus=(0, 1, 4))])
        findings = lint_traces({0: t0}, _topo())
        assert any("cartesian" in f for f in findings)

    def test_unbalanced_collective_counts(self):
        ar = dict(node_type=NodeType.COMM_COLLECTIVE, tensor_bytes=8,
                  collective=CollectiveType.ALL_REDUCE, comm_dims=(0,))
        t0 = ExecutionTrace(0, [ETNode(0, **ar), ETNode(1, deps=(0,), **ar)])
        t1 = ExecutionTrace(1, [ETNode(0, **ar)])
        findings = lint_traces({0: t0, 1: t1}, _topo())
        assert any("unequal collective counts" in f for f in findings)

    def test_trace_key_mismatch(self):
        t0 = ExecutionTrace(0, [
            ETNode(0, NodeType.COMPUTE, flops=1)])
        findings = lint_traces({3: t0}, _topo())
        assert any("registered under key 3" in f for f in findings)

    def test_npu_outside_topology(self):
        t0 = ExecutionTrace(99, [ETNode(0, NodeType.COMPUTE, flops=1)])
        findings = lint_traces({99: t0}, _topo())
        assert any("does not exist" in f for f in findings)


def _dirty_graph(ops):
    """Build an op graph without validation so the linter sees the mess."""
    return OpGraph("dirty", ops, validate=False)


class TestOpGraphLint:
    @pytest.mark.parametrize("name", sorted(zoo_names()))
    def test_zoo_graphs_are_clean(self, name):
        assert lint_op_graph(zoo_graph(name)) == []

    def test_dangling_dep(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "a", OpKind.MATMUL, deps=(7,), flops=10)]))
        assert any("unknown op 7" in f for f in findings)

    def test_duplicate_ids(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "a", OpKind.MATMUL, flops=10),
            OpNode(0, "b", OpKind.MATMUL, flops=10)]))
        assert any("duplicate op id 0" in f for f in findings)

    def test_zero_cost_op(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "noop", OpKind.ELEMENTWISE)]))
        assert any("contributes no cost" in f for f in findings)

    def test_routed_op_with_payload_is_not_zero_cost(self):
        graph = _dirty_graph([
            OpNode(0, "expert", OpKind.MATMUL, routed=True,
                   route_bytes=1024)])
        assert lint_op_graph(graph) == []

    def test_matmul_shape_mismatch(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "mm", OpKind.MATMUL, flops=999,
                   attrs={"m": 4, "k": 8, "n": 16})]))
        assert any("does not match its m/k/n" in f for f in findings)
        clean = _dirty_graph([
            OpNode(0, "mm", OpKind.MATMUL, flops=matmul_flops(4, 8, 16),
                   attrs={"m": 4, "k": 8, "n": 16})])
        assert lint_op_graph(clean) == []

    def test_attention_shape_mismatch(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "attn", OpKind.ATTENTION, flops=5,
                   attrs={"batch": 2, "seq": 16, "hidden": 64})]))
        assert any("batch/seq/hidden" in f for f in findings)

    def test_tp_on_replicated_kind(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "ln", OpKind.NORM, param_bytes=8, tp="col")]))
        assert any("replicated, not" in f for f in findings)

    def test_cycle_reported(self):
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "a", OpKind.MATMUL, deps=(1,), flops=10),
            OpNode(1, "b", OpKind.MATMUL, deps=(0,), flops=10)]))
        assert any("cycle" in f for f in findings)

    def test_per_op_validate_errors_are_findings(self):
        # self-dep + negative flops + routed without payload, all reported
        findings = lint_op_graph(_dirty_graph([
            OpNode(0, "self", OpKind.MATMUL, deps=(0,), flops=10),
            OpNode(1, "neg", OpKind.MATMUL, flops=-5),
            OpNode(2, "router", OpKind.MATMUL, flops=10, routed=True)]))
        assert any("depends on itself" in f for f in findings)
        assert any("must be >= 0" in f for f in findings)
        assert any("no route_bytes" in f for f in findings)

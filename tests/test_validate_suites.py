"""Tests for the metamorphic and conformance pillars of repro.validate."""

import json
import math

from repro.validate import run_conformance_suite, run_metamorphic_suite
from repro.validate.conformance import (
    ALGORITHM_STEPS,
    CONFORMANCE_SCHEMA_VERSION,
    REL_SAF,
    _saf_allowance_ns,
)
from repro.validate.metamorphic import RELATIONS, RelationResult


class TestMetamorphicSuite:
    def test_quick_suite_passes(self):
        results = run_metamorphic_suite(quick=True)
        failed = [r for r in results if not r.passed]
        assert not failed, "\n".join(r.message for r in failed)
        # Every registered relation must have produced at least one case.
        seen = {r.relation for r in results}
        assert seen == {fn.__name__.removeprefix("check_")
                        for fn in RELATIONS}

    def test_results_serialize(self):
        results = run_metamorphic_suite(quick=True)
        doc = json.loads(json.dumps([r.to_dict() for r in results]))
        assert all(set(d) >= {"relation", "case", "passed"} for d in doc)

    def test_relation_result_shape(self):
        r = RelationResult("monotonicity", "ring8", True, {"a": 1.0}, "ok")
        assert r.to_dict()["detail"] == {"a": 1.0}


class TestConformanceSuite:
    def test_quick_suite_passes_with_invariants(self):
        report = run_conformance_suite(quick=True, check_invariants=True)
        assert report.passed, "\n".join(
            c.message for c in report.failures)
        assert report.cases, "suite must exercise backend pairs"
        assert all(c.invariant_violations == 0 for c in report.cases)

    def test_backends_and_algorithms_covered(self):
        report = run_conformance_suite(quick=True, check_invariants=False)
        backends = {c.backend for c in report.cases}
        assert backends == {"flow", "garnet"}
        algorithms = {c.algorithm for c in report.cases}
        assert algorithms == set(ALGORITHM_STEPS)
        # Halving-doubling's store-and-forward closed form only holds
        # through a single switch fabric, so it runs on Switch scenarios.
        hd_topos = {c.scenario for c in report.cases
                    if c.algorithm == "halving_doubling_allreduce"}
        assert all(t.startswith("switch") for t in hd_topos)

    def test_garnet_adjusted_error_is_tiny(self):
        # The saf correction is exact for packet-aligned payloads: the
        # adjusted error should sit at float-rounding level, far below
        # the REL_SAF gate.
        report = run_conformance_suite(quick=True, check_invariants=False)
        for case in report.cases:
            if case.backend == "garnet":
                assert case.adjusted_rel_error <= REL_SAF, case.message

    def test_report_to_dict_and_dump(self, tmp_path):
        report = run_conformance_suite(quick=True, check_invariants=False)
        doc = report.to_dict()
        assert doc["schema_version"] == CONFORMANCE_SCHEMA_VERSION
        assert doc["passed"] is True
        assert "tolerances" in doc
        path = tmp_path / "conformance.json"
        report.dump(path)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))

    def test_memory_matrix_cases_present(self):
        report = run_conformance_suite(quick=True, check_invariants=False)
        names = {c.memory_model for c in report.memory_cases}
        assert {"local", "hiermem", "zero-infinity"} <= names

    def test_saf_allowance_math(self):
        # Switch fabric: one extra store-and-forward hop per step.
        steps = ALGORITHM_STEPS["ring_allreduce"](8)
        assert steps == 14
        allowance = _saf_allowance_ns(
            "Switch(8)", 50.0, 8, "ring_allreduce", packet_bytes=4096)
        assert math.isclose(allowance, 14 * 4096 / 50.0)
        # Neighbor ring: packets go straight onto the next-hop link — no
        # extra fabric hop, no allowance.
        assert _saf_allowance_ns(
            "Ring(8)", 50.0, 8, "ring_allreduce", packet_bytes=4096) == 0.0

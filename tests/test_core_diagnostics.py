"""Unit tests for deadlock diagnostics."""

import pytest

from repro.core import DeadlockError, Simulator, SystemConfig
from repro.memory import LocalMemory
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.trace import CollectiveType, ETNode, ExecutionTrace, NodeType


def _config():
    topo = parse_topology("Ring(4)_Switch(2)", [100, 50])
    return SystemConfig(
        topology=topo,
        compute=RooflineCompute(peak_tflops=1.0),
        local_memory=LocalMemory(bandwidth_gbps=100.0),
    )


def test_unmatched_recv_names_the_peer_and_tag():
    trace = ExecutionTrace(1, [
        ETNode(0, NodeType.COMM_RECV, name="recvF", tensor_bytes=100,
               peer=0, tag=42),
    ])
    sim = Simulator({1: trace}, _config())
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    message = str(exc.value)
    assert "no matching send from npu 0 tag 42" in message
    assert "recvF" in message


def test_incomplete_rendezvous_lists_missing_members():
    # NPU 0 issues a dim-0 collective; NPU 1 (same group, simulated) never
    # reaches its matching node because it waits on an unmatched recv.
    t0 = ExecutionTrace(0, [
        ETNode(0, NodeType.COMM_COLLECTIVE, name="ar", tensor_bytes=100,
               collective=CollectiveType.ALL_REDUCE, comm_dims=(0,)),
    ])
    t1 = ExecutionTrace(1, [
        ETNode(0, NodeType.COMM_RECV, tensor_bytes=10, peer=3, tag=9),
        ETNode(1, NodeType.COMM_COLLECTIVE, name="ar", tensor_bytes=100,
               collective=CollectiveType.ALL_REDUCE, comm_dims=(0,),
               deps=(0,)),
    ])
    sim = Simulator({0: t0, 1: t1}, _config())
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    message = str(exc.value)
    assert "incomplete collective rendezvous" in message
    assert "arrived [0]" in message
    assert "missing [1]" in message


def test_blocked_dependencies_reported():
    trace = ExecutionTrace(0, [
        ETNode(0, NodeType.COMM_RECV, tensor_bytes=10, peer=1, tag=1),
        ETNode(1, NodeType.COMPUTE, name="after", flops=100, deps=(0,)),
    ])
    sim = Simulator({0: trace}, _config())
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "waiting on 1 dependencies" in str(exc.value)


def test_healthy_run_raises_nothing():
    trace = ExecutionTrace(0, [ETNode(0, NodeType.COMPUTE, flops=100)])
    result = Simulator({0: trace}, _config()).run()
    assert result.total_time_ns > 0

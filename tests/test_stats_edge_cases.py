"""Edge-case tests for stats.breakdown and stats.timeline.

Covers the corners the main suites skip: empty logs, zero-duration
intervals, fully-overlapping activities of equal priority, and degenerate
timeline widths.
"""

import pytest

from repro.stats.breakdown import (
    Activity,
    ActivityLog,
    Breakdown,
    compute_breakdown,
)
from repro.stats.timeline import (
    IDLE_GLYPH,
    render_timeline,
    utilization_by_npu,
)


class TestEmptyActivityLog:
    def test_no_npus(self):
        assert ActivityLog().npus() == []

    def test_breakdown_is_all_idle(self):
        breakdown = ActivityLog().breakdown(0, 1000.0)
        assert breakdown.total_ns == 1000.0
        assert breakdown.idle_ns == 1000.0
        assert all(v == 0.0 for v in breakdown.exposed_ns.values())

    def test_merged_breakdown_of_empty_log(self):
        merged = ActivityLog().merged_breakdown(500.0)
        assert merged.total_ns == 500.0
        assert merged.idle_ns == 500.0

    def test_timeline_renders_header_and_legend_only(self):
        text = render_timeline(ActivityLog(), 1000.0, width=10)
        lines = text.splitlines()
        assert lines[0].startswith("timeline:")
        assert lines[-1].startswith("legend:")
        assert len(lines) == 2  # no NPU rows

    def test_utilization_of_empty_log(self):
        assert utilization_by_npu(ActivityLog(), 1000.0) == {}

    def test_merge_of_no_breakdowns(self):
        merged = Breakdown.merge([])
        assert merged.total_ns == 0.0
        assert merged.idle_ns == 0.0
        assert merged.fraction(Activity.COMPUTE) == 0.0


class TestZeroDurationIntervals:
    def test_record_skips_zero_duration(self):
        log = ActivityLog()
        log.record(0, 100.0, 100.0, Activity.COMPUTE)
        assert log.npus() == []
        assert log.intervals(0) == []

    def test_record_rejects_negative_duration(self):
        log = ActivityLog()
        with pytest.raises(ValueError):
            log.record(0, 100.0, 99.0, Activity.COMPUTE)

    def test_zero_duration_interval_charges_nothing(self):
        breakdown = compute_breakdown(
            [(50.0, 50.0, Activity.COMM)], 100.0)
        assert breakdown.exposed_comm_ns == 0.0
        assert breakdown.idle_ns == 100.0

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            compute_breakdown([], -1.0)


class TestFullyOverlappingEqualPriority:
    def test_same_activity_counted_once(self):
        """Two coincident COMM intervals expose the span once, not twice."""
        breakdown = compute_breakdown(
            [(0.0, 100.0, Activity.COMM), (0.0, 100.0, Activity.COMM)],
            100.0)
        assert breakdown.exposed_comm_ns == 100.0
        assert breakdown.idle_ns == 0.0

    def test_nested_same_activity(self):
        breakdown = compute_breakdown(
            [(0.0, 100.0, Activity.COMPUTE), (25.0, 75.0, Activity.COMPUTE)],
            100.0)
        assert breakdown.compute_ns == 100.0

    def test_higher_priority_hides_equal_span(self):
        breakdown = compute_breakdown(
            [(0.0, 100.0, Activity.COMPUTE), (0.0, 100.0, Activity.COMM)],
            100.0)
        assert breakdown.compute_ns == 100.0
        assert breakdown.exposed_comm_ns == 0.0

    def test_timeline_priority_on_shared_slice(self):
        log = ActivityLog()
        log.record(0, 0.0, 100.0, Activity.COMM)
        log.record(0, 0.0, 100.0, Activity.COMPUTE)
        row = render_timeline(log, 100.0, width=4).splitlines()[1]
        assert row == "npu 0 |####|"


class TestTimelineDegenerateWidths:
    def _log(self):
        log = ActivityLog()
        log.record(0, 0.0, 400.0, Activity.COMPUTE)
        log.record(0, 400.0, 1000.0, Activity.COMM)
        return log

    def test_width_one(self):
        """A single column shows the highest-priority activity overall."""
        text = render_timeline(self._log(), 1000.0, width=1)
        row = text.splitlines()[1]
        assert row == "npu 0 |#|"

    def test_width_zero_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(self._log(), 1000.0, width=0)

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(self._log(), 0.0)
        with pytest.raises(ValueError):
            render_timeline(self._log(), -5.0)

    def test_interval_past_horizon_clamps_to_last_column(self):
        log = ActivityLog()
        log.record(0, 900.0, 5000.0, Activity.COMM)
        row = render_timeline(log, 1000.0, width=10).splitlines()[1]
        cells = row.split("|")[1]
        assert cells[-1] == "~"
        assert cells[:-1] == IDLE_GLYPH * 9

    def test_idle_everywhere_when_log_has_other_npu_only(self):
        log = ActivityLog()
        log.record(7, 0.0, 100.0, Activity.COMPUTE)
        row = render_timeline(log, 100.0, width=5, npus=[3]).splitlines()[1]
        assert row == f"npu 3 |{IDLE_GLYPH * 5}|"

"""Unit tests for the packet-level Garnet-lite backend."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, GarnetLiteNetwork, parse_topology


def _net(notation="Ring(4)_Ring(4)", bws=(100, 100), lats=(100, 100), packet=1024):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    return engine, GarnetLiteNetwork(engine, topo, packet_bytes=packet)


class TestRouting:
    def test_dimension_order_route_on_torus(self):
        engine, net = _net()
        # 0 -> 5: coords (0,0) -> (1,1): dim0 first then dim1.
        assert net.route(0, 5) == [0, 1, 5]

    def test_ring_takes_shortest_direction(self):
        engine, net = _net("Ring(8)", (100,), (100,))
        assert net.route(0, 7) == [0, 7]
        assert net.route(0, 2) == [0, 1, 2]

    def test_switch_route_via_fabric_node(self):
        engine, net = _net("Switch(4)", (100,), (100,))
        path = net.route(0, 3)
        assert len(path) == 3
        assert path[0] == 0 and path[-1] == 3
        assert path[1][0] == "sw"

    def test_fc_is_direct(self):
        engine, net = _net("FC(6)", (100,), (100,))
        assert net.route(1, 4) == [1, 4]


class TestLinkGraph:
    def test_ring_link_count(self):
        engine, net = _net("Ring(4)", (100,), (100,))
        # 4 NPUs x 2 directed neighbor links.
        assert net.link_count() == 8

    def test_two_npu_ring_has_one_link_each_way(self):
        engine, net = _net("Ring(2)", (100,), (100,))
        assert net.link_count() == 2

    def test_switch_links(self):
        engine, net = _net("Switch(4)", (100,), (100,))
        # 4 uplinks + 4 downlinks through the fabric node.
        assert net.link_count() == 8

    def test_bad_packet_size_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100])
        with pytest.raises(ValueError):
            GarnetLiteNetwork(engine, topo, packet_bytes=0)


class TestTransfer:
    def test_matches_analytical_on_unloaded_single_hop(self):
        size = 8192
        engine_a = EventEngine()
        topo = parse_topology("Ring(4)", [100], latencies_ns=[100])
        analytical = AnalyticalNetwork(engine_a, topo)
        t_analytical = analytical.transfer_time(0, 1, size)

        engine_g, garnet = _net("Ring(4)", (100,), (100,), packet=8192)
        done = []
        garnet.sim_recv(1, 0, size, callback=lambda m: done.append(engine_g.now))
        garnet.sim_send(0, 1, size)
        engine_g.run()
        assert done[0] == pytest.approx(t_analytical)

    def test_packet_pipelining_beats_store_and_forward(self):
        # Over 2 hops, many small packets pipeline: faster than 2x full
        # serialization, slower than 1x.
        size = 64 * 1024
        engine, net = _net("Ring(8)", (100,), (0,), packet=1024)
        done = []
        net.sim_recv(2, 0, size, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 2, size)
        engine.run()
        one_serialization = size / 100
        assert one_serialization < done[0] < 2 * one_serialization

    def test_congestion_two_flows_share_a_link(self):
        # Flows 0->1 and 0->1 (same link) take twice as long as one flow.
        size = 10240
        engine, net = _net("Ring(4)", (100,), (0,), packet=1024)
        done = []
        net.sim_recv(1, 0, size, tag=0, callback=lambda m: done.append(engine.now))
        net.sim_recv(1, 0, size, tag=1, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, size, tag=0)
        net.sim_send(0, 1, size, tag=1)
        engine.run()
        assert max(done) == pytest.approx(2 * size / 100, rel=0.05)

    def test_cross_traffic_on_disjoint_links_is_parallel(self):
        size = 10240
        engine, net = _net("Ring(4)", (100,), (0,), packet=1024)
        done = []
        net.sim_recv(1, 0, size, callback=lambda m: done.append(engine.now))
        net.sim_recv(3, 2, size, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, size)
        net.sim_send(2, 3, size)
        engine.run()
        assert max(done) == pytest.approx(size / 100, rel=0.05)

    def test_packet_hop_count_grows_with_distance(self):
        engine, net = _net("Ring(8)", (100,), (0,), packet=1024)
        net.sim_recv(3, 0, 4096, callback=lambda m: None)
        net.sim_send(0, 3, 4096)
        engine.run()
        assert net.packet_hops == 4 * 3  # 4 packets x 3 hops

    def test_on_sent_fires_after_first_link_serialization(self):
        engine, net = _net("Ring(8)", (100,), (0,), packet=1024)
        sent = []
        net.sim_send(0, 2, 4096, callback=lambda: sent.append(engine.now))
        engine.run()
        assert sent[0] == pytest.approx(4096 / 100)

    def test_max_link_bytes_tracks_heaviest_link(self):
        engine, net = _net("Ring(4)", (100,), (0,), packet=1024)
        net.sim_recv(1, 0, 2048, callback=lambda m: None)
        net.sim_send(0, 1, 2048)
        engine.run()
        assert net.max_link_bytes() == 2048


class TestPacketTrains:
    """Opt-in coalescing: train_packets > 1 trades granularity for events."""

    def _trained(self, train, **kw):
        engine = EventEngine()
        topo = parse_topology("Ring(8)", [100.0], latencies_ns=[100.0])
        return engine, GarnetLiteNetwork(
            engine, topo, packet_bytes=1024, train_packets=train, **kw)

    def test_default_train_of_one_is_exact(self):
        engine, net = self._trained(1)
        assert net.train_packets == 1

    def test_trains_cut_event_count(self):
        times, events = {}, {}
        for train in (1, 4):
            engine, net = self._trained(train)
            done = []
            net.sim_recv(2, 0, 64 * 1024, callback=lambda m: done.append(engine.now))
            net.sim_send(0, 2, 64 * 1024)
            engine.run()
            times[train], events[train] = done[0], engine.events_processed
        # ~4x fewer events, completion within one train per hop.
        assert events[4] <= events[1] / 3
        assert times[4] == pytest.approx(times[1], rel=0.2)

    def test_train_preserves_packet_hop_accounting(self):
        engine, net = self._trained(4)
        net.sim_recv(3, 0, 4096, callback=lambda m: None)
        net.sim_send(0, 3, 4096)
        engine.run()
        assert net.packet_hops == 4 * 3  # 4 packets x 3 hops, 1 train event each

    def test_uneven_tail_train_carries_remainder(self):
        engine, net = self._trained(4)
        done = []
        net.sim_recv(1, 0, 5 * 1024, callback=lambda m: done.append(engine.now))
        net.sim_send(0, 1, 5 * 1024)  # one full train + one single-packet tail
        engine.run()
        assert done and net.packet_hops == 5

    def test_invalid_train_rejected(self):
        engine = EventEngine()
        topo = parse_topology("Ring(4)", [100.0])
        with pytest.raises(ValueError):
            GarnetLiteNetwork(engine, topo, train_packets=0)


class TestLinkPathCache:
    def test_repeated_pairs_resolve_once(self):
        engine, net = _net("Ring(8)", (100,), (0,))
        for tag in range(3):
            net.sim_recv(3, 0, 2048, tag=tag, callback=lambda m: None)
            net.sim_send(0, 3, 2048, tag=tag)
        engine.run()
        assert len(net._path_cache) == 1
        assert len(net._path_cache[(0, 3)]) == 3

"""Warm-pool unit tests and campaign failure-path tests.

Covers the :mod:`repro.campaign.pool` primitives (base-config broadcast,
batch planning, batched worker entry, pool lifecycle) and the runner's
crash-containment contract: a worker dying mid-batch yields structured
per-point error records — never a hung sweep — innocents sharing the
crasher's batch survive via retry, ``fail_fast`` aborts promptly, and
``KeyboardInterrupt`` tears the fleet down cleanly.
"""

import os

import pytest

from repro.campaign import (
    CampaignError,
    CampaignRunner,
    SweepSpec,
    WarmPool,
    get_shared_pool,
    pick_start_method,
    plan_batches,
    run_batch,
    shared_pool_stats,
    shutdown_shared_pool,
    split_common_base,
)

SMALL_BASE = {
    "topology": "Ring(4)", "bandwidths": "100",
    "workload": "allreduce", "payload_mib": 1,
}


def echo_executor(point):
    return {"total_time_ns": float(point["payload_mib"]) * 10.0}


def failing_executor(point):
    if float(point["payload_mib"]) >= 2:
        raise RuntimeError("boom at %s" % point["payload_mib"])
    return {"total_time_ns": 1.0}


def crashing_executor(point):
    """Kills the worker process outright (no exception to catch)."""
    if float(point["payload_mib"]) == 2.0:
        os._exit(13)
    return {"total_time_ns": float(point["payload_mib"]) * 10.0}


@pytest.fixture(autouse=True)
def _clean_shared_pool():
    """Every test starts and ends without a leaked shared fleet."""
    shutdown_shared_pool()
    yield
    shutdown_shared_pool()


class TestSplitCommonBase:
    def test_common_fields_factor_into_base(self):
        points = [dict(SMALL_BASE, chunks=c) for c in (8, 16)]
        base, overrides = split_common_base(points)
        assert base == SMALL_BASE
        assert overrides == [{"chunks": 8}, {"chunks": 16}]
        for point, override in zip(points, overrides):
            assert {**base, **override} == point

    def test_no_common_fields(self):
        base, overrides = split_common_base([{"a": 1}, {"b": 2}])
        assert base == {}
        assert overrides == [{"a": 1}, {"b": 2}]

    def test_unhashable_values_compare_canonically(self):
        points = [{"faults": ["link:0"], "x": i} for i in range(2)]
        base, overrides = split_common_base(points)
        assert base == {"faults": ["link:0"]}
        assert overrides == [{"x": 0}, {"x": 1}]

    def test_empty(self):
        assert split_common_base([]) == ({}, [])


class TestPlanBatches:
    def test_explicit_batch_size(self):
        assert plan_batches([0, 1, 2, 3, 4], workers=2, batch_size=2) == [
            [0, 1], [2, 3], [4]]

    def test_auto_targets_two_tasks_per_worker(self):
        batches = plan_batches(list(range(16)), workers=4)
        assert len(batches) == 8
        assert sorted(i for b in batches for i in b) == list(range(16))

    def test_auto_never_empty_batches(self):
        assert plan_batches([7], workers=4) == [[7]]
        assert plan_batches([], workers=4) == []


class TestRunBatch:
    def test_reconstructs_points_from_base(self):
        out = run_batch(echo_executor, SMALL_BASE,
                        [(3, {"payload_mib": 2}), (5, {})])
        assert out[0] == (3, {"ok": True,
                              "result": {"total_time_ns": 20.0}})
        assert out[1] == (5, {"ok": True,
                              "result": {"total_time_ns": 10.0}})

    def test_failure_becomes_outcome_not_exception(self):
        out = run_batch(failing_executor, SMALL_BASE,
                        [(0, {}), (1, {"payload_mib": 2})])
        assert out[0][1]["ok"] is True
        assert out[1][1]["ok"] is False
        assert out[1][1]["error"]["type"] == "RuntimeError"


class TestWarmPoolLifecycle:
    def test_start_method_is_never_fork(self):
        assert pick_start_method() in ("forkserver", "spawn")
        assert WarmPool(1).start_method in ("forkserver", "spawn")

    def test_restart_is_idempotent_per_generation(self):
        pool = WarmPool(1)
        generation = pool.generation
        assert pool.restart(generation) is True
        # a latecomer carrying the stale generation is a no-op
        assert pool.restart(generation) is False
        assert pool.generation == generation + 1
        assert pool.restarts == 1
        pool.shutdown()

    def test_resize_grows_never_shrinks(self):
        pool = WarmPool(2)
        pool.resize(1)
        assert pool.workers == 2
        pool.resize(3)
        assert pool.workers == 3
        pool.shutdown()

    def test_submit_after_shutdown_rejected(self):
        pool = WarmPool(1)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(os.getpid)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            WarmPool(0)


class TestSharedFleet:
    def test_workers_are_reused_across_sweeps(self):
        pool = get_shared_pool(2)
        pids = pool.warm_up()
        assert len(pids) >= 1
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 3]})
        CampaignRunner(jobs=2, executor=echo_executor).run(spec)
        # the same worker processes are still serving after the sweep
        assert pool.warm_up() == pids
        assert get_shared_pool(2) is pool

    def test_shared_pool_grows_on_demand(self):
        pool = get_shared_pool(1)
        assert get_shared_pool(2) is pool
        assert pool.workers == 2

    def test_stats_reflect_lifecycle(self):
        assert shared_pool_stats() is None
        pool = get_shared_pool(1)
        stats = shared_pool_stats()
        assert stats["workers"] == 1 and stats["started"] is False
        pool.warm_up()
        assert shared_pool_stats()["started"] is True
        shutdown_shared_pool()
        assert shared_pool_stats() is None


class TestCrashContainment:
    def test_worker_crash_mid_batch_yields_error_records(self):
        """A dying worker must not hang the sweep or take innocents down.

        With batch_size=2, the crashing point shares a task with an
        innocent one; both see the broken pool, both are retried as
        singletons on a fresh fleet, the innocent succeeds, and the
        deterministic crasher exhausts its retries into a structured
        error record.
        """
        spec = SweepSpec(base=SMALL_BASE,
                         grid={"payload_mib": [1, 2, 3, 4]})
        campaign = CampaignRunner(jobs=2, executor=crashing_executor,
                                  warm=False, batch_size=2).run(spec)
        assert len(campaign.points) == 4
        errors = campaign.errors
        assert len(errors) == 1
        assert errors[0]["config"]["payload_mib"] == 2.0
        assert errors[0]["error"]["type"] == "BrokenProcessPool"
        survivors = [p for p in campaign.points if p["error"] is None]
        assert sorted(p["result"]["total_time_ns"] for p in survivors) == [
            10.0, 30.0, 40.0]
        counters = {m["name"]: m["value"]
                    for m in campaign.telemetry.to_list()}
        assert counters["worker_restarts"] >= 1
        assert counters["points_retried"] >= 1
        assert counters["points_failed"] == 1

    def test_fail_fast_cancels_pending_batches(self):
        spec = SweepSpec(base=SMALL_BASE,
                         grid={"payload_mib": [2, 1, 3, 4]})
        runner = CampaignRunner(jobs=2, executor=failing_executor,
                                warm=False, batch_size=1, fail_fast=True)
        with pytest.raises(CampaignError, match="failed"):
            runner.run(spec)

    def test_keyboard_interrupt_tears_fleet_down(self, monkeypatch):
        import repro.campaign.runner as runner_mod

        def interrupted_wait(futures):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "_wait_any", interrupted_wait)
        spec = SweepSpec(base=SMALL_BASE, grid={"payload_mib": [1, 3]})
        runner = CampaignRunner(jobs=1, executor=echo_executor)
        with pytest.raises(KeyboardInterrupt):
            runner.run(spec)
        # ^C must leave no shared fleet behind
        assert shared_pool_stats() is None

"""Unit tests for the analytical network backend."""

import pytest

from repro.events import EventEngine
from repro.network import AnalyticalNetwork, parse_topology


def _backend(notation="Ring(4)_Switch(2)", bws=(100, 50), lats=(100, 500)):
    engine = EventEngine()
    topo = parse_topology(notation, list(bws), latencies_ns=list(lats))
    return engine, AnalyticalNetwork(engine, topo)


class TestClosedForm:
    def test_transfer_time_equation(self):
        engine, net = _backend()
        # NPUs 0 -> 1 differ on dim 0 (ring, 1 hop, 100 ns) at 100 GB/s.
        size = 1_000_000
        assert net.transfer_time(0, 1, size) == pytest.approx(100 + size / 100)

    def test_hops_multiply_latency(self):
        engine, net = _backend("Ring(8)", (100,), (100,))
        # 0 -> 4 is 4 ring hops.
        assert net.propagation_time(0, 4) == pytest.approx(400)

    def test_switch_counts_two_hops(self):
        engine, net = _backend()
        # 0 -> 4 differs on dim 1 (switch): 2 hops x 500 ns.
        assert net.propagation_time(0, 4) == pytest.approx(1000)

    def test_serialization_uses_dim_bandwidth(self):
        engine, net = _backend()
        assert net.serialization_time(500, 1) == pytest.approx(10.0)


class TestSendRecv:
    def test_delivery_fires_recv_callback(self):
        engine, net = _backend()
        results = []
        net.sim_recv(1, 0, 1000, callback=lambda m: results.append(engine.now))
        net.sim_send(0, 1, 1000)
        engine.run()
        assert results == [pytest.approx(100 + 10.0)]

    def test_send_callback_fires_at_serialization_end(self):
        engine, net = _backend()
        sent = []
        net.sim_send(0, 1, 1000, callback=lambda: sent.append(engine.now))
        engine.run()
        assert sent == [pytest.approx(10.0)]

    def test_recv_after_arrival_fires_immediately(self):
        engine, net = _backend()
        net.sim_send(0, 1, 1000)
        engine.run()
        got = []
        net.sim_recv(1, 0, 1000, callback=lambda m: got.append(m))
        assert len(got) == 1
        assert got[0].size_bytes == 1000

    def test_tags_isolate_message_streams(self):
        engine, net = _backend()
        got = []
        net.sim_recv(1, 0, 10, tag=7, callback=lambda m: got.append(("t7", m.tag)))
        net.sim_send(0, 1, 10, tag=3)
        net.sim_send(0, 1, 10, tag=7)
        engine.run()
        assert got == [("t7", 7)]
        assert net.undelivered_arrivals() == 1

    def test_fifo_matching_per_key(self):
        engine, net = _backend()
        sizes = []
        net.sim_recv(1, 0, 10, callback=lambda m: sizes.append(m.size_bytes))
        net.sim_recv(1, 0, 20, callback=lambda m: sizes.append(m.size_bytes))
        net.sim_send(0, 1, 10)
        net.sim_send(0, 1, 20)
        engine.run()
        assert sizes == [10, 20]

    def test_send_to_self_rejected(self):
        engine, net = _backend()
        with pytest.raises(ValueError):
            net.sim_send(3, 3, 10)

    def test_negative_size_rejected(self):
        engine, net = _backend()
        with pytest.raises(ValueError):
            net.sim_send(0, 1, -5)

    def test_stats_counters(self):
        engine, net = _backend()
        net.sim_recv(1, 0, 100, callback=lambda m: None)
        net.sim_send(0, 1, 100)
        engine.run()
        assert net.messages_delivered == 1
        assert net.bytes_delivered == 100


class TestPortSerialization:
    def test_back_to_back_sends_queue(self):
        engine, net = _backend("Ring(4)", (100,), (0,))
        arrivals = []
        for i in range(3):
            net.sim_recv(1, 0, 1000, tag=i, callback=lambda m: arrivals.append(engine.now))
            net.sim_send(0, 1, 1000, tag=i)
        engine.run()
        assert arrivals == [pytest.approx(10.0), pytest.approx(20.0), pytest.approx(30.0)]

    def test_different_dims_do_not_contend(self):
        engine, net = _backend("Ring(4)_Ring(4)", (100, 100), (0, 0))
        arrivals = {}
        net.sim_recv(1, 0, 1000, callback=lambda m: arrivals.update(d0=engine.now))
        net.sim_recv(4, 0, 1000, callback=lambda m: arrivals.update(d1=engine.now))
        net.sim_send(0, 1, 1000)   # dim 0 port
        net.sim_send(0, 4, 1000)   # dim 1 port
        engine.run()
        assert arrivals["d0"] == pytest.approx(10.0)
        assert arrivals["d1"] == pytest.approx(10.0)

    def test_reserve_port_advances_backlog(self):
        engine, net = _backend()
        start, end = net.reserve_port(0, 0, 100.0)
        assert (start, end) == (0.0, 100.0)
        start2, end2 = net.reserve_port(0, 0, 50.0)
        assert (start2, end2) == (100.0, 150.0)
        assert net.port_backlog(0, 0) == pytest.approx(150.0)
        assert net.port_backlog(0, 1) == 0.0

    def test_negative_reserve_rejected(self):
        engine, net = _backend()
        with pytest.raises(ValueError):
            net.reserve_port(0, 0, -1.0)

    def test_port_utilization(self):
        engine, net = _backend("Ring(4)", (100,), (0,))
        net.sim_send(0, 1, 1000)
        engine.run()
        assert net.port_utilization(0, 0) == pytest.approx(1.0)
        assert net.port_utilization(1, 0) == 0.0


class TestMultiDimPointToPoint:
    def test_transfer_time_sums_serializations(self):
        engine, net = _backend("Ring(4)_Switch(2)", (100, 50), (100, 500))
        # 0 -> 5: coords (0,0) -> (1,1): one ring hop + a switch crossing.
        size = 1000
        expected = (100 + 2 * 500) + size / 100 + size / 50
        assert net.transfer_time(0, 5, size) == pytest.approx(expected)

    def test_delivery_across_two_dims(self):
        engine, net = _backend("Ring(4)_Switch(2)", (100, 50), (0, 0))
        got = []
        net.sim_recv(5, 0, 1000, callback=lambda m: got.append(engine.now))
        net.sim_send(0, 5, 1000)
        engine.run()
        assert got == [pytest.approx(1000 / 100 + 1000 / 50)]

    def test_injection_port_is_first_differing_dim(self):
        engine, net = _backend("Ring(4)_Switch(2)", (100, 50), (0, 0))
        net.sim_send(0, 5, 1000)
        engine.run()
        assert net.port_utilization(0, 0) > 0
        assert net.port_backlog(0, 1) == 0.0

    def test_same_npu_rejected(self):
        engine, net = _backend()
        with pytest.raises(ValueError):
            net.sim_send(2, 2, 10)

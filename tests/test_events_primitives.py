"""Unit tests for synchronization primitives."""

import pytest

from repro.events import Barrier, CallbackList, EventEngine, Semaphore, SimulationError


class TestCallbackList:
    def test_callbacks_fire_in_order(self):
        cl = CallbackList()
        seen = []
        cl.add(lambda: seen.append(1))
        cl.add(lambda: seen.append(2))
        cl.fire()
        assert seen == [1, 2]

    def test_late_registration_fires_immediately(self):
        cl = CallbackList()
        cl.fire()
        seen = []
        cl.add(lambda: seen.append("late"))
        assert seen == ["late"]

    def test_double_fire_rejected(self):
        cl = CallbackList()
        cl.fire()
        with pytest.raises(SimulationError):
            cl.fire()

    def test_fired_flag(self):
        cl = CallbackList()
        assert not cl.fired
        cl.fire()
        assert cl.fired


class TestBarrier:
    def test_releases_on_last_arrival(self):
        released = []
        barrier = Barrier(3, lambda: released.append(True))
        barrier.arrive()
        barrier.arrive()
        assert not released
        barrier.arrive()
        assert released == [True]

    def test_extra_arrival_rejected(self):
        barrier = Barrier(1, lambda: None)
        barrier.arrive()
        with pytest.raises(SimulationError):
            barrier.arrive()

    def test_nonpositive_parties_rejected(self):
        with pytest.raises(ValueError):
            Barrier(0, lambda: None)

    def test_arrived_count(self):
        barrier = Barrier(2, lambda: None)
        barrier.arrive()
        assert barrier.arrived == 1
        assert not barrier.released


class TestSemaphore:
    def test_immediate_acquire_within_permits(self):
        engine = EventEngine()
        sem = Semaphore(engine, 2)
        got = []
        sem.acquire(lambda: got.append(1))
        sem.acquire(lambda: got.append(2))
        assert got == [1, 2]
        assert sem.available == 0

    def test_waiter_released_fifo(self):
        engine = EventEngine()
        sem = Semaphore(engine, 1)
        got = []
        sem.acquire(lambda: got.append("first"))
        sem.acquire(lambda: got.append("second"))
        sem.acquire(lambda: got.append("third"))
        assert got == ["first"]
        assert sem.queued == 2
        sem.release()
        engine.run()
        assert got == ["first", "second"]
        sem.release()
        engine.run()
        assert got == ["first", "second", "third"]

    def test_release_without_waiters_restores_permit(self):
        engine = EventEngine()
        sem = Semaphore(engine, 1)
        sem.acquire(lambda: None)
        sem.release()
        assert sem.available == 1

    def test_nonpositive_permits_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(EventEngine(), 0)

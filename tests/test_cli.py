"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestRun:
    def test_allreduce(self, capsys):
        code = main([
            "run", "--topology", "Ring(4)_Switch(2)",
            "--bandwidths", "100,50", "--workload", "allreduce",
            "--payload-mib", "64",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "8 NPUs" in out
        assert "total" in out
        assert "exp.comm" in out

    def test_gpt3_with_parallelism(self, capsys):
        code = main([
            "run", "--topology", "Ring(2)_FC(8)_Ring(8)_Switch(4)",
            "--bandwidths", "250,200,100,50", "--workload", "gpt3",
            "--mp", "16", "--dp", "32", "--scheduler", "baseline",
            "--collectives", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "collectives:" in out
        assert out.count(" us") >= 3

    def test_pipeline_workload(self, capsys):
        code = main([
            "run", "--topology", "Ring(8)_Switch(4)",
            "--bandwidths", "100,50", "--workload", "pp-gpt3",
            "--pp", "8", "--dp", "4", "--mp", "1", "--microbatches", "2",
        ])
        assert code == 0
        assert "pp-gpt3" in capsys.readouterr().out

    def test_custom_latencies(self, capsys):
        code = main([
            "run", "--topology", "Ring(4)", "--bandwidths", "100",
            "--latencies", "50", "--workload", "allreduce",
            "--payload-mib", "1",
        ])
        assert code == 0

    def test_sim_rate_is_opt_in(self, capsys):
        argv = ["run", "--topology", "Ring(4)", "--bandwidths", "100",
                "--workload", "allreduce", "--payload-mib", "1"]
        assert main(list(argv)) == 0
        assert "sim rate" not in capsys.readouterr().out
        assert main(list(argv) + ["--sim-rate"]) == 0
        out = capsys.readouterr().out
        assert "sim rate" in out
        assert "events/s" in out

    def test_bad_bandwidths_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--topology", "Ring(4)", "--bandwidths", "abc"])

    def test_flow_backend_for_p2p_workload(self, capsys):
        code = main([
            "run", "--topology", "Ring(8)", "--bandwidths", "100",
            "--workload", "pp-gpt3", "--pp", "8", "--dp", "1", "--mp", "1",
            "--microbatches", "2", "--backend", "flow",
        ])
        assert code == 0
        assert "total" in capsys.readouterr().out

    def test_json_and_chrome_outputs(self, tmp_path, capsys):
        json_path = tmp_path / "r.json"
        trace_path = tmp_path / "t.json"
        code = main([
            "run", "--topology", "Ring(4)", "--bandwidths", "100",
            "--workload", "allreduce", "--payload-mib", "16",
            "--json-out", str(json_path), "--chrome-trace", str(trace_path),
        ])
        assert code == 0
        assert json.loads(json_path.read_text())["total_time_ns"] > 0
        doc = json.loads(trace_path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestTraceInfo:
    def test_summary_printed(self, tmp_path, capsys):
        payload = {
            "format": "astra-sim-et", "version": 1, "npu_id": 3,
            "nodes": [
                {"id": 0, "type": "compute", "flops": 1000},
                {"id": 1, "type": "comm_collective",
                 "collective": "all_reduce", "tensor_bytes": 4096,
                 "deps": [0]},
            ],
        }
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(payload))
        code = main(["trace-info", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace for NPU 3" in out
        assert "all_reduce" in out


class TestTopologyInfo:
    def test_describes_dims(self, capsys):
        code = main(["topology-info", "Ring(4)_Switch(8)",
                     "--bandwidths", "100,25"])
        out = capsys.readouterr().out
        assert code == 0
        assert "32 NPUs" in out
        assert "halving_doubling" in out
        assert "ring" in out


class TestValidation:
    """Bad flag combinations exit with a clear message, not a traceback."""

    def test_bandwidth_count_mismatch(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(4)_Switch(2)",
                  "--bandwidths", "100"])
        message = str(exc_info.value)
        assert "1 value(s)" in message
        assert "2 dimension(s)" in message

    def test_latency_count_mismatch(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(4)_Switch(2)",
                  "--bandwidths", "100,50", "--latencies", "500"])
        assert "dimension" in str(exc_info.value)

    def test_mp_must_divide_npus(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(4)_Switch(2)",
                  "--bandwidths", "100,50", "--workload", "gpt3", "--mp", "3"])
        message = str(exc_info.value)
        assert "--mp 3" in message
        assert "8 NPUs" in message

    def test_pp_product_must_divide_npus(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                  "--workload", "pp-gpt3", "--mp", "1", "--pp", "3"])
        assert "does not divide" in str(exc_info.value)

    def test_dividing_mp_still_works(self, capsys):
        code = main(["run", "--topology", "Ring(4)_Switch(2)",
                     "--bandwidths", "100,50", "--workload", "gpt3",
                     "--mp", "8"])
        assert code == 0
        assert "gpt3" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_metrics_out_writes_versioned_json(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        code = main(["run", "--topology", "Ring(4)_Switch(2)",
                     "--bandwidths", "100,50", "--workload", "allreduce",
                     "--payload-mib", "16", "--metrics-out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "metrics" in out
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        names = {(m["layer"], m["name"]) for m in doc["metrics"]}
        assert ("events", "events_processed") in names
        assert ("network", "dim_traffic_bytes") in names

    def test_trace_level_adds_telemetry_tracks(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(["run", "--topology", "Ring(4)_Switch(2)",
                     "--bandwidths", "100,50", "--workload", "allreduce",
                     "--payload-mib", "16", "--trace-level", "chunk",
                     "--chrome-trace", str(trace_path)])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "C" in phases  # counter tracks
        assert "X" in phases

    def test_metrics_out_without_trace_level_still_collects(self, tmp_path):
        path = tmp_path / "metrics.json"
        code = main(["run", "--topology", "Ring(4)", "--bandwidths", "100",
                     "--workload", "allreduce", "--payload-mib", "1",
                     "--metrics-out", str(path)])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["trace_level"] == "off"
        assert doc["metrics"]

    def test_bad_trace_level_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--topology", "Ring(4)", "--bandwidths", "100",
                  "--trace-level", "verbose"])

    def test_packet_level_requires_packet_backend(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(4)", "--bandwidths", "100",
                  "--workload", "allreduce", "--payload-mib", "1",
                  "--trace-level", "packet"])
        assert "garnet or flow" in str(exc_info.value)

    def test_packet_level_with_garnet_backend(self, capsys):
        code = main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                     "--workload", "pp-gpt3", "--pp", "8", "--dp", "1",
                     "--mp", "1", "--microbatches", "2",
                     "--backend", "garnet", "--trace-level", "packet"])
        assert code == 0
        assert "total" in capsys.readouterr().out


class TestFaultFlags:
    def test_faults_print_resilience_report(self, capsys):
        code = main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                     "--workload", "allreduce", "--payload-mib", "64",
                     "--faults", "straggler@npu3:1.5x@t=0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "resilience:" in out
        assert "baseline" in out
        assert "goodput" in out
        assert "straggler@npu3:1.5x@t=0.0ns" in out

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                  "--faults", "nonsense@npu1@t=0"])
        assert "unknown fault kind" in str(exc_info.value)

    def test_fault_target_beyond_topology_rejected(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                  "--faults", "straggler@npu99:2x@t=0"])
        assert "npu 99" in str(exc_info.value)

    def test_fault_seed_is_deterministic(self, capsys):
        argv = ["run", "--topology", "Ring(8)", "--bandwidths", "100",
                "--workload", "allreduce", "--payload-mib", "32",
                "--fault-seed", "11", "--checkpoint-interval-ms", "1"]
        assert main(list(argv)) == 0
        first = capsys.readouterr().out
        assert main(list(argv)) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "resilience" in first

    def test_faults_require_analytical_backend(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["run", "--topology", "Ring(8)", "--bandwidths", "100",
                  "--workload", "pp-gpt3", "--pp", "8", "--dp", "1",
                  "--mp", "1", "--backend", "flow",
                  "--faults", "straggler@npu1:2x@t=0"])
        assert "analytical" in str(exc_info.value)


class TestSweep:
    ARGV = ["sweep", "--topology", "Ring(4)_Switch(2)",
            "--bandwidths", "100,50", "--workload", "allreduce",
            "--grid", "payload-mib=1|4", "--grid", "scheduler=baseline|themis"]

    def test_four_point_grid_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        csv_path = tmp_path / "results.csv"
        code = main(self.ARGV + ["--out", str(out_path),
                                 "--csv-out", str(csv_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "4 points" in out
        assert "payload_mib" in out and "scheduler" in out

        doc = json.loads(out_path.read_text())
        assert len(doc["points"]) == 4
        assert doc["summary"]["errors"] == 0
        assert doc["summary"]["total_time_ms"]["count"] == 4
        configs = [(p["config"]["payload_mib"], p["config"]["scheduler"])
                   for p in doc["points"]]
        assert configs == [(1.0, "baseline"), (1.0, "themis"),
                           (4.0, "baseline"), (4.0, "themis")]
        assert all(p["result"]["total_time_ns"] > 0 for p in doc["points"])

        csv_lines = csv_path.read_text().strip().splitlines()
        assert csv_lines[0] == "payload_mib,scheduler,total_time_ms,nodes,events,status"
        assert len(csv_lines) == 5

    def test_cache_counters_reported(self, tmp_path, capsys):
        argv = self.ARGV + ["--cache-dir", str(tmp_path / "cache")]
        assert main(list(argv)) == 0
        cold = capsys.readouterr().out
        assert "0 hits, 4 misses" in cold
        assert main(list(argv)) == 0
        warm = capsys.readouterr().out
        assert "4 hits, 0 misses" in warm
        assert "cached" in warm

    def test_requires_at_least_one_axis(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["sweep", "--topology", "Ring(4)", "--bandwidths", "100"])
        assert "axis" in str(exc_info.value)

    def test_bad_point_reports_error_and_exit_code(self, capsys):
        code = main(["sweep", "--topology", "Ring(4)", "--bandwidths", "100",
                     "--grid", "scheduler=baseline|nope"])
        out = capsys.readouterr().out
        assert code == 1
        assert "error:PointConfigError" in out

    def test_fail_fast_aborts(self):
        with pytest.raises(SystemExit) as exc_info:
            main(["sweep", "--topology", "Ring(4)", "--bandwidths", "100",
                  "--grid", "scheduler=nope|baseline", "--fail-fast"])
        assert "failed" in str(exc_info.value)

    def test_jobs_flag_matches_serial_output(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        pooled_path = tmp_path / "pooled.json"
        assert main(self.ARGV + ["--out", str(serial_path)]) == 0
        assert main(self.ARGV + ["--jobs", "2",
                                 "--out", str(pooled_path)]) == 0
        capsys.readouterr()
        assert serial_path.read_text() == pooled_path.read_text()

"""Unit tests for pipeline schedules (GPipe vs 1F1B)."""

import pytest

import repro
from repro.memory import LocalMemory
from repro.network import parse_topology
from repro.system import RooflineCompute
from repro.workload import ParallelismSpec, generate_pipeline_parallel
from repro.workload.generators import _stage_op_sequence
from repro.workload.models import TransformerSpec


def _model():
    return TransformerSpec("tiny", num_layers=8, hidden=64, seq_len=32,
                           batch_per_replica=2)


def _topo():
    return parse_topology("Ring(4)_Switch(2)", [100, 50])


def _config(topology):
    return repro.SystemConfig(
        topology=topology,
        compute=RooflineCompute(peak_tflops=100.0),
        local_memory=LocalMemory(bandwidth_gbps=1000.0),
        collective_chunks=4,
    )


class TestOpSequences:
    def test_gpipe_all_forwards_then_reversed_backwards(self):
        ops = _stage_op_sequence("gpipe", 4, 1, 3)
        assert ops == [("f", 0), ("f", 1), ("f", 2),
                       ("b", 2), ("b", 1), ("b", 0)]

    def test_1f1b_last_stage_alternates_immediately(self):
        ops = _stage_op_sequence("1f1b", 4, 3, 4)
        assert ops == [("f", 0), ("b", 0), ("f", 1), ("b", 1),
                       ("f", 2), ("b", 2), ("f", 3), ("b", 3)]

    def test_1f1b_first_stage_warmup_depth(self):
        ops = _stage_op_sequence("1f1b", 4, 0, 6)
        # 3 warmup forwards, then steady f/b pairs, then drain backwards.
        assert ops[:3] == [("f", 0), ("f", 1), ("f", 2)]
        assert ops[3:5] == [("f", 3), ("b", 0)]
        assert ops[-3:] == [("b", 3), ("b", 4), ("b", 5)]

    def test_1f1b_warmup_capped_by_microbatches(self):
        ops = _stage_op_sequence("1f1b", 8, 0, 2)
        kinds = [k for k, _ in ops]
        assert kinds.count("f") == 2 and kinds.count("b") == 2

    def test_every_schedule_does_all_work_once(self):
        for schedule in ("gpipe", "1f1b"):
            for stage in range(4):
                ops = _stage_op_sequence(schedule, 4, stage, 5)
                fwd = [mb for k, mb in ops if k == "f"]
                bwd = [mb for k, mb in ops if k == "b"]
                assert sorted(fwd) == list(range(5))
                assert sorted(bwd) == list(range(5))

    def test_1f1b_backward_never_precedes_its_forward(self):
        for stage in range(4):
            ops = _stage_op_sequence("1f1b", 4, stage, 6)
            seen_fwd = set()
            for kind, mb in ops:
                if kind == "f":
                    seen_fwd.add(mb)
                else:
                    assert mb in seen_fwd

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            _stage_op_sequence("interleaved", 4, 0, 4)
        with pytest.raises(ValueError):
            generate_pipeline_parallel(
                _model(), _topo(), ParallelismSpec(pp=4, dp=2),
                schedule="interleaved")


class TestSchedulesEndToEnd:
    def _run(self, schedule, microbatches=8):
        topo = _topo()
        traces = generate_pipeline_parallel(
            _model(), topo, ParallelismSpec(pp=4, dp=2),
            microbatches=microbatches, schedule=schedule)
        return repro.simulate(traces, _config(topo))

    def test_both_schedules_complete_same_work(self):
        gpipe = self._run("gpipe")
        f1b = self._run("1f1b")
        assert gpipe.nodes_executed == f1b.nodes_executed
        assert gpipe.breakdown.compute_ns == pytest.approx(
            f1b.breakdown.compute_ns, rel=1e-6)

    def test_1f1b_matches_gpipe_when_compute_bound(self):
        """Both schedules have the same (P-1)-bubble in the synchronous
        flush limit; when compute dominates communication latency their
        makespans coincide.  (In a latency-bound regime 1F1B's tighter
        fwd/bwd coupling exposes round trips — its benefit there is
        activation memory, covered below, not time.)"""
        topo = _topo()
        slow_compute = repro.SystemConfig(
            topology=topo,
            compute=RooflineCompute(peak_tflops=1.0),
            local_memory=LocalMemory(bandwidth_gbps=1000.0),
            collective_chunks=4,
        )
        times = {}
        for schedule in ("gpipe", "1f1b"):
            traces = generate_pipeline_parallel(
                _model(), topo, ParallelismSpec(pp=4, dp=2),
                microbatches=8, schedule=schedule)
            times[schedule] = repro.simulate(
                traces, slow_compute).total_time_ns
        assert times["1f1b"] == pytest.approx(times["gpipe"], rel=0.02)

    def test_1f1b_bounds_activation_working_set(self):
        """The point of 1F1B: in-flight forwards per stage are bounded by
        the pipeline depth, while GPipe holds every microbatch."""
        microbatches, stages = 16, 4

        def max_in_flight(schedule, stage):
            live = peak = 0
            for kind, _ in _stage_op_sequence(schedule, stages, stage,
                                              microbatches):
                live += 1 if kind == "f" else -1
                peak = max(peak, live)
            return peak

        for stage in range(stages):
            assert max_in_flight("gpipe", stage) == microbatches
            assert max_in_flight("1f1b", stage) <= stages - stage

    def test_deep_pipeline_runs_1f1b(self):
        topo = parse_topology("Ring(8)_Switch(2)", [100, 50])
        traces = generate_pipeline_parallel(
            _model(), topo, ParallelismSpec(pp=8, dp=2),
            microbatches=4, schedule="1f1b")
        result = repro.simulate(traces, _config(topo))
        assert result.total_time_ns > 0
        assert result.nodes_executed == sum(len(t) for t in traces.values())

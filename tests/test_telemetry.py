"""Unit and integration tests for the repro.telemetry subsystem."""

import json

import pytest

import repro
from repro.events import EventEngine
from repro.memory.api import MemoryRequest
from repro.memory.pools import MultiLevelSwitchPool
from repro.memory.remote import HierarchicalRemoteMemory, HierMemConfig
from repro.memory.zero_infinity import ZeroInfinityConfig, ZeroInfinityMemory
from repro.telemetry import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    TelemetryConfig,
    TelemetryError,
    TimeSeries,
    TimeWeightedHistogram,
    TraceLevel,
    WallClockProfiler,
    dump_metrics_json,
    load_metrics_json,
)
from repro.trace.node import TensorLocation


def _run(telemetry=None, topology="Ring(4)_Switch(2)", bandwidths=(200, 50),
         payload=1 << 24, **config_kwargs):
    topo = repro.parse_topology(topology, list(bandwidths))
    traces = repro.generate_single_collective(
        topo, repro.CollectiveType.ALL_REDUCE, payload)
    config = repro.SystemConfig(topology=topo, telemetry=telemetry,
                                **config_kwargs)
    return repro.simulate(traces, config)


class TestTraceLevel:
    def test_parse_valid_names(self):
        assert TraceLevel.parse("off") is TraceLevel.OFF
        assert TraceLevel.parse("  Chunk ") is TraceLevel.CHUNK
        assert TraceLevel.parse("PACKET") is TraceLevel.PACKET

    def test_parse_invalid_name_lists_choices(self):
        with pytest.raises(TelemetryError) as exc_info:
            TraceLevel.parse("verbose")
        message = str(exc_info.value)
        assert "'verbose'" in message
        for name in ("off", "phase", "collective", "chunk", "packet"):
            assert name in message

    def test_levels_are_ordered(self):
        assert TraceLevel.OFF < TraceLevel.PHASE < TraceLevel.COLLECTIVE
        assert TraceLevel.COLLECTIVE < TraceLevel.CHUNK < TraceLevel.PACKET


class TestTelemetryConfig:
    def test_defaults_valid(self):
        config = TelemetryConfig()
        assert config.trace_level is TraceLevel.PHASE

    @pytest.mark.parametrize("kwargs", [
        {"trace_level": "chunk"},
        {"sample_interval_ns": -1.0},
        {"samples_per_doubling": 0},
        {"max_series_samples": 1},
        {"max_spans": -1},
        {"max_link_metrics": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(TelemetryError):
            TelemetryConfig(**kwargs)


class TestMetricPrimitives:
    def test_counter(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.to_payload() == {"type": "counter", "value": 3.5}

    def test_gauge_series(self):
        gauge = Gauge()
        gauge.sample(0.0, 1.0)
        gauge.sample(10.0, 4.0)
        gauge.set(7.0)
        assert gauge.value == 7.0
        payload = gauge.to_payload()
        assert payload["series"]["t_ns"] == [0.0, 10.0]
        assert payload["series"]["value"] == [1.0, 4.0]

    def test_series_decimation_preserves_horizon(self):
        series = TimeSeries(max_samples=8)
        for i in range(100):
            series.append(float(i), float(i))
        assert len(series) <= 8
        assert series.times[0] == 0.0
        assert series.times[-1] >= 90.0  # still covers the tail
        assert series.decimations > 0

    def test_time_weighted_histogram_mean(self):
        hist = TimeWeightedHistogram()
        hist.update(0.0, 10.0)   # 10 held for 100 ns
        hist.update(100.0, 2.0)  # 2 held for 300 ns
        hist.close(400.0)
        assert hist.mean == pytest.approx((10 * 100 + 2 * 300) / 400)
        assert hist.min == 2.0
        assert hist.max == 10.0
        assert hist.observations == 2

    def test_registry_keying_and_lookup(self):
        registry = MetricsRegistry()
        a = registry.counter("network", "bytes", dim=0)
        b = registry.counter("network", "bytes", dim=1)
        assert a is not b
        assert registry.counter("network", "bytes", dim=0) is a
        a.inc(5)
        assert registry.value("network", "bytes", dim=0) == 5.0
        assert registry.value("network", "bytes", dim=9) == 0.0
        assert registry.get("network", "missing") is None

    def test_registry_to_list_is_sorted_and_labeled(self):
        registry = MetricsRegistry()
        registry.counter("system", "z").inc()
        registry.counter("events", "a").inc()
        registry.gauge("network", "depth", link="x").set(2.0)
        entries = registry.to_list()
        assert [e["layer"] for e in entries] == ["events", "network", "system"]
        link_entry = entries[1]
        assert link_entry["labels"] == {"link": "x"}
        assert link_entry["type"] == "gauge"


class TestSpanRecorder:
    def test_add_and_summary(self):
        recorder = SpanRecorder()
        recorder.add("track-a", "op", "chunk", 0.0, 5.0)
        recorder.add("track-b", "op2", "collective", 5.0, 9.0, {"k": 1})
        recorder.flow("track-a", 5.0, "track-b", 5.0)
        summary = recorder.summary()
        assert summary == {"count": 2, "flows": 1, "dropped": 0,
                           "by_category": {"chunk": 1, "collective": 1}}
        assert recorder.tracks() == ["track-a", "track-b"]

    def test_backwards_span_rejected(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            recorder.add("t", "bad", "chunk", 10.0, 5.0)

    def test_cap_counts_dropped(self):
        recorder = SpanRecorder(max_spans=2)
        for i in range(5):
            recorder.add("t", f"s{i}", "chunk", float(i), float(i + 1))
        assert len(recorder.spans) == 2
        assert recorder.dropped == 3
        assert recorder.summary()["dropped"] == 3


class TestWallClockProfiler:
    def test_sections_accumulate(self):
        profiler = WallClockProfiler()
        with profiler.section("work"):
            pass
        with profiler.section("work"):
            pass
        profiler.record("other", 0.5)
        data = profiler.to_dict()
        assert data["work"]["calls"] == 2
        assert data["work"]["wall_s"] >= 0.0
        assert data["other"] == {"wall_s": 0.5, "calls": 1}


class TestSampler:
    def test_sampler_never_keeps_queue_alive(self):
        """With telemetry on, the engine drains exactly like without it."""
        result = _run(TelemetryConfig(sample_interval_ns=10.0))
        baseline = _run(None)
        assert result.total_time_ns == baseline.total_time_ns

    def test_adaptive_doubling_bounds_samples(self):
        telemetry = TelemetryConfig(sample_interval_ns=1.0,
                                    samples_per_doubling=4)
        result = _run(telemetry)
        series = result.telemetry.metrics.gauge("events", "heap_size").series
        # A fixed 1 ns cadence over a ~127 us horizon would take >100k
        # samples; doubling every 4 keeps it logarithmic.
        assert 0 < len(series) < 200

    def test_sampling_disabled_with_zero_interval(self):
        result = _run(TelemetryConfig(sample_interval_ns=0.0))
        series = result.telemetry.metrics.gauge("events", "heap_size").series
        assert len(series) == 0


class TestZeroCostContract:
    def test_result_identical_with_and_without_telemetry(self):
        baseline = _run(None)
        for level in (TraceLevel.OFF, TraceLevel.PHASE, TraceLevel.CHUNK):
            result = _run(TelemetryConfig(trace_level=level))
            assert result.total_time_ns == baseline.total_time_ns
            assert result.nodes_executed == baseline.nodes_executed
            assert [c.finish_ns for c in result.collectives] == [
                c.finish_ns for c in baseline.collectives]

    def test_no_config_installs_nothing(self):
        topo = repro.parse_topology("Ring(4)", [100])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
        sim = repro.Simulator(traces, repro.SystemConfig(topology=topo))
        assert sim.telemetry is None
        assert sim.engine.telemetry is None
        assert sim.network.telemetry is None
        assert sim.execution.telemetry is None
        assert sim.run().telemetry is None


class TestTraceLevelGating:
    def test_off_records_metrics_but_no_spans(self):
        result = _run(TelemetryConfig(trace_level=TraceLevel.OFF))
        report = result.telemetry
        assert report.metric_value("system", "collectives_completed") == 1.0
        assert report.spans.summary()["count"] == 0

    def test_level_monotonically_adds_spans(self):
        counts = {}
        for level in (TraceLevel.PHASE, TraceLevel.COLLECTIVE,
                      TraceLevel.CHUNK):
            result = _run(TelemetryConfig(trace_level=level))
            counts[level] = result.telemetry.spans.summary()["count"]
        assert counts[TraceLevel.PHASE] < counts[TraceLevel.COLLECTIVE]
        assert counts[TraceLevel.COLLECTIVE] < counts[TraceLevel.CHUNK]

    def test_chunk_spans_live_on_port_tracks(self):
        result = _run(TelemetryConfig(trace_level=TraceLevel.CHUNK))
        tracks = result.telemetry.spans.tracks()
        assert any(track.startswith("port npu") for track in tracks)
        assert "collectives" in tracks


class TestDifferentialTraffic:
    """Acceptance criterion: telemetry per-dim byte counters must equal
    the analytical backend's per-collective traffic records exactly."""

    @pytest.mark.parametrize("scheduler", ["baseline", "themis"])
    @pytest.mark.parametrize("topology,bandwidths", [
        ("Ring(4)_Switch(2)", (200, 50)),
        ("Ring(2)_FC(4)_Switch(2)", (250, 100, 50)),
    ])
    def test_dim_counters_match_collective_records(self, scheduler,
                                                   topology, bandwidths):
        result = _run(TelemetryConfig(trace_level=TraceLevel.COLLECTIVE),
                      topology=topology, bandwidths=bandwidths,
                      scheduler=scheduler, collective_chunks=8)
        report = result.telemetry
        by_dim = {}
        for record in result.collectives:
            for dim, traffic in record.traffic_by_dim.items():
                by_dim[dim] = by_dim.get(dim, 0.0) + traffic
        for dim, expected in by_dim.items():
            counted = report.metric_value("network", "dim_traffic_bytes",
                                          dim=dim)
            assert counted == pytest.approx(expected, rel=1e-12)

    def test_counter_totals_match_backend_bytes_delivered(self):
        topo = repro.parse_topology("Ring(8)", [100])
        model_traces = {}
        from repro.workload.models import TransformerSpec
        from repro.workload import ParallelismSpec, generate_pipeline_parallel
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        model_traces = generate_pipeline_parallel(
            model, topo, ParallelismSpec(pp=8, dp=1), microbatches=2)
        config = repro.SystemConfig(
            topology=topo, telemetry=TelemetryConfig())
        result = repro.simulate(model_traces, config)
        report = result.telemetry
        assert report.metric_value("network", "messages_delivered") > 0
        assert report.metric_value("network", "bytes_delivered") > 0


class TestBackendMetrics:
    def _p2p_traces(self, topo):
        from repro.workload.models import TransformerSpec
        from repro.workload import ParallelismSpec, generate_pipeline_parallel
        model = TransformerSpec("t", num_layers=4, hidden=64, seq_len=32)
        return generate_pipeline_parallel(
            model, topo, ParallelismSpec(pp=8, dp=1), microbatches=2)

    def test_analytical_port_metrics(self):
        result = _run(TelemetryConfig())
        report = result.telemetry
        assert report.metric_value("network", "ports_total") > 0
        entries = [e for e in report.metrics.to_list()
                   if e["name"] == "port_busy_ns"]
        assert entries and all(e["value"] > 0 for e in entries)
        utils = [e for e in report.metrics.to_list()
                 if e["name"] == "port_utilization"]
        assert utils and all(0.0 < e["value"] <= 1.0 for e in utils)

    def test_garnet_link_metrics_and_packet_spans(self):
        topo = repro.parse_topology("Ring(8)", [100])
        config = repro.SystemConfig(
            topology=topo, network_backend="garnet",
            telemetry=TelemetryConfig(trace_level=TraceLevel.PACKET))
        result = repro.simulate(self._p2p_traces(topo), config)
        report = result.telemetry
        assert report.metric_value("network", "packet_hops") > 0
        link_bytes = [e for e in report.metrics.to_list()
                      if e["name"] == "link_bytes"]
        assert link_bytes
        assert report.spans.by_category().get("packet", 0) > 0

    def test_flow_solver_metrics(self):
        topo = repro.parse_topology("Ring(8)", [100])
        config = repro.SystemConfig(
            topology=topo, network_backend="flow",
            telemetry=TelemetryConfig(trace_level=TraceLevel.CHUNK))
        result = repro.simulate(self._p2p_traces(topo), config)
        report = result.telemetry
        assert report.metric_value("network", "solver_iterations") > 0
        assert report.spans.by_category().get("flow", 0) > 0

    def test_link_metric_cap_exports_drop_count(self):
        topo = repro.parse_topology("Ring(8)", [100])
        config = repro.SystemConfig(
            topology=topo, network_backend="garnet",
            telemetry=TelemetryConfig(max_link_metrics=2))
        result = repro.simulate(self._p2p_traces(topo), config)
        report = result.telemetry
        kept = [e for e in report.metrics.to_list()
                if e["name"] == "link_bytes"]
        assert len(kept) == 2
        assert report.metric_value("network", "links_dropped") > 0


class TestMemoryMetrics:
    def test_zero_infinity_offload_traffic(self):
        model = ZeroInfinityMemory(ZeroInfinityConfig())
        telemetry = Telemetry(TelemetryConfig())
        model.telemetry = telemetry
        try:
            model.access_time_ns(MemoryRequest(
                size_bytes=1 << 20, is_store=False,
                location=TensorLocation.REMOTE))
            model.access_time_ns(MemoryRequest(
                size_bytes=1 << 10, is_store=True,
                location=TensorLocation.REMOTE))
        finally:
            model.telemetry = None
        assert telemetry.metrics.value(
            "memory", "zero_infinity_offload_bytes",
            direction="load") == float(1 << 20)
        assert telemetry.metrics.value(
            "memory", "zero_infinity_accesses", direction="store") == 1.0

    def test_hiermem_pipeline_depth(self):
        model = HierarchicalRemoteMemory(HierMemConfig())
        telemetry = Telemetry(TelemetryConfig())
        model.telemetry = telemetry
        try:
            model.access_time_ns(MemoryRequest(
                size_bytes=1 << 26, is_store=False,
                location=TensorLocation.REMOTE))
        finally:
            model.telemetry = None
        assert telemetry.metrics.value("memory", "hiermem_transfers") == 1.0
        beats = telemetry.metrics.value("memory", "hiermem_pipeline_beats")
        depth = telemetry.metrics.value("memory", "hiermem_max_pipeline_depth")
        assert beats == depth > 0

    def test_pool_design_beats(self):
        model = MultiLevelSwitchPool(HierMemConfig())
        telemetry = Telemetry(TelemetryConfig())
        model.telemetry = telemetry
        try:
            model.access_time_ns(MemoryRequest(
                size_bytes=1 << 26, is_store=False,
                location=TensorLocation.REMOTE))
        finally:
            model.telemetry = None
        assert telemetry.metrics.value(
            "memory", "pool_transfers", design="MultiLevelSwitchPool") == 1.0

    def test_simulator_detaches_models_at_finalize(self):
        remote = HierarchicalRemoteMemory(HierMemConfig())
        topo = repro.parse_topology("Ring(4)", [100])
        traces = repro.generate_single_collective(
            topo, repro.CollectiveType.ALL_REDUCE, 1 << 20)
        config = repro.SystemConfig(topology=topo, remote_memory=remote,
                                    telemetry=TelemetryConfig())
        repro.simulate(traces, config)
        assert remote.telemetry is None

    def test_engine_memory_hooks_count_accesses(self):
        from repro.workload import generate_moe, moe_1t
        topo = repro.parse_topology("Ring(4)_Switch(2)", [200, 50])
        traces = generate_moe(moe_1t(), topo, remote_parameters=True)
        config = repro.SystemConfig(
            topology=topo,
            remote_memory=HierarchicalRemoteMemory(HierMemConfig()),
            telemetry=TelemetryConfig())
        result = repro.simulate(traces, config)
        report = result.telemetry
        assert report.metric_value(
            "memory", "accesses", location="remote") > 0
        assert report.metric_value(
            "memory", "bytes", location="remote") > 0


class TestFinalize:
    def test_finalize_twice_rejected(self):
        telemetry = Telemetry(TelemetryConfig())
        engine = EventEngine()
        telemetry.install(engine)
        telemetry.finalize(0.0)
        with pytest.raises(RuntimeError):
            telemetry.finalize(0.0)

    def test_engine_counters_swept(self):
        result = _run(TelemetryConfig())
        report = result.telemetry
        assert report.metric_value("events", "events_processed") == float(
            result.events_processed)
        assert report.metric_value("events", "events_scheduled") >= (
            report.metric_value("events", "events_processed"))

    def test_breakdown_swept_into_gauges(self):
        result = _run(TelemetryConfig())
        report = result.telemetry
        comm = report.metric_value("system", "exposed_ns", activity="comm")
        assert comm == pytest.approx(result.breakdown.exposed_comm_ns)


class TestMetricsJson:
    def _report(self):
        return _run(TelemetryConfig(trace_level=TraceLevel.CHUNK)).telemetry

    def test_schema_version_and_roundtrip(self, tmp_path):
        report = self._report()
        path = tmp_path / "metrics.json"
        dump_metrics_json(report, path)
        loaded = load_metrics_json(path)
        assert loaded["schema_version"] == METRICS_SCHEMA_VERSION
        assert loaded["trace_level"] == "chunk"
        assert loaded["spans"]["count"] == report.spans.summary()["count"]
        assert loaded["metrics"] == report.metrics.to_list()
        assert "profile" in loaded and "run" in loaded["profile"]

    def test_result_dict_embeds_telemetry_without_profile(self):
        from repro.stats.export import result_to_dict
        result = _run(TelemetryConfig())
        doc = result_to_dict(result)
        assert doc["telemetry"]["schema_version"] == METRICS_SCHEMA_VERSION
        assert "profile" not in doc["telemetry"]
        json.dumps(doc)  # JSON-serializable end to end

    def test_metric_value_helper(self):
        report = self._report()
        assert report.metric_value("system", "collectives_completed") == 1.0
        assert report.metric_value("system", "nope") == 0.0


class TestCollectiveFlows:
    def test_dependent_collectives_get_flow_arrows(self):
        from repro.workload import generate_data_parallel, gpt3_175b
        topo = repro.parse_topology("Ring(8)", [100])
        traces = generate_data_parallel(gpt3_175b(), topo)
        config = repro.SystemConfig(
            topology=topo,
            telemetry=TelemetryConfig(trace_level=TraceLevel.COLLECTIVE))
        result = repro.simulate(traces, config)
        report = result.telemetry
        assert len(result.collectives) > 1
        # Same communicator reused -> comm-order arrows between successive
        # collectives on it.
        assert report.spans.summary()["flows"] >= 1
        assert all(flow[5] == "comm-order" for flow in report.spans.flows)

    def test_members_recorded_on_collective_records(self):
        result = _run(TelemetryConfig())
        record = result.collectives[0]
        assert record.members == (0,)  # single-trace representative run

"""Unit tests for table rendering."""

from repro.stats import Activity, compute_breakdown, format_breakdown_table, format_table


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    assert lines[0].startswith("name")
    assert "---" in lines[1]
    # Columns align: 'value' column starts at the same offset everywhere.
    offset = lines[0].index("value")
    assert lines[2][offset - 2: offset].strip() == ""


def test_format_breakdown_table_contains_all_components():
    b = compute_breakdown(
        [(0, 1e6, Activity.COMPUTE), (1e6, 3e6, Activity.COMM)], 4e6
    )
    text = format_breakdown_table({"sysA": b})
    assert "sysA" in text
    assert "compute" in text
    assert "exp.comm" in text
    assert "idle" in text
    assert "1.000" in text  # compute ms
    assert "2.000" in text  # comm ms


def test_format_breakdown_table_ns_units():
    b = compute_breakdown([(0, 100, Activity.COMPUTE)], 100)
    text = format_breakdown_table({"x": b}, unit_ms=False)
    assert "(ns)" in text
    assert "100.000" in text

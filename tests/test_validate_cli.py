"""End-to-end tests for the `repro validate` CLI and --check-invariants."""

import json

from repro.campaign.runner import point_to_argv
from repro.cli import main


class TestValidateCommand:
    def test_invariants_suite_small_scenario(self, capsys):
        code = main([
            "validate", "--suite", "invariants",
            "--topology", "Ring(4)", "--bandwidths", "100",
            "--workload", "allreduce", "--payload-mib", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants  : ok" in out
        assert "0 violations" in out

    def test_metamorphic_suite(self, capsys):
        code = main(["validate", "--suite", "metamorphic"])
        out = capsys.readouterr().out
        assert code == 0
        assert "metamorphic : ok" in out

    def test_conformance_suite_with_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main(["validate", "--suite", "conformance",
                     "--report-out", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "conformance : ok" in out
        assert f"report written to {path}" in out
        doc = json.loads(path.read_text())
        assert doc["passed"] is True
        assert doc["suites"] == ["conformance"]
        assert doc["conformance"]["cases_failed"] == 0

    def test_all_suites_report_structure(self, capsys, tmp_path):
        path = tmp_path / "all.json"
        code = main(["validate", "--suite", "all",
                     "--topology", "Ring(4)", "--bandwidths", "100",
                     "--workload", "allreduce", "--payload-mib", "1",
                     "--report-out", str(path)])
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["suites"] == ["invariants", "metamorphic", "conformance",
                                 "adaptive", "frontend"]
        assert doc["invariants"]["ok"] is True
        assert doc["metamorphic"]["passed"] is True
        assert doc["conformance"]["passed"] is True
        assert doc["adaptive"]["passed"] is True
        assert doc["passed"] is True


class TestRunCheckInvariants:
    ARGV = ["run", "--topology", "Ring(4)", "--bandwidths", "100",
            "--workload", "allreduce", "--payload-mib", "1"]

    def test_flag_prints_summary_and_passes(self, capsys):
        code = main(self.ARGV + ["--check-invariants"])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants:" in out
        assert "0 violations" in out

    def test_without_flag_no_invariants_line(self, capsys):
        code = main(list(self.ARGV))
        assert code == 0
        assert "invariants:" not in capsys.readouterr().out

    def test_strict_flag_accepted(self, capsys):
        # A clean run must not trip strict mode.
        code = main(self.ARGV + ["--check-invariants",
                                 "--strict-invariants"])
        assert code == 0


class TestSweepAxis:
    def test_check_invariants_point_maps_to_flag(self):
        argv = point_to_argv({
            "topology": "Ring(4)", "bandwidths": "100",
            "workload": "allreduce", "payload_mib": 1.0,
            "check_invariants": True,
        })
        assert "--check-invariants" in argv
        off = point_to_argv({
            "topology": "Ring(4)", "bandwidths": "100",
            "workload": "allreduce", "payload_mib": 1.0,
            "check_invariants": False,
        })
        assert "--check-invariants" not in off

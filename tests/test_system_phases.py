"""Unit tests for collective phase math — including exact Table IV checks."""

import pytest

from repro.network import DimSpec, BuildingBlock, parse_topology
from repro.system import (
    PhaseKind,
    decompose_collective,
    phase_duration_ns,
    phase_traffic_bytes,
)
from repro.trace import CollectiveType

MiB = 1 << 20
GiB = 1 << 30


def _dim(block=BuildingBlock.RING, size=8, bw=100.0, lat=500.0):
    return DimSpec(block, size, bw, lat)


class TestPhaseTraffic:
    def test_reduce_scatter_fraction(self):
        assert phase_traffic_bytes(_dim(size=8), PhaseKind.REDUCE_SCATTER, 800) == pytest.approx(700)

    def test_all_gather_multiplies_shard(self):
        assert phase_traffic_bytes(_dim(size=8), PhaseKind.ALL_GATHER, 100) == pytest.approx(700)

    def test_alltoall_on_switch(self):
        d = _dim(block=BuildingBlock.SWITCH, size=4)
        assert phase_traffic_bytes(d, PhaseKind.ALL_TO_ALL, 400) == pytest.approx(300)

    def test_singleton_dim_zero_traffic(self):
        assert phase_traffic_bytes(_dim(size=1), PhaseKind.REDUCE_SCATTER, 100) == 0.0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            phase_traffic_bytes(_dim(), PhaseKind.REDUCE_SCATTER, -1)


class TestPhaseDuration:
    def test_latency_plus_serialization(self):
        d = _dim(block=BuildingBlock.RING, size=4, bw=100.0, lat=500.0)
        # Ring: 3 steps x 500 ns + 0.75 * payload / 100.
        assert phase_duration_ns(d, PhaseKind.REDUCE_SCATTER, 1000) == pytest.approx(
            3 * 500 + 750 / 100
        )

    def test_switch_uses_log_steps(self):
        d = _dim(block=BuildingBlock.SWITCH, size=8, bw=100.0, lat=500.0)
        assert phase_duration_ns(d, PhaseKind.REDUCE_SCATTER, 0) == pytest.approx(3 * 500)

    def test_singleton_dim_zero_duration(self):
        assert phase_duration_ns(_dim(size=1), PhaseKind.ALL_GATHER, 1000) == 0.0


class TestAllReduceDecomposition:
    def test_rs_then_ag_mirrored(self):
        topo = parse_topology("Ring(2)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1), 800)
        kinds = [p.kind for p in plan.phases]
        dims = [p.dim for p in plan.phases]
        assert kinds == [PhaseKind.REDUCE_SCATTER] * 2 + [PhaseKind.ALL_GATHER] * 2
        assert dims == [0, 1, 1, 0]

    def test_payload_shrinks_through_rs(self):
        topo = parse_topology("Ring(2)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1), 800)
        assert [p.payload_bytes for p in plan.phases] == [800, 400, 100, 400]

    def test_table_iv_message_sizes_exact(self):
        """Reproduce every Table IV message-size row exactly."""
        cases = {
            (2, 4): [1024, 896, 112, 12],
            (2, 8): [1024, 896, 112, 14],
            (2, 16): [1024, 896, 112, 15],
            (2, 32): [1024, 896, 112, 15.5],
            (4, 4): [1536, 448, 56, 6],
            (8, 4): [1792, 224, 28, 3],
            (16, 4): [1920, 112, 14, 1.5],
        }
        for (dim1, dim4), expected in cases.items():
            topo = parse_topology(
                f"Ring({dim1})_FC(8)_Ring(8)_Switch({dim4})", [1000, 200, 100, 50]
            )
            plan = decompose_collective(
                CollectiveType.ALL_REDUCE, topo, (0, 1, 2, 3), 1024 * MiB
            )
            traffic = plan.traffic_by_dim(topo)
            got = [traffic[d] / MiB for d in range(4)]
            assert got == pytest.approx(expected), f"shape {dim1}_8_8_{dim4}"

    def test_total_traffic_bounded_by_2x_payload(self):
        topo = parse_topology("Ring(4)_FC(4)_Switch(4)", [100, 100, 100])
        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1, 2), GiB)
        total = sum(plan.traffic_by_dim(topo).values())
        assert total < 2 * GiB
        assert total > 1.9 * GiB  # 2 * (1 - 1/64) * payload


class TestOtherCollectives:
    def test_all_gather_payload_grows(self):
        topo = parse_topology("Ring(4)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_GATHER, topo, (0, 1), 1600)
        # Shards: 1600/16 = 100, then 400 entering dim 1.
        assert [p.payload_bytes for p in plan.phases] == [100, 400]
        assert [p.kind for p in plan.phases] == [PhaseKind.ALL_GATHER] * 2

    def test_all_gather_total_traffic(self):
        topo = parse_topology("Ring(4)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_GATHER, topo, (0, 1), 1600)
        # Each NPU receives gathered - shard = 1600 - 100 = 1500 bytes.
        assert sum(plan.traffic_by_dim(topo).values()) == pytest.approx(1500)

    def test_reduce_scatter_single_pass(self):
        topo = parse_topology("Ring(4)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.REDUCE_SCATTER, topo, (0, 1), 1600)
        assert [p.payload_bytes for p in plan.phases] == [1600, 400]

    def test_alltoall_constant_payload(self):
        topo = parse_topology("Switch(4)_Switch(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_TO_ALL, topo, (0, 1), 1000)
        assert [p.payload_bytes for p in plan.phases] == [1000, 1000]

    def test_dims_order_respected(self):
        topo = parse_topology("Ring(2)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.REDUCE_SCATTER, topo, (1, 0), 800)
        assert [p.dim for p in plan.phases] == [1, 0]
        # Visiting the k=4 dim first shrinks the payload faster.
        assert [p.payload_bytes for p in plan.phases] == [800, 200]

    def test_singleton_dims_skipped(self):
        topo = parse_topology("Ring(1)_FC(4)", [100, 100])
        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1), 800)
        assert [p.dim for p in plan.phases] == [1, 1]


class TestDecompositionAggregates:
    def test_sequential_vs_pipelined_bounds(self):
        topo = parse_topology("Ring(4)_FC(4)", [100, 10])
        plan = decompose_collective(CollectiveType.ALL_REDUCE, topo, (0, 1), GiB)
        assert plan.max_phase_duration_ns(topo) < plan.total_duration_ns(topo)

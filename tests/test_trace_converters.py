"""Unit tests for PyTorch / FlexFlow trace converters."""

import pytest

from repro.trace import (
    CollectiveType,
    NodeType,
    TensorLocation,
    TraceValidationError,
    dumps_trace,
    loads_trace,
)
from repro.trace.converters import convert_flexflow_taskgraph, convert_pytorch_eg


def _pytorch_payload():
    return {
        "schema": "pytorch-eg",
        "rank": 2,
        "nodes": [
            {"id": 1, "name": "aten::mm", "inputs": [100], "outputs": [101],
             "flops": 1000, "tensor_bytes": 256},
            {"id": 2, "name": "nccl:all_reduce", "inputs": [101],
             "outputs": [102], "tensor_bytes": 256, "comm_dims": [0]},
            {"id": 3, "name": "aten::copy_", "inputs": [102], "outputs": [103],
             "tensor_bytes": 256, "direction": "store", "location": "remote"},
        ],
    }


class TestPyTorchConverter:
    def test_rank_becomes_npu_id(self):
        trace = convert_pytorch_eg(_pytorch_payload())
        assert trace.npu_id == 2

    def test_dataflow_becomes_dependencies(self):
        trace = convert_pytorch_eg(_pytorch_payload())
        assert trace.node(2).deps == (1,)
        assert trace.node(3).deps == (2,)

    def test_node_kinds_inferred_from_names(self):
        trace = convert_pytorch_eg(_pytorch_payload())
        assert trace.node(1).node_type is NodeType.COMPUTE
        assert trace.node(2).node_type is NodeType.COMM_COLLECTIVE
        assert trace.node(2).collective is CollectiveType.ALL_REDUCE
        assert trace.node(2).comm_dims == (0,)
        assert trace.node(3).node_type is NodeType.MEMORY_STORE
        assert trace.node(3).location is TensorLocation.REMOTE

    def test_control_only_nodes_elided_with_dep_splicing(self):
        payload = {
            "schema": "pytorch-eg",
            "rank": 0,
            "nodes": [
                {"id": 1, "name": "aten::mm", "inputs": [], "outputs": [10],
                 "flops": 10},
                {"id": 2, "name": "autograd::engine", "inputs": [10],
                 "outputs": [11]},  # control-only: no flops/bytes
                {"id": 3, "name": "aten::mm", "inputs": [11], "outputs": [12],
                 "flops": 10},
            ],
        }
        trace = convert_pytorch_eg(payload)
        assert 2 not in trace
        assert trace.node(3).deps == (1,)

    def test_p2p_send_recv_mapping(self):
        payload = {
            "schema": "pytorch-eg",
            "rank": 0,
            "nodes": [
                {"id": 1, "name": "nccl:send", "inputs": [], "outputs": [],
                 "tensor_bytes": 8, "peer": 5},
                {"id": 2, "name": "nccl:recv", "inputs": [], "outputs": [],
                 "tensor_bytes": 8, "peer": 5},
            ],
        }
        trace = convert_pytorch_eg(payload)
        assert trace.node(1).node_type is NodeType.COMM_SEND
        assert trace.node(2).node_type is NodeType.COMM_RECV
        assert trace.node(1).peer == 5

    def test_wrong_schema_rejected(self):
        with pytest.raises(TraceValidationError):
            convert_pytorch_eg({"schema": "tf-graph", "nodes": []})

    def test_unknown_collective_rejected(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": 1, "name": "nccl:broadcast", "inputs": [],
                       "outputs": [], "tensor_bytes": 8}],
        }
        with pytest.raises(TraceValidationError):
            convert_pytorch_eg(payload)

    def test_ctrl_deps_honored(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [
                {"id": 1, "name": "aten::mm", "inputs": [], "outputs": [],
                 "flops": 10},
                {"id": 2, "name": "aten::mm", "inputs": [], "outputs": [],
                 "flops": 10, "ctrl_deps": [1]},
            ],
        }
        trace = convert_pytorch_eg(payload)
        assert trace.node(2).deps == (1,)


class TestFlexFlowConverter:
    def test_basic_conversion(self):
        payload = {
            "schema": "flexflow-taskgraph",
            "device": 4,
            "tasks": [
                {"task_id": 0, "kind": "task", "name": "linear", "deps": [],
                 "flops": 500, "bytes": 32},
                {"task_id": 1, "kind": "allreduce", "deps": [0], "bytes": 64,
                 "comm_dims": [1]},
                {"task_id": 2, "kind": "send", "deps": [1], "bytes": 8,
                 "peer": 5, "tag": 9},
                {"task_id": 3, "kind": "load", "deps": [], "bytes": 16,
                 "location": "remote"},
            ],
        }
        trace = convert_flexflow_taskgraph(payload)
        assert trace.npu_id == 4
        assert trace.node(0).node_type is NodeType.COMPUTE
        assert trace.node(1).collective is CollectiveType.ALL_REDUCE
        assert trace.node(1).comm_dims == (1,)
        assert trace.node(2).node_type is NodeType.COMM_SEND
        assert trace.node(2).tag == 9
        assert trace.node(3).location is TensorLocation.REMOTE

    def test_wrong_schema_rejected(self):
        with pytest.raises(TraceValidationError):
            convert_flexflow_taskgraph({"schema": "x", "tasks": []})

    def test_unknown_kind_rejected(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 0, "kind": "teleport", "deps": []}],
        }
        with pytest.raises(TraceValidationError):
            convert_flexflow_taskgraph(payload)

    def test_all_collective_kinds(self):
        kinds = {
            "allreduce": CollectiveType.ALL_REDUCE,
            "allgather": CollectiveType.ALL_GATHER,
            "reducescatter": CollectiveType.REDUCE_SCATTER,
            "alltoall": CollectiveType.ALL_TO_ALL,
        }
        for i, (kind, expected) in enumerate(kinds.items()):
            payload = {
                "schema": "flexflow-taskgraph", "device": 0,
                "tasks": [{"task_id": 0, "kind": kind, "deps": [], "bytes": 8}],
            }
            trace = convert_flexflow_taskgraph(payload)
            assert trace.node(0).collective is expected


class TestFlexFlowEdgeCases:
    def test_empty_task_graph_converts_to_empty_trace(self):
        trace = convert_flexflow_taskgraph(
            {"schema": "flexflow-taskgraph", "tasks": []})
        assert len(trace) == 0
        assert trace.npu_id == 0  # missing device defaults to 0

    def test_store_and_recv_kinds(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 1,
            "tasks": [
                {"task_id": 0, "kind": "store", "deps": [], "bytes": 128},
                {"task_id": 1, "kind": "recv", "deps": [0], "bytes": 8,
                 "peer": 3},
            ],
        }
        trace = convert_flexflow_taskgraph(payload)
        store = trace.node(0)
        assert store.node_type is NodeType.MEMORY_STORE
        assert store.location is TensorLocation.LOCAL  # default
        recv = trace.node(1)
        assert recv.node_type is NodeType.COMM_RECV
        assert recv.peer == 3
        assert recv.tag == 0  # default

    def test_name_defaults_to_kind(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 0, "kind": "allgather", "deps": [],
                       "bytes": 64}],
        }
        assert convert_flexflow_taskgraph(payload).node(0).name == "allgather"

    def test_bad_location_string_rejected(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 0, "kind": "load", "deps": [], "bytes": 4,
                       "location": "the-moon"}],
        }
        with pytest.raises(TraceValidationError, match="location"):
            convert_flexflow_taskgraph(payload)


def _node_fields(node):
    return (node.node_id, node.node_type, node.name, node.deps,
            node.tensor_bytes, node.flops, node.peer, node.tag,
            node.collective, node.comm_dims, node.location)


class TestConverterRoundTrip:
    """Converted traces survive ET JSON serialization unchanged."""

    def test_pytorch_eg_round_trip(self):
        trace = convert_pytorch_eg(_pytorch_payload())
        restored = loads_trace(dumps_trace(trace))
        assert restored.npu_id == trace.npu_id
        assert len(restored) == len(trace)
        for node in trace:
            assert _node_fields(restored.node(node.node_id)) == \
                _node_fields(node)

    def test_flexflow_round_trip(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 3,
            "tasks": [
                {"task_id": 0, "kind": "task", "name": "linear", "deps": [],
                 "flops": 500, "bytes": 32},
                {"task_id": 1, "kind": "alltoall", "deps": [0], "bytes": 64,
                 "comm_dims": [0, 1]},
                {"task_id": 2, "kind": "send", "deps": [1], "bytes": 8,
                 "peer": 5, "tag": 9},
                {"task_id": 3, "kind": "store", "deps": [2], "bytes": 16,
                 "location": "remote"},
            ],
        }
        trace = convert_flexflow_taskgraph(payload)
        restored = loads_trace(dumps_trace(trace))
        assert restored.npu_id == trace.npu_id
        for node in trace:
            assert _node_fields(restored.node(node.node_id)) == \
                _node_fields(node)


class TestPyTorchMalformedInputs:
    """Malformed/truncated documents get structured errors, not KeyErrors."""

    def test_non_dict_payload_rejected(self):
        with pytest.raises(TraceValidationError, match="object"):
            convert_pytorch_eg(["not", "a", "dict"])

    def test_nodes_must_be_a_list(self):
        with pytest.raises(TraceValidationError, match="list"):
            convert_pytorch_eg({"schema": "pytorch-eg", "nodes": {"id": 1}})

    def test_missing_node_id_rejected(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"name": "aten::mm", "inputs": [], "outputs": [],
                       "flops": 10}],
        }
        with pytest.raises(TraceValidationError, match="no 'id'"):
            convert_pytorch_eg(payload)

    def test_non_integer_node_id_rejected(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": "n1", "name": "aten::mm", "inputs": [],
                       "outputs": [], "flops": 10}],
        }
        with pytest.raises(TraceValidationError, match="integer"):
            convert_pytorch_eg(payload)

    def test_non_dict_node_rejected(self):
        payload = {"schema": "pytorch-eg", "rank": 0, "nodes": [42]}
        with pytest.raises(TraceValidationError, match="not an object"):
            convert_pytorch_eg(payload)

    def test_bad_rank_rejected(self):
        payload = {"schema": "pytorch-eg", "rank": "three", "nodes": []}
        with pytest.raises(TraceValidationError, match="rank"):
            convert_pytorch_eg(payload)

    def test_non_integer_peer_rejected(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": 1, "name": "nccl:send", "inputs": [],
                       "outputs": [], "tensor_bytes": 8, "peer": "gpu5"}],
        }
        with pytest.raises(TraceValidationError, match="peer"):
            convert_pytorch_eg(payload)

    def test_bad_location_rejected(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": 1, "name": "aten::copy_", "inputs": [],
                       "outputs": [], "tensor_bytes": 8,
                       "location": "mars"}],
        }
        with pytest.raises(TraceValidationError, match="location"):
            convert_pytorch_eg(payload)

    def test_inputs_must_be_a_list(self):
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": 1, "name": "aten::mm", "inputs": 100,
                       "outputs": [], "flops": 10}],
        }
        with pytest.raises(TraceValidationError, match="inputs"):
            convert_pytorch_eg(payload)

    def test_truncated_document_with_dangling_ctrl_dep(self):
        # The document was cut after node 1; node 2's ctrl_dep points at
        # a node that no longer exists.
        payload = {
            "schema": "pytorch-eg", "rank": 0,
            "nodes": [{"id": 2, "name": "aten::mm", "inputs": [],
                       "outputs": [], "flops": 10, "ctrl_deps": [1]}],
        }
        with pytest.raises(TraceValidationError):
            convert_pytorch_eg(payload)


class TestFlexFlowMalformedInputs:
    def test_non_dict_payload_rejected(self):
        with pytest.raises(TraceValidationError, match="object"):
            convert_flexflow_taskgraph("schema: flexflow-taskgraph")

    def test_tasks_must_be_a_list(self):
        with pytest.raises(TraceValidationError, match="list"):
            convert_flexflow_taskgraph(
                {"schema": "flexflow-taskgraph", "tasks": "oops"})

    def test_missing_task_id_rejected(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"kind": "task", "name": "linear", "deps": []}],
        }
        with pytest.raises(TraceValidationError, match="task_id"):
            convert_flexflow_taskgraph(payload)

    def test_non_dict_task_rejected(self):
        payload = {"schema": "flexflow-taskgraph", "tasks": [[0, "task"]]}
        with pytest.raises(TraceValidationError, match="not an object"):
            convert_flexflow_taskgraph(payload)

    def test_bad_device_rejected(self):
        payload = {"schema": "flexflow-taskgraph", "device": None,
                   "tasks": []}
        with pytest.raises(TraceValidationError, match="device"):
            convert_flexflow_taskgraph(payload)

    def test_send_without_peer_rejected(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 0, "kind": "send", "deps": [],
                       "bytes": 8}],
        }
        with pytest.raises(TraceValidationError, match="peer"):
            convert_flexflow_taskgraph(payload)

    def test_deps_must_be_a_list(self):
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 0, "kind": "task", "deps": 7}],
        }
        with pytest.raises(TraceValidationError, match="deps"):
            convert_flexflow_taskgraph(payload)

    def test_truncated_document_with_dangling_dep(self):
        # Task 0 was cut off; task 1 still depends on it.
        payload = {
            "schema": "flexflow-taskgraph", "device": 0,
            "tasks": [{"task_id": 1, "kind": "task", "deps": [0],
                       "flops": 10}],
        }
        with pytest.raises(TraceValidationError):
            convert_flexflow_taskgraph(payload)

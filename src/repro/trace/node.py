"""Execution-trace node schema.

The paper defines three node types — compute, memory, communication — with
per-type metadata (Sec. IV-A):

- **compute** nodes carry tensor size and FLOP count; the simulator turns
  them into cycles with a roofline model;
- **memory** nodes carry tensor size and location (local HBM vs remote
  pool); the memory API turns them into access time;
- **communication** nodes carry either a collective (type + size +
  participating dimensions) or a point-to-point send/recv (size + peer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class NodeType(enum.Enum):
    """Operation class of an ET node."""

    COMPUTE = "compute"
    MEMORY_LOAD = "memory_load"
    MEMORY_STORE = "memory_store"
    COMM_COLLECTIVE = "comm_collective"
    COMM_SEND = "comm_send"
    COMM_RECV = "comm_recv"


class CollectiveType(enum.Enum):
    """Collective communication patterns (paper Fig. 2)."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    ALL_TO_ALL = "all_to_all"


class TensorLocation(enum.Enum):
    """Where a memory node's tensor lives (Sec. IV-D)."""

    LOCAL = "local"
    REMOTE = "remote"


_COMM_TYPES = frozenset(
    {NodeType.COMM_COLLECTIVE, NodeType.COMM_SEND, NodeType.COMM_RECV}
)
_MEM_TYPES = frozenset({NodeType.MEMORY_LOAD, NodeType.MEMORY_STORE})


@dataclass
class ETNode:
    """One operation in an NPU's execution trace.

    Attributes:
        node_id: Unique (per trace) integer id.
        node_type: Operation class.
        name: Human-readable label (layer name etc.), purely informational.
        deps: Ids of parent nodes that must complete before this one issues.
        tensor_bytes: Payload size; meaning depends on ``node_type``
            (compute input size, memory payload, or communication size).
        flops: Floating-point operations (compute nodes only).
        collective: Collective pattern (COMM_COLLECTIVE only).
        comm_dims: Which logical topology dimensions the collective spans,
            as 0-based dimension indices; ``None`` means "all dimensions".
            This is how hybrid parallelism maps MP vs DP traffic onto
            different slices of the physical topology.
        peer: Peer NPU id (COMM_SEND / COMM_RECV only).
        tag: Match tag for point-to-point pairs.
        location: Tensor placement (memory nodes only).
        involved_npus: Explicit participant list for collectives that span a
            subset of NPUs not expressible as whole dimensions (optional).
    """

    node_id: int
    node_type: NodeType
    name: str = ""
    deps: Tuple[int, ...] = ()
    tensor_bytes: int = 0
    flops: int = 0
    collective: Optional[CollectiveType] = None
    comm_dims: Optional[Tuple[int, ...]] = None
    peer: Optional[int] = None
    tag: int = 0
    location: TensorLocation = TensorLocation.LOCAL
    involved_npus: Optional[Tuple[int, ...]] = None
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.deps = tuple(self.deps)
        if self.comm_dims is not None:
            self.comm_dims = tuple(self.comm_dims)
        if self.involved_npus is not None:
            self.involved_npus = tuple(self.involved_npus)
        self.validate()

    # -- classification helpers -------------------------------------------------

    @property
    def is_compute(self) -> bool:
        return self.node_type is NodeType.COMPUTE

    @property
    def is_memory(self) -> bool:
        return self.node_type in _MEM_TYPES

    @property
    def is_comm(self) -> bool:
        return self.node_type in _COMM_TYPES

    @property
    def is_collective(self) -> bool:
        return self.node_type is NodeType.COMM_COLLECTIVE

    @property
    def is_p2p(self) -> bool:
        return self.node_type in (NodeType.COMM_SEND, NodeType.COMM_RECV)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check per-type metadata consistency; raises ValueError."""
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if self.tensor_bytes < 0:
            raise ValueError(f"tensor_bytes must be >= 0, got {self.tensor_bytes}")
        if self.flops < 0:
            raise ValueError(f"flops must be >= 0, got {self.flops}")
        if self.node_id in self.deps:
            raise ValueError(f"node {self.node_id} depends on itself")
        if self.node_type is NodeType.COMM_COLLECTIVE and self.collective is None:
            raise ValueError(f"collective node {self.node_id} lacks a collective type")
        if self.node_type in (NodeType.COMM_SEND, NodeType.COMM_RECV):
            if self.peer is None:
                raise ValueError(f"p2p node {self.node_id} lacks a peer")
            if self.peer < 0:
                raise ValueError(f"p2p node {self.node_id} has negative peer {self.peer}")
        if self.node_type is NodeType.COMPUTE and self.flops == 0 and self.tensor_bytes == 0:
            raise ValueError(f"compute node {self.node_id} has neither flops nor bytes")

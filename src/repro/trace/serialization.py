"""JSON (de)serialization for ASTRA-sim ETs.

The on-disk format is deliberately simple and versioned::

    {
      "format": "astra-sim-et",
      "version": 1,
      "npu_id": 0,
      "nodes": [
        {"id": 0, "type": "compute", "name": "fwd.mlp0",
         "deps": [], "tensor_bytes": 1048576, "flops": 2000000},
        {"id": 1, "type": "comm_collective", "collective": "all_reduce",
         "deps": [0], "tensor_bytes": 4194304, "comm_dims": [0, 1]},
        ...
      ]
    }

Only keys with non-default values are emitted, keeping large traces small.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation

FORMAT_NAME = "astra-sim-et"
FORMAT_VERSION = 1


def _node_to_dict(node: ETNode) -> Dict[str, Any]:
    out: Dict[str, Any] = {"id": node.node_id, "type": node.node_type.value}
    if node.name:
        out["name"] = node.name
    if node.deps:
        out["deps"] = list(node.deps)
    if node.tensor_bytes:
        out["tensor_bytes"] = node.tensor_bytes
    if node.flops:
        out["flops"] = node.flops
    if node.collective is not None:
        out["collective"] = node.collective.value
    if node.comm_dims is not None:
        out["comm_dims"] = list(node.comm_dims)
    if node.peer is not None:
        out["peer"] = node.peer
    if node.tag:
        out["tag"] = node.tag
    if node.location is not TensorLocation.LOCAL:
        out["location"] = node.location.value
    if node.involved_npus is not None:
        out["involved_npus"] = list(node.involved_npus)
    if node.attrs:
        out["attrs"] = node.attrs
    return out


def _node_from_dict(data: Dict[str, Any]) -> ETNode:
    try:
        node_type = NodeType(data["type"])
    except (KeyError, ValueError) as exc:
        raise TraceValidationError(f"bad node type in {data!r}") from exc
    collective = (
        CollectiveType(data["collective"]) if "collective" in data else None
    )
    location = TensorLocation(data.get("location", "local"))
    comm_dims = tuple(data["comm_dims"]) if "comm_dims" in data else None
    involved = tuple(data["involved_npus"]) if "involved_npus" in data else None
    return ETNode(
        node_id=data["id"],
        node_type=node_type,
        name=data.get("name", ""),
        deps=tuple(data.get("deps", ())),
        tensor_bytes=data.get("tensor_bytes", 0),
        flops=data.get("flops", 0),
        collective=collective,
        comm_dims=comm_dims,
        peer=data.get("peer"),
        tag=data.get("tag", 0),
        location=location,
        involved_npus=involved,
        attrs=data.get("attrs", {}),
    )


def dumps_trace(trace: ExecutionTrace, indent: int = 0) -> str:
    """Serialize a trace to a JSON string."""
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "npu_id": trace.npu_id,
        "nodes": [_node_to_dict(n) for n in trace.nodes],
    }
    return json.dumps(payload, indent=indent or None)


def loads_trace(text: str) -> ExecutionTrace:
    """Parse a trace from a JSON string (validates format + graph)."""
    payload = json.loads(text)
    if payload.get("format") != FORMAT_NAME:
        raise TraceValidationError(
            f"not an ASTRA-sim ET (format={payload.get('format')!r})"
        )
    if payload.get("version") != FORMAT_VERSION:
        raise TraceValidationError(
            f"unsupported ET version {payload.get('version')!r}"
        )
    nodes = [_node_from_dict(d) for d in payload.get("nodes", ())]
    return ExecutionTrace(npu_id=payload.get("npu_id", 0), nodes=nodes)


def save_trace(trace: ExecutionTrace, path: Union[str, Path]) -> None:
    """Write a trace to a JSON file."""
    Path(path).write_text(dumps_trace(trace))


def load_trace(path: Union[str, Path]) -> ExecutionTrace:
    """Read a trace from a JSON file."""
    return loads_trace(Path(path).read_text())

"""PyTorch ExecutionGraphObserver → ASTRA-sim ET converter.

The PyTorch profiler's ExecutionGraphObserver records one JSON document per
rank with operator nodes; data flow is expressed through tensor ids in each
node's ``inputs``/``outputs`` lists.  This converter consumes that shape::

    {
      "schema": "pytorch-eg",
      "rank": 3,
      "nodes": [
        {"id": 1, "name": "aten::mm", "inputs": [100, 101],
         "outputs": [102], "flops": 8388608, "tensor_bytes": 4096},
        {"id": 2, "name": "nccl:all_reduce", "inputs": [102],
         "outputs": [103], "tensor_bytes": 4096, "comm_dims": [0]},
        ...
      ]
    }

Conversion rules (mirrors the real astra-sim chakra converter):

- node kind is inferred from the operator name — ``nccl:``/``c10d::``
  prefixes map to communication, ``aten::copy_``/``Memcpy``/``aten::to``
  map to memory, everything else with flops/bytes maps to compute;
- dependencies are recovered from data flow: a node depends on the most
  recent producer of each of its input tensors;
- control-only nodes (no flops, no payload, no comm) are elided, with
  their dependencies spliced through to the consumers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation

_COMM_PREFIXES = ("nccl:", "c10d::", "oneccl:")
_MEMORY_NAMES = ("aten::copy_", "aten::to", "Memcpy", "memcpy", "aten::load")

_COLLECTIVE_BY_SUFFIX = {
    "all_reduce": CollectiveType.ALL_REDUCE,
    "allreduce": CollectiveType.ALL_REDUCE,
    "all_gather": CollectiveType.ALL_GATHER,
    "allgather": CollectiveType.ALL_GATHER,
    "reduce_scatter": CollectiveType.REDUCE_SCATTER,
    "reducescatter": CollectiveType.REDUCE_SCATTER,
    "all_to_all": CollectiveType.ALL_TO_ALL,
    "alltoall": CollectiveType.ALL_TO_ALL,
}


def _classify(name: str) -> str:
    lowered = name.lower()
    if any(lowered.startswith(p) for p in _COMM_PREFIXES):
        return "comm"
    if any(m.lower() in lowered for m in _MEMORY_NAMES):
        return "memory"
    return "compute"


def _collective_for(name: str) -> CollectiveType:
    lowered = name.lower()
    for suffix, ctype in _COLLECTIVE_BY_SUFFIX.items():
        if lowered.endswith(suffix):
            return ctype
    raise TraceValidationError(f"unrecognized collective operator {name!r}")


def _node_id(raw: Dict[str, Any], index: int) -> int:
    """The node's required integer id, with a structured error."""
    if not isinstance(raw, dict):
        raise TraceValidationError(
            f"nodes[{index}] is not an object: {raw!r}")
    if "id" not in raw:
        raise TraceValidationError(
            f"nodes[{index}] ({raw.get('name', '?')!r}) has no 'id' field")
    node_id = raw["id"]
    if not isinstance(node_id, int) or isinstance(node_id, bool):
        raise TraceValidationError(
            f"nodes[{index}]: id must be an integer, got {node_id!r}")
    return node_id


def convert_pytorch_eg(payload: Dict[str, Any]) -> ExecutionTrace:
    """Convert one rank's PyTorch execution-graph JSON into an ET.

    Raises :class:`TraceValidationError` on schema problems — including
    malformed node records (missing/non-integer ids, bad peer or
    location fields) and truncated documents whose surviving nodes
    depend on nodes that were cut off.
    """
    if not isinstance(payload, dict):
        raise TraceValidationError(
            f"pytorch-eg payload must be an object, got {type(payload).__name__}")
    if payload.get("schema") != "pytorch-eg":
        raise TraceValidationError(
            f"expected schema 'pytorch-eg', got {payload.get('schema')!r}"
        )
    raw_nodes: Sequence[Dict[str, Any]] = payload.get("nodes", ())
    if not isinstance(raw_nodes, (list, tuple)):
        raise TraceValidationError(
            f"'nodes' must be a list, got {type(raw_nodes).__name__}")
    try:
        rank = int(payload.get("rank", 0))
    except (TypeError, ValueError):
        raise TraceValidationError(
            f"'rank' must be an integer, got {payload.get('rank')!r}")

    # Pass 1: map each tensor id to its (last) producer node id.
    producer: Dict[int, int] = {}
    for index, raw in enumerate(raw_nodes):
        node_id = _node_id(raw, index)
        outputs = raw.get("outputs", ())
        if not isinstance(outputs, (list, tuple)):
            raise TraceValidationError(
                f"node {node_id}: 'outputs' must be a list, got {outputs!r}")
        for tensor_id in outputs:
            producer[tensor_id] = node_id

    # Pass 2: compute raw data-flow deps.
    raw_deps: Dict[int, List[int]] = {}
    for raw in raw_nodes:
        deps = []
        inputs = raw.get("inputs", ())
        if not isinstance(inputs, (list, tuple)):
            raise TraceValidationError(
                f"node {raw['id']}: 'inputs' must be a list, got {inputs!r}")
        for tensor_id in inputs:
            src = producer.get(tensor_id)
            if src is not None and src != raw["id"]:
                deps.append(src)
        ctrl_deps = raw.get("ctrl_deps", ())
        if not isinstance(ctrl_deps, (list, tuple)):
            raise TraceValidationError(
                f"node {raw['id']}: 'ctrl_deps' must be a list, "
                f"got {ctrl_deps!r}")
        for ctrl in ctrl_deps:
            deps.append(ctrl)
        raw_deps[raw["id"]] = sorted(set(deps))

    # Pass 3: identify control-only nodes to elide.
    def is_control_only(raw: Dict[str, Any]) -> bool:
        return (
            _classify(raw.get("name", "")) == "compute"
            and not raw.get("flops")
            and not raw.get("tensor_bytes")
        )

    elided = {raw["id"] for raw in raw_nodes if is_control_only(raw)}

    def resolve(dep: int, seen: Optional[frozenset] = None) -> Tuple[int, ...]:
        """Splice dependencies through elided nodes (transitively)."""
        if dep not in elided:
            return (dep,)
        seen = seen or frozenset()
        if dep in seen:
            return ()
        out: List[int] = []
        for parent in raw_deps.get(dep, ()):
            out.extend(resolve(parent, seen | {dep}))
        return tuple(out)

    nodes: List[ETNode] = []
    for raw in raw_nodes:
        if raw["id"] in elided:
            continue
        name = raw.get("name", "")
        kind = _classify(name)
        deps: List[int] = []
        for dep in raw_deps[raw["id"]]:
            deps.extend(resolve(dep))
        deps = sorted(set(deps))

        if kind == "comm":
            comm_dims = tuple(raw["comm_dims"]) if "comm_dims" in raw else None
            if "peer" in raw:
                peer = raw["peer"]
                if not isinstance(peer, int) or isinstance(peer, bool):
                    raise TraceValidationError(
                        f"node {raw['id']} ({name!r}): peer must be an "
                        f"integer NPU id, got {peer!r}")
                node_type = (
                    NodeType.COMM_SEND
                    if "send" in name.lower()
                    else NodeType.COMM_RECV
                )
                nodes.append(
                    ETNode(
                        node_id=raw["id"],
                        node_type=node_type,
                        name=name,
                        deps=tuple(deps),
                        tensor_bytes=raw.get("tensor_bytes", 0),
                        peer=peer,
                        tag=raw.get("tag", 0),
                    )
                )
            else:
                nodes.append(
                    ETNode(
                        node_id=raw["id"],
                        node_type=NodeType.COMM_COLLECTIVE,
                        name=name,
                        deps=tuple(deps),
                        tensor_bytes=raw.get("tensor_bytes", 0),
                        collective=_collective_for(name),
                        comm_dims=comm_dims,
                    )
                )
        elif kind == "memory":
            try:
                location = TensorLocation(raw.get("location", "local"))
            except ValueError:
                raise TraceValidationError(
                    f"node {raw['id']} ({name!r}): unknown tensor location "
                    f"{raw.get('location')!r}")
            node_type = (
                NodeType.MEMORY_STORE
                if raw.get("direction") == "store"
                else NodeType.MEMORY_LOAD
            )
            nodes.append(
                ETNode(
                    node_id=raw["id"],
                    node_type=node_type,
                    name=name,
                    deps=tuple(deps),
                    tensor_bytes=raw.get("tensor_bytes", 0),
                    location=location,
                )
            )
        else:
            nodes.append(
                ETNode(
                    node_id=raw["id"],
                    node_type=NodeType.COMPUTE,
                    name=name,
                    deps=tuple(deps),
                    tensor_bytes=raw.get("tensor_bytes", 0),
                    flops=raw.get("flops", 0),
                )
            )

    return ExecutionTrace(npu_id=rank, nodes=nodes)

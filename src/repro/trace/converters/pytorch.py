"""PyTorch ExecutionGraphObserver → ASTRA-sim ET converter.

The PyTorch profiler's ExecutionGraphObserver records one JSON document per
rank with operator nodes; data flow is expressed through tensor ids in each
node's ``inputs``/``outputs`` lists.  This converter consumes that shape::

    {
      "schema": "pytorch-eg",
      "rank": 3,
      "nodes": [
        {"id": 1, "name": "aten::mm", "inputs": [100, 101],
         "outputs": [102], "flops": 8388608, "tensor_bytes": 4096},
        {"id": 2, "name": "nccl:all_reduce", "inputs": [102],
         "outputs": [103], "tensor_bytes": 4096, "comm_dims": [0]},
        ...
      ]
    }

Conversion rules (mirrors the real astra-sim chakra converter):

- node kind is inferred from the operator name — ``nccl:``/``c10d::``
  prefixes map to communication, ``aten::copy_``/``Memcpy``/``aten::to``
  map to memory, everything else with flops/bytes maps to compute;
- dependencies are recovered from data flow: a node depends on the most
  recent producer of each of its input tensors;
- control-only nodes (no flops, no payload, no comm) are elided, with
  their dependencies spliced through to the consumers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation

_COMM_PREFIXES = ("nccl:", "c10d::", "oneccl:")
_MEMORY_NAMES = ("aten::copy_", "aten::to", "Memcpy", "memcpy", "aten::load")

_COLLECTIVE_BY_SUFFIX = {
    "all_reduce": CollectiveType.ALL_REDUCE,
    "allreduce": CollectiveType.ALL_REDUCE,
    "all_gather": CollectiveType.ALL_GATHER,
    "allgather": CollectiveType.ALL_GATHER,
    "reduce_scatter": CollectiveType.REDUCE_SCATTER,
    "reducescatter": CollectiveType.REDUCE_SCATTER,
    "all_to_all": CollectiveType.ALL_TO_ALL,
    "alltoall": CollectiveType.ALL_TO_ALL,
}


def _classify(name: str) -> str:
    lowered = name.lower()
    if any(lowered.startswith(p) for p in _COMM_PREFIXES):
        return "comm"
    if any(m.lower() in lowered for m in _MEMORY_NAMES):
        return "memory"
    return "compute"


def _collective_for(name: str) -> CollectiveType:
    lowered = name.lower()
    for suffix, ctype in _COLLECTIVE_BY_SUFFIX.items():
        if lowered.endswith(suffix):
            return ctype
    raise TraceValidationError(f"unrecognized collective operator {name!r}")


def convert_pytorch_eg(payload: Dict[str, Any]) -> ExecutionTrace:
    """Convert one rank's PyTorch execution-graph JSON into an ET.

    Raises :class:`TraceValidationError` on schema problems.
    """
    if payload.get("schema") != "pytorch-eg":
        raise TraceValidationError(
            f"expected schema 'pytorch-eg', got {payload.get('schema')!r}"
        )
    raw_nodes: Sequence[Dict[str, Any]] = payload.get("nodes", ())
    rank = int(payload.get("rank", 0))

    # Pass 1: map each tensor id to its (last) producer node id.
    producer: Dict[int, int] = {}
    for raw in raw_nodes:
        for tensor_id in raw.get("outputs", ()):
            producer[tensor_id] = raw["id"]

    # Pass 2: compute raw data-flow deps.
    raw_deps: Dict[int, List[int]] = {}
    for raw in raw_nodes:
        deps = []
        for tensor_id in raw.get("inputs", ()):
            src = producer.get(tensor_id)
            if src is not None and src != raw["id"]:
                deps.append(src)
        for ctrl in raw.get("ctrl_deps", ()):
            deps.append(ctrl)
        raw_deps[raw["id"]] = sorted(set(deps))

    # Pass 3: identify control-only nodes to elide.
    def is_control_only(raw: Dict[str, Any]) -> bool:
        return (
            _classify(raw.get("name", "")) == "compute"
            and not raw.get("flops")
            and not raw.get("tensor_bytes")
        )

    elided = {raw["id"] for raw in raw_nodes if is_control_only(raw)}

    def resolve(dep: int, seen: Optional[frozenset] = None) -> Tuple[int, ...]:
        """Splice dependencies through elided nodes (transitively)."""
        if dep not in elided:
            return (dep,)
        seen = seen or frozenset()
        if dep in seen:
            return ()
        out: List[int] = []
        for parent in raw_deps.get(dep, ()):
            out.extend(resolve(parent, seen | {dep}))
        return tuple(out)

    nodes: List[ETNode] = []
    for raw in raw_nodes:
        if raw["id"] in elided:
            continue
        name = raw.get("name", "")
        kind = _classify(name)
        deps: List[int] = []
        for dep in raw_deps[raw["id"]]:
            deps.extend(resolve(dep))
        deps = sorted(set(deps))

        if kind == "comm":
            comm_dims = tuple(raw["comm_dims"]) if "comm_dims" in raw else None
            if "peer" in raw:
                node_type = (
                    NodeType.COMM_SEND
                    if "send" in name.lower()
                    else NodeType.COMM_RECV
                )
                nodes.append(
                    ETNode(
                        node_id=raw["id"],
                        node_type=node_type,
                        name=name,
                        deps=tuple(deps),
                        tensor_bytes=raw.get("tensor_bytes", 0),
                        peer=raw["peer"],
                        tag=raw.get("tag", 0),
                    )
                )
            else:
                nodes.append(
                    ETNode(
                        node_id=raw["id"],
                        node_type=NodeType.COMM_COLLECTIVE,
                        name=name,
                        deps=tuple(deps),
                        tensor_bytes=raw.get("tensor_bytes", 0),
                        collective=_collective_for(name),
                        comm_dims=comm_dims,
                    )
                )
        elif kind == "memory":
            location = TensorLocation(raw.get("location", "local"))
            node_type = (
                NodeType.MEMORY_STORE
                if raw.get("direction") == "store"
                else NodeType.MEMORY_LOAD
            )
            nodes.append(
                ETNode(
                    node_id=raw["id"],
                    node_type=node_type,
                    name=name,
                    deps=tuple(deps),
                    tensor_bytes=raw.get("tensor_bytes", 0),
                    location=location,
                )
            )
        else:
            nodes.append(
                ETNode(
                    node_id=raw["id"],
                    node_type=NodeType.COMPUTE,
                    name=name,
                    deps=tuple(deps),
                    tensor_bytes=raw.get("tensor_bytes", 0),
                    flops=raw.get("flops", 0),
                )
            )

    return ExecutionTrace(npu_id=rank, nodes=nodes)

"""Synthetic PyTorch execution-graph generation.

Produces the JSON an ``ExecutionGraphObserver`` (paper Snippet 1) would
record for one rank of a Megatron-style hybrid-parallel transformer run.
This closes the collect -> convert -> simulate loop without PyTorch: the
output feeds :func:`repro.trace.converters.convert_pytorch_eg`, and the
converted trace is behaviourally equivalent to what
:func:`repro.workload.generate_megatron_hybrid` builds directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.workload.models import TransformerSpec


def synthesize_pytorch_eg(
    model: TransformerSpec,
    rank: int = 0,
    mp_dims: Sequence[int] = (0,),
    dp_dims: Sequence[int] = (1,),
    mp_degree: int = 1,
) -> Dict[str, Any]:
    """Emit one rank's PyTorch-EG JSON for a hybrid MP x DP iteration.

    Data flow is recorded through tensor ids exactly as the observer
    does; operator names use real PyTorch/NCCL spellings so the
    converter's classification heuristics are exercised.  Autograd
    control nodes are included (and will be elided by the converter).
    """
    if mp_degree < 1:
        raise ValueError(f"mp_degree must be >= 1, got {mp_degree}")
    nodes: List[Dict[str, Any]] = []
    next_node = [1]
    next_tensor = [100]

    def node_id() -> int:
        next_node[0] += 1
        return next_node[0] - 1

    def tensor_id() -> int:
        next_tensor[0] += 1
        return next_tensor[0] - 1

    act = model.activation_bytes()
    half_fwd = model.fwd_flops_per_layer() // (2 * mp_degree)
    half_bwd = model.bwd_flops_per_layer() // (2 * mp_degree)
    grad_bytes = model.layer_grad_bytes() // mp_degree

    current = tensor_id()
    nodes.append({
        "id": node_id(), "name": "aten::embedding", "inputs": [],
        "outputs": [current], "flops": 1, "tensor_bytes": act,
    })

    # Forward.
    layer_outputs: List[int] = []
    for layer in range(model.num_layers):
        for half in ("attn", "mlp"):
            out = tensor_id()
            nodes.append({
                "id": node_id(), "name": "aten::mm", "inputs": [current],
                "outputs": [out], "flops": half_fwd, "tensor_bytes": act,
            })
            current = out
            if mp_degree > 1:
                reduced = tensor_id()
                nodes.append({
                    "id": node_id(), "name": "nccl:all_reduce",
                    "inputs": [current], "outputs": [reduced],
                    "tensor_bytes": act, "comm_dims": list(mp_dims),
                })
                current = reduced
        layer_outputs.append(current)

    # A control-only autograd node between fwd and bwd (converter elides).
    bridge = tensor_id()
    nodes.append({
        "id": node_id(), "name": "autograd::engine", "inputs": [current],
        "outputs": [bridge],
    })
    current = bridge

    # Backward with per-layer gradient all-reduces on the DP dims.
    for layer in reversed(range(model.num_layers)):
        for half in ("mlp", "attn"):
            out = tensor_id()
            nodes.append({
                "id": node_id(), "name": "aten::mm", "inputs": [current],
                "outputs": [out], "flops": half_bwd, "tensor_bytes": act,
            })
            current = out
            if mp_degree > 1:
                reduced = tensor_id()
                nodes.append({
                    "id": node_id(), "name": "nccl:all_reduce",
                    "inputs": [current], "outputs": [reduced],
                    "tensor_bytes": act, "comm_dims": list(mp_dims),
                })
                current = reduced
        grad_out = tensor_id()
        nodes.append({
            "id": node_id(), "name": "nccl:all_reduce",
            "inputs": [current], "outputs": [grad_out],
            "tensor_bytes": grad_bytes, "comm_dims": list(dp_dims),
        })

    return {"schema": "pytorch-eg", "rank": rank, "nodes": nodes}

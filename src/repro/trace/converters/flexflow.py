"""FlexFlow task graph → ASTRA-sim ET converter.

FlexFlow exports a per-device task graph with explicit dependencies, which
maps nearly one-to-one onto the ASTRA-sim ET schema::

    {
      "schema": "flexflow-taskgraph",
      "device": 2,
      "tasks": [
        {"task_id": 0, "kind": "task", "name": "linear_fwd",
         "deps": [], "flops": 1000000, "bytes": 4096},
        {"task_id": 1, "kind": "allreduce", "deps": [0], "bytes": 8192},
        {"task_id": 2, "kind": "send", "deps": [1], "bytes": 64, "peer": 3},
      ]
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation

_COLLECTIVE_KINDS = {
    "allreduce": CollectiveType.ALL_REDUCE,
    "allgather": CollectiveType.ALL_GATHER,
    "reducescatter": CollectiveType.REDUCE_SCATTER,
    "alltoall": CollectiveType.ALL_TO_ALL,
}


def convert_flexflow_taskgraph(payload: Dict[str, Any]) -> ExecutionTrace:
    """Convert one device's FlexFlow task graph into an ET."""
    if payload.get("schema") != "flexflow-taskgraph":
        raise TraceValidationError(
            f"expected schema 'flexflow-taskgraph', got {payload.get('schema')!r}"
        )
    device = int(payload.get("device", 0))
    tasks: Sequence[Dict[str, Any]] = payload.get("tasks", ())

    nodes: List[ETNode] = []
    for task in tasks:
        kind = task.get("kind", "task")
        deps = tuple(task.get("deps", ()))
        tid = task["task_id"]
        name = task.get("name", kind)
        size = task.get("bytes", 0)
        if kind in _COLLECTIVE_KINDS:
            comm_dims = (
                tuple(task["comm_dims"]) if "comm_dims" in task else None
            )
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=NodeType.COMM_COLLECTIVE,
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    collective=_COLLECTIVE_KINDS[kind],
                    comm_dims=comm_dims,
                )
            )
        elif kind in ("send", "recv"):
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=(
                        NodeType.COMM_SEND if kind == "send" else NodeType.COMM_RECV
                    ),
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    peer=task["peer"],
                    tag=task.get("tag", 0),
                )
            )
        elif kind in ("load", "store"):
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=(
                        NodeType.MEMORY_LOAD if kind == "load" else NodeType.MEMORY_STORE
                    ),
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    location=TensorLocation(task.get("location", "local")),
                )
            )
        elif kind == "task":
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=NodeType.COMPUTE,
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    flops=task.get("flops", 0),
                )
            )
        else:
            raise TraceValidationError(f"unknown FlexFlow task kind {kind!r}")

    return ExecutionTrace(npu_id=device, nodes=nodes)

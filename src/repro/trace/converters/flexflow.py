"""FlexFlow task graph → ASTRA-sim ET converter.

FlexFlow exports a per-device task graph with explicit dependencies, which
maps nearly one-to-one onto the ASTRA-sim ET schema::

    {
      "schema": "flexflow-taskgraph",
      "device": 2,
      "tasks": [
        {"task_id": 0, "kind": "task", "name": "linear_fwd",
         "deps": [], "flops": 1000000, "bytes": 4096},
        {"task_id": 1, "kind": "allreduce", "deps": [0], "bytes": 8192},
        {"task_id": 2, "kind": "send", "deps": [1], "bytes": 64, "peer": 3},
      ]
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation

_COLLECTIVE_KINDS = {
    "allreduce": CollectiveType.ALL_REDUCE,
    "allgather": CollectiveType.ALL_GATHER,
    "reducescatter": CollectiveType.REDUCE_SCATTER,
    "alltoall": CollectiveType.ALL_TO_ALL,
}


def convert_flexflow_taskgraph(payload: Dict[str, Any]) -> ExecutionTrace:
    """Convert one device's FlexFlow task graph into an ET.

    Raises :class:`TraceValidationError` on schema problems — including
    malformed task records (missing ids, send/recv without a peer, bad
    locations) and truncated documents with unresolvable dependencies.
    """
    if not isinstance(payload, dict):
        raise TraceValidationError(
            f"flexflow payload must be an object, got {type(payload).__name__}")
    if payload.get("schema") != "flexflow-taskgraph":
        raise TraceValidationError(
            f"expected schema 'flexflow-taskgraph', got {payload.get('schema')!r}"
        )
    try:
        device = int(payload.get("device", 0))
    except (TypeError, ValueError):
        raise TraceValidationError(
            f"'device' must be an integer, got {payload.get('device')!r}")
    tasks: Sequence[Dict[str, Any]] = payload.get("tasks", ())
    if not isinstance(tasks, (list, tuple)):
        raise TraceValidationError(
            f"'tasks' must be a list, got {type(tasks).__name__}")

    nodes: List[ETNode] = []
    for index, task in enumerate(tasks):
        if not isinstance(task, dict):
            raise TraceValidationError(
                f"tasks[{index}] is not an object: {task!r}")
        kind = task.get("kind", "task")
        raw_deps = task.get("deps", ())
        if not isinstance(raw_deps, (list, tuple)):
            raise TraceValidationError(
                f"tasks[{index}]: 'deps' must be a list, got {raw_deps!r}")
        deps = tuple(raw_deps)
        if "task_id" not in task:
            raise TraceValidationError(
                f"tasks[{index}] ({task.get('name', kind)!r}) has no "
                "'task_id' field")
        tid = task["task_id"]
        if not isinstance(tid, int) or isinstance(tid, bool):
            raise TraceValidationError(
                f"tasks[{index}]: task_id must be an integer, got {tid!r}")
        name = task.get("name", kind)
        size = task.get("bytes", 0)
        if kind in _COLLECTIVE_KINDS:
            comm_dims = (
                tuple(task["comm_dims"]) if "comm_dims" in task else None
            )
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=NodeType.COMM_COLLECTIVE,
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    collective=_COLLECTIVE_KINDS[kind],
                    comm_dims=comm_dims,
                )
            )
        elif kind in ("send", "recv"):
            if "peer" not in task:
                raise TraceValidationError(
                    f"task {tid} ({name!r}): {kind} requires a 'peer' field")
            peer = task["peer"]
            if not isinstance(peer, int) or isinstance(peer, bool):
                raise TraceValidationError(
                    f"task {tid} ({name!r}): peer must be an integer "
                    f"device id, got {peer!r}")
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=(
                        NodeType.COMM_SEND if kind == "send" else NodeType.COMM_RECV
                    ),
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    peer=peer,
                    tag=task.get("tag", 0),
                )
            )
        elif kind in ("load", "store"):
            try:
                location = TensorLocation(task.get("location", "local"))
            except ValueError:
                raise TraceValidationError(
                    f"task {tid} ({name!r}): unknown tensor location "
                    f"{task.get('location')!r}")
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=(
                        NodeType.MEMORY_LOAD if kind == "load" else NodeType.MEMORY_STORE
                    ),
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    location=location,
                )
            )
        elif kind == "task":
            nodes.append(
                ETNode(
                    node_id=tid,
                    node_type=NodeType.COMPUTE,
                    name=name,
                    deps=deps,
                    tensor_bytes=size,
                    flops=task.get("flops", 0),
                )
            )
        else:
            raise TraceValidationError(f"unknown FlexFlow task kind {kind!r}")

    return ExecutionTrace(npu_id=device, nodes=nodes)

"""Converters from foreign trace formats to ASTRA-sim ETs.

The paper (Sec. IV-A) defines a single common ET format and ships
converters from framework-native traces.  We support two source formats:

- :mod:`repro.trace.converters.pytorch` — PyTorch
  ``ExecutionGraphObserver``-style JSON (operator nodes with data-flow
  recorded through tensor ids);
- :mod:`repro.trace.converters.flexflow` — FlexFlow-style task graphs
  (explicit task dependencies).
"""

from repro.trace.converters.pytorch import convert_pytorch_eg
from repro.trace.converters.flexflow import convert_flexflow_taskgraph
from repro.trace.converters.synthetic import synthesize_pytorch_eg

__all__ = [
    "convert_flexflow_taskgraph",
    "convert_pytorch_eg",
    "synthesize_pytorch_eg",
]

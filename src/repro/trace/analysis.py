"""Static analysis of execution traces.

Answers the questions a user asks *before* simulating: how much compute,
memory, and communication a trace carries, what its dependency structure
looks like, and rough lower bounds on its runtime given hardware numbers
— useful for sanity-checking generated or converted traces and for
sizing simulations.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.trace.graph import ExecutionTrace
from repro.trace.node import NodeType


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one execution trace."""

    npu_id: int
    num_nodes: int
    nodes_by_type: Mapping[str, int]
    total_flops: int
    comm_bytes_by_collective: Mapping[str, int]
    p2p_bytes: int
    memory_bytes_local: int
    memory_bytes_remote: int
    critical_path_nodes: int
    critical_path_flops: int
    max_parallelism: int

    @property
    def total_comm_bytes(self) -> int:
        return sum(self.comm_bytes_by_collective.values()) + self.p2p_bytes

    @property
    def flops_per_comm_byte(self) -> float:
        """Arithmetic intensity of the trace's comm/compute balance."""
        comm = self.total_comm_bytes
        return self.total_flops / comm if comm else float("inf")

    def format(self) -> str:
        lines = [
            f"trace for NPU {self.npu_id}: {self.num_nodes} nodes",
            "  by type: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.nodes_by_type.items())),
            f"  compute: {self.total_flops / 1e9:.2f} GFLOP "
            f"(critical path {self.critical_path_nodes} nodes, "
            f"{self.critical_path_flops / 1e9:.2f} GFLOP)",
            f"  communication: {self.total_comm_bytes / 1e6:.2f} MB total"
            + (f" ({self.flops_per_comm_byte:.1f} FLOP/byte)"
               if self.total_comm_bytes else ""),
        ]
        for name, size in sorted(self.comm_bytes_by_collective.items()):
            lines.append(f"    {name}: {size / 1e6:.2f} MB")
        if self.p2p_bytes:
            lines.append(f"    p2p: {self.p2p_bytes / 1e6:.2f} MB")
        if self.memory_bytes_local or self.memory_bytes_remote:
            lines.append(
                f"  memory: local {self.memory_bytes_local / 1e6:.2f} MB, "
                f"remote {self.memory_bytes_remote / 1e6:.2f} MB")
        lines.append(f"  max node-level parallelism: {self.max_parallelism}")
        return "\n".join(lines)


def summarize(trace: ExecutionTrace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for one trace."""
    nodes_by_type: Dict[str, int] = defaultdict(int)
    comm_by_collective: Dict[str, int] = defaultdict(int)
    p2p_bytes = 0
    mem_local = 0
    mem_remote = 0
    total_flops = 0
    for node in trace:
        nodes_by_type[node.node_type.value] += 1
        if node.is_compute:
            total_flops += node.flops
        elif node.is_collective:
            comm_by_collective[node.collective.value] += node.tensor_bytes
        elif node.node_type is NodeType.COMM_SEND:
            p2p_bytes += node.tensor_bytes
        elif node.is_memory:
            if node.location.value == "remote":
                mem_remote += node.tensor_bytes
            else:
                mem_local += node.tensor_bytes

    # Critical path, in nodes and in FLOPs, via one topological sweep.
    depth: Dict[int, int] = {}
    flops_depth: Dict[int, int] = {}
    level: Dict[int, int] = {}
    width: Dict[int, int] = defaultdict(int)
    for node in trace.topological_order():
        depth[node.node_id] = 1 + max((depth[d] for d in node.deps), default=0)
        flops_depth[node.node_id] = node.flops + max(
            (flops_depth[d] for d in node.deps), default=0)
        level[node.node_id] = depth[node.node_id]
        width[level[node.node_id]] += 1

    return TraceSummary(
        npu_id=trace.npu_id,
        num_nodes=len(trace),
        nodes_by_type=dict(nodes_by_type),
        total_flops=total_flops,
        comm_bytes_by_collective=dict(comm_by_collective),
        p2p_bytes=p2p_bytes,
        memory_bytes_local=mem_local,
        memory_bytes_remote=mem_remote,
        critical_path_nodes=max(depth.values(), default=0),
        critical_path_flops=max(flops_depth.values(), default=0),
        max_parallelism=max(width.values(), default=0),
    )


def communication_matrix(
    traces: Mapping[int, ExecutionTrace]
) -> Dict[Tuple[int, int], int]:
    """Point-to-point bytes between NPU pairs across a trace set.

    Only explicit send nodes contribute (collectives are communicator-
    wide and not pairwise attributable).
    """
    matrix: Dict[Tuple[int, int], int] = defaultdict(int)
    for npu, trace in traces.items():
        for node in trace:
            if node.node_type is NodeType.COMM_SEND:
                matrix[(npu, node.peer)] += node.tensor_bytes
    return dict(matrix)


def lower_bound_time_ns(
    trace: ExecutionTrace,
    peak_tflops: float,
    injection_bw_gbps: float,
) -> float:
    """Optimistic runtime bound: perfect overlap of compute and comm.

    ``max(critical-path FLOPs / peak, total comm bytes / bandwidth)`` —
    no simulated run can beat it, which makes it a useful validation
    anchor for the simulator itself.
    """
    if peak_tflops <= 0 or injection_bw_gbps <= 0:
        raise ValueError("peak_tflops and injection_bw_gbps must be positive")
    summary = summarize(trace)
    compute_ns = summary.critical_path_flops / (peak_tflops * 1e3)
    comm_ns = summary.total_comm_bytes / injection_bw_gbps
    return max(compute_ns, comm_ns)

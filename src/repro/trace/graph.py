"""Per-NPU execution-trace DAG.

:class:`ExecutionTrace` owns the node set for a single NPU, validates it
(unique ids, resolvable dependencies, acyclicity), and offers the queries
the execution engine needs: roots, children, topological iteration, and
aggregate statistics used for reporting.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.trace.node import ETNode, NodeType


class TraceValidationError(ValueError):
    """Raised when a trace is structurally invalid (dup ids, cycles, ...)."""


class ExecutionTrace:
    """A validated DAG of :class:`ETNode` for one NPU.

    Construction validates the graph eagerly so the execution engine can
    assume a well-formed DAG.  The trace is immutable after construction
    except through :meth:`add_node` (which re-validates incrementally).
    """

    def __init__(self, npu_id: int, nodes: Iterable[ETNode] = ()) -> None:
        if npu_id < 0:
            raise TraceValidationError(f"npu_id must be >= 0, got {npu_id}")
        self.npu_id = npu_id
        self._nodes: Dict[int, ETNode] = {}
        self._children: Dict[int, List[int]] = {}
        for node in nodes:
            self._insert(node)
        self._check_deps_resolvable()
        self._check_acyclic()

    # -- construction ------------------------------------------------------------

    def _insert(self, node: ETNode) -> None:
        if node.node_id in self._nodes:
            raise TraceValidationError(
                f"duplicate node id {node.node_id} in trace for NPU {self.npu_id}"
            )
        self._nodes[node.node_id] = node
        self._children.setdefault(node.node_id, [])
        for dep in node.deps:
            self._children.setdefault(dep, []).append(node.node_id)

    def add_node(self, node: ETNode) -> None:
        """Append a node; its deps must already exist (keeps the DAG acyclic)."""
        for dep in node.deps:
            if dep not in self._nodes:
                raise TraceValidationError(
                    f"node {node.node_id} depends on unknown node {dep}"
                )
        self._insert(node)

    def _check_deps_resolvable(self) -> None:
        for node in self._nodes.values():
            for dep in node.deps:
                if dep not in self._nodes:
                    raise TraceValidationError(
                        f"node {node.node_id} depends on unknown node {dep}"
                    )

    def _check_acyclic(self) -> None:
        # Kahn's algorithm; anything left over sits on a cycle.
        indegree = {nid: len(n.deps) for nid, n in self._nodes.items()}
        queue = deque(nid for nid, deg in indegree.items() if deg == 0)
        visited = 0
        while queue:
            nid = queue.popleft()
            visited += 1
            for child in self._children.get(nid, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if visited != len(self._nodes):
            cyclic = sorted(nid for nid, deg in indegree.items() if deg > 0)
            raise TraceValidationError(
                f"trace for NPU {self.npu_id} contains a cycle involving nodes {cyclic[:10]}"
            )

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __iter__(self) -> Iterator[ETNode]:
        return iter(self._nodes.values())

    def node(self, node_id: int) -> ETNode:
        return self._nodes[node_id]

    @property
    def nodes(self) -> Tuple[ETNode, ...]:
        return tuple(self._nodes.values())

    def roots(self) -> List[ETNode]:
        """Nodes with no dependencies — the initially-issuable frontier."""
        return [n for n in self._nodes.values() if not n.deps]

    def children_of(self, node_id: int) -> List[int]:
        """Ids of nodes that list ``node_id`` as a dependency."""
        return list(self._children.get(node_id, ()))

    def topological_order(self) -> List[ETNode]:
        """Deterministic topological order (Kahn, ties broken by node id)."""
        indegree = {nid: len(n.deps) for nid, n in self._nodes.items()}
        ready = sorted(nid for nid, deg in indegree.items() if deg == 0)
        order: List[ETNode] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            nid = heapq.heappop(ready)
            order.append(self._nodes[nid])
            for child in self._children.get(nid, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
        return order

    def critical_path_length(self) -> int:
        """Longest chain of dependent nodes (in node count)."""
        depth: Dict[int, int] = {}
        for node in self.topological_order():
            depth[node.node_id] = 1 + max(
                (depth[d] for d in node.deps), default=0
            )
        return max(depth.values(), default=0)

    # -- statistics ---------------------------------------------------------------

    def count_by_type(self) -> Dict[NodeType, int]:
        counts: Dict[NodeType, int] = {}
        for node in self._nodes.values():
            counts[node.node_type] = counts.get(node.node_type, 0) + 1
        return counts

    def total_flops(self) -> int:
        return sum(n.flops for n in self._nodes.values() if n.is_compute)

    def total_comm_bytes(self) -> int:
        return sum(n.tensor_bytes for n in self._nodes.values() if n.is_comm)

    def total_memory_bytes(self) -> int:
        return sum(n.tensor_bytes for n in self._nodes.values() if n.is_memory)

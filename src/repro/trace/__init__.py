"""ASTRA-sim execution traces (ETs).

The graph-based execution engine (Sec. IV-A of the paper) consumes one
execution trace per NPU.  A trace is a DAG whose nodes are compute, memory,
or communication operations and whose edges are data/control dependencies.
Parallelization strategies are encoded purely in the traces, which decouples
them from the simulator frontend.

Public surface:

- :class:`ETNode`, :class:`NodeType`, :class:`CollectiveType`,
  :class:`TensorLocation` — the node schema;
- :class:`ExecutionTrace` — one NPU's DAG with validation and iteration;
- :func:`load_trace` / :func:`save_trace` — JSON (de)serialization;
- converters from foreign trace formats in :mod:`repro.trace.converters`.
"""

from repro.trace.node import (
    CollectiveType,
    ETNode,
    NodeType,
    TensorLocation,
)
from repro.trace.graph import ExecutionTrace, TraceValidationError
from repro.trace.serialization import load_trace, loads_trace, save_trace, dumps_trace

__all__ = [
    "CollectiveType",
    "ETNode",
    "ExecutionTrace",
    "NodeType",
    "TensorLocation",
    "TraceValidationError",
    "dumps_trace",
    "load_trace",
    "loads_trace",
    "save_trace",
]

"""Graph-based execution engine (paper Sec. IV-A).

One engine instance drives every simulated NPU's execution trace: nodes
issue when their dependencies complete, run on the appropriate resource
(compute unit, local/remote memory channel, network dimension ports, or
the pooled memory fabric), and their completions release dependents.
Each NPU consumes its own trace, so different NPUs run different
operations at the same time — the property that enables pipeline and
arbitrary parallelism.

Collective nodes rendezvous: the i-th collective a trace issues on a given
communicator matches the i-th issue of every other *simulated* member of
that communicator (MPI ordering semantics).  Members without a trace are
symmetric replicas of a representative and need not arrive.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import SystemConfig
from repro.core.results import CollectiveRecord
from repro.events import EventEngine
from repro.memory.api import MemoryRequest
from repro.network.analytical import AnalyticalNetwork, DimPort
from repro.network.topology import CommGroup
from repro.stats.breakdown import Activity, ActivityLog
from repro.system.collective_op import CollectiveOperation
from repro.system.scheduler import ChunkScheduler
from repro.trace.graph import ExecutionTrace
from repro.trace.node import ETNode, NodeType, TensorLocation
from repro.workload.generators import VIA_FABRIC


class DeadlockError(RuntimeError):
    """The event queue drained while trace nodes were still incomplete."""


class _CollectiveRendezvous:
    """Arrival tracking for one collective instance."""

    __slots__ = ("participants", "arrived")

    def __init__(self, participants: Set[int]) -> None:
        self.participants = participants
        self.arrived: Dict[int, int] = {}  # npu -> node_id


class ExecutionEngine:
    """Executes a set of per-NPU traces over the configured system."""

    def __init__(
        self,
        engine: EventEngine,
        config: SystemConfig,
        network: AnalyticalNetwork,
        scheduler: ChunkScheduler,
        traces: Dict[int, ExecutionTrace],
    ) -> None:
        if not traces:
            raise ValueError("no traces to execute")
        for npu_id, trace in traces.items():
            if npu_id != trace.npu_id:
                raise ValueError(
                    f"trace for NPU {trace.npu_id} registered under id {npu_id}"
                )
            config.topology._check_id(npu_id)
        self.engine = engine
        self.config = config
        self.network = network
        self.scheduler = scheduler
        # Fault-injection state; attached by the Simulator only when a
        # non-empty schedule is configured (None = zero-cost no-op path).
        self.faults = None
        # Telemetry collector (repro.telemetry.Telemetry); same contract:
        # None keeps every hook on the exact un-instrumented path.
        self.telemetry = None
        # Invariant checker (repro.validate.InvariantChecker); same
        # contract again — None is the zero-cost fast path.
        self.invariants = None
        self._inflight_collectives = 0
        self.traces = dict(traces)
        self.activity = ActivityLog()
        self.collective_records: List[CollectiveRecord] = []
        self.finish_time = 0.0
        self.nodes_executed = 0

        self._indegree: Dict[Tuple[int, int], int] = {}
        self._remaining = 0
        for npu_id, trace in self.traces.items():
            for node in trace:
                self._indegree[(npu_id, node.node_id)] = len(node.deps)
                self._remaining += 1

        # Serializing resources per NPU.
        self._compute_unit: Dict[int, DimPort] = {}
        self._local_channel: Dict[int, DimPort] = {}
        self._remote_channel: Dict[int, DimPort] = {}
        self._fabric_port: Dict[int, DimPort] = {}

        self._rendezvous: Dict[Tuple, _CollectiveRendezvous] = {}
        # Lazily-built send/recv collective lowering for packet backends.
        self._sendrecv_executor = None
        self._coll_seq: Dict[Tuple, int] = {}

    # -- public ------------------------------------------------------------------

    def start(self) -> None:
        """Schedule every trace's root nodes at the current time."""
        for npu_id, trace in self.traces.items():
            for node in trace.roots():
                self.engine.schedule(0.0, self._issue, npu_id, node)

    def run(self) -> float:
        """Start and drain the simulation; returns the finish time.

        Raises :class:`DeadlockError` if nodes remain incomplete after the
        event queue drains (unmatched sends/recvs or collectives).
        """
        self.start()
        self.engine.run()
        if self._remaining > 0:
            raise DeadlockError(self.diagnostics())
        return self.finish_time

    def diagnostics(self) -> str:
        """Human-readable report of why the simulation is stuck.

        Classifies incomplete nodes into: receives with no matching send,
        collectives whose rendezvous is missing members, and nodes still
        blocked on incomplete dependencies.
        """
        lines = [f"{self._remaining} nodes never completed:"]
        blocked = []
        issued_stuck = []
        for (npu, node_id), deg in sorted(self._indegree.items()):
            if deg < 0:
                continue
            node = self.traces[npu].node(node_id)
            label = f"npu {npu} node {node_id} {node.node_type.value}"
            if node.name:
                label += f" ({node.name!r})"
            if deg > 0:
                blocked.append(f"  {label}: waiting on {deg} dependencies")
            elif node.node_type is NodeType.COMM_RECV:
                issued_stuck.append(
                    f"  {label}: no matching send from npu {node.peer} "
                    f"tag {node.tag}")
            else:
                issued_stuck.append(f"  {label}: issued but never completed")
        lines.extend(issued_stuck[:10])
        if self._rendezvous:
            lines.append("incomplete collective rendezvous:")
            for key, rendezvous in list(self._rendezvous.items())[:5]:
                missing = sorted(rendezvous.participants
                                 - set(rendezvous.arrived))
                lines.append(
                    f"  rep {key[0]}: arrived {sorted(rendezvous.arrived)}, "
                    f"missing {missing}")
        lines.extend(blocked[:10])
        if self.network.pending_receives():
            lines.append(
                f"{self.network.pending_receives()} receives still posted, "
                f"{self.network.undelivered_arrivals()} arrivals unclaimed "
                "(check send/recv tags)")
        return "\n".join(lines)

    # -- resources ------------------------------------------------------------------

    def _resource(self, table: Dict[int, DimPort], npu: int) -> DimPort:
        port = table.get(npu)
        if port is None:
            port = table[npu] = DimPort()
        return port

    def stall_npu(self, npu: int, duration_ns: float) -> float:
        """Freeze an NPU's compute unit for ``duration_ns`` (fault hook).

        The stall occupies the compute resource, so every compute node
        issued during the window queues behind it; the time surfaces as
        idle in the breakdown.  Returns the time actually reserved (0.0
        for NPUs that are symmetric replicas without a trace).
        """
        if npu not in self.traces:
            return 0.0
        self._resource(self._compute_unit, npu).reserve(
            self.engine.now, duration_ns)
        return duration_ns

    # -- node dispatch -----------------------------------------------------------------

    def _issue(self, npu: int, node: ETNode) -> None:
        if node.node_type is NodeType.COMPUTE:
            self._issue_compute(npu, node)
        elif node.is_memory:
            self._issue_memory(npu, node)
        elif node.node_type is NodeType.COMM_COLLECTIVE:
            if node.attrs.get("via") == VIA_FABRIC:
                self._issue_fabric_collective(npu, node)
            else:
                self._issue_collective(npu, node)
        elif node.node_type is NodeType.COMM_SEND:
            self._issue_send(npu, node)
        elif node.node_type is NodeType.COMM_RECV:
            self._issue_recv(npu, node)
        else:  # pragma: no cover - schema is closed
            raise ValueError(f"unhandled node type {node.node_type}")

    def _issue_compute(self, npu: int, node: ETNode) -> None:
        duration = self.config.compute.compute_time_ns(node.flops, node.tensor_bytes)
        if self.faults is not None and not self.faults.idle:
            duration = self.faults.stretch_compute(npu, duration)
        start, end = self._resource(self._compute_unit, npu).reserve(
            self.engine.now, duration
        )
        self.activity.record(npu, start, end, Activity.COMPUTE, node.name)
        self.engine.schedule_at(end, self._complete, npu, node)

    def _issue_memory(self, npu: int, node: ETNode) -> None:
        request = MemoryRequest(
            size_bytes=node.tensor_bytes,
            is_store=node.node_type is NodeType.MEMORY_STORE,
            location=node.location,
        )
        if node.location is TensorLocation.REMOTE:
            if node.attrs.get("via") == VIA_FABRIC:
                # In-switch gather-load / scatter-store: the collective is
                # fused into the memory access (Sec. IV-D model 3), hiding
                # the communication inside the memory path.
                model = self.config.fabric_collectives
                if model is None:
                    raise ValueError(
                        f"node {node.name!r} requests an in-switch memory "
                        "access but no fabric_collectives model is configured"
                    )
            else:
                model = self.config.remote_memory
                if model is None:
                    raise ValueError(
                        f"node {node.name!r} accesses remote memory but no "
                        "remote_memory model is configured"
                    )
            channel = self._resource(self._remote_channel, npu)
            activity = Activity.MEM_REMOTE
        else:
            model = self.config.local_memory
            channel = self._resource(self._local_channel, npu)
            activity = Activity.MEM_LOCAL
        duration = model.access_time_ns(request)
        start, end = channel.reserve(self.engine.now, duration)
        self.activity.record(npu, start, end, activity, node.name)
        if self.telemetry is not None:
            self.telemetry.record_memory(
                "remote" if activity is Activity.MEM_REMOTE else "local",
                node.tensor_bytes, duration,
                fabric=node.attrs.get("via") == VIA_FABRIC)
        self.engine.schedule_at(end, self._complete, npu, node)

    def _issue_fabric_collective(self, npu: int, node: ETNode) -> None:
        fabric = self.config.fabric_collectives
        if fabric is None:
            raise ValueError(
                f"node {node.name!r} requests in-switch collectives but no "
                "fabric_collectives model is configured"
            )
        duration = fabric.collective_time_ns(node.collective, node.tensor_bytes)
        start, end = self._resource(self._fabric_port, npu).reserve(
            self.engine.now, duration
        )
        self.activity.record(npu, start, end, Activity.COMM, node.name)
        self.engine.schedule_at(end, self._complete, npu, node)

    # -- collectives -----------------------------------------------------------------

    def _issue_collective(self, npu: int, node: ETNode) -> None:
        topo = self.config.topology
        dims = node.comm_dims if node.comm_dims is not None else tuple(
            range(topo.num_dims)
        )
        group_shape = None
        if node.involved_npus is not None:
            group = node.involved_npus
            group_shape = self._shape_of(group, dims, node)
            rep = min(group)
        else:
            # Symbolic communicator: O(num_dims) to build, hash, and test
            # membership against, independent of how many NPUs it spans —
            # the analytical hot path never materializes the member list.
            group = topo.comm_group(npu, dims)
            rep = group.rep
        comm_key = (rep, dims, group)
        seq_key = (npu,) + comm_key
        seq = self._coll_seq.get(seq_key, 0)
        self._coll_seq[seq_key] = seq + 1
        instance_key = comm_key + (seq,)

        rendezvous = self._rendezvous.get(instance_key)
        if rendezvous is None:
            if isinstance(group, CommGroup):
                participants = group.intersection(self.traces)
            else:
                participants = set(group) & set(self.traces)
            rendezvous = _CollectiveRendezvous(participants)
            self._rendezvous[instance_key] = rendezvous
        rendezvous.arrived[npu] = node.node_id

        if set(rendezvous.arrived) == rendezvous.participants:
            del self._rendezvous[instance_key]
            if isinstance(self.network, AnalyticalNetwork):
                self._start_collective(
                    node, dims, rep, group, rendezvous, group_shape
                )
            else:
                # Packet-modeling backends have no phase-level collective
                # abstraction: run the collective as explicit send/recv
                # traffic (paper Sec. IV-C's validation apparatus), so
                # the same traces execute unmodified on every backend.
                self._start_collective_sendrecv(node, dims, rep, group,
                                                rendezvous)

    def _shape_of(
        self, group: Tuple[int, ...], dims: Tuple[int, ...], node: ETNode
    ) -> Dict[int, int]:
        """Effective per-dimension size of an explicit member list.

        The group must be a cartesian product of per-dimension coordinate
        sets (that is what a hierarchical multi-rail collective requires);
        anything else is rejected with a diagnostic.
        """
        topo = self.config.topology
        coords = [topo.coords(member) for member in group]
        shape: Dict[int, int] = {}
        product = 1
        for d in dims:
            shape[d] = len({c[d] for c in coords})
            product *= shape[d]
        if product != len(set(group)):
            raise ValueError(
                f"collective {node.name!r}: involved_npus is not a cartesian "
                f"product over dims {dims} (shape {shape} vs {len(group)} members)"
            )
        return shape

    def _start_collective(
        self,
        node: ETNode,
        dims: Tuple[int, ...],
        rep: int,
        group: Tuple[int, ...],
        rendezvous: _CollectiveRendezvous,
        group_shape: Optional[Dict[int, int]] = None,
    ) -> None:
        group_size = len(group)
        op = CollectiveOperation(
            engine=self.engine,
            network=self.network,
            scheduler=self.scheduler,
            collective=node.collective,
            comm_dims=dims,
            rep_npu=rep,
            payload_bytes=node.tensor_bytes,
            num_chunks=self.config.collective_chunks,
            group_shape=group_shape,
            group_members=group,
        )

        def on_complete() -> None:
            record = CollectiveRecord(
                name=node.name,
                collective=node.collective.value,
                payload_bytes=node.tensor_bytes,
                rep_npu=rep,
                group_size=group_size,
                start_ns=op.start_time,
                finish_ns=self.engine.now,
                traffic_by_dim=dict(op.traffic_by_dim),
                members=tuple(sorted(rendezvous.arrived)),
            )
            self.collective_records.append(record)
            self._inflight_collectives -= 1
            if self.invariants is not None:
                self.invariants.check_collective(record, op)
            if self.telemetry is not None:
                self.telemetry.record_collective(
                    record, comm_key=(rep, dims, group))
            for member, node_id in rendezvous.arrived.items():
                self.activity.record(
                    member, op.start_time, self.engine.now, Activity.COMM,
                    node.name,
                )
                self._complete(member, self.traces[member].node(node_id))

        op.on_complete = on_complete
        self._inflight_collectives += 1
        op.start()

    def _start_collective_sendrecv(
        self,
        node: ETNode,
        dims: Tuple[int, ...],
        rep: int,
        group: Tuple[int, ...],
        rendezvous: _CollectiveRendezvous,
    ) -> None:
        """Run a collective as explicit p2p traffic on a packet backend.

        A flat ring (All-Reduce / All-Gather / Reduce-Scatter) or direct
        personalized exchange (All-to-All) over the communicator's member
        list — the executor drives traffic for *every* member, so
        representative-trace workloads exercise the full group's packets.
        """
        if isinstance(group, CommGroup):
            # The executor addresses individual members; packet backends
            # run at scales where materializing is cheap by construction.
            group = group.members()
        executor = self._sendrecv_executor
        if executor is None:
            from repro.system.executor import SendRecvCollectiveExecutor

            executor = self._sendrecv_executor = SendRecvCollectiveExecutor(
                self.engine, self.network, tag_base=1 << 30)
        from repro.trace.node import CollectiveType

        start_time = self.engine.now
        group_size = len(group)

        def on_complete(_elapsed_ns: float) -> None:
            record = CollectiveRecord(
                name=node.name,
                collective=node.collective.value,
                payload_bytes=node.tensor_bytes,
                rep_npu=rep,
                group_size=group_size,
                start_ns=start_time,
                finish_ns=self.engine.now,
                members=tuple(sorted(rendezvous.arrived)),
            )
            self.collective_records.append(record)
            self._inflight_collectives -= 1
            if self.telemetry is not None:
                self.telemetry.record_collective(
                    record, comm_key=(rep, dims, group))
            for member, node_id in rendezvous.arrived.items():
                self.activity.record(
                    member, start_time, self.engine.now, Activity.COMM,
                    node.name,
                )
                self._complete(member, self.traces[member].node(node_id))

        self._inflight_collectives += 1
        if node.collective is CollectiveType.ALL_REDUCE:
            executor.run_ring_allreduce(group, int(node.tensor_bytes),
                                        on_complete=on_complete)
        elif node.collective in (CollectiveType.ALL_GATHER,
                                 CollectiveType.REDUCE_SCATTER):
            # Ring RS and ring AG move the same (k-1) chunks of size/k.
            executor.run_ring_allgather(group, int(node.tensor_bytes),
                                        on_complete=on_complete)
        elif node.collective is CollectiveType.ALL_TO_ALL:
            executor.run_alltoall(group, int(node.tensor_bytes),
                                  on_complete=on_complete)
        else:  # pragma: no cover - enum is closed today
            raise ValueError(
                f"collective {node.collective!r} has no send/recv lowering")

    # -- telemetry ---------------------------------------------------------------------

    def telemetry_sample(self, telemetry, now: float) -> None:
        """Periodic scheduler-occupancy sampling (see Telemetry._sample)."""
        metrics = telemetry.metrics
        metrics.gauge("system", "scheduler_occupancy").sample(
            now, self._inflight_collectives)
        metrics.gauge("system", "rendezvous_waiting").sample(
            now, len(self._rendezvous))
        metrics.gauge("system", "nodes_remaining").sample(
            now, self._remaining)

    # -- point-to-point ---------------------------------------------------------------

    def _issue_send(self, npu: int, node: ETNode) -> None:
        issue_time = self.engine.now

        def on_sent() -> None:
            self.activity.record(npu, issue_time, self.engine.now,
                                 Activity.COMM, node.name)
            self._complete(npu, node)

        self.network.sim_send(
            npu, node.peer, node.tensor_bytes, tag=node.tag, callback=on_sent
        )

    def _issue_recv(self, npu: int, node: ETNode) -> None:
        def on_received(_message) -> None:
            self._complete(npu, node)

        self.network.sim_recv(
            npu, node.peer, node.tensor_bytes, tag=node.tag, callback=on_received
        )

    # -- completion --------------------------------------------------------------------

    def _complete(self, npu: int, node: ETNode) -> None:
        key = (npu, node.node_id)
        if self._indegree.get(key, -1) < 0:
            raise RuntimeError(f"node {key} completed twice")
        self._indegree[key] = -1
        self._remaining -= 1
        self.nodes_executed += 1
        self.finish_time = max(self.finish_time, self.engine.now)
        trace = self.traces[npu]
        for child_id in trace.children_of(node.node_id):
            child_key = (npu, child_id)
            self._indegree[child_key] -= 1
            if self._indegree[child_key] == 0:
                self.engine.schedule(0.0, self._issue, npu, trace.node(child_id))

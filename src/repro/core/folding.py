"""Symmetry folding: simulate one rank per equivalence class.

Large regular training jobs hand the simulator one trace per rank, yet
most ranks are *symmetric replicas*: they run the identical node sequence
and sit in the identical communicators, so their simulated timelines are
equal by construction.  This module detects those equivalence classes up
front, keeps a single representative trace per class, and reconstructs
the per-rank view analytically after the run — turning every O(ranks)
simulation cost into O(classes) while producing a **bit-identical**
schema-v2 result document (enforced by the ``folding`` conformance pillar
and the property suite in ``tests/property/test_property_folding.py``).

Two ranks fold together iff

1. their traces carry the same *signature* — same node ids, types, names,
   dependency edges, payloads, collective types, and comm dims; and
2. every collective in the trace puts both ranks in the **same**
   communicator (equal :meth:`~repro.network.topology.MultiDimTopology.
   group_rep` for every dim-set the trace uses).

Condition 2 makes every dropped rank a member of the *representative's*
rendezvous, which the execution engine already treats as "symmetric
replica, need not arrive" — no collective instance disappears, so start
times, port contention, and record ordering are untouched.

Folding auto-disables (``FoldReport.reason`` says why) whenever per-rank
state could diverge or be observed per rank:

- ``config.folding == "off"`` — explicit opt-out;
- a fault schedule is configured (faults break rank symmetry);
- telemetry or invariant checking is installed (both observe the
  physical per-rank port set, which folding deliberately shrinks);
- the trace dict is not in ascending rank order (record ordering at
  equal timestamps follows trace order, so only the canonical order is
  provably preserved).

Individual ranks whose traces contain point-to-point sends/receives or
explicit ``involved_npus`` member lists are *peer-asymmetric*: they stay
unfolded as singleton classes (counted in ``FoldReport.asymmetric_ranks``)
without disabling folding for the rest of the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.trace.node import ETNode, NodeType
from repro.workload.generators import VIA_FABRIC

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.config import SystemConfig
    from repro.core.results import CollectiveRecord
    from repro.trace.graph import ExecutionTrace


@dataclass
class FoldReport:
    """What the folding pass decided, and why.

    Attributes:
        active: Whether any rank was folded away.
        reason: Human-readable disable reason when folding did nothing
            (empty when active).
        traced_ranks: Ranks in the input trace dict.
        simulated_ranks: Ranks actually handed to the engine.
        num_classes: Equivalence classes detected (== simulated_ranks
            when active).
        asymmetric_ranks: Ranks forced into singleton classes by
            point-to-point traffic or explicit member lists.
    """

    active: bool
    reason: str = ""
    traced_ranks: int = 0
    simulated_ranks: int = 0
    num_classes: int = 0
    asymmetric_ranks: int = 0

    @property
    def folded_ranks(self) -> int:
        return self.traced_ranks - self.simulated_ranks


@dataclass
class FoldPlan:
    """A computed fold: which traces to simulate, how to un-fold results."""

    report: FoldReport
    folded_traces: Dict[int, "ExecutionTrace"] = field(default_factory=dict)
    #: rank -> its class representative (identity for reps themselves).
    class_of: Dict[int, int] = field(default_factory=dict)
    #: representative -> sorted members of its class.
    class_members: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: original trace-dict key order (== ascending ranks when active).
    original_order: Tuple[int, ...] = ()
    #: nodes_executed the dropped ranks would have contributed.
    extra_nodes: int = 0
    #: events_processed the dropped ranks would have contributed.
    extra_events: int = 0

    @property
    def active(self) -> bool:
        return self.report.active

    def expand_members(self, members: Tuple[int, ...]) -> Tuple[int, ...]:
        """Replace arrived representatives by their full classes (sorted)."""
        return tuple(sorted(chain.from_iterable(
            self.class_members[m] for m in members)))

    def expand_records(
        self, records: List["CollectiveRecord"]
    ) -> List["CollectiveRecord"]:
        """Records as the unfolded run would have written them."""
        import dataclasses

        return [
            dataclasses.replace(r, members=self.expand_members(r.members))
            for r in records
        ]


def _node_signature(node: ETNode) -> Optional[tuple]:
    """Rank-independent fingerprint of one node; None if peer-asymmetric."""
    if node.node_type in (NodeType.COMM_SEND, NodeType.COMM_RECV):
        return None  # peer-addressed: the rank is not a symmetric replica
    if node.involved_npus is not None:
        return None  # explicit member list: a per-rank override
    return (
        node.node_id,
        node.node_type,
        node.name,
        node.deps,
        node.tensor_bytes,
        node.flops,
        node.collective,
        node.comm_dims,
        node.location,
        tuple(sorted((k, repr(v)) for k, v in node.attrs.items())),
    )


def _events_of(node: ETNode) -> int:
    """Events one extra rank adds for this node in an unfolded run.

    Every node costs one ``_issue`` event.  Compute, memory, and
    in-switch (fabric) collective nodes additionally schedule their own
    completion event; network collectives complete synchronously inside
    the shared operation's finish event, so extra members add none.
    """
    if node.node_type is NodeType.COMPUTE or node.is_memory:
        return 2
    if (node.node_type is NodeType.COMM_COLLECTIVE
            and node.attrs.get("via") == VIA_FABRIC):
        return 2
    return 1


def plan_folding(
    traces: Dict[int, "ExecutionTrace"], config: "SystemConfig"
) -> FoldPlan:
    """Partition ``traces`` into symmetry classes; never raises.

    Returns an inactive plan (with ``report.reason`` set) whenever
    folding is switched off, unsafe, or would not drop any rank.
    """
    n = len(traces)

    def disabled(reason: str) -> FoldPlan:
        return FoldPlan(report=FoldReport(
            active=False, reason=reason, traced_ranks=n,
            simulated_ranks=n, num_classes=n))

    if getattr(config, "folding", "auto") == "off":
        return disabled("disabled by config")
    if n <= 1:
        return disabled("single trace")
    if config.faults:
        return disabled("fault schedule configured")
    if config.telemetry is not None:
        return disabled("telemetry observes per-rank state")
    if config.invariants is not None:
        return disabled("invariant checker observes per-rank state")
    if getattr(config, "granularity", "") == "adaptive":
        # Escalation is runtime per-link state: folding simulates one
        # rank per class, which changes which links see contention and
        # therefore which segments escalate — not fold-compatible.
        return disabled("adaptive granularity observes per-link contention")
    order = tuple(traces)
    if list(order) != sorted(order):
        return disabled("traces not in ascending rank order")

    topo = config.topology
    all_dims = tuple(range(topo.num_dims))
    # signature -> the normalized comm dim-sets it uses (computed once).
    sig_dimsets: Dict[tuple, Tuple[Tuple[int, ...], ...]] = {}
    classes: Dict[object, List[int]] = {}
    asymmetric = 0
    for rank, trace in traces.items():
        sig_parts = []
        for node in trace:
            part = _node_signature(node)
            if part is None:
                sig_parts = None
                break
            sig_parts.append(part)
        if sig_parts is None:
            asymmetric += 1
            classes[("asym", rank)] = [rank]
            continue
        sig = tuple(sig_parts)
        dimsets = sig_dimsets.get(sig)
        if dimsets is None:
            dimsets = sig_dimsets[sig] = tuple(sorted({
                (tuple(sorted(set(node.comm_dims)))
                 if node.comm_dims is not None else all_dims)
                for node in trace if node.node_type is NodeType.COMM_COLLECTIVE
            }))
        # Same signature + same communicator for every dim-set the trace
        # uses => the ranks are interchangeable replicas.
        key = (sig, tuple(topo.group_rep(rank, d) for d in dimsets))
        classes.setdefault(key, []).append(rank)

    if len(classes) == n:
        return disabled("no foldable classes")

    plan = FoldPlan(
        report=FoldReport(
            active=True, traced_ranks=n, simulated_ranks=len(classes),
            num_classes=len(classes), asymmetric_ranks=asymmetric),
        original_order=order,
    )
    reps: Dict[int, int] = {}  # rank -> rep, filled below
    for members in classes.values():
        rep = min(members)
        plan.class_members[rep] = tuple(sorted(members))
        for m in members:
            reps[m] = rep
    plan.class_of = reps
    # Preserve the original dict order among the surviving traces.
    for rank in order:
        if reps[rank] == rank:
            plan.folded_traces[rank] = traces[rank]
        else:
            trace = traces[rank]
            plan.extra_nodes += len(trace)
            plan.extra_events += sum(_events_of(node) for node in trace)
    return plan

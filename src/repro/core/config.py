"""Top-level simulation configuration.

A :class:`SystemConfig` bundles everything below the workload layer: the
topology, the collective scheduling policy and chunking degree, the
roofline compute model, and the memory models (local HBM, optional
disaggregated remote pool, optional in-switch collective fabric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.faults.checkpoint import CheckpointConfig
from repro.faults.spec import FaultSchedule
from repro.memory.api import MemoryModel
from repro.memory.inswitch import InSwitchCollectiveMemory
from repro.memory.local import LocalMemory
from repro.network.topology import MultiDimTopology
from repro.system.compute import RooflineCompute
from repro.telemetry.config import TelemetryConfig

if TYPE_CHECKING:  # repro.validate imports the core layer; keep it lazy here
    from repro.validate.invariants import InvariantConfig

DEFAULT_PEAK_TFLOPS = 234.0  # A100 measurement the paper uses (Sec. V)
DEFAULT_HBM_GBPS = 2039.0  # A100 80GB HBM2e


@dataclass
class SystemConfig:
    """Everything the simulator needs besides the traces.

    Attributes:
        topology: Physical multi-dimensional topology.
        scheduler: Collective chunk scheduler — ``"baseline"`` (fixed
            hierarchical order) or ``"themis"`` (greedy bandwidth-aware).
        collective_chunks: Pipelining degree of each collective.
        network_backend: ``"analytical"`` (default; phase-level
            collectives), ``"garnet"`` (packet-level), or ``"flow"``
            (max-min fair flow-level).  On the detailed backends
            collectives are lowered to explicit send/recv algorithms
            (:class:`repro.system.executor.SendRecvCollectiveExecutor`),
            so every workload runs on every backend and the backends
            cross-validate each other.
        packet_bytes: Packet/segment size for the detailed backends
            (``0`` keeps each backend's default, 4096).
        train_packets: Garnet-lite packet-train coalescing factor; > 1
            trades contention granularity for simulation speed on large
            payloads (see :class:`~repro.network.garnetlite.
            GarnetLiteNetwork`).
        granularity: Simulation granularity policy — ``""`` (default;
            ``network_backend`` picks the model directly), ``"fluid"``
            (flow-level), ``"packet"`` (garnet-lite), or ``"adaptive"``
            (the HyGra-style runtime controller,
            :class:`repro.network.adaptive.AdaptiveFlowNetwork`:
            per-link fluid -> packet escalation under contention with
            hysteresis-based de-escalation).
        escalation_threshold: Adaptive mode only — a link escalates to
            packet granularity when it carries more than this many
            concurrent flows (``0`` escalates everything, ``inf`` never
            escalates).
        deescalation_hysteresis: Adaptive mode only — a packet-mode link
            de-escalates when its flow count drops to
            ``escalation_threshold - deescalation_hysteresis`` or below.
        compute: Roofline NPU model.
        local_memory: HBM model for LOCAL memory nodes.
        remote_memory: Model for REMOTE memory nodes; required if any
            trace contains remote tensors.
        fabric_collectives: In-switch collective model; required if any
            trace routes collectives via the memory fabric.
        faults: Deterministic fault schedule to inject (stragglers,
            stalls, link degradation/failure, permanent NPU loss); an
            empty or absent schedule leaves the run bit-identical to a
            fault-free build.  Requires the analytical backend.
        checkpoint: Checkpoint/restart cost model used by the resilience
            report to price permanent failures.
        telemetry: Telemetry configuration (metrics registry + span
            tracing); ``None`` (the default) installs no instrumentation
            and keeps every hook on the exact un-instrumented fast path,
            mirroring the ``faults`` contract.
        invariants: Runtime invariant-checking configuration
            (:mod:`repro.validate`); ``None`` (the default) installs no
            checker and keeps every hook on the exact un-instrumented
            fast path — the same zero-cost contract as ``telemetry``.
        folding: Symmetry folding of per-rank traces
            (:mod:`repro.core.folding`): ``"auto"`` (default) simulates
            one representative per equivalence class of symmetric ranks
            and reconstructs the per-rank result bit-identically,
            auto-disabling on any asymmetric input; ``"off"`` always
            simulates every trace.
    """

    topology: MultiDimTopology
    scheduler: str = "baseline"
    collective_chunks: int = 16
    network_backend: str = "analytical"
    packet_bytes: int = 0
    train_packets: int = 1
    granularity: str = ""
    escalation_threshold: float = 4.0
    deescalation_hysteresis: float = 1.0
    compute: RooflineCompute = field(
        default_factory=lambda: RooflineCompute(
            peak_tflops=DEFAULT_PEAK_TFLOPS, mem_bandwidth_gbps=DEFAULT_HBM_GBPS
        )
    )
    local_memory: LocalMemory = field(
        default_factory=lambda: LocalMemory(bandwidth_gbps=DEFAULT_HBM_GBPS)
    )
    remote_memory: Optional[MemoryModel] = None
    fabric_collectives: Optional[InSwitchCollectiveMemory] = None
    faults: Optional[FaultSchedule] = None
    checkpoint: Optional[CheckpointConfig] = None
    telemetry: Optional[TelemetryConfig] = None
    invariants: Optional["InvariantConfig"] = None
    folding: str = "auto"

    def __post_init__(self) -> None:
        if self.folding not in ("auto", "off"):
            raise ValueError(
                f"folding must be 'auto' or 'off', got {self.folding!r}")
        if self.collective_chunks < 1:
            raise ValueError(
                f"collective_chunks must be >= 1, got {self.collective_chunks}"
            )
        if self.network_backend not in ("analytical", "garnet", "flow"):
            raise ValueError(
                f"network_backend must be 'analytical', 'garnet', or "
                f"'flow', got {self.network_backend!r}"
            )
        if self.packet_bytes < 0:
            raise ValueError(
                f"packet_bytes must be >= 0, got {self.packet_bytes}")
        if self.train_packets < 1:
            raise ValueError(
                f"train_packets must be >= 1, got {self.train_packets}")
        if self.granularity not in ("", "fluid", "packet", "adaptive"):
            raise ValueError(
                f"granularity must be '', 'fluid', 'packet', or "
                f"'adaptive', got {self.granularity!r}")
        if self.granularity in ("fluid", "adaptive") \
                and self.network_backend == "garnet":
            raise ValueError(
                f"granularity {self.granularity!r} conflicts with "
                "network_backend 'garnet' (it selects a flow-model base)")
        if self.granularity == "packet" and self.network_backend == "flow":
            raise ValueError(
                "granularity 'packet' conflicts with network_backend "
                "'flow' (it selects the garnet-lite backend)")
        threshold = self.escalation_threshold
        if threshold != threshold or threshold < 0:  # NaN or negative
            raise ValueError(
                f"escalation_threshold must be >= 0 (inf allowed), "
                f"got {threshold}")
        hysteresis = self.deescalation_hysteresis
        if not (0 <= hysteresis < float("inf")):
            raise ValueError(
                f"deescalation_hysteresis must be finite and >= 0, "
                f"got {hysteresis}")
        if self.faults and (self.network_backend != "analytical"
                            or self.granularity):
            raise ValueError(
                "fault injection requires the analytical network backend, "
                f"got backend {self.network_backend!r} / "
                f"granularity {self.granularity!r}")
        # Fail fast on bad scheduler names rather than at first collective.
        from repro.system.scheduler import make_scheduler

        make_scheduler(self.scheduler)

    def effective_backend(self) -> str:
        """The network model actually simulated, after the granularity
        policy (if any) overrides the raw ``network_backend`` choice."""
        if self.granularity == "fluid":
            return "flow"
        if self.granularity == "packet":
            return "garnet"
        if self.granularity == "adaptive":
            return "adaptive"
        return self.network_backend

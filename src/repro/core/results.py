"""Simulation results: totals, breakdowns, per-collective records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.stats.breakdown import ActivityLog, Breakdown
from repro.stats.resilience import ResilienceReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.folding import FoldReport
    from repro.telemetry import TelemetryReport
    from repro.validate.invariants import InvariantReport


@dataclass
class CollectiveRecord:
    """One completed collective: identity, timing, per-dim traffic.

    ``traffic_by_dim`` holds the bytes each NPU serialized into each
    topology dimension — the quantity the paper's Table IV tabulates.
    """

    name: str
    collective: str
    payload_bytes: float
    rep_npu: int
    group_size: int
    start_ns: float
    finish_ns: float
    traffic_by_dim: Dict[int, float] = field(default_factory=dict)
    # Simulated members that issued a trace node for this collective
    # (sorted); symmetric replicas without traces are not listed.  Drives
    # the cross-NPU flow arrows in the Chrome trace export.
    members: Tuple[int, ...] = ()

    @property
    def duration_ns(self) -> float:
        return self.finish_ns - self.start_ns


@dataclass
class RunResult:
    """Outcome of one simulated run.

    Attributes:
        total_time_ns: Simulation time when the last node completed.
        breakdown: System-level exposed-time breakdown (averaged over
            simulated NPUs).
        per_npu_breakdown: Same, per NPU.
        nodes_executed: ET nodes completed.
        events_processed: Raw simulator events fired (a cost metric).
        collectives: Per-collective records in completion order.
        activity: The raw per-NPU interval log (drives timeline rendering
            via :mod:`repro.stats.timeline`).
        resilience: Fault/checkpoint accounting; present only when a
            fault schedule was injected.
        telemetry: Finalised :class:`repro.telemetry.TelemetryReport`;
            present only when a telemetry config was installed.  Its
            metrics and spans are simulated-time quantities (and hence
            reproducible); its wall-clock profile is host-dependent and
            is therefore excluded from ``result_to_dict`` exports, like
            ``wall_time_s``.
        invariants: :class:`repro.validate.InvariantReport` from the
            runtime invariant checker; present only when an invariant
            config was installed (``--check-invariants``).
        wall_time_s: Host wall-clock seconds the simulation took.  A cost
            metric only — deliberately excluded from
            :func:`repro.stats.export.result_to_dict` so exported results
            stay bit-reproducible across runs.
        folding: :class:`repro.core.folding.FoldReport` describing the
            symmetry-folding decision.  Deliberately excluded from
            ``result_to_dict`` so a folded run's exported document stays
            bit-identical to the equivalent unfolded run's.
    """

    total_time_ns: float
    breakdown: Breakdown
    per_npu_breakdown: Dict[int, Breakdown]
    nodes_executed: int
    events_processed: int
    collectives: List[CollectiveRecord] = field(default_factory=list)
    activity: Optional[ActivityLog] = None
    resilience: Optional[ResilienceReport] = None
    telemetry: Optional["TelemetryReport"] = None
    invariants: Optional["InvariantReport"] = None
    wall_time_s: Optional[float] = None
    folding: Optional["FoldReport"] = None

    @property
    def simulation_rate_eps(self) -> Optional[float]:
        """Simulator throughput in events/second, or None if not timed."""
        if not self.wall_time_s:
            return None
        return self.events_processed / self.wall_time_s

    @property
    def total_time_ms(self) -> float:
        return self.total_time_ns * 1e-6

    @property
    def total_time_us(self) -> float:
        return self.total_time_ns * 1e-3

    def collective_named(self, name: str) -> CollectiveRecord:
        """Look up one collective record by its ET node name."""
        for record in self.collectives:
            if record.name == name:
                return record
        raise KeyError(f"no collective named {name!r}")

    def total_collective_time_ns(self) -> float:
        return sum(r.duration_ns for r in self.collectives)

"""Core: the graph-based execution engine and top-level simulator.

:class:`Simulator` wires the layers together — execution traces
(workload), collective scheduling and compute (system), the analytical
network backend, and the memory models — and runs the discrete-event
simulation to produce a :class:`RunResult` with total time and exposed-time
breakdowns (paper Fig. 1).
"""

from repro.core.config import SystemConfig
from repro.core.engine import DeadlockError, ExecutionEngine
from repro.core.results import CollectiveRecord, RunResult
from repro.core.simulator import Simulator, simulate

__all__ = [
    "CollectiveRecord",
    "DeadlockError",
    "ExecutionEngine",
    "RunResult",
    "Simulator",
    "SystemConfig",
    "simulate",
]

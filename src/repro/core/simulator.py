"""Top-level simulator facade.

Typical use::

    from repro import Simulator, SystemConfig, parse_topology
    from repro.workload import gpt3_175b, generate_megatron_hybrid, ParallelismSpec

    topo = parse_topology("Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50])
    traces = generate_megatron_hybrid(gpt3_175b(), topo, ParallelismSpec(mp=16, dp=32))
    result = Simulator(traces, SystemConfig(topology=topo, scheduler="themis")).run()
    print(result.total_time_ms, result.breakdown.exposed_comm_ns)
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.config import SystemConfig
from repro.core.engine import ExecutionEngine
from repro.core.folding import plan_folding
from repro.core.results import RunResult
from repro.events import EventEngine
from repro.network.analytical import AnalyticalNetwork
from repro.system.scheduler import make_scheduler
from repro.trace.graph import ExecutionTrace


class Simulator:
    """Wires workload traces to the system, network, and memory layers."""

    def __init__(self, traces: Dict[int, ExecutionTrace], config: SystemConfig) -> None:
        self.config = config
        # Symmetry folding (repro.core.folding): simulate one rank per
        # equivalence class and reconstruct per-rank results at finalize.
        # An inactive plan leaves the traces dict untouched.
        self.folding = plan_folding(traces, config)
        if self.folding.active:
            traces = self.folding.folded_traces
        self.engine = EventEngine()
        backend = config.effective_backend()
        if backend == "garnet":
            from repro.network.garnetlite import (
                DEFAULT_PACKET_BYTES,
                GarnetLiteNetwork,
            )

            self.network = GarnetLiteNetwork(
                self.engine, config.topology,
                packet_bytes=config.packet_bytes or DEFAULT_PACKET_BYTES,
                train_packets=config.train_packets)
        elif backend == "adaptive":
            from repro.network.adaptive import AdaptiveFlowNetwork

            self.network = AdaptiveFlowNetwork(
                self.engine, config.topology,
                escalation_threshold=config.escalation_threshold,
                deescalation_hysteresis=config.deescalation_hysteresis,
                escalation_packet_bytes=config.packet_bytes or 4096)
        elif backend == "flow":
            from repro.network.flowlevel import FlowLevelNetwork

            self.network = FlowLevelNetwork(self.engine, config.topology)
        else:
            self.network = AnalyticalNetwork(self.engine, config.topology)
        self.scheduler = make_scheduler(config.scheduler)
        self.execution = ExecutionEngine(
            engine=self.engine,
            config=config,
            network=self.network,
            scheduler=self.scheduler,
            traces=traces,
        )
        # An empty/absent schedule installs nothing: every fault hook then
        # stays on its None fast path and results are bit-identical to a
        # build without the faults subsystem.
        self.injector = None
        if config.faults:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(config.faults, config.topology)
            self.injector.install(self.engine, self.network, self.execution)
        # Same contract as faults: no config installs no instrumentation
        # and leaves every telemetry hook on its None fast path.
        self.telemetry = None
        if config.telemetry is not None:
            from repro.telemetry import Telemetry

            self.telemetry = Telemetry(config.telemetry)
            self.telemetry.install(
                self.engine, network=self.network, execution=self.execution,
                memory_models=(config.local_memory, config.remote_memory,
                               config.fabric_collectives),
            )
            # Folding never coexists with telemetry (per-rank observation
            # disables it); the counter records that — and why — so
            # instrumented runs can see the fold state they forfeited.
            self.telemetry.metrics.counter(
                "system", "folding_disabled",
                reason=self.folding.report.reason).value = 1.0
        # Runtime invariant checking (repro.validate): same opt-in
        # contract — no config leaves every ``invariants`` slot at None.
        self.invariants = None
        if config.invariants is not None:
            from repro.validate.invariants import InvariantChecker

            self.invariants = InvariantChecker(config.invariants)
            self.invariants.install(
                self.engine, network=self.network, execution=self.execution,
                memory_models=(config.local_memory, config.remote_memory,
                               config.fabric_collectives),
            )

    def run(self) -> RunResult:
        """Run to completion and collect results."""
        wall_start = time.perf_counter()
        if self.telemetry is not None:
            with self.telemetry.profile.section("run"):
                total = self.execution.run()
        else:
            total = self.execution.run()
        wall = time.perf_counter() - wall_start
        per_npu = {
            npu: self.execution.activity.breakdown(npu, total)
            for npu in self.execution.traces
        }
        nodes_executed = self.execution.nodes_executed
        events_processed = self.engine.events_processed
        collectives = list(self.execution.collective_records)
        fold = self.folding
        if fold.active:
            # Un-fold: every dropped rank is a bit-exact replica of its
            # class representative, so the per-rank view is reconstructed
            # in the original trace order (same Breakdown values, same
            # merge order, same record membership as an unfolded run).
            per_npu = {
                npu: per_npu[fold.class_of[npu]]
                for npu in fold.original_order
            }
            nodes_executed += fold.extra_nodes
            events_processed += fold.extra_events
            collectives = fold.expand_records(collectives)
        from repro.stats.breakdown import Breakdown

        breakdown = Breakdown.merge(list(per_npu.values()))
        resilience = None
        if self.injector is not None:
            resilience = self.injector.report(
                total_ns=total, checkpoint=self.config.checkpoint)
        invariant_report = None
        if self.invariants is not None:
            # Before telemetry finalizes, so the violation counters land
            # in the same metrics registry snapshot.
            invariant_report = self.invariants.finalize(
                total, telemetry=self.telemetry)
        report = None
        if self.telemetry is not None:
            with self.telemetry.profile.section("finalize"):
                report = self.telemetry.finalize(total, breakdown=breakdown)
        return RunResult(
            total_time_ns=total,
            breakdown=breakdown,
            per_npu_breakdown=per_npu,
            nodes_executed=nodes_executed,
            events_processed=events_processed,
            collectives=collectives,
            activity=self.execution.activity,
            resilience=resilience,
            telemetry=report,
            invariants=invariant_report,
            wall_time_s=wall,
            folding=fold.report,
        )


def simulate(traces: Dict[int, ExecutionTrace], config: SystemConfig) -> RunResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(traces, config).run()

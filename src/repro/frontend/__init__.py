"""Real-model frontend: ingest model specs into simulator-ready traces.

The pipeline (paper-aligned ModTrans-style ingestion)::

    HF config.json ──┐
    opgraph JSON ────┼──> OpGraph IR ──> planner ──> {npu: ExecutionTrace}
    zoo entry ───────┘    (analytic      (TP/PP/DP/EP
                           costing)       annotation)

Entry points:

- :func:`ingest` — one-call path from any spec source to an op graph;
- :func:`repro.frontend.planner.plan` — op graph + topology + degrees →
  per-NPU execution traces runnable on every network backend;
- :mod:`repro.frontend.zoo` — registered models built through the same
  parsers as user-supplied specs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.frontend.hf_config import (
    DECODER_MODEL_TYPES,
    IngestOptions,
    build_op_graph,
    default_options_for,
    detect_family,
    ingest_hf_config,
    load_config,
)
from repro.frontend.ir import (
    FrontendError,
    OpGraph,
    OpGraphBuilder,
    OpKind,
    OpNode,
)
from repro.frontend.opgraph_json import (
    OPGRAPH_FORMAT,
    load_opgraph,
    loads_opgraph,
    opgraph_from_dict,
    save_opgraph,
    to_opgraph_json,
)
from repro.frontend.planner import (
    Plan,
    PlanConfig,
    plan,
    plan_traces,
    resolve_parallelism,
)
from repro.frontend.zoo import (
    ZooEntry,
    zoo_entries,
    zoo_entry,
    zoo_graph,
    zoo_names,
)

__all__ = [
    "DECODER_MODEL_TYPES",
    "FrontendError",
    "IngestOptions",
    "OPGRAPH_FORMAT",
    "OpGraph",
    "OpGraphBuilder",
    "OpKind",
    "OpNode",
    "Plan",
    "PlanConfig",
    "ZooEntry",
    "build_op_graph",
    "default_options_for",
    "detect_family",
    "ingest",
    "ingest_hf_config",
    "load_config",
    "load_opgraph",
    "loads_opgraph",
    "opgraph_from_dict",
    "plan",
    "plan_traces",
    "resolve_parallelism",
    "save_opgraph",
    "to_opgraph_json",
    "zoo_entries",
    "zoo_entry",
    "zoo_graph",
    "zoo_names",
]


def ingest(
    source: Union[str, Path, Dict[str, Any]],
    options: Optional[IngestOptions] = None,
) -> OpGraph:
    """Ingest any supported model spec into an :class:`OpGraph`.

    Dispatches on shape: zoo names, ``repro-opgraph`` documents, and
    HF-style config dicts / JSON strings / file paths all land here.
    """
    from repro.frontend.zoo import _BY_NAME

    if isinstance(source, str) and source in _BY_NAME:
        return zoo_graph(source, options)
    if isinstance(source, dict):
        payload: Optional[Dict[str, Any]] = source
    else:
        payload = load_config(source)
    if payload.get("format") == OPGRAPH_FORMAT:
        return opgraph_from_dict(payload)
    opts = options or default_options_for(payload)
    return build_op_graph(payload, opts)

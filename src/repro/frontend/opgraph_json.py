"""Operator-graph JSON ingestion (ONNX / torch.fx-shaped graphs).

For models that are not HF-config-shaped, the frontend accepts an
explicit operator list — the flat node-and-edges form that ``torch.fx``
tracing or an ONNX graph walk naturally produces::

    {
      "format": "repro-opgraph",
      "version": 1,
      "name": "two-layer-mlp",
      "dtype_bytes": 2,
      "ops": [
        {"id": 0, "kind": "matmul", "name": "fc1",
         "m": 4096, "k": 1024, "n": 4096, "tp": "col", "layer": 0},
        {"id": 1, "kind": "elementwise", "name": "gelu", "deps": [0],
         "elements": 16777216, "layer": 0},
        {"id": 2, "kind": "matmul", "name": "fc2", "deps": [1],
         "m": 4096, "k": 4096, "n": 1024, "tp": "row", "layer": 0}
      ]
    }

Each op either carries *shapes* (``m/k/n`` for matmuls,
``batch/seq/hidden`` for attention, ``batch/c_in/c_out/kernel/h/w`` for
convolutions, ``elements`` for elementwise/norm, ``rows/dim/tokens`` for
embeddings) — from which FLOPs, parameter bytes, and activation bytes
are derived analytically — or explicit ``flops`` / ``param_bytes`` /
``output_bytes`` overrides for pre-costed graphs.

:func:`to_opgraph_json` writes the same format back out, so any ingested
model (HF configs and the zoo included) round-trips through this schema.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.frontend.ir import (
    FrontendError,
    OpGraph,
    OpKind,
    OpNode,
    attention_flops,
    conv2d_flops,
    matmul_flops,
)

OPGRAPH_FORMAT = "repro-opgraph"
OPGRAPH_VERSION = 1


def _int_field(raw: Dict[str, Any], op_id: Any, name: str,
               default: Any = None) -> int:
    if name not in raw:
        if default is None:
            raise FrontendError(
                f"op {op_id}: kind {raw.get('kind')!r} needs field {name!r}")
        return default
    try:
        return int(raw[name])
    except (TypeError, ValueError) as exc:
        raise FrontendError(
            f"op {op_id}: field {name!r} is not an integer: "
            f"{raw[name]!r}") from exc


def _op_from_dict(raw: Dict[str, Any], dtype_bytes: int) -> OpNode:
    if not isinstance(raw, dict):
        raise FrontendError(
            f"ops entries must be objects, got {type(raw).__name__}")
    if "id" not in raw:
        raise FrontendError(f"op entry is missing 'id': {raw!r}")
    op_id = raw["id"]
    try:
        kind = OpKind(str(raw.get("kind", "")))
    except ValueError:
        raise FrontendError(
            f"op {op_id}: unknown kind {raw.get('kind')!r}; expected one "
            f"of {[k.value for k in OpKind]}") from None
    dt = _int_field(raw, op_id, "dtype_bytes", dtype_bytes)

    flops = param_bytes = output_bytes = input_bytes = 0
    if kind is OpKind.MATMUL and "m" in raw:
        m = _int_field(raw, op_id, "m")
        k = _int_field(raw, op_id, "k")
        n = _int_field(raw, op_id, "n")
        flops = matmul_flops(m, k, n)
        param_bytes = k * n * dt
        output_bytes = m * n * dt
        input_bytes = m * k * dt
    elif kind is OpKind.ATTENTION and "seq" in raw:
        batch = _int_field(raw, op_id, "batch", 1)
        seq = _int_field(raw, op_id, "seq")
        hidden = _int_field(raw, op_id, "hidden")
        flops = attention_flops(batch, seq, hidden)
        output_bytes = input_bytes = batch * seq * hidden * dt
    elif kind is OpKind.CONV and "c_in" in raw:
        batch = _int_field(raw, op_id, "batch", 1)
        c_in = _int_field(raw, op_id, "c_in")
        c_out = _int_field(raw, op_id, "c_out")
        kernel = _int_field(raw, op_id, "kernel", 3)
        h = _int_field(raw, op_id, "h")
        w = _int_field(raw, op_id, "w", raw.get("h"))
        flops = conv2d_flops(batch, c_in, c_out, kernel, h, w)
        param_bytes = c_in * c_out * kernel * kernel * dt
        output_bytes = batch * c_out * h * w * dt
        input_bytes = batch * c_in * h * w * dt
    elif kind in (OpKind.ELEMENTWISE, OpKind.NORM) and "elements" in raw:
        elements = _int_field(raw, op_id, "elements")
        flops = (5 if kind is OpKind.NORM else 1) * elements
        output_bytes = input_bytes = elements * dt
    elif kind is OpKind.EMBEDDING and "rows" in raw:
        rows = _int_field(raw, op_id, "rows")
        dim = _int_field(raw, op_id, "dim")
        tokens = _int_field(raw, op_id, "tokens", 1)
        flops = tokens * dim
        param_bytes = rows * dim * dt
        output_bytes = tokens * dim * dt
        input_bytes = tokens * 8

    # Explicit overrides win over (or substitute for) shape derivation.
    flops = _int_field(raw, op_id, "flops", flops)
    param_bytes = _int_field(raw, op_id, "param_bytes", param_bytes)
    output_bytes = _int_field(raw, op_id, "output_bytes", output_bytes)
    input_bytes = _int_field(raw, op_id, "input_bytes", input_bytes)
    if flops == 0 and output_bytes == 0 and param_bytes == 0:
        raise FrontendError(
            f"op {op_id}: no cost derivable — give shape fields for kind "
            f"{kind.value!r} or explicit flops/output_bytes")

    deps = raw.get("deps", ())
    if not isinstance(deps, (list, tuple)):
        raise FrontendError(f"op {op_id}: 'deps' must be a list")
    layer = raw.get("layer")
    return OpNode(
        op_id=_int_field(raw, op_id, "id"),
        name=str(raw.get("name", f"op{op_id}")),
        kind=kind,
        deps=tuple(int(d) for d in deps),
        flops=flops,
        param_bytes=param_bytes,
        output_bytes=output_bytes,
        input_bytes=input_bytes,
        layer=None if layer is None else int(layer),
        tp=str(raw.get("tp", "none")),
        routed=bool(raw.get("routed", False)),
        route_bytes=_int_field(raw, op_id, "route_bytes", 0),
        attrs=dict(raw.get("attrs", {})),
    )


def loads_opgraph(text: str, *, validate: bool = True) -> OpGraph:
    """Parse an operator-graph JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FrontendError(f"opgraph is not valid JSON: {exc}") from exc
    return opgraph_from_dict(payload, validate=validate)


def opgraph_from_dict(payload: Any, *, validate: bool = True) -> OpGraph:
    """Build an :class:`OpGraph` from a parsed opgraph document."""
    if not isinstance(payload, dict):
        raise FrontendError(
            f"opgraph document must be a JSON object, got "
            f"{type(payload).__name__}")
    if payload.get("format") != OPGRAPH_FORMAT:
        raise FrontendError(
            f"not a repro opgraph (format={payload.get('format')!r}; "
            f"expected {OPGRAPH_FORMAT!r})")
    if payload.get("version") != OPGRAPH_VERSION:
        raise FrontendError(
            f"unsupported opgraph version {payload.get('version')!r}")
    raw_ops = payload.get("ops", ())
    if not isinstance(raw_ops, list):
        raise FrontendError("'ops' must be a list")
    dtype_bytes = int(payload.get("dtype_bytes", 2))
    ops = [_op_from_dict(raw, dtype_bytes) for raw in raw_ops]
    return OpGraph(str(payload.get("name", "opgraph")), ops,
                   validate=validate)


def load_opgraph(path: Union[str, Path], *, validate: bool = True) -> OpGraph:
    """Read an operator-graph JSON file."""
    p = Path(path)
    if not p.exists():
        raise FrontendError(f"opgraph file not found: {p}")
    return loads_opgraph(p.read_text(), validate=validate)


def to_opgraph_json(graph: OpGraph, indent: int = 0) -> str:
    """Serialize any op graph back into the opgraph JSON format."""
    payload = {
        "format": OPGRAPH_FORMAT,
        "version": OPGRAPH_VERSION,
        "name": graph.name,
        "ops": [op.to_dict() for op in graph],
    }
    return json.dumps(payload, indent=indent or None)


def save_opgraph(graph: OpGraph, path: Union[str, Path]) -> None:
    Path(path).write_text(to_opgraph_json(graph, indent=1))

"""Automatic parallelism annotation: op graph + topology → execution traces.

The planner maps an ingested :class:`~repro.frontend.ir.OpGraph` onto a
:class:`~repro.network.topology.MultiDimTopology` through the same
dimension-assignment machinery the builtin generators use
(:func:`repro.workload.parallelism.assign_dims` /
:func:`~repro.workload.parallelism.fit_hybrid`), then lowers it into
per-NPU Chakra-style execution traces that run unmodified on all three
network backends.

Lowering rules (Megatron/ZeRO-style, mirroring
:mod:`repro.workload.generators`):

- **TP** (innermost dims): ``col`` ops shard comm-free in the forward
  and All-Reduce their input gradient in the backward *iff* their input
  was replicated; ``row`` ops All-Reduce their partial-sum output in
  the forward.  Sharded ops divide FLOPs and parameter bytes by the
  degree.
- **EP**: ``routed`` ops (MoE experts, DLRM embedding bags) are wrapped
  in dispatch/combine All-to-Alls over the expert dims — or over the DP
  dims when ``ep == 1``, which is exactly DLRM's table sharding across
  the data-parallel ranks.
- **PP**: contiguous layer groups are balanced onto stages by FLOPs;
  stages exchange per-microbatch boundary activations with send/recv
  pairs under a GPipe or 1F1B issue order, one representative trace per
  stage.
- **DP** (outermost dims): per-layer-group weight-gradient All-Reduces
  depend only on that group's backward ops, so they overlap deeper
  groups' backward — the overlap structure the paper's case studies
  measure.  Routed (model-parallel) parameters are excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.frontend.ir import FrontendError, OpGraph, OpNode
from repro.network.topology import MultiDimTopology
from repro.trace.graph import ExecutionTrace
from repro.trace.node import CollectiveType
from repro.workload.generators import TraceBuilder, _stage_op_sequence
from repro.workload.parallelism import (
    DimAssignmentError,
    ParallelismSpec,
    assign_dims,
)


@dataclass(frozen=True)
class PlanConfig:
    """Requested parallelization; ``0`` degrees are auto-fitted.

    Auto rules: TP takes the innermost topology dimension when the graph
    has tensor-parallel ops (and the dimension divides the system), DP
    absorbs every NPU left over, PP and EP stay 1 unless requested.
    """

    tp: int = 0
    dp: int = 0
    pp: int = 0
    ep: int = 0
    microbatches: int = 4
    schedule: str = "1f1b"
    iterations: int = 1
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        for name in ("tp", "dp", "pp", "ep"):
            if getattr(self, name) < 0:
                raise FrontendError(
                    f"{name} must be >= 0 (0 = auto), got "
                    f"{getattr(self, name)}")
        if self.microbatches < 1 or self.iterations < 1:
            raise FrontendError("microbatches/iterations must be >= 1")
        if self.dtype_bytes < 1:
            raise FrontendError(
                f"dtype_bytes must be >= 1, got {self.dtype_bytes}")


@dataclass
class Plan:
    """A planned workload: traces plus the strategy that produced them."""

    graph: OpGraph
    topology: MultiDimTopology
    spec: ParallelismSpec
    assignment: Dict[str, Tuple[int, ...]]
    traces: Dict[int, ExecutionTrace]
    stage_layers: List[List[Optional[int]]] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        nodes = sum(len(t) for t in self.traces.values())
        return {
            "model": self.graph.name,
            "ops": len(self.graph),
            "parallelism": {"tp": self.spec.mp, "dp": self.spec.dp,
                            "pp": self.spec.pp, "ep": self.spec.ep},
            "dim_assignment": {axis: list(dims) for axis, dims
                               in self.assignment.items()},
            "representative_traces": len(self.traces),
            "trace_nodes": nodes,
            "stage_layers": [
                [l for l in layers] for layers in self.stage_layers],
        }


def resolve_parallelism(
    graph: OpGraph, topology: MultiDimTopology, config: PlanConfig
) -> ParallelismSpec:
    """Fill auto (0) degrees against the graph and topology."""
    npus = topology.num_npus
    tp = config.tp
    if tp == 0:
        inner = topology.dims[0].size
        tp = inner if (graph.has_tensor_parallel_ops()
                       and npus % inner == 0 and inner <= npus) else 1
    pp = config.pp or 1
    ep = config.ep or 1
    if pp > 1 and graph.num_layers < pp:
        raise FrontendError(
            f"pp={pp} needs a layered graph with >= {pp} layers; "
            f"{graph.name!r} has {graph.num_layers}")
    shard = tp * pp * ep
    if shard < 1 or npus % shard != 0:
        raise FrontendError(
            f"tp x pp x ep = {shard} does not divide the topology's "
            f"{npus} NPUs")
    dp = config.dp or npus // shard
    spec = ParallelismSpec(mp=tp, dp=dp, pp=pp, ep=ep)
    if spec.total != npus:
        raise FrontendError(
            f"tp x dp x pp x ep = {spec.total} but the topology has "
            f"{npus} NPUs; leave a degree at 0 to auto-fit it")
    return spec


def _split_stages(graph: OpGraph, pp: int) -> List[List[Optional[int]]]:
    """Balance layer groups onto ``pp`` contiguous stages by FLOPs.

    The stem (pre-stack ops) joins the first stage and the head joins
    the last, as real pipeline placements do.
    """
    groups = graph.layer_groups()
    if pp == 1:
        return [[key for key, _ in groups]]
    flops = [sum(op.flops for op in ops) for _, ops in groups]
    total = sum(flops) or 1
    target = total / pp
    stages: List[List[Optional[int]]] = [[] for _ in range(pp)]
    stage, acc = 0, 0
    for i, (key, _ops) in enumerate(groups):
        remaining_groups = len(groups) - i
        remaining_stages = pp - stage
        if (stage < pp - 1 and acc >= target
                and remaining_groups > remaining_stages - 1
                and stages[stage]):
            stage += 1
            acc = 0
        # Never strand a stage without groups.
        if remaining_groups == remaining_stages and not stages[stage]:
            pass
        stages[stage].append(key)
        acc += flops[i]
    # Guarantee every stage is non-empty (tiny graphs, skewed FLOPs).
    for s in range(pp):
        if not stages[s]:
            donor = max(range(pp), key=lambda d: len(stages[d]))
            if len(stages[donor]) <= 1:
                raise FrontendError(
                    f"cannot split {len(groups)} layer groups onto "
                    f"{pp} pipeline stages")
            stages[s].append(stages[donor].pop())
    return stages


def plan(
    graph: OpGraph,
    topology: MultiDimTopology,
    config: PlanConfig = PlanConfig(),
) -> Plan:
    """Annotate and lower an op graph into per-NPU execution traces."""
    graph.validate()
    spec = resolve_parallelism(graph, topology, config)
    tp, dp, pp, ep = spec.mp, spec.dp, spec.pp, spec.ep

    mp_group = dp_group = None
    try:
        assignment = assign_dims(topology, spec)
    except DimAssignmentError as exc:
        if pp == 1 and ep == 1 and tp * dp == topology.num_npus:
            # Flat-group fallback (sub-dimension communicators sharing a
            # wafer's bandwidth, paper Sec. V-A) — mirrors
            # generate_megatron_hybrid.
            assignment = {"mp": (), "dp": (), "pp": (), "ep": ()}
            if tp > 1:
                mp_group = tuple(range(tp))
            if dp > 1:
                dp_group = tuple(range(0, tp * dp, tp))
        else:
            raise FrontendError(
                f"parallelism {spec} does not align with topology "
                f"dimension boundaries: {exc}") from exc
    mp_dims = tuple(assignment["mp"]) or None
    dp_dims = tuple(assignment["dp"]) or None
    pp_dims, ep_dims = assignment["pp"], assignment["ep"]
    has_mp = (mp_dims is not None and len(mp_dims) > 0) or mp_group is not None
    has_dp = (dp_dims is not None and len(dp_dims) > 0) or dp_group is not None
    # Routed ops exchange over the EP dims, falling back to the DP dims
    # (DLRM: tables sharded across the data-parallel ranks).
    if ep > 1:
        route_dims: Optional[Tuple[int, ...]] = ep_dims
        route_group = None
    elif has_dp:
        route_dims, route_group = dp_dims, dp_group
    else:
        route_dims, route_group = None, None
    has_route = route_dims is not None or route_group is not None

    stage_layers = _split_stages(graph, pp)
    stage_of: Dict[Optional[int], int] = {}
    for s, keys in enumerate(stage_layers):
        for key in keys:
            stage_of[key] = s
    order = graph.topological_order()
    stage_ops: List[List[OpNode]] = [[] for _ in range(pp)]
    for op in order:
        stage_ops[stage_of[op.layer]].append(op)
    for s, ops in enumerate(stage_ops):
        if not ops:
            raise FrontendError(
                f"pipeline stage {s} received no ops; reduce pp")

    microbatches = config.microbatches if pp > 1 else 1
    _stage_op_sequence(config.schedule, 2, 0, 1)  # validate schedule name
    dt = config.dtype_bytes

    # Representative NPU per stage (PP coords encode the stage index).
    def stage_rep(s: int) -> int:
        coords = [0] * topology.num_dims
        rest = s
        for d in pp_dims:
            coords[d] = rest % topology.dims[d].size
            rest //= topology.dims[d].size
        return topology.npu_id(coords)

    reps = [stage_rep(s) for s in range(pp)]
    if len(set(reps)) != pp:
        raise FrontendError("pipeline stages collapsed onto one NPU")
    builders = {reps[s]: TraceBuilder(reps[s]) for s in range(pp)}

    consumers: Dict[int, List[int]] = {op.op_id: [] for op in graph}
    for op in graph:
        for dep in op.deps:
            consumers[dep].append(op.op_id)

    def sharded(op: OpNode, value: int) -> int:
        shard = tp if op.tp != "none" else 1
        eshard = ep if (op.routed and ep > 1) else 1
        return max(1, value // (shard * eshard)) if value else 0

    def mb_scale(value: int) -> int:
        return max(1, value // microbatches) if value else 0

    def producers_replicated(op: OpNode) -> bool:
        return all(graph.op(d).tp == "none" for d in op.deps)

    def tag(it: int, kind: str, s: int, mb: int) -> int:
        base = {"f": 0, "b": 1}[kind]
        return ((it * 2 + base) * pp + s) * microbatches + mb + 1

    prev_end: Dict[int, Tuple[int, ...]] = {s: () for s in range(pp)}
    for it in range(iterations := config.iterations):
        grad_deps: Dict[int, Dict[Any, List[int]]] = {
            s: {} for s in range(pp)}
        stage_tail: Dict[int, Tuple[int, ...]] = dict(prev_end)
        for s in range(pp):
            b = builders[reps[s]]
            ops = stage_ops[s]
            in_stage = {op.op_id for op in ops}
            boundary_in = mb_scale(ops[0].input_bytes or ops[0].output_bytes)
            boundary_out = mb_scale(ops[-1].output_bytes
                                    or ops[-1].input_bytes)
            # Per-microbatch forward node map, kept for the backward.
            fwd_nodes: Dict[int, Dict[int, int]] = {}
            fwd_out: Dict[int, int] = {}
            prev: Tuple[int, ...] = stage_tail[s]
            for kind, mb in _stage_op_sequence(config.schedule, pp, s,
                                               microbatches):
                if kind == "f":
                    nodes: Dict[int, int] = {}
                    recv_id = None
                    if s > 0:
                        recv_id = b.recv(
                            f"it{it}.recvF.s{s}.mb{mb}", reps[s - 1],
                            boundary_in, tag(it, "f", s, mb), deps=prev)
                    for op in ops:
                        deps = [nodes[d] for d in op.deps if d in nodes]
                        if not deps:
                            # Stage/graph root: chain on the stage's
                            # previous activity (serializes microbatches,
                            # as the builtin pipeline generator does) and
                            # on the boundary activation, if any.
                            deps = list(prev)
                            if recv_id is not None:
                                deps.append(recv_id)
                        elif recv_id is not None and any(
                                d not in in_stage for d in op.deps):
                            deps.append(recv_id)
                        flops = mb_scale(sharded(op, op.flops))
                        out_bytes = mb_scale(
                            op.output_bytes // tp if op.tp == "col"
                            and tp > 1 else op.output_bytes)
                        if op.routed and has_route:
                            dispatch = b.collective(
                                f"it{it}.{op.name}.dispatchA2A.mb{mb}",
                                CollectiveType.ALL_TO_ALL,
                                mb_scale(op.route_bytes), route_dims,
                                deps=deps, involved=route_group)
                            deps = [dispatch]
                        node = b.compute(
                            f"it{it}.fwd.{op.name}.mb{mb}", flops,
                            out_bytes, deps=deps)
                        if op.routed and has_route:
                            node = b.collective(
                                f"it{it}.{op.name}.combineA2A.mb{mb}",
                                CollectiveType.ALL_TO_ALL,
                                mb_scale(op.route_bytes), route_dims,
                                deps=(node,), involved=route_group)
                        elif op.tp == "row" and has_mp:
                            node = b.collective(
                                f"it{it}.fwdAR.{op.name}.mb{mb}",
                                CollectiveType.ALL_REDUCE,
                                mb_scale(op.output_bytes), mp_dims,
                                deps=(node,), involved=mp_group)
                        nodes[op.op_id] = node
                    fwd_nodes[mb] = nodes
                    fwd_out[mb] = nodes[ops[-1].op_id]
                    prev = (fwd_out[mb],)
                    if s < pp - 1:
                        b.send(f"it{it}.sendF.s{s}.mb{mb}", reps[s + 1],
                               boundary_out, tag(it, "f", s + 1, mb),
                               deps=prev)
                else:  # backward microbatch
                    bwd_nodes: Dict[int, int] = {}
                    recv_id = None
                    if s < pp - 1:
                        recv_id = b.recv(
                            f"it{it}.recvB.s{s}.mb{mb}", reps[s + 1],
                            boundary_out, tag(it, "b", s, mb), deps=prev)
                    nodes = fwd_nodes[mb]
                    for op in reversed(ops):
                        deps = [bwd_nodes[c] for c in consumers[op.op_id]
                                if c in bwd_nodes]
                        if not deps:
                            # Graph/stage sink: its backward starts from
                            # the stage's last activity plus this
                            # microbatch's own forward output (the loss).
                            deps = list(prev)
                            if fwd_out[mb] not in deps:
                                deps.append(fwd_out[mb])
                            if recv_id is not None:
                                deps.append(recv_id)
                        elif recv_id is not None and any(
                                c not in in_stage
                                for c in consumers[op.op_id]):
                            deps.append(recv_id)
                        flops = 2 * mb_scale(sharded(op, op.flops))
                        out_bytes = mb_scale(
                            op.output_bytes // tp if op.tp == "col"
                            and tp > 1 else op.output_bytes)
                        if op.routed and has_route:
                            dispatch = b.collective(
                                f"it{it}.{op.name}.bwdDispatchA2A.mb{mb}",
                                CollectiveType.ALL_TO_ALL,
                                mb_scale(op.route_bytes), route_dims,
                                deps=deps, involved=route_group)
                            deps = [dispatch]
                        node = b.compute(
                            f"it{it}.bwd.{op.name}.mb{mb}", flops,
                            out_bytes, deps=deps)
                        if op.routed and has_route:
                            node = b.collective(
                                f"it{it}.{op.name}.bwdCombineA2A.mb{mb}",
                                CollectiveType.ALL_TO_ALL,
                                mb_scale(op.route_bytes), route_dims,
                                deps=(node,), involved=route_group)
                        elif (op.tp == "col" and has_mp
                              and producers_replicated(op)):
                            # Input was replicated: the input gradient's
                            # partial sums reduce across the TP ranks.
                            node = b.collective(
                                f"it{it}.bwdAR.{op.name}.mb{mb}",
                                CollectiveType.ALL_REDUCE,
                                mb_scale(op.input_bytes
                                         or op.output_bytes),
                                mp_dims, deps=(node,), involved=mp_group)
                        bwd_nodes[op.op_id] = node
                        if op.param_bytes and not op.routed:
                            grad_deps[s].setdefault(
                                _group_key(op), []).append(node)
                    prev = (bwd_nodes[ops[0].op_id],)
                    if s > 0:
                        b.send(f"it{it}.sendB.s{s}.mb{mb}", reps[s - 1],
                               boundary_in, tag(it, "b", s - 1, mb),
                               deps=prev)
            stage_tail[s] = prev

        # DP weight-gradient All-Reduces (per layer group, overlapping)
        # and the optimizer step, per stage.
        for s in range(pp):
            b = builders[reps[s]]
            grad_ars: List[int] = []
            group_bytes: Dict[Any, int] = {}
            for op in stage_ops[s]:
                if op.param_bytes and not op.routed:
                    shard = tp if op.tp != "none" else 1
                    group_bytes[_group_key(op)] = (
                        group_bytes.get(_group_key(op), 0)
                        + max(1, op.param_bytes // shard))
            if has_dp:
                for key, deps in grad_deps[s].items():
                    grad_ars.append(b.collective(
                        f"it{it}.gradAR.s{s}.{key}",
                        CollectiveType.ALL_REDUCE,
                        group_bytes.get(key, 1), dp_dims,
                        deps=tuple(deps), involved=dp_group))
            opt_params = sum(
                max(1, op.param_bytes
                    // ((tp if op.tp != "none" else 1)
                        * (ep if op.routed and ep > 1 else 1)))
                for op in stage_ops[s] if op.param_bytes) // dt
            step = b.compute(
                f"it{it}.optimizer.s{s}", max(1, opt_params),
                deps=tuple(grad_ars) + stage_tail[s])
            prev_end[s] = (step,)

    traces = {rep: builder.build() for rep, builder in builders.items()}
    return Plan(graph=graph, topology=topology, spec=spec,
                assignment={k: tuple(v) for k, v in assignment.items()},
                traces=traces, stage_layers=stage_layers)


def _group_key(op: OpNode) -> Any:
    """Gradient-bucket key: the op's layer, or 'stem' for stack-external ops."""
    return op.layer if op.layer is not None else "stem"


def plan_traces(
    graph: OpGraph,
    topology: MultiDimTopology,
    config: PlanConfig = PlanConfig(),
) -> Dict[int, ExecutionTrace]:
    """Convenience: plan and return just the trace set."""
    return plan(graph, topology, config).traces

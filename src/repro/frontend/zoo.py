"""Widened model zoo, registered through the ingestion path.

Unlike the analytic specs in :mod:`repro.workload.models`, these entries
are *HF-style config dicts* run through the same parser as user-supplied
``config.json`` files — the zoo exercises the front door instead of
bypassing it.  Each entry pairs an architecture config with
family-appropriate runtime defaults (batch, sequence length, dtype).

Entries (Table-III-style coverage plus the paper's scenario-diversity
goals): Llama-style dense 8B and 70B decoders, a ViT-L/16 encoder, a
Stable-Diffusion-shaped U-Net, a large DLRM variant, and a GPT-3-shaped
decoder whose planned trace is the differential-conformance twin of the
builtin ``gpt3_175b`` workload (see :mod:`repro.validate.frontend`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.frontend.hf_config import IngestOptions, build_op_graph
from repro.frontend.ir import FrontendError, OpGraph


@dataclass(frozen=True)
class ZooEntry:
    """One registered model: an HF-style config plus runtime defaults."""

    name: str
    description: str
    config: Dict[str, Any]
    options: IngestOptions

    def graph(self, options: Optional[IngestOptions] = None) -> OpGraph:
        graph = build_op_graph(self.config, options or self.options)
        graph.name = self.name
        return graph


def _llama(name: str, *, hidden: int, layers: int, heads: int,
           kv_heads: int, intermediate: int, vocab: int = 32000,
           max_pos: int = 4096) -> Dict[str, Any]:
    return {
        "_name_or_path": name,
        "model_type": "llama",
        "hidden_size": hidden,
        "num_hidden_layers": layers,
        "num_attention_heads": heads,
        "num_key_value_heads": kv_heads,
        "intermediate_size": intermediate,
        "hidden_act": "silu",
        "vocab_size": vocab,
        "max_position_embeddings": max_pos,
        "tie_word_embeddings": False,
    }


_ENTRIES: Tuple[ZooEntry, ...] = (
    ZooEntry(
        name="llama3-8b",
        description="Llama-3-style dense 8B decoder (GQA, gated MLP)",
        config=_llama("llama3-8b", hidden=4096, layers=32, heads=32,
                      kv_heads=8, intermediate=14336, vocab=128256,
                      max_pos=8192),
        options=IngestOptions(batch=1, seq_len=2048),
    ),
    ZooEntry(
        name="llama-70b",
        description="Llama-style dense 70B decoder (GQA, gated MLP)",
        config=_llama("llama-70b", hidden=8192, layers=80, heads=64,
                      kv_heads=8, intermediate=28672),
        options=IngestOptions(batch=1, seq_len=2048),
    ),
    ZooEntry(
        name="vit-l16",
        description="ViT-L/16 vision encoder (224px, patch 16)",
        config={
            "_name_or_path": "vit-l16",
            "model_type": "vit",
            "hidden_size": 1024,
            "num_hidden_layers": 24,
            "num_attention_heads": 16,
            "intermediate_size": 4096,
            "image_size": 224,
            "patch_size": 16,
            "num_channels": 3,
            "num_labels": 1000,
        },
        options=IngestOptions(batch=8),
    ),
    ZooEntry(
        name="unet-sd",
        description="Stable-Diffusion-shaped UNet2DConditionModel",
        config={
            "_class_name": "UNet2DConditionModel",
            "sample_size": 64,
            "in_channels": 4,
            "block_out_channels": [320, 640, 1280, 1280],
            "layers_per_block": 2,
            "cross_attention_dim": 768,
            "down_block_types": [
                "CrossAttnDownBlock2D", "CrossAttnDownBlock2D",
                "CrossAttnDownBlock2D", "DownBlock2D"],
        },
        options=IngestOptions(batch=8),
    ),
    ZooEntry(
        name="dlrm-large",
        description="Large DLRM: 856 tables x 4M rows, fp32 MLPs",
        config={
            "_name_or_path": "dlrm-large",
            "model_type": "dlrm",
            "num_embedding_tables": 856,
            "rows_per_table": 4_000_000,
            "embedding_dim": 128,
            "bottom_mlp": [13, 512, 256, 128],
            "top_mlp": [479, 1024, 1024, 512, 256, 1],
        },
        options=IngestOptions(batch=64, dtype_bytes=4),
    ),
    ZooEntry(
        name="gpt3-175b-hf",
        description=("GPT-3-shaped decoder (96L, h=12288) — conformance "
                     "twin of the builtin gpt3_175b workload"),
        config={
            "_name_or_path": "gpt3-175b-hf",
            "model_type": "gpt2",
            "n_embd": 12288,
            "n_layer": 96,
            "n_head": 96,
            "n_positions": 2048,
            "vocab_size": 50257,
            "tie_word_embeddings": True,
        },
        options=IngestOptions(batch=2, seq_len=2048),
    ),
)

_BY_NAME: Dict[str, ZooEntry] = {entry.name: entry for entry in _ENTRIES}


def zoo_names() -> List[str]:
    """Registered model names, in registration order."""
    return [entry.name for entry in _ENTRIES]


def zoo_entries() -> Tuple[ZooEntry, ...]:
    return _ENTRIES


def zoo_entry(name: str) -> ZooEntry:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise FrontendError(
            f"unknown zoo model {name!r}; available: "
            f"{', '.join(zoo_names())}") from None


def zoo_graph(name: str, options: Optional[IngestOptions] = None,
              **overrides: int) -> OpGraph:
    """Build a zoo model's op graph, optionally overriding runtime knobs.

    ``overrides`` patch individual :class:`IngestOptions` fields on top
    of the entry's defaults (e.g. ``zoo_graph("llama-70b", seq_len=512)``).
    """
    entry = zoo_entry(name)
    opts = options or entry.options
    if overrides:
        opts = replace(opts, **overrides)
    return entry.graph(opts)

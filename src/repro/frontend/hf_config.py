"""HF-style ``config.json`` ingestion: real model specs → op graphs.

Hugging-Face model repositories describe architectures as a flat JSON
dict keyed by ``model_type`` (ModTrans-style ingestion: the model
definition users already have *is* the workload spec).  This module
normalizes the popular families into :class:`~repro.frontend.ir.OpGraph`
dataflow graphs with analytic per-op costs:

- **decoder** — ``llama`` / ``mistral`` / ``mixtral`` / ``qwen2`` /
  ``gpt2`` / ``gpt_neox`` / ``opt`` /... GPT-style causal stacks,
  including grouped-query attention (``num_key_value_heads``), gated
  MLPs (``intermediate_size``), and Mixtral-style sparse MoE layers
  (``num_local_experts``, routed with All-to-All);
- **vit** — Vision Transformer encoders (patch embedding + encoder
  stack + classification head);
- **unet** — diffusers-style ``UNet2DConditionModel`` configs
  (down/mid/up resnet blocks with cross-attention transformer blocks);
- **dlrm** — a recommendation-model spec (``model_type: "dlrm"``) with
  table-sharded embedding bags exchanged via All-to-All and
  data-parallel bottom/top MLPs.

Runtime knobs that are not architecture (batch size, sequence length,
activation dtype) come in through :class:`IngestOptions`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.frontend.ir import (
    FrontendError,
    OpGraph,
    OpGraphBuilder,
    OpKind,
    attention_flops,
    conv2d_flops,
    matmul_flops,
)

#: ``model_type`` values normalized to the GPT-style decoder family.
DECODER_MODEL_TYPES = frozenset({
    "llama", "mistral", "mixtral", "qwen2", "gemma", "phi",
    "gpt2", "gpt_neox", "gptj", "gpt_bigcode", "opt", "bloom", "falcon",
})


@dataclass(frozen=True)
class IngestOptions:
    """Runtime knobs applied on top of an architecture config."""

    batch: int = 1
    seq_len: int = 0          # 0 = the config's max position / default
    dtype_bytes: int = 2
    image_size: int = 0       # 0 = the config's image/sample size

    def __post_init__(self) -> None:
        if self.batch < 1:
            raise FrontendError(f"batch must be >= 1, got {self.batch}")
        if self.seq_len < 0 or self.image_size < 0:
            raise FrontendError("seq_len/image_size must be >= 0")
        if self.dtype_bytes < 1:
            raise FrontendError(
                f"dtype_bytes must be >= 1, got {self.dtype_bytes}")


def load_config(source: Union[str, Path, Dict[str, Any]]) -> Dict[str, Any]:
    """Load an HF-style config from a dict, JSON string, or file path."""
    if isinstance(source, dict):
        return dict(source)
    text = str(source)
    if text.lstrip().startswith("{"):
        raw = text
    else:
        path = Path(text)
        if not path.exists():
            raise FrontendError(f"model spec file not found: {path}")
        raw = path.read_text()
    try:
        config = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise FrontendError(f"model spec is not valid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise FrontendError(
            f"model spec must be a JSON object, got {type(config).__name__}")
    return config


def detect_family(config: Dict[str, Any]) -> str:
    """Classify a config dict into an ingestion family.

    Raises :class:`FrontendError` when no family matches — the message
    lists what was looked for, so users can see why detection failed.
    """
    model_type = str(config.get("model_type", "")).lower()
    class_name = str(config.get("_class_name", ""))
    if model_type in DECODER_MODEL_TYPES:
        return "decoder"
    if model_type == "vit" or "patch_size" in config and "image_size" in config:
        return "vit"
    if "UNet" in class_name or model_type == "unet":
        return "unet"
    if model_type == "dlrm" or "num_embedding_tables" in config:
        return "dlrm"
    # Fallback: anything with decoder-shaped keys is treated as a decoder.
    if ("hidden_size" in config or "n_embd" in config) and (
            "num_hidden_layers" in config or "n_layer" in config):
        return "decoder"
    raise FrontendError(
        "cannot classify model spec: expected an HF-style config with "
        f"model_type in {sorted(DECODER_MODEL_TYPES)} / 'vit' / 'dlrm', a "
        "diffusers UNet '_class_name', or decoder keys "
        "(hidden_size/num_hidden_layers); got keys "
        f"{sorted(config)[:12]}")


def _require_int(config: Dict[str, Any], *names: str,
                 default: Optional[int] = None) -> int:
    """First present key among aliases, as a positive int."""
    for name in names:
        if name in config and config[name] is not None:
            try:
                value = int(config[name])
            except (TypeError, ValueError) as exc:
                raise FrontendError(
                    f"config key {name!r} is not an integer: "
                    f"{config[name]!r}") from exc
            if value < 1:
                raise FrontendError(
                    f"config key {name!r} must be >= 1, got {value}")
            return value
    if default is not None:
        return default
    raise FrontendError(
        f"config is missing required key (any of): {names}")


def build_op_graph(
    config: Dict[str, Any],
    options: IngestOptions = IngestOptions(),
) -> OpGraph:
    """Lower an HF-style config dict into an op graph."""
    family = detect_family(config)
    if family == "decoder":
        return _build_decoder(config, options)
    if family == "vit":
        return _build_vit(config, options)
    if family == "unet":
        return _build_unet(config, options)
    return _build_dlrm(config, options)


def ingest_hf_config(
    source: Union[str, Path, Dict[str, Any]],
    options: IngestOptions = IngestOptions(),
) -> OpGraph:
    """Parse + lower in one step (the ``repro ingest`` entry point)."""
    return build_op_graph(load_config(source), options)


# -- decoder family ----------------------------------------------------------------


def _build_decoder(config: Dict[str, Any], options: IngestOptions) -> OpGraph:
    hidden = _require_int(config, "hidden_size", "n_embd", "d_model")
    layers = _require_int(config, "num_hidden_layers", "n_layer", "num_layers")
    heads = _require_int(config, "num_attention_heads", "n_head",
                         default=max(1, hidden // 64))
    kv_heads = _require_int(config, "num_key_value_heads", default=heads)
    vocab = _require_int(config, "vocab_size", default=32000)
    max_pos = _require_int(config, "max_position_embeddings", "n_positions",
                           default=2048)
    inner = config.get("intermediate_size", config.get("n_inner"))
    intermediate = int(inner) if inner else 4 * hidden
    gated = "intermediate_size" in config and str(
        config.get("hidden_act", "")).lower() in ("silu", "swiglu", "geglu")
    num_experts = int(config.get("num_local_experts",
                                 config.get("num_experts", 0)) or 0)
    top_k = int(config.get("num_experts_per_tok", 1) or 1)
    if hidden % heads:
        raise FrontendError(
            f"hidden_size {hidden} is not divisible by "
            f"num_attention_heads {heads}")
    if heads % kv_heads:
        raise FrontendError(
            f"num_attention_heads {heads} is not divisible by "
            f"num_key_value_heads {kv_heads}")

    seq = options.seq_len or min(2048, max_pos)
    batch, dt = options.batch, options.dtype_bytes
    tokens = batch * seq
    act = tokens * hidden * dt
    head_dim = hidden // heads
    kv_dim = kv_heads * head_dim
    name = config.get("_name_or_path") or config.get(
        "model_type", "decoder")

    b = OpGraphBuilder(str(name))
    # Stem: vocab-parallel token embedding (row: the lookup's partial
    # rows reduce across TP ranks, as in Megatron).
    embed = b.add(
        "embed", OpKind.EMBEDDING, flops=tokens * hidden,
        param_bytes=vocab * hidden * dt, output_bytes=act,
        input_bytes=tokens * dt, tp="row")
    prev = embed
    for layer in range(layers):
        ln1 = b.add(f"L{layer}.norm1", OpKind.NORM, deps=(prev,),
                    flops=5 * tokens * hidden, param_bytes=2 * hidden * dt,
                    output_bytes=act, input_bytes=act, layer=layer)
        qkv = b.add(
            f"L{layer}.attn.qkv", OpKind.MATMUL, deps=(ln1,),
            flops=matmul_flops(tokens, hidden, hidden + 2 * kv_dim),
            param_bytes=hidden * (hidden + 2 * kv_dim) * dt,
            output_bytes=tokens * (hidden + 2 * kv_dim) * dt,
            input_bytes=act, layer=layer, tp="col",
            attrs={"heads": heads, "kv_heads": kv_heads})
        scores = b.add(
            f"L{layer}.attn.scores", OpKind.ATTENTION, deps=(qkv,),
            flops=attention_flops(batch, seq, hidden),
            output_bytes=act, input_bytes=act, layer=layer, tp="col")
        out = b.add(
            f"L{layer}.attn.out", OpKind.MATMUL, deps=(scores,),
            flops=matmul_flops(tokens, hidden, hidden),
            param_bytes=hidden * hidden * dt, output_bytes=act,
            input_bytes=act, layer=layer, tp="row")
        ln2 = b.add(f"L{layer}.norm2", OpKind.NORM, deps=(out,),
                    flops=5 * tokens * hidden, param_bytes=2 * hidden * dt,
                    output_bytes=act, input_bytes=act, layer=layer)
        up_cols = 2 * intermediate if gated else intermediate
        moe_layer = num_experts > 1
        route_bytes = tokens * top_k * hidden * dt
        up = b.add(
            f"L{layer}.mlp.up", OpKind.MATMUL, deps=(ln2,),
            flops=top_k * matmul_flops(tokens, hidden, up_cols)
            if moe_layer else matmul_flops(tokens, hidden, up_cols),
            param_bytes=(num_experts if moe_layer else 1)
            * up_cols * hidden * dt,
            output_bytes=tokens * up_cols * dt, input_bytes=act,
            layer=layer, tp="col", routed=moe_layer,
            route_bytes=route_bytes if moe_layer else 0,
            attrs={"experts": num_experts, "top_k": top_k}
            if moe_layer else {})
        down = b.add(
            f"L{layer}.mlp.down", OpKind.MATMUL, deps=(up,),
            flops=top_k * matmul_flops(tokens, intermediate, hidden)
            if moe_layer else matmul_flops(tokens, intermediate, hidden),
            param_bytes=(num_experts if moe_layer else 1)
            * intermediate * hidden * dt,
            output_bytes=act, input_bytes=tokens * intermediate * dt,
            layer=layer, tp="row", routed=moe_layer,
            route_bytes=route_bytes if moe_layer else 0)
        prev = down
    final_norm = b.add("final_norm", OpKind.NORM, deps=(prev,),
                       flops=5 * tokens * hidden,
                       param_bytes=2 * hidden * dt, output_bytes=act,
                       input_bytes=act)
    b.add("lm_head", OpKind.MATMUL, deps=(final_norm,),
          flops=matmul_flops(tokens, hidden, vocab),
          param_bytes=0 if config.get("tie_word_embeddings")
          else vocab * hidden * dt,
          output_bytes=tokens * vocab * dt, input_bytes=act, tp="col")
    return b.build()


# -- ViT family -------------------------------------------------------------------


def _build_vit(config: Dict[str, Any], options: IngestOptions) -> OpGraph:
    hidden = _require_int(config, "hidden_size")
    layers = _require_int(config, "num_hidden_layers")
    intermediate = _require_int(config, "intermediate_size",
                                default=4 * hidden)
    image = options.image_size or _require_int(config, "image_size",
                                               default=224)
    patch = _require_int(config, "patch_size", default=16)
    channels = _require_int(config, "num_channels", default=3)
    num_labels = _require_int(config, "num_labels", default=1000)
    if image % patch:
        raise FrontendError(
            f"image_size {image} is not divisible by patch_size {patch}")
    seq = (image // patch) ** 2 + 1  # patches + [CLS]
    batch, dt = options.batch, options.dtype_bytes
    tokens = batch * seq
    act = tokens * hidden * dt
    patch_dim = channels * patch * patch

    b = OpGraphBuilder(str(config.get("_name_or_path", "vit")))
    embed = b.add(
        "patch_embed", OpKind.CONV,
        flops=matmul_flops(tokens, patch_dim, hidden),
        param_bytes=patch_dim * hidden * dt, output_bytes=act,
        input_bytes=batch * channels * image * image * dt)
    prev = embed
    for layer in range(layers):
        ln1 = b.add(f"L{layer}.norm1", OpKind.NORM, deps=(prev,),
                    flops=5 * tokens * hidden, param_bytes=2 * hidden * dt,
                    output_bytes=act, input_bytes=act, layer=layer)
        qkv = b.add(f"L{layer}.attn.qkv", OpKind.MATMUL, deps=(ln1,),
                    flops=matmul_flops(tokens, hidden, 3 * hidden),
                    param_bytes=3 * hidden * hidden * dt,
                    output_bytes=3 * act, input_bytes=act, layer=layer,
                    tp="col")
        scores = b.add(f"L{layer}.attn.scores", OpKind.ATTENTION,
                       deps=(qkv,), flops=attention_flops(batch, seq, hidden),
                       output_bytes=act, input_bytes=act, layer=layer,
                       tp="col")
        out = b.add(f"L{layer}.attn.out", OpKind.MATMUL, deps=(scores,),
                    flops=matmul_flops(tokens, hidden, hidden),
                    param_bytes=hidden * hidden * dt, output_bytes=act,
                    input_bytes=act, layer=layer, tp="row")
        ln2 = b.add(f"L{layer}.norm2", OpKind.NORM, deps=(out,),
                    flops=5 * tokens * hidden, param_bytes=2 * hidden * dt,
                    output_bytes=act, input_bytes=act, layer=layer)
        fc1 = b.add(f"L{layer}.mlp.fc1", OpKind.MATMUL, deps=(ln2,),
                    flops=matmul_flops(tokens, hidden, intermediate),
                    param_bytes=hidden * intermediate * dt,
                    output_bytes=tokens * intermediate * dt,
                    input_bytes=act, layer=layer, tp="col")
        fc2 = b.add(f"L{layer}.mlp.fc2", OpKind.MATMUL, deps=(fc1,),
                    flops=matmul_flops(tokens, intermediate, hidden),
                    param_bytes=intermediate * hidden * dt,
                    output_bytes=act,
                    input_bytes=tokens * intermediate * dt, layer=layer,
                    tp="row")
        prev = fc2
    final = b.add("final_norm", OpKind.NORM, deps=(prev,),
                  flops=5 * tokens * hidden, param_bytes=2 * hidden * dt,
                  output_bytes=act, input_bytes=act)
    b.add("classifier", OpKind.MATMUL, deps=(final,),
          flops=matmul_flops(batch, hidden, num_labels),
          param_bytes=hidden * num_labels * dt,
          output_bytes=batch * num_labels * dt, input_bytes=act)
    return b.build()


# -- diffusion U-Net family --------------------------------------------------------


def _build_unet(config: Dict[str, Any], options: IngestOptions) -> OpGraph:
    channels = list(config.get("block_out_channels", (320, 640, 1280, 1280)))
    if not channels or any(int(c) < 1 for c in channels):
        raise FrontendError(
            f"block_out_channels must be positive ints, got {channels}")
    channels = [int(c) for c in channels]
    layers_per_block = _require_int(config, "layers_per_block", default=2)
    sample = options.image_size or _require_int(config, "sample_size",
                                                default=64)
    in_channels = _require_int(config, "in_channels", default=4)
    cross_dim = _require_int(config, "cross_attention_dim", default=768)
    text_len = _require_int(config, "encoder_seq_len", default=77)
    down_types = config.get(
        "down_block_types",
        ["CrossAttnDownBlock2D"] * (len(channels) - 1) + ["DownBlock2D"])
    if len(down_types) != len(channels):
        raise FrontendError(
            f"down_block_types lists {len(down_types)} blocks but "
            f"block_out_channels has {len(channels)} levels")
    batch, dt = options.batch, options.dtype_bytes

    b = OpGraphBuilder(str(config.get("_class_name", "unet")))

    def resnet(level: int, idx: int, c_in: int, c_out: int, res: int,
               deps, tag: str) -> int:
        conv1 = b.add(
            f"{tag}{level}.res{idx}.conv1", OpKind.CONV, deps=deps,
            flops=conv2d_flops(batch, c_in, c_out, 3, res, res),
            param_bytes=c_in * c_out * 9 * dt,
            output_bytes=batch * c_out * res * res * dt,
            input_bytes=batch * c_in * res * res * dt, layer=level)
        return b.add(
            f"{tag}{level}.res{idx}.conv2", OpKind.CONV, deps=(conv1,),
            flops=conv2d_flops(batch, c_out, c_out, 3, res, res),
            param_bytes=c_out * c_out * 9 * dt,
            output_bytes=batch * c_out * res * res * dt,
            input_bytes=batch * c_out * res * res * dt, layer=level)

    def attn_block(level: int, idx: int, c: int, res: int, deps,
                   tag: str) -> int:
        seq = res * res
        act = batch * seq * c * dt
        self_attn = b.add(
            f"{tag}{level}.attn{idx}.self", OpKind.ATTENTION, deps=deps,
            flops=attention_flops(batch, seq, c)
            + matmul_flops(batch * seq, c, 4 * c),
            param_bytes=4 * c * c * dt, output_bytes=act, input_bytes=act,
            layer=level, tp="col")
        cross = b.add(
            f"{tag}{level}.attn{idx}.cross", OpKind.ATTENTION,
            deps=(self_attn,),
            flops=4 * batch * seq * text_len * c
            + matmul_flops(batch * text_len, cross_dim, 2 * c)
            + matmul_flops(batch * seq, c, 2 * c),
            param_bytes=2 * (cross_dim + c) * c * dt, output_bytes=act,
            input_bytes=act, layer=level, tp="col")
        return b.add(
            f"{tag}{level}.attn{idx}.ff", OpKind.MATMUL, deps=(cross,),
            flops=matmul_flops(batch * seq, c, 8 * c),
            param_bytes=8 * c * c * dt, output_bytes=act, input_bytes=act,
            layer=level, tp="row")

    conv_in = b.add(
        "conv_in", OpKind.CONV,
        flops=conv2d_flops(batch, in_channels, channels[0], 3, sample,
                           sample),
        param_bytes=in_channels * channels[0] * 9 * dt,
        output_bytes=batch * channels[0] * sample * sample * dt,
        input_bytes=batch * in_channels * sample * sample * dt)
    prev = conv_in
    skips = []  # (level, channels, resolution, node)
    c_in = channels[0]
    for level, c_out in enumerate(channels):
        res = max(1, sample >> level)
        has_attn = "CrossAttn" in str(down_types[level])
        for idx in range(layers_per_block):
            prev = resnet(level, idx, c_in if idx == 0 else c_out, c_out,
                          res, (prev,), "down")
            if has_attn:
                prev = attn_block(level, idx, c_out, res, (prev,), "down")
        skips.append((level, c_out, res, prev))
        c_in = c_out

    mid_res = max(1, sample >> (len(channels) - 1))
    mid_c = channels[-1]
    prev = resnet(len(channels) - 1, layers_per_block, mid_c, mid_c,
                  mid_res, (prev,), "mid")
    prev = attn_block(len(channels) - 1, layers_per_block, mid_c, mid_res,
                      (prev,), "mid")
    prev = resnet(len(channels) - 1, layers_per_block + 1, mid_c, mid_c,
                  mid_res, (prev,), "mid")

    for level, c_out, res, skip in reversed(skips):
        has_attn = "CrossAttn" in str(down_types[level])
        for idx in range(layers_per_block):
            # Skip concat doubles the input channel count.
            prev = resnet(level, layers_per_block + 2 + idx, 2 * c_out,
                          c_out, res, (prev, skip), "up")
            if has_attn:
                prev = attn_block(level, layers_per_block + 2 + idx, c_out,
                                  res, (prev,), "up")
    b.add("conv_out", OpKind.CONV, deps=(prev,),
          flops=conv2d_flops(batch, channels[0], in_channels, 3, sample,
                             sample),
          param_bytes=channels[0] * in_channels * 9 * dt,
          output_bytes=batch * in_channels * sample * sample * dt,
          input_bytes=batch * channels[0] * sample * sample * dt)
    return b.build()


# -- DLRM family -------------------------------------------------------------------


def _build_dlrm(config: Dict[str, Any], options: IngestOptions) -> OpGraph:
    tables = _require_int(config, "num_embedding_tables", "num_tables")
    emb_dim = _require_int(config, "embedding_dim", default=128)
    rows = _require_int(config, "rows_per_table", default=1_000_000)
    bottom = [int(x) for x in config.get("bottom_mlp", (13, 512, 256, 128))]
    top = [int(x) for x in config.get("top_mlp", (479, 1024, 1024, 256, 1))]
    if len(bottom) < 2 or len(top) < 2:
        raise FrontendError("bottom_mlp/top_mlp need at least two widths")
    batch, dt = options.batch, 4  # DLRM trains in fp32 (paper Table III)

    b = OpGraphBuilder(str(config.get("_name_or_path", "dlrm")))
    prev = None
    for i in range(len(bottom) - 1):
        prev = b.add(
            f"bot_mlp.fc{i}", OpKind.MATMUL,
            deps=(prev,) if prev is not None else (),
            flops=matmul_flops(batch, bottom[i], bottom[i + 1]),
            param_bytes=bottom[i] * bottom[i + 1] * dt,
            output_bytes=batch * bottom[i + 1] * dt,
            input_bytes=batch * bottom[i] * dt)
    lookup = b.add(
        "emb_lookup", OpKind.EMBEDDING, deps=(prev,),
        flops=batch * tables * emb_dim,
        param_bytes=tables * rows * emb_dim * dt,
        output_bytes=batch * tables * emb_dim * dt,
        input_bytes=batch * tables * 8, routed=True,
        route_bytes=batch * tables * emb_dim * dt,
        attrs={"tables": tables, "emb_dim": emb_dim})
    interact = b.add(
        "interaction", OpKind.ELEMENTWISE, deps=(prev, lookup),
        flops=batch * tables * tables * emb_dim,
        output_bytes=batch * top[0] * dt,
        input_bytes=batch * tables * emb_dim * dt)
    prev = interact
    for i in range(len(top) - 1):
        prev = b.add(
            f"top_mlp.fc{i}", OpKind.MATMUL, deps=(prev,),
            flops=matmul_flops(batch, top[i], top[i + 1]),
            param_bytes=top[i] * top[i + 1] * dt,
            output_bytes=batch * top[i + 1] * dt,
            input_bytes=batch * top[i] * dt)
    return b.build()


def default_options_for(config: Dict[str, Any]) -> IngestOptions:
    """Family-appropriate default runtime knobs."""
    family = detect_family(config)
    if family == "dlrm":
        return IngestOptions(batch=64, dtype_bytes=4)
    if family in ("vit", "unet"):
        return IngestOptions(batch=8)
    return IngestOptions(batch=1)

"""Normalized operator-graph IR — the frontend's internal model form.

Every ingestion path (HF ``config.json``, operator-graph JSON, the zoo)
lowers into an :class:`OpGraph`: a validated DAG of :class:`OpNode`
records carrying *analytic* per-op costs — forward FLOPs, parameter
bytes, and activation output bytes — derived from tensor shapes with the
same accounting idioms as :mod:`repro.workload.models` (2 FLOPs per
multiply-accumulate, backward = 2x forward).

The IR is deliberately simulator-agnostic: it knows nothing about
topologies or collectives.  Parallelism is a *planner* concern
(:mod:`repro.frontend.planner`); ops merely advertise how they can be
sharded through their ``tp`` strategy:

- ``"col"`` — output-dimension sharding (Megatron column parallel):
  comm-free forward, partial-sum All-Reduce in the backward;
- ``"row"`` — input-dimension sharding (row parallel): partial-sum
  All-Reduce in the forward, comm-free backward;
- ``"none"`` — replicated on every tensor-parallel rank.

Expert/table-sharded ops (MoE FFNs, DLRM embedding bags) set
``routed=True`` and carry a per-rank All-to-All payload in
``route_bytes``; the planner turns them into dispatch/combine
All-to-Alls over the expert-parallel dimensions.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


class FrontendError(ValueError):
    """Raised for malformed model specs or un-plannable op graphs."""


class OpKind(enum.Enum):
    """Operation class of an op-graph node."""

    MATMUL = "matmul"
    ATTENTION = "attention"
    CONV = "conv"
    NORM = "norm"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"


_TP_STRATEGIES = ("none", "col", "row")


# -- analytic cost helpers (2 FLOPs per MAC) ----------------------------------------


def matmul_flops(m: int, k: int, n: int) -> int:
    """GEMM cost: ``(m x k) @ (k x n)``."""
    return 2 * m * k * n


def attention_flops(batch: int, seq: int, hidden: int) -> int:
    """Score + context matmuls: ``QK^T`` plus ``scores @ V``."""
    return 4 * batch * seq * seq * hidden


def conv2d_flops(batch: int, c_in: int, c_out: int, kernel: int,
                 out_h: int, out_w: int) -> int:
    """Direct convolution cost at the output resolution."""
    return 2 * batch * c_in * c_out * kernel * kernel * out_h * out_w


@dataclass
class OpNode:
    """One operator in a model's dataflow graph.

    Attributes:
        op_id: Unique (per graph) integer id.
        name: Human-readable label, e.g. ``"L3.attn.qkv"``.
        kind: Operation class.
        deps: Ids of producer ops.
        flops: Forward FLOPs of the *unsharded* op at the ingest batch.
        param_bytes: Parameter footprint (0 for activation-only ops).
        output_bytes: Activation output size per replica.
        input_bytes: Primary-input activation size (used to price the
            backward tensor-parallel All-Reduce of column-parallel ops).
        layer: Repeated-block index for layer grouping (``None`` = stem /
            head ops outside the repeated stack).
        tp: Tensor-parallel strategy — ``"none"`` | ``"col"`` | ``"row"``.
        routed: Expert/table-sharded op exchanged with All-to-All.
        route_bytes: Per-rank All-to-All payload for routed ops.
        attrs: Free-form metadata (head counts, shapes, ...).
    """

    op_id: int
    name: str
    kind: OpKind
    deps: Tuple[int, ...] = ()
    flops: int = 0
    param_bytes: int = 0
    output_bytes: int = 0
    input_bytes: int = 0
    layer: Optional[int] = None
    tp: str = "none"
    routed: bool = False
    route_bytes: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.deps = tuple(self.deps)

    def validate(self) -> None:
        """Per-node consistency; raises :class:`FrontendError`."""
        if self.op_id < 0:
            raise FrontendError(f"op_id must be >= 0, got {self.op_id}")
        for fname in ("flops", "param_bytes", "output_bytes", "input_bytes",
                      "route_bytes"):
            if getattr(self, fname) < 0:
                raise FrontendError(
                    f"op {self.op_id} ({self.name!r}): {fname} must be >= 0, "
                    f"got {getattr(self, fname)}")
        if self.tp not in _TP_STRATEGIES:
            raise FrontendError(
                f"op {self.op_id} ({self.name!r}): unknown tp strategy "
                f"{self.tp!r}; expected one of {_TP_STRATEGIES}")
        if self.op_id in self.deps:
            raise FrontendError(
                f"op {self.op_id} ({self.name!r}) depends on itself")
        if self.routed and self.route_bytes <= 0:
            raise FrontendError(
                f"op {self.op_id} ({self.name!r}) is routed but has no "
                "route_bytes payload")

    def to_dict(self) -> Dict[str, Any]:
        """Compact dict form (defaults elided) for the opgraph JSON format."""
        out: Dict[str, Any] = {"id": self.op_id, "kind": self.kind.value}
        if self.name:
            out["name"] = self.name
        if self.deps:
            out["deps"] = list(self.deps)
        for key, value in (("flops", self.flops),
                           ("param_bytes", self.param_bytes),
                           ("output_bytes", self.output_bytes),
                           ("input_bytes", self.input_bytes)):
            if value:
                out[key] = value
        if self.layer is not None:
            out["layer"] = self.layer
        if self.tp != "none":
            out["tp"] = self.tp
        if self.routed:
            out["routed"] = True
            out["route_bytes"] = self.route_bytes
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class OpGraph:
    """A validated model dataflow DAG with aggregate-cost queries.

    ``validate=False`` defers structural checks so :func:`repro.workload.
    lint.lint_op_graph` can *report* problems (dangling deps, cycles)
    instead of raising; a deferred graph must not be planned.
    """

    def __init__(self, name: str, ops: Sequence[OpNode] = (), *,
                 validate: bool = True) -> None:
        self.name = name
        self.ops: List[OpNode] = list(ops)
        self._by_id: Dict[int, OpNode] = {}
        for op in self.ops:
            if op.op_id in self._by_id and validate:
                raise FrontendError(
                    f"duplicate op id {op.op_id} in graph {name!r}")
            self._by_id[op.op_id] = op
        if validate:
            self.validate()

    # -- structure ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[OpNode]:
        return iter(self.ops)

    def op(self, op_id: int) -> OpNode:
        return self._by_id[op_id]

    def validate(self) -> None:
        """Full structural validation; raises :class:`FrontendError`."""
        seen: set = set()
        for op in self.ops:
            op.validate()
            if op.op_id in seen:
                raise FrontendError(
                    f"duplicate op id {op.op_id} in graph {self.name!r}")
            seen.add(op.op_id)
        for op in self.ops:
            for dep in op.deps:
                if dep not in self._by_id:
                    raise FrontendError(
                        f"op {op.op_id} ({op.name!r}) depends on unknown "
                        f"op {dep}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = {op.op_id: len(op.deps) for op in self.ops}
        children: Dict[int, List[int]] = {}
        for op in self.ops:
            for dep in op.deps:
                children.setdefault(dep, []).append(op.op_id)
        queue = deque(oid for oid, deg in indegree.items() if deg == 0)
        visited = 0
        while queue:
            oid = queue.popleft()
            visited += 1
            for child in children.get(oid, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if visited != len(self.ops):
            cyclic = sorted(oid for oid, deg in indegree.items() if deg > 0)
            raise FrontendError(
                f"graph {self.name!r} contains a cycle involving ops "
                f"{cyclic[:10]}")

    def topological_order(self) -> List[OpNode]:
        """Deterministic topological order (ties broken by op id)."""
        import heapq

        indegree = {op.op_id: len(op.deps) for op in self.ops}
        children: Dict[int, List[int]] = {}
        for op in self.ops:
            for dep in op.deps:
                children.setdefault(dep, []).append(op.op_id)
        ready = [oid for oid, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[OpNode] = []
        while ready:
            oid = heapq.heappop(ready)
            order.append(self._by_id[oid])
            for child in children.get(oid, ()):
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, child)
        return order

    # -- aggregate queries ---------------------------------------------------------

    def total_flops(self) -> int:
        return sum(op.flops for op in self.ops)

    def total_param_bytes(self) -> int:
        return sum(op.param_bytes for op in self.ops)

    def total_params(self, dtype_bytes: int = 2) -> int:
        return self.total_param_bytes() // max(1, dtype_bytes)

    @property
    def num_layers(self) -> int:
        layers = [op.layer for op in self.ops if op.layer is not None]
        return max(layers) + 1 if layers else 0

    def layer_groups(self) -> List[Tuple[Optional[int], List[OpNode]]]:
        """Ops grouped by layer index, in graph order.

        The stem (``layer=None`` ops before the first layer) leads; a
        tail group holds ``layer=None`` ops after the stack (the head).
        """
        groups: List[Tuple[Optional[int], List[OpNode]]] = []
        current_key: Any = object()  # sentinel != None and != any int
        for op in self.ops:
            if not groups or op.layer != current_key:
                groups.append((op.layer, [op]))
                current_key = op.layer
            else:
                groups[-1][1].append(op)
        return groups

    def has_tensor_parallel_ops(self) -> bool:
        return any(op.tp != "none" for op in self.ops)

    def has_routed_ops(self) -> bool:
        return any(op.routed for op in self.ops)

    def summary(self) -> Dict[str, Any]:
        """Aggregate statistics for CLI / report output."""
        by_kind: Dict[str, int] = {}
        for op in self.ops:
            by_kind[op.kind.value] = by_kind.get(op.kind.value, 0) + 1
        return {
            "name": self.name,
            "ops": len(self.ops),
            "ops_by_kind": by_kind,
            "layers": self.num_layers,
            "total_gflops": round(self.total_flops() / 1e9, 3),
            "total_params": self.total_params(),
            "param_gib": round(self.total_param_bytes() / (1 << 30), 3),
            "tensor_parallel_ops": sum(
                1 for op in self.ops if op.tp != "none"),
            "routed_ops": sum(1 for op in self.ops if op.routed),
        }


class OpGraphBuilder:
    """Incremental :class:`OpGraph` construction with id assignment.

    Mirrors :class:`repro.workload.generators.TraceBuilder` so parser
    code reads the same way as the builtin generators.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._ops: List[OpNode] = []

    def add(self, name: str, kind: OpKind, *, deps: Sequence[int] = (),
            flops: int = 0, param_bytes: int = 0, output_bytes: int = 0,
            input_bytes: int = 0, layer: Optional[int] = None,
            tp: str = "none", routed: bool = False, route_bytes: int = 0,
            attrs: Optional[Dict[str, Any]] = None) -> int:
        op = OpNode(
            op_id=len(self._ops), name=name, kind=kind, deps=tuple(deps),
            flops=flops, param_bytes=param_bytes, output_bytes=output_bytes,
            input_bytes=input_bytes, layer=layer, tp=tp, routed=routed,
            route_bytes=route_bytes, attrs=dict(attrs or {}),
        )
        self._ops.append(op)
        return op.op_id

    def build(self) -> OpGraph:
        return OpGraph(self.name, self._ops)

"""Roofline compute model (paper Sec. IV-A).

Compute nodes carry FLOP counts and tensor sizes; the simulator turns them
into time with a roofline: an operation is either compute-bound
(``flops / peak``) or memory-bound (``bytes / hbm_bandwidth``), whichever
is larger, plus a fixed per-kernel launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RooflineCompute:
    """Roofline NPU compute model.

    Attributes:
        peak_tflops: Peak throughput in TFLOP/s (the paper uses 234 for an
            A100 in Sec. V and 2048 for the futuristic GPU of Table V).
        mem_bandwidth_gbps: Local HBM bandwidth feeding the compute units,
            GB/s.  ``None`` disables the memory-bound arm.
        kernel_overhead_ns: Fixed launch overhead added to every node.
    """

    peak_tflops: float
    mem_bandwidth_gbps: float = 0.0
    kernel_overhead_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0:
            raise ValueError(f"peak_tflops must be positive, got {self.peak_tflops}")
        if self.mem_bandwidth_gbps < 0:
            raise ValueError(
                f"mem_bandwidth_gbps must be >= 0, got {self.mem_bandwidth_gbps}"
            )
        if self.kernel_overhead_ns < 0:
            raise ValueError(
                f"kernel_overhead_ns must be >= 0, got {self.kernel_overhead_ns}"
            )

    def compute_time_ns(self, flops: int, tensor_bytes: int = 0) -> float:
        """Execution time of one compute node in nanoseconds.

        1 TFLOP/s == 1e3 FLOP/ns, and 1 GB/s == 1 byte/ns, so both arms
        reduce to simple divisions.
        """
        if flops < 0 or tensor_bytes < 0:
            raise ValueError("flops and tensor_bytes must be >= 0")
        flops_time = flops / (self.peak_tflops * 1e3)
        mem_time = (
            tensor_bytes / self.mem_bandwidth_gbps
            if self.mem_bandwidth_gbps > 0
            else 0.0
        )
        return self.kernel_overhead_ns + max(flops_time, mem_time)

    def operational_intensity_break(self) -> float:
        """FLOP/byte at which an op transitions to compute-bound.

        Returns ``inf`` when no memory arm is configured.
        """
        if self.mem_bandwidth_gbps <= 0:
            return float("inf")
        return (self.peak_tflops * 1e3) / self.mem_bandwidth_gbps

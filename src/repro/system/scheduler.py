"""Chunk-to-dimension scheduling policies.

Collectives are split into chunks, and each chunk must visit every active
dimension of its communicator.  *In which order* is the scheduling
decision, fixed per chunk when the chunk launches:

- :class:`BaselineScheduler` — the paper's baseline multi-rail hierarchical
  order: every chunk traverses dims in ascending index order (Dim 1 -> Dim
  N for Reduce-Scatter, reversed for the All-Gather half).
- :class:`ThemisScheduler` — the bandwidth-aware policy of Themis
  (Rashidi et al., ISCA'22; paper Sec. V-A).  It solves the order-mix
  balancing problem — what fraction of the payload should traverse the
  dimensions in each candidate order so the worst per-dimension load is
  minimized — and executes the collective in the fluid limit an ideal
  chunked schedule converges to.  Mixing orders across chunks balances
  per-dimension load toward the aggregate-bandwidth bound: a 1 GB
  All-Reduce on the paper's Conv-4D (250+200+100+50 GB/s) lands within a
  few percent of the W-1D-600 wafer-scale time, the headline observation
  of Fig. 9(a).

Schedulers see the communicator as a mapping ``dim index -> DimSpec``
whose sizes are the *effective* per-dimension group sizes — for
sub-dimension communicators (e.g. an MP group of 16 inside a 512-NPU
wafer switch) the effective size is smaller than the physical dimension.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.network.analytical import AnalyticalNetwork
from repro.network.topology import DimSpec
from repro.system.phases import (
    PhaseKind,
    phase_busy_ns,
    phase_duration_ns,
    phase_traffic_bytes,
)

# Above this many dimensions, evaluating every permutation is replaced by a
# first-dim sweep with shrink-optimal (largest-first) tails.
_EXHAUSTIVE_PERMUTATION_LIMIT = 5

DimSpecs = Mapping[int, DimSpec]


def chunk_work_vector(
    dim_specs: DimSpecs,
    order: Sequence[int],
    kind: PhaseKind,
    payload_bytes: float,
    roundtrip: bool,
) -> Dict[int, float]:
    """Per-dimension port time one chunk adds when traversing ``order``.

    ``roundtrip`` doubles each dim's contribution — the All-Gather half of
    an All-Reduce replays the Reduce-Scatter order reversed with identical
    per-dimension durations.
    """
    payload = payload_bytes
    work: Dict[int, float] = {}
    for d in order:
        spec = dim_specs[d]
        busy = phase_busy_ns(spec, kind, payload)
        work[d] = work.get(d, 0.0) + (2 * busy if roundtrip else busy)
        if kind is PhaseKind.REDUCE_SCATTER:
            payload /= spec.size
        elif kind is PhaseKind.ALL_GATHER:
            payload *= spec.size
    return work


def chunk_wall_vector(
    dim_specs: DimSpecs,
    order: Sequence[int],
    kind: PhaseKind,
    payload_bytes: float,
    roundtrip: bool,
) -> Dict[int, float]:
    """Per-dimension wall time (serialization + latency) of one chunk."""
    payload = payload_bytes
    wall: Dict[int, float] = {}
    for d in order:
        spec = dim_specs[d]
        duration = phase_duration_ns(spec, kind, payload)
        wall[d] = wall.get(d, 0.0) + (2 * duration if roundtrip else duration)
        if kind is PhaseKind.REDUCE_SCATTER:
            payload /= spec.size
        elif kind is PhaseKind.ALL_GATHER:
            payload *= spec.size
    return wall


def chunk_traffic_vector(
    dim_specs: DimSpecs,
    order: Sequence[int],
    kind: PhaseKind,
    payload_bytes: float,
    roundtrip: bool,
) -> Dict[int, float]:
    """Per-dimension serialized bytes of one chunk traversing ``order``."""
    payload = payload_bytes
    traffic: Dict[int, float] = {}
    for d in order:
        spec = dim_specs[d]
        amount = phase_traffic_bytes(spec, kind, payload)
        traffic[d] = traffic.get(d, 0.0) + (2 * amount if roundtrip else amount)
        if kind is PhaseKind.REDUCE_SCATTER:
            payload /= spec.size
        elif kind is PhaseKind.ALL_GATHER:
            payload *= spec.size
    return traffic


class BalancedPlan:
    """Fluid-limit collective plan: balanced per-dim loads plus a fill term.

    ``loads_ns`` is the total port time each dimension serializes for the
    whole collective under the balanced order mix; ``fill_ns`` is the
    pipeline ramp (the draining chunk's path outside its heaviest dim);
    ``traffic_bytes`` is the per-dimension serialized byte count for
    reporting.
    """

    __slots__ = ("loads_ns", "fill_ns", "traffic_bytes")

    def __init__(self, loads_ns: Dict[int, float], fill_ns: float,
                 traffic_bytes: Dict[int, float]) -> None:
        self.loads_ns = loads_ns
        self.fill_ns = fill_ns
        self.traffic_bytes = traffic_bytes


class ChunkScheduler(abc.ABC):
    """Strategy interface: choose a chunk's full dimension order."""

    name: str = "abstract"

    @abc.abstractmethod
    def plan_order(
        self,
        network: AnalyticalNetwork,
        rep_npu: int,
        dims: Sequence[int],
        kind: PhaseKind,
        payload_bytes: float,
        pending_load: Mapping[int, float],
        roundtrip: bool = False,
        dim_specs: DimSpecs = None,
    ) -> Tuple[int, ...]:
        """Return the dimension order the chunk will traverse.

        Args:
            network: Analytical backend (for port backlogs).
            rep_npu: Canonical representative NPU whose ports this
                collective occupies.
            dims: Active dimension indices (never empty).
            kind: Phase kind of the (first) traversal pass.
            payload_bytes: Chunk payload entering the first phase.
            pending_load: Per-dim port time already planned by earlier
                chunks of in-flight collectives but not yet reserved.
            roundtrip: True when the traversal is the RS half of an
                All-Reduce (the AG half will mirror it).
            dim_specs: Effective per-dim specs of the communicator;
                defaults to the physical topology's.
        """


def _resolve_specs(network: AnalyticalNetwork, dim_specs: DimSpecs) -> DimSpecs:
    return dim_specs if dim_specs is not None else network.topology.dims


class BaselineScheduler(ChunkScheduler):
    """Fixed hierarchical order: ascending dimension index, every chunk."""

    name = "baseline"

    def plan_order(
        self,
        network: AnalyticalNetwork,
        rep_npu: int,
        dims: Sequence[int],
        kind: PhaseKind,
        payload_bytes: float,
        pending_load: Mapping[int, float],
        roundtrip: bool = False,
        dim_specs: DimSpecs = None,
    ) -> Tuple[int, ...]:
        if not dims:
            raise ValueError("no dimensions to order")
        return tuple(sorted(dims))


class ThemisScheduler(ChunkScheduler):
    """Bandwidth-balanced order assignment (fluid limit).

    :meth:`balanced_plan` solves, once per (communicator, payload)
    signature, a small linear program over candidate dimension orders —
    exactly the load-balancing problem Themis's greedy chunk placement
    approximates — and returns balanced per-dimension loads for fluid
    execution.  Without scipy it returns ``None`` and execution falls back
    to chunk-by-chunk traversal with :meth:`plan_order`'s greedy
    bottleneck minimization.
    """

    name = "themis"

    def __init__(self) -> None:
        self._mix_cache: Dict[tuple, List[Tuple[Tuple[int, ...], float]]] = {}
        # chunk_work_vector is pure in (specs, order, kind, payload,
        # roundtrip); the greedy fallback re-evaluates every candidate
        # order for every chunk of every collective, so memoise the work
        # vectors per exact signature (payload kept as the exact float —
        # unlike the LP mix there is no rounding, results stay bit-exact).
        self._work_cache: Dict[tuple, Dict[Tuple[int, ...], Dict[int, float]]] = {}

    def balanced_plan(
        self,
        network: AnalyticalNetwork,
        dims: Sequence[int],
        kind: PhaseKind,
        payload_bytes: float,
        num_chunks: int,
        roundtrip: bool = False,
        dim_specs: DimSpecs = None,
    ):
        """Balanced per-dim loads for the whole collective, or ``None``.

        Latency steps are charged per chunk (each of the ``num_chunks``
        pipelined chunks pays its phase latencies), matching what the
        chunk-level execution would enqueue in total.
        """
        specs = _resolve_specs(network, dim_specs)
        mix = self._mix(specs, sorted(dims), kind,
                        payload_bytes / num_chunks, roundtrip)
        if not mix:
            return None
        chunk_payload = payload_bytes / num_chunks
        loads: Dict[int, float] = {d: 0.0 for d in dims}
        traffic: Dict[int, float] = {d: 0.0 for d in dims}
        fill = float("inf")
        for order, fraction in mix:
            work = chunk_work_vector(specs, order, kind, chunk_payload, roundtrip)
            bytes_moved = chunk_traffic_vector(
                specs, order, kind, chunk_payload, roundtrip
            )
            for d in order:
                loads[d] += fraction * num_chunks * work[d]
                traffic[d] += fraction * num_chunks * bytes_moved[d]
            # Pipeline ramp of one chunk on this order: its wall-time path
            # (serialization + propagation latency per dim) minus the
            # heaviest per-dim share, which packs inside that dim's port
            # load; in particular a 1-D collective has zero ramp.  With
            # heaviest plans launched first, the draining chunk is the
            # lightest order, so the collective-level fill is the minimum.
            walls = chunk_wall_vector(specs, order, kind, chunk_payload, roundtrip)
            ramp = sum(walls.values()) - max(walls.values()) if walls else 0.0
            fill = min(fill, ramp)
        if fill == float("inf"):
            fill = 0.0
        return BalancedPlan(loads_ns=loads, fill_ns=fill, traffic_bytes=traffic)

    def plan_order(
        self,
        network: AnalyticalNetwork,
        rep_npu: int,
        dims: Sequence[int],
        kind: PhaseKind,
        payload_bytes: float,
        pending_load: Mapping[int, float],
        roundtrip: bool = False,
        dim_specs: DimSpecs = None,
    ) -> Tuple[int, ...]:
        if not dims:
            raise ValueError("no dimensions to order")
        specs = _resolve_specs(network, dim_specs)
        return self._greedy_order(
            network, rep_npu, dims, kind, payload_bytes, pending_load,
            roundtrip, specs,
        )

    # -- LP mix -------------------------------------------------------------------

    def _mix(
        self,
        specs: DimSpecs,
        dims: List[int],
        kind: PhaseKind,
        payload_bytes: float,
        roundtrip: bool,
    ) -> List[Tuple[Tuple[int, ...], float]]:
        signature = (
            tuple(dims), kind, roundtrip, round(payload_bytes, 3),
            tuple(
                (specs[d].size, specs[d].bandwidth_gbps, specs[d].latency_ns)
                for d in dims
            ),
        )
        mix = self._mix_cache.get(signature)
        if mix is None:
            mix = self._solve_mix(specs, dims, kind, payload_bytes, roundtrip)
            self._mix_cache[signature] = mix
        return mix

    def _solve_mix(
        self,
        specs: DimSpecs,
        dims: List[int],
        kind: PhaseKind,
        payload_bytes: float,
        roundtrip: bool,
    ) -> List[Tuple[Tuple[int, ...], float]]:
        """Minimize the worst per-dim load over order fractions; [] if no LP."""
        try:
            from scipy.optimize import linprog
        except ImportError:  # pragma: no cover - scipy is an optional path
            return []
        orders = self._candidate_orders(specs, dims)
        vectors = [
            chunk_work_vector(specs, order, kind, payload_bytes, roundtrip)
            for order in orders
        ]
        n = len(orders)
        # Variables: x_0..x_{n-1} (order fractions), T (bottleneck).
        c = [0.0] * n + [1.0]
        a_ub = []
        for d in dims:
            a_ub.append([vec.get(d, 0.0) for vec in vectors] + [-1.0])
        b_ub = [0.0] * len(dims)
        a_eq = [[1.0] * n + [0.0]]
        result = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=[1.0],
            bounds=[(0, None)] * n + [(0, None)], method="highs",
        )
        if not result.success:  # pragma: no cover - LP is always feasible
            return []
        mix = [
            (order, x)
            for order, x in zip(orders, result.x[:n])
            if x > 1e-9
        ]
        mix.sort(key=lambda item: (-item[1], item[0]))
        return mix

    # -- greedy fallback -------------------------------------------------------------

    def _greedy_order(
        self,
        network: AnalyticalNetwork,
        rep_npu: int,
        dims: Sequence[int],
        kind: PhaseKind,
        payload_bytes: float,
        pending_load: Mapping[int, float],
        roundtrip: bool,
        specs: DimSpecs,
    ) -> Tuple[int, ...]:
        horizon = {
            d: network.port_backlog(rep_npu, d) + pending_load.get(d, 0.0)
            for d in dims
        }
        dims = sorted(dims)
        signature = (
            tuple(dims), kind, roundtrip, payload_bytes,
            tuple(
                (specs[d].size, specs[d].bandwidth_gbps, specs[d].latency_ns)
                for d in dims
            ),
        )
        per_order = self._work_cache.get(signature)
        if per_order is None:
            per_order = self._work_cache[signature] = {}
        best_order: Tuple[int, ...] = ()
        best_key = None
        for order in self._candidate_orders(specs, dims):
            work = per_order.get(order)
            if work is None:
                work = per_order[order] = chunk_work_vector(
                    specs, order, kind, payload_bytes, roundtrip)
            bottleneck = max(horizon[d] + work[d] for d in order)
            key = (bottleneck, sum(work.values()), order)
            if best_key is None or key < best_key:
                best_key = key
                best_order = order
        return best_order

    @staticmethod
    def _candidate_orders(
        specs: DimSpecs, dims: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        dims = sorted(dims)
        if len(dims) <= _EXHAUSTIVE_PERMUTATION_LIMIT:
            return [tuple(p) for p in itertools.permutations(dims)]
        # High-dimensional fallback: sweep the first dim, finish
        # largest-first (the shrink-optimal tail).
        orders = []
        for first in dims:
            rest = sorted(
                (d for d in dims if d != first),
                key=lambda d: (-specs[d].size, d),
            )
            orders.append((first, *rest))
        return orders


_SCHEDULERS = {
    BaselineScheduler.name: BaselineScheduler,
    ThemisScheduler.name: ThemisScheduler,
}


def make_scheduler(name: str) -> ChunkScheduler:
    """Instantiate a scheduler by name ('baseline' or 'themis')."""
    try:
        return _SCHEDULERS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; expected one of {sorted(_SCHEDULERS)}"
        ) from None

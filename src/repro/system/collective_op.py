"""Chunked, scheduled collective operation.

A :class:`CollectiveOperation` models one collective (one ET node issued by
every member of a communicator) over the analytical backend:

1. the payload is split into ``num_chunks`` equal chunks;
2. with the Themis scheduler the whole collective executes in the **fluid
   limit**: the balanced per-dimension loads occupy the representative's
   ports directly, plus a pipeline-fill term;
3. otherwise each chunk asks the :class:`ChunkScheduler` for a full
   dimension order when it launches and commits to it — for All-Reduce the
   order is the Reduce-Scatter pass, and the All-Gather pass replays it
   reversed — with each phase reserving the representative's egress port.

Communicators may span *parts* of dimensions (``group_shape``): an MP
group of 16 NPUs inside a 512-wide wafer switch runs its phases with an
effective dimension size of 16 at the dimension's bandwidth.

Because members of a whole- or sub-dimension communicator are symmetric, a
single representative's ports stand in for every member's: concurrent
collectives contend exactly when they would contend on a real member (same
dims of the same group) and pipeline freely otherwise.  This is the
modeling choice that lets the simulator scale to thousands of NPUs (paper
Sec. IV-C).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.events import EventEngine
from repro.network.analytical import AnalyticalNetwork
from repro.network.topology import CommGroup, DimSpec
from repro.system.phases import (
    PhaseKind,
    phase_busy_ns,
    phase_latency_ns,
    phase_traffic_bytes,
)
from repro.system.scheduler import ChunkScheduler, chunk_work_vector
from repro.trace.node import CollectiveType

DEFAULT_NUM_CHUNKS = 16

_SINGLE_PASS_KIND = {
    CollectiveType.ALL_GATHER: PhaseKind.ALL_GATHER,
    CollectiveType.REDUCE_SCATTER: PhaseKind.REDUCE_SCATTER,
    CollectiveType.ALL_TO_ALL: PhaseKind.ALL_TO_ALL,
}


class _Chunk:
    """One chunk walking its committed phase plan."""

    __slots__ = ("payload", "plan", "position", "ag_shards")

    def __init__(self, payload: float, plan: Tuple[Tuple[int, PhaseKind], ...]) -> None:
        self.payload = payload
        self.plan = plan
        self.position = 0
        self.ag_shards: List[float] = []


class CollectiveOperation:
    """One in-flight collective over a set of topology dimensions.

    Args:
        engine: Shared event engine.
        network: Analytical backend whose ports the phases occupy.
        scheduler: Chunk order-planning policy.
        collective: Pattern (All-Reduce / All-Gather / RS / All-to-All).
        comm_dims: Topology dimension indices the communicator spans.
        rep_npu: Canonical representative NPU (lowest id in the group).
        payload_bytes: Per-NPU payload (see
            :func:`repro.system.phases.decompose_collective` for semantics).
        num_chunks: Pipelining degree.
        group_shape: Effective group size per dimension for sub-dimension
            communicators; defaults to the physical dimension sizes.
        group_members: Member NPU ids, consulted by fault injection so a
            straggler stretches only the collectives it participates in;
            ``None`` conservatively means "any NPU may be a member".
        on_complete: Fired once, when the last chunk finishes.
    """

    def __init__(
        self,
        engine: EventEngine,
        network: AnalyticalNetwork,
        scheduler: ChunkScheduler,
        collective: CollectiveType,
        comm_dims: Sequence[int],
        rep_npu: int,
        payload_bytes: float,
        num_chunks: int = DEFAULT_NUM_CHUNKS,
        group_shape: Optional[Mapping[int, int]] = None,
        group_members: Optional[Sequence[int]] = None,
        on_complete: Optional[Callable[[], None]] = None,
    ) -> None:
        if num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        if payload_bytes < 0:
            raise ValueError(f"negative payload {payload_bytes}")
        self.engine = engine
        self.network = network
        self.scheduler = scheduler
        self.collective = collective
        self.rep_npu = rep_npu
        self.on_complete = on_complete
        self.num_chunks = num_chunks
        self.payload_bytes = payload_bytes
        # Only membership tests are ever needed (fault scoping), so a
        # symbolic CommGroup is kept as-is — materializing a frozenset
        # here would reintroduce an O(group_size) cost per collective.
        if group_members is None or isinstance(group_members, CommGroup):
            self.group_members = group_members
        else:
            self.group_members = frozenset(group_members)
        # Every collective on the same communicator signature derives the
        # same effective specs / active dims / group size, and training
        # loops issue thousands of ops over a handful of communicators —
        # memoise the derivation on the network.  The cached dim_specs
        # mapping is shared (DimSpec is frozen; this class only reads it).
        sig = (
            tuple(sorted(set(comm_dims))),
            tuple(sorted(group_shape.items())) if group_shape else None,
        )
        comm_cache = getattr(network, "_comm_sig_cache", None)
        if comm_cache is None:
            comm_cache = network._comm_sig_cache = {}
        cached = comm_cache.get(sig)
        if cached is None:
            topo = network.topology
            dim_specs: Dict[int, DimSpec] = {}
            for d in sig[0]:
                physical = topo.dims[d]
                size = group_shape.get(d, physical.size) if group_shape else physical.size
                if size > physical.size:
                    raise ValueError(
                        f"group size {size} exceeds dimension {d} size {physical.size}"
                    )
                # A collective loads the dimension symmetrically (every member
                # injects at once), so an oversubscribed fabric caps each
                # member at bandwidth/oversubscription — folded into the
                # effective spec so the phase math and the Themis balancer
                # both see it and route load away from the constrained dim.
                bandwidth = physical.bandwidth_gbps / physical.oversubscription
                if size == physical.size and bandwidth == physical.bandwidth_gbps:
                    dim_specs[d] = physical
                else:
                    dim_specs[d] = dataclasses.replace(
                        physical, size=size, bandwidth_gbps=bandwidth,
                        oversubscription=1.0,
                    )
            active_dims = tuple(
                d for d, spec in dim_specs.items() if spec.size > 1
            )
            group_size = 1
            for d in active_dims:
                group_size *= dim_specs[d].size
            cached = comm_cache[sig] = (dim_specs, active_dims, group_size)
        self.dim_specs: Dict[int, DimSpec] = cached[0]
        self.active_dims: Tuple[int, ...] = cached[1]
        self.group_size: int = cached[2]
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.traffic_by_dim: Dict[int, float] = {d: 0.0 for d in self.active_dims}
        self._chunks_done = 0
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Begin the collective at the current simulation time."""
        if self._started:
            raise RuntimeError("collective started twice")
        self._started = True
        self.start_time = self.engine.now
        if not self.active_dims or self.payload_bytes == 0:
            # Degenerate communicator: complete asynchronously with no cost.
            self.engine.schedule(0.0, self._finish)
            return
        first_kind = (
            PhaseKind.REDUCE_SCATTER
            if self.collective is CollectiveType.ALL_REDUCE
            else _SINGLE_PASS_KIND[self.collective]
        )
        roundtrip = self.collective is CollectiveType.ALL_REDUCE
        chunk_payload = self._initial_chunk_payload()
        balanced = getattr(self.scheduler, "balanced_plan", None)
        if balanced is not None and self.network.faults is not None:
            # The fluid limit prices the whole collective against the
            # bandwidths seen at start; with fault injection active the
            # capacity is time-varying, so fall back to chunk-by-chunk
            # execution, which re-prices every phase when it launches.
            balanced = None
        if balanced is not None:
            plan = balanced(
                network=self.network,
                dims=self.active_dims,
                kind=first_kind,
                payload_bytes=chunk_payload * self.num_chunks,
                num_chunks=self.num_chunks,
                roundtrip=roundtrip,
                dim_specs=self.dim_specs,
            )
            if plan is not None:
                self._start_fluid(plan)
                return
        launches: List[Tuple[float, int, _Chunk]] = []
        # All chunks share specs/kind/payload, so the work vector and plan
        # of a given order are computed once however many chunks pick it
        # (with the baseline scheduler that is a single computation).
        work_by_order: Dict[Tuple[int, ...], Tuple[Dict[int, float], float, tuple]] = {}
        for index in range(self.num_chunks):
            order = self.scheduler.plan_order(
                network=self.network,
                rep_npu=self.rep_npu,
                dims=self.active_dims,
                kind=first_kind,
                payload_bytes=chunk_payload,
                pending_load={
                    d: self.network.pending_load(self.rep_npu, d)
                    for d in self.active_dims
                },
                roundtrip=roundtrip,
                dim_specs=self.dim_specs,
            )
            memo = work_by_order.get(order)
            if memo is None:
                work = chunk_work_vector(
                    self.dim_specs, order, first_kind, chunk_payload, roundtrip
                )
                plan = tuple((d, first_kind) for d in order)
                if roundtrip:
                    plan += tuple(
                        (d, PhaseKind.ALL_GATHER) for d in reversed(order))
                memo = work_by_order[order] = (work, sum(work.values()), plan)
            work, total_work, plan = memo
            for dim, amount in work.items():
                self.network.add_pending(self.rep_npu, dim, amount)
            launches.append((total_work, index, _Chunk(chunk_payload, plan)))
        # Launch heaviest plans first: their long phases queue early, so
        # their precedence-constrained tails overlap the steady state
        # instead of extending the makespan.
        launches.sort(key=lambda item: (-item[0], item[1]))
        for _, _, chunk in launches:
            self._advance(chunk)

    def _start_fluid(self, plan) -> None:
        """Fluid-limit execution: occupy each dim port for its balanced load.

        The collective completes when the last port finishes its share plus
        the pipeline-fill ramp a chunked schedule pays.
        """
        finish_at = self.engine.now + plan.fill_ns
        faults = self.network.faults
        telemetry = self.network.telemetry
        for dim, load in plan.loads_ns.items():
            if load <= 0.0:
                continue
            if faults is not None and not faults.idle:
                load = faults.stretch_collective(dim, self.group_members, load)
            start, end = self.network.reserve_port(self.rep_npu, dim, load)
            finish_at = max(finish_at, end + plan.fill_ns)
            traffic = plan.traffic_bytes.get(dim, 0.0)
            self.traffic_by_dim[dim] += traffic
            if telemetry is not None and telemetry.chunk_spans:
                telemetry.record_phase(
                    self.rep_npu, dim, f"{self.collective.value}:fluid",
                    start, end)
        self._chunks_done = self.num_chunks
        self.engine.schedule_at(finish_at, self._finish)

    def _initial_chunk_payload(self) -> float:
        per_chunk = self.payload_bytes / self.num_chunks
        if self.collective is CollectiveType.ALL_GATHER:
            # payload_bytes is the gathered result; chunks start as shards.
            return per_chunk / self.group_size
        return per_chunk

    # -- chunk stepping ------------------------------------------------------------

    def _advance(self, chunk: _Chunk) -> None:
        """Run the chunk's next phase, or retire it."""
        if chunk.position == len(chunk.plan):
            self._chunk_done()
            return
        dim, kind = chunk.plan[chunk.position]
        chunk.position += 1
        spec = self.dim_specs[dim]
        if kind is PhaseKind.ALL_GATHER and self.collective is CollectiveType.ALL_REDUCE:
            # AG half of All-Reduce: the entry shard is the matching RS
            # phase's exit payload, popped in reverse order.
            entry = chunk.ag_shards.pop()
            busy = phase_busy_ns(spec, kind, entry)
            traffic = phase_traffic_bytes(spec, kind, entry)
            chunk.payload = entry * spec.size
        else:
            busy = phase_busy_ns(spec, kind, chunk.payload)
            traffic = phase_traffic_bytes(spec, kind, chunk.payload)
            if kind is PhaseKind.REDUCE_SCATTER:
                chunk.payload /= spec.size
                if self.collective is CollectiveType.ALL_REDUCE:
                    chunk.ag_shards.append(chunk.payload)
            elif kind is PhaseKind.ALL_GATHER:
                chunk.payload *= spec.size
        self.traffic_by_dim[dim] += traffic
        # A synchronous phase paces at its slowest member: active faults
        # (stragglers, sick links, degraded dims) stretch the port time of
        # every phase that starts while they are active.
        faults = self.network.faults
        if faults is not None and not faults.idle:
            busy = faults.stretch_collective(dim, self.group_members, busy)
        # The port serializes the traffic; the propagation latency delays
        # only this chunk (the next chunk's serialization overlaps it).
        self.network.consume_pending(self.rep_npu, dim, busy)
        start, end = self.network.reserve_port(self.rep_npu, dim, busy)
        telemetry = self.network.telemetry
        if telemetry is not None and telemetry.chunk_spans:
            telemetry.record_phase(
                self.rep_npu, dim, f"{self.collective.value}:{kind.value}",
                start, end)
        self.engine.schedule_at(end + phase_latency_ns(spec), self._advance, chunk)

    def _chunk_done(self) -> None:
        self._chunks_done += 1
        if self._chunks_done == self.num_chunks:
            self._finish()

    def _finish(self) -> None:
        self.finish_time = self.engine.now
        if self.on_complete is not None:
            self.on_complete()

    # -- results ------------------------------------------------------------------

    @property
    def duration_ns(self) -> float:
        """Wall time of the collective; only valid after completion."""
        if self.start_time is None or self.finish_time is None:
            raise RuntimeError("collective has not completed")
        return self.finish_time - self.start_time

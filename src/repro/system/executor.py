"""Send/recv-based collective executor.

Runs real topology-aware collective algorithms as explicit point-to-point
messages through **any** :class:`~repro.network.api.NetworkBackend` — the
analytical backend or the packet-level Garnet-lite backend.  This is the
apparatus behind the paper's validation (Fig. 4) and speedup (Sec. IV-C)
experiments: the same algorithm is replayed over both backends and the
resulting collective times / wall-clock costs are compared.

All three Table I algorithms are implemented for 1-D groups:

- **Ring** (for Ring dims): 2(k-1) neighbor steps of size/k messages;
- **Direct** (for FullyConnected dims): one personalized exchange per
  half — every rank sends size/k to every other rank;
- **Halving-Doubling** (for Switch dims): log2(k) recursive-halving
  steps, then log2(k) recursive-doubling steps.

Multi-dimensional collectives in production runs use the phase-level
:class:`~repro.system.collective_op.CollectiveOperation` instead.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.events import EventEngine
from repro.network.api import NetworkBackend


class _RingRank:
    """Per-rank state for the ring algorithm."""

    __slots__ = ("step", "send_done", "recv_done")

    def __init__(self) -> None:
        self.step = 0
        self.send_done = False
        self.recv_done = False


class SendRecvCollectiveExecutor:
    """Executes ring collectives with explicit sim_send/sim_recv traffic."""

    def __init__(self, engine: EventEngine, backend: NetworkBackend,
                 tag_base: int = 0) -> None:
        self.engine = engine
        self.backend = backend
        # A non-zero starting tag keeps executor traffic out of the tag
        # space used by explicit trace send/recv nodes when both share a
        # backend (the execution engine starts it at 2^30).
        self._tag_base = tag_base

    def _next_tag_base(self, steps: int) -> int:
        base = self._tag_base
        self._tag_base += steps + 1
        return base

    def run_ring_allreduce(
        self,
        group: Sequence[int],
        payload_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Ring All-Reduce: 2(k-1) steps of size ``payload/k`` messages.

        ``on_complete`` receives the collective's wall time in ns once every
        rank has finished the final step.
        """
        self._run_ring(group, payload_bytes, gather_only=False,
                       on_complete=on_complete)

    def run_ring_allgather(
        self,
        group: Sequence[int],
        payload_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Ring All-Gather: (k-1) steps; ``payload_bytes`` is the gathered size."""
        self._run_ring(group, payload_bytes, gather_only=True,
                       on_complete=on_complete)

    def run_direct_allreduce(
        self,
        group: Sequence[int],
        payload_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Direct All-Reduce (for FullyConnected dims, paper Table I).

        Two personalized exchanges: Reduce-Scatter (every rank sends its
        ``payload/k`` shard destined to each peer) then All-Gather (every
        rank broadcasts its reduced shard).
        """
        k = len(group)
        if k < 2:
            if on_complete is not None:
                self.engine.schedule(0.0, on_complete, 0.0)
            return
        if len(set(group)) != k:
            raise ValueError(f"group contains duplicate NPUs: {group}")
        chunk = max(1, payload_bytes // k)
        tag_base = self._next_tag_base(2)
        start_time = self.engine.now
        finished = {"count": 0}

        def rank_finished() -> None:
            finished["count"] += 1
            if finished["count"] == k and on_complete is not None:
                on_complete(self.engine.now - start_time)

        def start_phase(idx: int, phase: int) -> None:
            if phase == 2:
                rank_finished()
                return
            npu = group[idx]
            state = {"sent": 0, "received": 0}
            tag = tag_base + phase

            def maybe_advance() -> None:
                if state["sent"] == k - 1 and state["received"] == k - 1:
                    start_phase(idx, phase + 1)

            def on_sent() -> None:
                state["sent"] += 1
                maybe_advance()

            def on_received(_msg) -> None:
                state["received"] += 1
                maybe_advance()

            for peer in group:
                if peer == npu:
                    continue
                self.backend.sim_recv(npu, peer, chunk, tag=tag,
                                      callback=on_received)
                self.backend.sim_send(npu, peer, chunk, tag=tag,
                                      callback=on_sent)

        for idx in range(k):
            start_phase(idx, 0)

    def run_alltoall(
        self,
        group: Sequence[int],
        payload_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """All-to-All: one personalized exchange phase.

        ``payload_bytes`` is each rank's total exchange payload; every
        rank sends ``payload/k`` to each of the ``k - 1`` peers (the
        token-routing / embedding-exchange pattern of MoE and DLRM).
        """
        k = len(group)
        if k < 2:
            if on_complete is not None:
                self.engine.schedule(0.0, on_complete, 0.0)
            return
        if len(set(group)) != k:
            raise ValueError(f"group contains duplicate NPUs: {group}")
        chunk = max(1, payload_bytes // k)
        tag = self._next_tag_base(1)
        start_time = self.engine.now
        finished = {"count": 0}

        def start_rank(idx: int) -> None:
            npu = group[idx]
            state = {"sent": 0, "received": 0}

            def maybe_finish() -> None:
                if state["sent"] == k - 1 and state["received"] == k - 1:
                    finished["count"] += 1
                    if finished["count"] == k and on_complete is not None:
                        on_complete(self.engine.now - start_time)

            def on_sent() -> None:
                state["sent"] += 1
                maybe_finish()

            def on_received(_msg) -> None:
                state["received"] += 1
                maybe_finish()

            for peer in group:
                if peer == npu:
                    continue
                self.backend.sim_recv(npu, peer, chunk, tag=tag,
                                      callback=on_received)
                self.backend.sim_send(npu, peer, chunk, tag=tag,
                                      callback=on_sent)

        for idx in range(k):
            start_rank(idx)

    def run_halving_doubling_allreduce(
        self,
        group: Sequence[int],
        payload_bytes: int,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Halving-Doubling All-Reduce (for Switch dims, paper Table I).

        Requires a power-of-two group.  Recursive halving (messages of
        size/2, size/4, ...) reduces-scatters; recursive doubling
        all-gathers back.
        """
        k = len(group)
        if k < 2:
            if on_complete is not None:
                self.engine.schedule(0.0, on_complete, 0.0)
            return
        if k & (k - 1):
            raise ValueError(f"halving-doubling needs a power-of-two group, got {k}")
        if len(set(group)) != k:
            raise ValueError(f"group contains duplicate NPUs: {group}")
        import math

        log_k = int(math.log2(k))
        total_steps = 2 * log_k
        tag_base = self._next_tag_base(total_steps)
        start_time = self.engine.now
        finished = {"count": 0}

        def rank_finished() -> None:
            finished["count"] += 1
            if finished["count"] == k and on_complete is not None:
                on_complete(self.engine.now - start_time)

        def message_bytes(step: int) -> int:
            # Halving: size/2, size/4, ...; doubling mirrors back up.
            if step < log_k:
                exponent = step + 1
            else:
                exponent = total_steps - step
            return max(1, payload_bytes >> exponent)

        def start_step(idx: int, step: int) -> None:
            if step == total_steps:
                rank_finished()
                return
            npu = group[idx]
            distance = 1 << (step if step < log_k else total_steps - 1 - step)
            partner = group[idx ^ distance]
            size = message_bytes(step)
            tag = tag_base + step
            state = {"sent": False, "received": False}

            def maybe_advance() -> None:
                if state["sent"] and state["received"]:
                    start_step(idx, step + 1)

            def on_sent() -> None:
                state["sent"] = True
                maybe_advance()

            def on_received(_msg) -> None:
                state["received"] = True
                maybe_advance()

            self.backend.sim_recv(npu, partner, size, tag=tag,
                                  callback=on_received)
            self.backend.sim_send(npu, partner, size, tag=tag,
                                  callback=on_sent)

        for idx in range(k):
            start_step(idx, 0)

    # -- internals -----------------------------------------------------------------

    def _run_ring(
        self,
        group: Sequence[int],
        payload_bytes: int,
        gather_only: bool,
        on_complete: Optional[Callable[[float], None]],
    ) -> None:
        k = len(group)
        if k < 2:
            if on_complete is not None:
                self.engine.schedule(0.0, on_complete, 0.0)
            return
        if len(set(group)) != k:
            raise ValueError(f"group contains duplicate NPUs: {group}")
        total_steps = (k - 1) if gather_only else 2 * (k - 1)
        chunk = max(1, payload_bytes // k)
        tag_base = self._next_tag_base(total_steps)
        start_time = self.engine.now
        ranks: Dict[int, _RingRank] = {npu: _RingRank() for npu in group}
        finished = {"count": 0}

        def rank_finished() -> None:
            finished["count"] += 1
            if finished["count"] == k and on_complete is not None:
                on_complete(self.engine.now - start_time)

        def start_step(idx: int) -> None:
            """Launch one rank's current step (send + recv in parallel)."""
            npu = group[idx]
            state = ranks[npu]
            if state.step == total_steps:
                rank_finished()
                return
            state.send_done = False
            state.recv_done = False
            tag = tag_base + state.step
            nxt = group[(idx + 1) % k]
            prv = group[(idx - 1) % k]

            def maybe_advance() -> None:
                if state.send_done and state.recv_done:
                    state.step += 1
                    start_step(idx)

            def on_sent() -> None:
                state.send_done = True
                maybe_advance()

            def on_received(_msg) -> None:
                state.recv_done = True
                maybe_advance()

            self.backend.sim_recv(npu, prv, chunk, tag=tag, callback=on_received)
            self.backend.sim_send(npu, nxt, chunk, tag=tag, callback=on_sent)

        for idx in range(k):
            start_step(idx)

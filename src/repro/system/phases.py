"""Per-dimension collective phase math.

A collective over an N-dimensional topology runs as a sequence of
*phases*, one per dimension, each executing that dimension's
topology-aware algorithm (multi-rail hierarchical collectives,
Sec. II-B of the paper):

- **All-Reduce** = Reduce-Scatter over dims in some order, then All-Gather
  over the same dims in reverse order;
- **All-Gather** / **Reduce-Scatter** = one pass over the dims;
- **All-to-All** = one transpose phase per dim at constant payload.

Payload accounting (per NPU, entering phase on a dimension of size ``k``):

=================  ====================  =================
Phase kind         Serialized traffic    Payload at exit
=================  ====================  =================
REDUCE_SCATTER     ``p * (k-1)/k``       ``p / k``
ALL_GATHER         ``p * (k-1)``         ``p * k``
ALL_TO_ALL         ``p * f(block, k)``   ``p``
=================  ====================  =================

where ``p`` is the entry payload and ``f`` is
:func:`~repro.network.building_blocks.alltoall_traffic_fraction` (direct
paths on FC/Switch; relayed on Ring).  All RS/AG algorithms on the three
building blocks are bandwidth-optimal, so traffic depends only on ``k``;
the block type contributes the latency-step count.

Phase wall time is ``steps(block, k) * link_latency + traffic / bandwidth``
— the same closed form the analytical backend uses for single transfers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.network.building_blocks import (
    alltoall_traffic_fraction,
    collective_traffic_fraction,
    latency_steps,
)
from repro.network.topology import DimSpec, MultiDimTopology
from repro.trace.node import CollectiveType


class PhaseKind(enum.Enum):
    """What a single per-dimension phase does."""

    REDUCE_SCATTER = "rs"
    ALL_GATHER = "ag"
    ALL_TO_ALL = "a2a"


@dataclass(frozen=True)
class Phase:
    """One per-dimension step of a decomposed collective.

    Attributes:
        dim: Topology dimension index the phase runs on.
        kind: RS / AG / A2A.
        payload_bytes: Per-NPU payload entering the phase (for AG this is
            the *pre-gather* shard; traffic is ``payload * (k-1)``).
    """

    dim: int
    kind: PhaseKind
    payload_bytes: float


def phase_traffic_bytes(spec: DimSpec, kind: PhaseKind, payload_bytes: float) -> float:
    """Bytes each NPU serializes into the dimension for this phase."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload {payload_bytes}")
    k = spec.size
    if k <= 1:
        return 0.0
    if kind is PhaseKind.REDUCE_SCATTER:
        return payload_bytes * collective_traffic_fraction(k)
    if kind is PhaseKind.ALL_GATHER:
        return payload_bytes * (k - 1)
    return payload_bytes * alltoall_traffic_fraction(spec.block, k)


def phase_busy_ns(spec: DimSpec, kind: PhaseKind, payload_bytes: float) -> float:
    """Port-serialization time of one phase (the bandwidth term).

    This is how long the phase occupies the NPU's egress port; link
    latency overlaps with the next pipelined chunk's serialization and is
    charged to the chunk's completion, not the port.
    """
    if spec.size <= 1:
        return 0.0
    traffic = phase_traffic_bytes(spec, kind, payload_bytes)
    return traffic / spec.bandwidth_gbps


def phase_latency_ns(spec: DimSpec) -> float:
    """Propagation term of one phase: algorithm steps x link latency."""
    if spec.size <= 1:
        return 0.0
    return latency_steps(spec.block, spec.size) * spec.latency_ns


def phase_duration_ns(spec: DimSpec, kind: PhaseKind, payload_bytes: float) -> float:
    """Wall time of one phase: latency steps + serialization."""
    if spec.size <= 1:
        return 0.0
    return phase_latency_ns(spec) + phase_busy_ns(spec, kind, payload_bytes)


@dataclass
class CollectiveDecomposition:
    """A fully-ordered phase plan for one chunk of a collective."""

    phases: Tuple[Phase, ...]

    def total_duration_ns(self, topology: MultiDimTopology) -> float:
        """Sum of phase durations — the *sequential* (unpipelined) time."""
        return sum(
            phase_duration_ns(topology.dims[p.dim], p.kind, p.payload_bytes)
            for p in self.phases
        )

    def max_phase_duration_ns(self, topology: MultiDimTopology) -> float:
        """Longest single phase — the pipelined lower bound per chunk."""
        return max(
            (
                phase_duration_ns(topology.dims[p.dim], p.kind, p.payload_bytes)
                for p in self.phases
            ),
            default=0.0,
        )

    def traffic_by_dim(self, topology: MultiDimTopology) -> dict:
        """Per-dimension serialized bytes (reproduces paper Table IV rows)."""
        out: dict = {}
        for p in self.phases:
            traffic = phase_traffic_bytes(
                topology.dims[p.dim], p.kind, p.payload_bytes
            )
            out[p.dim] = out.get(p.dim, 0.0) + traffic
        return out


def decompose_collective(
    collective: CollectiveType,
    topology: MultiDimTopology,
    dims_order: Sequence[int],
    payload_bytes: float,
) -> CollectiveDecomposition:
    """Build the static phase plan for a collective chunk.

    Args:
        collective: The collective pattern.
        topology: Physical topology (supplies dim sizes/blocks).
        dims_order: Dimension indices in traversal order (the Reduce-Scatter
            order for All-Reduce; the All-Gather half replays it reversed).
        payload_bytes: Per-NPU payload of the chunk.  Semantics by type:
            ALL_REDUCE / REDUCE_SCATTER / ALL_TO_ALL — bytes each NPU holds
            at the start; ALL_GATHER — bytes of the *gathered result* (each
            NPU contributes ``payload / group_size``).
    """
    if payload_bytes < 0:
        raise ValueError(f"negative payload {payload_bytes}")
    active = [d for d in dims_order if topology.dims[d].size > 1]
    phases: List[Phase] = []

    if collective is CollectiveType.ALL_REDUCE:
        size = float(payload_bytes)
        sizes_at_entry = []
        for d in active:
            sizes_at_entry.append(size)
            phases.append(Phase(d, PhaseKind.REDUCE_SCATTER, size))
            size /= topology.dims[d].size
        # All-Gather replays the RS order in reverse; an AG phase's entry
        # shard equals the corresponding RS phase's exit payload.
        for d, entry in zip(reversed(active), reversed(sizes_at_entry)):
            size_after_rs = entry / topology.dims[d].size
            phases.append(Phase(d, PhaseKind.ALL_GATHER, size_after_rs))
    elif collective is CollectiveType.REDUCE_SCATTER:
        size = float(payload_bytes)
        for d in active:
            phases.append(Phase(d, PhaseKind.REDUCE_SCATTER, size))
            size /= topology.dims[d].size
    elif collective is CollectiveType.ALL_GATHER:
        group = 1
        for d in active:
            group *= topology.dims[d].size
        shard = float(payload_bytes) / group
        for d in active:
            phases.append(Phase(d, PhaseKind.ALL_GATHER, shard))
            shard *= topology.dims[d].size
    elif collective is CollectiveType.ALL_TO_ALL:
        for d in active:
            phases.append(Phase(d, PhaseKind.ALL_TO_ALL, float(payload_bytes)))
    else:
        raise ValueError(f"unsupported collective {collective!r}")

    return CollectiveDecomposition(phases=tuple(phases))

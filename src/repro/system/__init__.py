"""System layer: collective algorithms, scheduling, and compute modeling.

This layer sits between the workload's execution traces and the network
backend (paper Fig. 1c).  It decomposes collectives into per-dimension
phases (multi-rail hierarchical algorithm, Sec. II-B), splits them into
pipelined chunks, schedules the chunks over topology dimensions — either
in fixed hierarchical order or with the Themis greedy policy — and costs
compute nodes with a roofline model.
"""

from repro.system.phases import (
    CollectiveDecomposition,
    Phase,
    PhaseKind,
    decompose_collective,
    phase_duration_ns,
    phase_traffic_bytes,
)
from repro.system.scheduler import (
    BaselineScheduler,
    ChunkScheduler,
    ThemisScheduler,
    make_scheduler,
)
from repro.system.collective_op import CollectiveOperation
from repro.system.compute import RooflineCompute
from repro.system.executor import SendRecvCollectiveExecutor

__all__ = [
    "BaselineScheduler",
    "ChunkScheduler",
    "CollectiveDecomposition",
    "CollectiveOperation",
    "Phase",
    "PhaseKind",
    "RooflineCompute",
    "SendRecvCollectiveExecutor",
    "ThemisScheduler",
    "decompose_collective",
    "make_scheduler",
    "phase_duration_ns",
    "phase_traffic_bytes",
]

"""Table V disaggregated-memory system configurations (Sec. V-B).

===============================  =============  =================  ==============
Parameter                        ZeRO-Infinity  HierMem (Baseline) HierMem (Opt)
===============================  =============  =================  ==============
GPU peak perf (TFLOPS)           2048           2048               2048
GPU local HBM BW (GB/s)          4096           4096               4096
In-node pooled fabric BW (GB/s)  --             256                512
Num out-node switches            --             16                 16
Num remote memory groups         256            256                256
Remote mem group BW (GB/s)       100            100                500
===============================  =============  =================  ==============

The system hosts 256 GPUs (16 nodes x 16 GPUs).  ZeRO-Infinity pairs each
GPU with its own slow path (one "remote memory group" per GPU) and runs
parameter collectives over the NPU network; HierMem pools the groups
behind switches and runs collectives in-switch.
"""

from __future__ import annotations

from repro.core.config import SystemConfig
from repro.memory.inswitch import InSwitchCollectiveMemory
from repro.memory.local import LocalMemory
from repro.memory.remote import HierMemConfig, HierarchicalRemoteMemory
from repro.memory.zero_infinity import ZeroInfinityConfig, ZeroInfinityMemory
from repro.network.topology import MultiDimTopology, parse_topology
from repro.system.compute import RooflineCompute

TABLE5_PEAK_TFLOPS = 2048.0
TABLE5_HBM_GBPS = 4096.0
NUM_NODES = 16
GPUS_PER_NODE = 16


def moe_npu_network() -> MultiDimTopology:
    """NPU-to-NPU network of the 256-GPU MoE system.

    Commodity servers: an NVLink-class in-node switch (256 GB/s) plus a
    100 Gb/s-NIC scale-out switch (12.5 GB/s).  Table V leaves the NPU
    network implicit; these follow the paper's "commodity server" framing.
    """
    return parse_topology(
        "Switch(16)_Switch(16)", [256, 12.5],
        latencies_ns=[250, 1000], name="MoE-NPU-network"
    )


def _base_config(topology: MultiDimTopology) -> SystemConfig:
    return SystemConfig(
        topology=topology,
        scheduler="themis",
        compute=RooflineCompute(
            peak_tflops=TABLE5_PEAK_TFLOPS, mem_bandwidth_gbps=TABLE5_HBM_GBPS
        ),
        local_memory=LocalMemory(bandwidth_gbps=TABLE5_HBM_GBPS),
    )


def zero_infinity_table5() -> SystemConfig:
    """ZeRO-Infinity column: dedicated 100 GB/s slow path per GPU."""
    config = _base_config(moe_npu_network())
    config.remote_memory = ZeroInfinityMemory(
        ZeroInfinityConfig(
            path_bandwidth_gbps=100.0,
            num_gpus=NUM_NODES * GPUS_PER_NODE,
        )
    )
    return config


def _hiermem_config(in_node_bw: float, group_bw: float) -> HierMemConfig:
    return HierMemConfig(
        num_nodes=NUM_NODES,
        gpus_per_node=GPUS_PER_NODE,
        num_out_switches=16,
        num_remote_groups=256,
        mem_side_bw_gbps=group_bw,
        gpu_side_out_bw_gbps=in_node_bw,
        in_node_bw_gbps=in_node_bw,
    )


def hiermem_baseline() -> SystemConfig:
    """HierMem (Baseline) column: fabric 256 GB/s, groups 100 GB/s."""
    return hiermem_custom(in_node_bw=256.0, group_bw=100.0)


def hiermem_opt() -> SystemConfig:
    """HierMem (Opt) column: fabric 512 GB/s, groups 500 GB/s."""
    return hiermem_custom(in_node_bw=512.0, group_bw=500.0)


def hiermem_custom(in_node_bw: float, group_bw: float) -> SystemConfig:
    """Arbitrary point of the Table V design-space sweep."""
    pool = _hiermem_config(in_node_bw, group_bw)
    config = _base_config(moe_npu_network())
    config.remote_memory = HierarchicalRemoteMemory(pool)
    config.fabric_collectives = InSwitchCollectiveMemory(pool)
    return config

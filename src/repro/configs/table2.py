"""Table II topologies: wafer-scale vs conventional 512-NPU systems.

=========  ====================  ===========  ==================
Topology   Shape                 NPU size     BW (GB/s)
=========  ====================  ===========  ==================
W-1D       Switch                512          350 / 500 / 600
W-2D       Switch_Switch         32 x 16      250_250
Conv-3D    Ring_FC_Switch        16 x 8 x 4   200_100_50
Conv-4D    Ring_FC_Ring_Switch   2x8x8x4      250_200_100_50
=========  ====================  ===========  ==================

Also provides the Sec. V-A-2 scaling variants: conventional scale-out
(grow the last, NIC dimension) and wafer scale-up (grow Dim 1 with the
on-wafer bandwidth raised to 1000 GB/s).
"""

from __future__ import annotations

from repro.network.topology import MultiDimTopology, parse_topology

W_1D_350 = parse_topology("Switch(512)", [350], latencies_ns=[25], name="W-1D-350")
W_1D_500 = parse_topology("Switch(512)", [500], latencies_ns=[25], name="W-1D-500")
W_1D_600 = parse_topology("Switch(512)", [600], latencies_ns=[25], name="W-1D-600")
W_2D = parse_topology("Switch(32)_Switch(16)", [250, 250], latencies_ns=[25, 25], name="W-2D-250_250")
CONV_3D = parse_topology(
    "Ring(16)_FC(8)_Switch(4)", [200, 100, 50],
    latencies_ns=[50, 250, 500], name="Conv-3D"
)
CONV_4D = parse_topology(
    "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250, 200, 100, 50],
    latencies_ns=[50, 250, 250, 500], name="Conv-4D"
)

TABLE2_TOPOLOGIES = {
    t.name: t for t in (W_1D_350, W_1D_500, W_1D_600, W_2D, CONV_3D, CONV_4D)
}

WAFER_DIM1_BW_GBPS = 1000.0  # on-wafer bandwidth for the scaling study [72,73]


def conv_4d_scaled(last_dim: int = 4, dim1: int = 2,
                   dim1_bw_gbps: float = WAFER_DIM1_BW_GBPS) -> MultiDimTopology:
    """The Sec. V-A-2 baseline: Conv-4D with on-chip BW 1000 GB/s.

    ``last_dim`` scales out (Conv-k systems: 2_8_8_{4,8,16,32});
    ``dim1`` scales up over the wafer (W-k systems: {2,4,8,16}_8_8_4).
    """
    if last_dim < 1 or dim1 < 1:
        raise ValueError("dimension sizes must be >= 1")
    return parse_topology(
        f"Ring({dim1})_FC(8)_Ring(8)_Switch({last_dim})",
        [dim1_bw_gbps, 200, 100, 50],
        latencies_ns=[25, 250, 250, 500],
        name=f"{dim1}_8_8_{last_dim}",
    )


def wafer_scaled(dim1: int) -> MultiDimTopology:
    """Wafer scale-up variant: grow Dim 1, keep scale-out at 4."""
    return conv_4d_scaled(last_dim=4, dim1=dim1)

"""Real-system topologies from the paper's taxonomy examples (Fig. 3c).

Each function returns a :class:`~repro.network.topology.MultiDimTopology`
matching a named platform the paper lists alongside its shape notation:

=====================  ==========================  ============================
Platform               Notation                    Source
=====================  ==========================  ============================
NVIDIA DGX-A100        Switch(8)_Switch(n)         NVLink in-node + IB/Ethernet
Google Cloud TPUv4     Ring(x)_Ring(y)_Ring(z)     3-D torus @ 448 Gb/s ICI
DragonFly              FC(a)_FC(g)_FC(p)           fully-populated [70]
Wafer-scale            Switch(n) @ on-wafer BW     Cerebras/Dojo-style [31,32]
=====================  ==========================  ============================

Bandwidths are per-NPU injection GB/s from public numbers: NVLink3
300 GB/s/GPU aggregate, HDR InfiniBand 25 GB/s/NIC, TPUv4 inter-core
interconnect 448 Gb/s = 56 GB/s per link per direction.
"""

from __future__ import annotations

from repro.network.topology import MultiDimTopology, parse_topology

NVLINK3_GBPS = 300.0
HDR_IB_GBPS = 25.0
TPU_V4_ICI_GBPS = 56.0


def dgx_a100_cluster(num_nodes: int, nic_gbps: float = HDR_IB_GBPS,
                     nvlink_gbps: float = NVLINK3_GBPS) -> MultiDimTopology:
    """A cluster of 8-GPU DGX-A100 nodes behind a scale-out switch.

    The paper's canonical 2-D example: Dim 1 is the in-node NVLink
    switch, Dim 2 the InfiniBand/Ethernet fabric (Sec. III-B).
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    return parse_topology(
        f"Switch(8)_Switch({num_nodes})",
        [nvlink_gbps, nic_gbps],
        latencies_ns=[250, 1000],
        name=f"DGX-A100-x{num_nodes}",
    )


def tpu_v4_pod(x: int, y: int, z: int,
               ici_gbps: float = TPU_V4_ICI_GBPS) -> MultiDimTopology:
    """A TPUv4 pod slice: 3-D torus with equal per-dim ICI bandwidth.

    TPUv4 runs a 3-D torus whose inter-core interconnect links carry
    448 Gb/s each (paper Sec. III-B, [27], [60]).
    """
    for name, v in (("x", x), ("y", y), ("z", z)):
        if v < 1:
            raise ValueError(f"{name} must be >= 1, got {v}")
    return parse_topology(
        f"Ring({x})_Ring({y})_Ring({z})",
        [ici_gbps] * 3,
        latencies_ns=[100, 100, 100],
        name=f"TPUv4-{x}x{y}x{z}",
    )


def dragonfly(routers_per_group: int, groups: int, npus_per_router: int = 1,
              bw_gbps: float = 100.0) -> MultiDimTopology:
    """A fully-populated DragonFly [70] as stacked FullyConnected dims.

    The paper's FC(4)_FC(2)_FC(2) example is ``dragonfly(4, 2, 2)`` with
    the dims reordered innermost-first.
    """
    for name, v in (("routers_per_group", routers_per_group),
                    ("groups", groups), ("npus_per_router", npus_per_router)):
        if v < 1:
            raise ValueError(f"{name} must be >= 1, got {v}")
    return parse_topology(
        f"FC({npus_per_router})_FC({routers_per_group})_FC({groups})",
        [bw_gbps * 3, bw_gbps * 2, bw_gbps],
        latencies_ns=[100, 300, 700],
        name=f"DragonFly-{npus_per_router}x{routers_per_group}x{groups}",
    )


def wafer_scale(num_npus: int, on_wafer_gbps: float = 1000.0) -> MultiDimTopology:
    """A single-wafer system: one high-bandwidth on-chip dimension.

    Models Cerebras/Dojo-style platforms ([31], [32], [72], [73]): a flat
    switch abstraction over the on-wafer mesh, as the paper's W-1D proxy.
    """
    if num_npus < 1:
        raise ValueError(f"num_npus must be >= 1, got {num_npus}")
    return parse_topology(
        f"Switch({num_npus})", [on_wafer_gbps], latencies_ns=[25],
        name=f"Wafer-{num_npus}",
    )


def wafer_cluster(npus_per_wafer: int, num_wafers: int,
                  on_wafer_gbps: float = 1000.0,
                  nic_gbps: float = HDR_IB_GBPS) -> MultiDimTopology:
    """Wafers scaled out through NICs (Sec. I: 'then scaling out such
    wafers using NICs')."""
    if npus_per_wafer < 1 or num_wafers < 1:
        raise ValueError("npus_per_wafer and num_wafers must be >= 1")
    return parse_topology(
        f"Switch({npus_per_wafer})_Switch({num_wafers})",
        [on_wafer_gbps, nic_gbps],
        latencies_ns=[25, 1000],
        name=f"Wafer-{npus_per_wafer}-x{num_wafers}",
    )

"""Canned configurations reproducing the paper's input tables.

- :mod:`repro.configs.table2` — wafer-scale (W-1D/W-2D) and conventional
  (Conv-3D/Conv-4D) 512-NPU topologies of Table II;
- :mod:`repro.configs.table5` — the disaggregated memory systems of
  Table V (ZeRO-Infinity, HierMem baseline, HierMem opt).
"""

from repro.configs.table2 import (
    CONV_3D,
    CONV_4D,
    TABLE2_TOPOLOGIES,
    W_1D_350,
    W_1D_500,
    W_1D_600,
    W_2D,
    conv_4d_scaled,
    wafer_scaled,
)
from repro.configs.table5 import (
    hiermem_baseline,
    hiermem_custom,
    hiermem_opt,
    moe_npu_network,
    zero_infinity_table5,
)
from repro.configs.systems import (
    dgx_a100_cluster,
    dragonfly,
    tpu_v4_pod,
    wafer_cluster,
    wafer_scale,
)

__all__ = [
    "CONV_3D",
    "CONV_4D",
    "TABLE2_TOPOLOGIES",
    "W_1D_350",
    "W_1D_500",
    "W_1D_600",
    "W_2D",
    "conv_4d_scaled",
    "dgx_a100_cluster",
    "dragonfly",
    "hiermem_baseline",
    "hiermem_custom",
    "hiermem_opt",
    "moe_npu_network",
    "tpu_v4_pod",
    "wafer_cluster",
    "wafer_scale",
    "wafer_scaled",
    "zero_infinity_table5",
]

"""Plain-text table rendering for benchmark and example output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.stats.breakdown import Activity, Breakdown

_BREAKDOWN_COLUMNS = [
    ("compute", Activity.COMPUTE),
    ("exp.local-mem", Activity.MEM_LOCAL),
    ("exp.remote-mem", Activity.MEM_REMOTE),
    ("exp.comm", Activity.COMM),
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_breakdown_table(named: Dict[str, Breakdown], unit_ms: bool = True) -> str:
    """Render runtime breakdowns (the Fig. 9 / Fig. 11 presentation)."""
    scale = 1e-6 if unit_ms else 1.0
    unit = "ms" if unit_ms else "ns"
    headers = ["system"] + [f"{c} ({unit})" for c, _ in _BREAKDOWN_COLUMNS] + [
        f"idle ({unit})", f"total ({unit})"
    ]
    rows: List[List[str]] = []
    for name, b in named.items():
        row = [name]
        for _, activity in _BREAKDOWN_COLUMNS:
            row.append(f"{b.exposed_ns.get(activity, 0.0) * scale:.3f}")
        row.append(f"{b.idle_ns * scale:.3f}")
        row.append(f"{b.total_ns * scale:.3f}")
        rows.append(row)
    return format_table(headers, rows)

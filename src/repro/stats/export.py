"""Result export: serialize simulation outcomes to JSON or CSV.

Lets the CLI and benchmark harness persist results in machine-readable
form for downstream plotting / comparison, mirroring how ASTRA-sim dumps
per-run reports.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

from repro.stats.breakdown import Activity

if TYPE_CHECKING:  # avoid a stats <-> core import cycle at runtime
    from repro.core.results import RunResult

#: Version of the ``result_to_dict`` document layout.  History:
#: 1 — original layout (implicit; documents without the key are v1);
#: 2 — adds ``schema_version``, per-collective ``members``, and the
#:     optional ``telemetry`` block (simulated-time metrics + span
#:     summary; the wall-clock profile stays out for reproducibility).
#:     The optional ``invariants`` block (--check-invariants) is a purely
#:     additive key and does not bump the version: documents without it
#:     are still complete v2 documents.
RESULT_SCHEMA_VERSION = 2


def result_to_dict(result: "RunResult") -> Dict[str, Any]:
    """Flatten a :class:`RunResult` into JSON-serializable primitives.

    The output is bit-reproducible across identical runs: wall-clock
    quantities (``wall_time_s``, the telemetry profile) are excluded.
    """
    def breakdown_dict(b):
        return {
            "total_ns": b.total_ns,
            "idle_ns": b.idle_ns,
            **{a.value + "_ns": b.exposed_ns.get(a, 0.0) for a in Activity},
        }

    doc: Dict[str, Any] = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "total_time_ns": result.total_time_ns,
        "nodes_executed": result.nodes_executed,
        "events_processed": result.events_processed,
        "breakdown": breakdown_dict(result.breakdown),
        "per_npu_breakdown": {
            str(npu): breakdown_dict(b)
            for npu, b in result.per_npu_breakdown.items()
        },
        "collectives": [
            {
                "name": c.name,
                "collective": c.collective,
                "payload_bytes": c.payload_bytes,
                "rep_npu": c.rep_npu,
                "group_size": c.group_size,
                "start_ns": c.start_ns,
                "finish_ns": c.finish_ns,
                "duration_ns": c.duration_ns,
                "traffic_by_dim": {str(d): t for d, t in c.traffic_by_dim.items()},
                "members": list(c.members),
            }
            for c in result.collectives
        ],
    }
    if result.telemetry is not None:
        doc["telemetry"] = result.telemetry.to_dict(include_profile=False)
    if result.invariants is not None:
        doc["invariants"] = result.invariants.to_dict()
    return doc


def dump_result_json(result: "RunResult", path: Union[str, Path],
                     indent: int = 2) -> None:
    """Write a result to a JSON file."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=indent))


def collectives_to_csv(result: "RunResult") -> str:
    """Per-collective records as CSV text (one row per collective)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["name", "collective", "payload_bytes", "group_size",
                     "start_ns", "finish_ns", "duration_ns"])
    for c in result.collectives:
        writer.writerow([c.name, c.collective, c.payload_bytes, c.group_size,
                         f"{c.start_ns:.3f}", f"{c.finish_ns:.3f}",
                         f"{c.duration_ns:.3f}"])
    return buffer.getvalue()


def load_result_json(path: Union[str, Path]) -> Dict[str, Any]:
    """Read back a dumped result (as a plain dict)."""
    return json.loads(Path(path).read_text())

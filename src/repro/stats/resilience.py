"""Resilience accounting: what faults cost a run.

A :class:`ResilienceReport` extends a run's timing results with the
fault-injection view: how long the faulted run took versus the fault-free
baseline, how much time each fault injected (per-fault attribution), and
the analytic checkpoint/restart overheads that permanent failures add on
top of the simulated time (see :mod:`repro.faults.checkpoint`).

Terminology:

- **simulated time** (``total_ns``): event-driven finish time of the
  faulted run — stragglers, stalls, and degraded links already stretched
  it.
- **effective time**: simulated time plus checkpoint stalls plus
  restart/replay losses from permanent failures.
- **goodput**: useful work per effective wall-clock second, as a fraction
  — baseline time over effective time when a baseline is known, else
  estimated from the attributed injected delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.spec import FaultSpec
from repro.stats.report import format_table


@dataclass
class FaultRecord:
    """One fault's observed lifecycle in a run.

    ``extra_ns`` is the delay the fault *injected* — extra port
    serialization and compute time charged by the hooks while it was
    active (split evenly when several faults stretch the same operation).
    It is a lower bound on the wall-clock impact: queueing and dependency
    chains can amplify it further, which is exactly what the
    baseline-vs-faulted comparison measures.
    """

    fault: FaultSpec
    activated_ns: Optional[float] = None
    cleared_ns: Optional[float] = None
    extra_ns: float = 0.0

    @property
    def fired(self) -> bool:
        return self.activated_ns is not None


@dataclass
class ResilienceReport:
    """Fault/resilience summary of one simulated run."""

    total_ns: float
    records: List[FaultRecord] = field(default_factory=list)
    baseline_ns: Optional[float] = None
    checkpoint_interval_ns: Optional[float] = None
    num_checkpoints: int = 0
    checkpoint_overhead_ns: float = 0.0
    restart_lost_ns: float = 0.0
    num_failures: int = 0

    @property
    def effective_total_ns(self) -> float:
        """Simulated time plus checkpoint and restart/replay overheads."""
        return self.total_ns + self.checkpoint_overhead_ns + self.restart_lost_ns

    @property
    def injected_ns(self) -> float:
        """Total delay the hooks charged to faults (attribution sum)."""
        return sum(r.extra_ns for r in self.records)

    @property
    def degradation_ns(self) -> float:
        """Wall-clock stretch from degradation faults.

        Exact (faulted minus baseline) when a baseline is known; else the
        attributed injected delay, a lower bound.
        """
        if self.baseline_ns is not None:
            return self.total_ns - self.baseline_ns
        return self.injected_ns

    @property
    def time_lost_ns(self) -> float:
        """Everything the faults cost: degradation + checkpoints + restarts."""
        return (self.degradation_ns + self.checkpoint_overhead_ns
                + self.restart_lost_ns)

    @property
    def useful_ns(self) -> float:
        """Fault-free time the same work would have taken."""
        if self.baseline_ns is not None:
            return self.baseline_ns
        return max(0.0, self.total_ns - self.injected_ns)

    @property
    def goodput(self) -> float:
        """Useful fraction of effective wall-clock time, in [0, 1]."""
        if self.effective_total_ns <= 0:
            return 1.0
        return min(1.0, self.useful_ns / self.effective_total_ns)

    def format(self) -> str:
        """Render the report as aligned plain-text tables."""
        lines = []
        ms = 1e-6
        lines.append(f"simulated : {self.total_ns * ms:.3f} ms")
        if self.baseline_ns is not None:
            lines.append(f"baseline  : {self.baseline_ns * ms:.3f} ms "
                         f"(degradation +{self.degradation_ns * ms:.3f} ms)")
        if self.checkpoint_interval_ns is not None:
            lines.append(
                f"checkpoint: {self.num_checkpoints} snapshots every "
                f"{self.checkpoint_interval_ns * ms:.3f} ms "
                f"(+{self.checkpoint_overhead_ns * ms:.3f} ms)")
        if self.num_failures:
            lines.append(f"restarts  : {self.num_failures} permanent "
                         f"failure(s) (+{self.restart_lost_ns * ms:.3f} ms)")
        lines.append(f"effective : {self.effective_total_ns * ms:.3f} ms   "
                     f"goodput {self.goodput * 100:.1f}%   "
                     f"lost {self.time_lost_ns * ms:.3f} ms")
        if self.records:
            rows = []
            for record in self.records:
                if record.activated_ns is None:
                    window = "never fired"
                elif record.cleared_ns is None:
                    window = f"{record.activated_ns * ms:.3f} ms -> end"
                else:
                    window = (f"{record.activated_ns * ms:.3f} -> "
                              f"{record.cleared_ns * ms:.3f} ms")
                rows.append([record.fault.describe(), window,
                             f"{record.extra_ns * ms:.3f}"])
            lines.append("")
            lines.append(format_table(
                ["fault", "active window", "injected (ms)"], rows))
        return "\n".join(lines)

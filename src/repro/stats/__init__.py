"""Statistics: activity logging and exposed-time breakdowns.

The paper's case studies report runtime broken into compute, exposed
local-memory, exposed remote-memory, exposed communication, and idle time
(Fig. 9, Fig. 11).  "Exposed" means not hidden behind a higher-priority
activity: an All-Reduce running under a compute kernel costs nothing;
the part sticking out past the compute is exposed.
"""

from repro.stats.breakdown import (
    Activity,
    ActivityLog,
    Breakdown,
    compute_breakdown,
)
from repro.stats.report import format_breakdown_table, format_table
from repro.stats.resilience import FaultRecord, ResilienceReport
from repro.stats.chrometrace import (
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.stats.timeline import render_timeline, utilization_by_npu
from repro.stats.export import (
    RESULT_SCHEMA_VERSION,
    collectives_to_csv,
    dump_result_json,
    load_result_json,
    result_to_dict,
)
from repro.stats.summary import summary_stats

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "collectives_to_csv",
    "dump_chrome_trace",
    "dump_result_json",
    "load_result_json",
    "result_to_dict",
    "Activity",
    "ActivityLog",
    "Breakdown",
    "FaultRecord",
    "ResilienceReport",
    "compute_breakdown",
    "format_breakdown_table",
    "format_table",
    "render_timeline",
    "summary_stats",
    "to_chrome_trace",
    "utilization_by_npu",
    "validate_chrome_trace",
]

"""Summary statistics over a sample of scalar observations.

The small numeric core behind campaign aggregation
(:mod:`repro.campaign.aggregate`): given the per-point totals of a
sweep, report the usual location/spread statistics in a JSON-ready
dict.  Pure python (no numpy) so it works in stripped-down worker
environments.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable


def summary_stats(values: Iterable[float]) -> Dict[str, Any]:
    """count/min/max/mean/median/stdev of a scalar sample.

    The empty sample yields ``count=0`` with every other statistic
    ``None``; a single observation has ``stdev=0.0``.  Median uses the
    midpoint-of-two-central-values convention.
    """
    sample = sorted(float(v) for v in values)
    n = len(sample)
    if n == 0:
        return {"count": 0, "min": None, "max": None, "mean": None,
                "median": None, "stdev": None}
    mean = math.fsum(sample) / n
    if n % 2:
        median = sample[n // 2]
    else:
        median = (sample[n // 2 - 1] + sample[n // 2]) / 2.0
    variance = math.fsum((v - mean) ** 2 for v in sample) / n
    return {
        "count": n,
        "min": sample[0],
        "max": sample[-1],
        "mean": mean,
        "median": median,
        "stdev": math.sqrt(variance),
    }

"""Exposed-time accounting.

Every node execution is logged as an interval ``(npu, start, end,
activity)``.  The breakdown sweeps each NPU's timeline and charges every
instant to the highest-priority activity running at that instant:

    COMPUTE > MEM_LOCAL > MEM_REMOTE > COMM > (nothing running: IDLE)

so e.g. "exposed communication" is exactly the communication time not
hidden behind compute or memory (paper Figs. 9 and 11: "Non-hidden time
of an operation is defined as exposed time").
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple


class Activity(enum.Enum):
    """What an NPU is doing; declaration order is the exposure priority."""

    COMPUTE = "compute"
    MEM_LOCAL = "mem_local"
    MEM_REMOTE = "mem_remote"
    COMM = "comm"


_PRIORITY = {a: i for i, a in enumerate(Activity)}


@dataclass
class Breakdown:
    """Exposed time per activity, plus idle, summing to ``total_ns``."""

    total_ns: float
    exposed_ns: Dict[Activity, float]
    idle_ns: float

    def fraction(self, activity: Activity) -> float:
        return self.exposed_ns.get(activity, 0.0) / self.total_ns if self.total_ns else 0.0

    @property
    def compute_ns(self) -> float:
        return self.exposed_ns.get(Activity.COMPUTE, 0.0)

    @property
    def exposed_comm_ns(self) -> float:
        return self.exposed_ns.get(Activity.COMM, 0.0)

    @property
    def exposed_mem_local_ns(self) -> float:
        return self.exposed_ns.get(Activity.MEM_LOCAL, 0.0)

    @property
    def exposed_mem_remote_ns(self) -> float:
        return self.exposed_ns.get(Activity.MEM_REMOTE, 0.0)

    @staticmethod
    def merge(parts: List["Breakdown"]) -> "Breakdown":
        """Average several NPUs' breakdowns into a system-level one."""
        if not parts:
            return Breakdown(0.0, {}, 0.0)
        n = len(parts)
        total = sum(p.total_ns for p in parts) / n
        exposed: Dict[Activity, float] = {}
        for activity in Activity:
            exposed[activity] = sum(p.exposed_ns.get(activity, 0.0) for p in parts) / n
        idle = sum(p.idle_ns for p in parts) / n
        return Breakdown(total, exposed, idle)


class ActivityLog:
    """Append-only interval log, grouped per NPU."""

    def __init__(self) -> None:
        self._intervals: Dict[
            int, List[Tuple[float, float, Activity, str]]] = defaultdict(list)

    def record(self, npu: int, start: float, end: float, activity: Activity,
               label: str = "") -> None:
        if end < start:
            raise ValueError(f"interval ends before it starts: ({start}, {end})")
        if end > start:
            self._intervals[npu].append((start, end, activity, label))

    def npus(self) -> List[int]:
        return sorted(self._intervals)

    def intervals(self, npu: int) -> List[Tuple[float, float, Activity]]:
        return [(s, e, a) for s, e, a, _ in self._intervals.get(npu, ())]

    def labeled_intervals(
        self, npu: int
    ) -> List[Tuple[float, float, Activity, str]]:
        return list(self._intervals.get(npu, ()))

    def breakdown(self, npu: int, total_ns: float) -> Breakdown:
        return compute_breakdown(self.intervals(npu), total_ns)

    def merged_breakdown(self, total_ns: float) -> Breakdown:
        """System breakdown averaged over all NPUs that logged anything."""
        parts = [self.breakdown(npu, total_ns) for npu in self.npus()]
        return Breakdown.merge(parts) if parts else Breakdown(total_ns, {}, total_ns)


def compute_breakdown(
    intervals: List[Tuple[float, float, Activity]], total_ns: float
) -> Breakdown:
    """Sweep one NPU's intervals and charge time by priority.

    Builds the elementary segments between interval boundaries, tracks how
    many intervals of each activity cover each segment, and charges the
    segment to the highest-priority covered activity.
    """
    if total_ns < 0:
        raise ValueError(f"negative total time {total_ns}")
    events: List[Tuple[float, int, Activity]] = []
    for start, end, activity in intervals:
        events.append((start, +1, activity))
        events.append((end, -1, activity))
    events.sort(key=lambda e: e[0])

    exposed: Dict[Activity, float] = {a: 0.0 for a in Activity}
    active = {a: 0 for a in Activity}
    covered = 0.0
    prev_t = events[0][0] if events else 0.0
    idx = 0
    while idx < len(events):
        t = events[idx][0]
        span = t - prev_t
        if span > 0:
            current = [a for a in Activity if active[a] > 0]
            if current:
                winner = min(current, key=_PRIORITY.get)
                exposed[winner] += span
                covered += span
        while idx < len(events) and events[idx][0] == t:
            _, delta, activity = events[idx]
            active[activity] += delta
            idx += 1
        prev_t = t

    idle = max(0.0, total_ns - covered)
    return Breakdown(total_ns=total_ns, exposed_ns=exposed, idle_ns=idle)

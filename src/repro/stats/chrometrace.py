"""Chrome-trace (Perfetto) export of simulation activity.

Produces the Trace Event Format JSON that chrome://tracing, Perfetto, and
speedscope all consume — one process per simulation, one thread lane per
NPU, one complete event per logged interval (named after the ET node that
produced it).  This is the practical way to inspect long runs: pipeline
bubbles, exposed collectives, and prefetch depth are immediately visible.

Beyond the per-NPU activity lanes the exporter understands two optional
inputs:

- ``collectives`` (a list of :class:`~repro.core.results.CollectiveRecord`)
  adds flow arrows ("s"/"f" event pairs) from each collective's
  representative NPU to every other participating NPU at completion time —
  the cross-NPU dependency the rendezvous enforces;
- ``telemetry`` (a :class:`~repro.telemetry.TelemetryReport`) adds the
  recorded span tracks as their own process, the recorder's dependency
  flows, and one Perfetto counter track ("C" events) per sampled gauge
  time series.

Events are emitted metadata-first and then sorted by timestamp, as the
Trace Event Format recommends for stream processing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.stats.breakdown import Activity, ActivityLog

# Stable category names let Perfetto color activities consistently.
_CATEGORY = {
    Activity.COMPUTE: "compute",
    Activity.MEM_LOCAL: "memory.local",
    Activity.MEM_REMOTE: "memory.remote",
    Activity.COMM: "communication",
}

# Process ids of the exported lanes: NPU activity, telemetry span tracks,
# and gauge counter tracks each get their own process group in the UI.
_PID_ACTIVITY = 0
_PID_SPANS = 1
_PID_COUNTERS = 2


def _ns_to_us(t_ns: float) -> float:
    """Trace Event timestamps are microseconds; keep ns as fractions."""
    return t_ns / 1e3


def _activity_events(log: ActivityLog, process_name: str,
                     npus: Optional[List[int]],
                     meta: List[Dict[str, Any]],
                     events: List[Dict[str, Any]]) -> None:
    meta.append({
        "name": "process_name",
        "ph": "M",
        "pid": _PID_ACTIVITY,
        "args": {"name": process_name},
    })
    selected = npus if npus is not None else log.npus()
    for npu in selected:
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID_ACTIVITY,
            "tid": npu,
            "args": {"name": f"NPU {npu}"},
        })
        for start, end, activity, label in log.labeled_intervals(npu):
            events.append({
                "name": label or activity.value,
                "cat": _CATEGORY[activity],
                "ph": "X",
                "pid": _PID_ACTIVITY,
                "tid": npu,
                "ts": _ns_to_us(start),
                "dur": _ns_to_us(end - start),
                "args": {"activity": activity.value},
            })


def _collective_flow_events(collectives: Sequence[Any],
                            events: List[Dict[str, Any]]) -> None:
    """Rendezvous arrows: rep NPU at start -> each member at finish.

    One flow per (collective, member) pair, binding to the enclosing
    activity slices, so Perfetto draws the cross-NPU dependency every
    collective imposes on its participants.
    """
    flow_id = 0
    for record in collectives:
        members = getattr(record, "members", ()) or ()
        for member in members:
            if member == record.rep_npu:
                continue
            flow_id += 1
            name = f"collective:{record.name}"
            events.append({
                "name": name,
                "cat": "collective.dep",
                "ph": "s",
                "id": flow_id,
                "pid": _PID_ACTIVITY,
                "tid": record.rep_npu,
                "ts": _ns_to_us(record.start_ns),
            })
            events.append({
                "name": name,
                "cat": "collective.dep",
                "ph": "f",
                "bp": "e",
                "id": flow_id,
                "pid": _PID_ACTIVITY,
                "tid": member,
                "ts": _ns_to_us(record.finish_ns),
            })


def _telemetry_events(telemetry: Any, meta: List[Dict[str, Any]],
                      events: List[Dict[str, Any]]) -> None:
    meta.append({
        "name": "process_name",
        "ph": "M",
        "pid": _PID_SPANS,
        "args": {"name": "telemetry spans"},
    })
    track_tid: Dict[str, int] = {}
    for track in telemetry.spans.tracks():
        tid = track_tid[track] = len(track_tid)
        meta.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID_SPANS,
            "tid": tid,
            "args": {"name": track},
        })
    for track, name, category, start_ns, end_ns, args in telemetry.spans.spans:
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "pid": _PID_SPANS,
            "tid": track_tid[track],
            "ts": _ns_to_us(start_ns),
            "dur": _ns_to_us(end_ns - start_ns),
        }
        if args:
            event["args"] = args
        events.append(event)
    # The recorder's flow ids are disjoint per recorder, so reuse directly;
    # the "telemetry." id namespace avoids collision with collective flows.
    for flow_id, src_track, src_ts, dst_track, dst_ts, name in telemetry.spans.flows:
        events.append({
            "name": name,
            "cat": "telemetry.dep",
            "ph": "s",
            "id": f"t{flow_id}",
            "pid": _PID_SPANS,
            "tid": track_tid[src_track],
            "ts": _ns_to_us(src_ts),
        })
        events.append({
            "name": name,
            "cat": "telemetry.dep",
            "ph": "f",
            "bp": "e",
            "id": f"t{flow_id}",
            "pid": _PID_SPANS,
            "tid": track_tid[dst_track],
            "ts": _ns_to_us(dst_ts),
        })
    counters_emitted = False
    for (layer, name, labels), metric in telemetry.metrics.items():
        series = getattr(metric, "series", None)
        if series is None or not len(series):
            continue
        counters_emitted = True
        label_suffix = "".join(f".{v}" for _, v in labels)
        track_name = f"{layer}.{name}{label_suffix}"
        for t_ns, value in zip(series.times, series.values):
            events.append({
                "name": track_name,
                "ph": "C",
                "pid": _PID_COUNTERS,
                "ts": _ns_to_us(t_ns),
                "args": {"value": value},
            })
    if counters_emitted:
        meta.append({
            "name": "process_name",
            "ph": "M",
            "pid": _PID_COUNTERS,
            "args": {"name": "telemetry counters"},
        })


def to_chrome_trace(
    log: ActivityLog,
    process_name: str = "repro-simulation",
    npus: Optional[List[int]] = None,
    collectives: Optional[Sequence[Any]] = None,
    telemetry: Optional[Any] = None,
) -> Dict[str, Any]:
    """Convert an activity log (and optional extras) to Trace Event JSON.

    Timestamps are microseconds (the format's unit); durations keep
    nanosecond precision as fractional microseconds.  Metadata events
    lead, then all timed events in non-decreasing ``ts`` order.
    """
    meta: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    _activity_events(log, process_name, npus, meta, events)
    if collectives:
        _collective_flow_events(collectives, events)
    if telemetry is not None:
        _telemetry_events(telemetry, meta, events)
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Dict[str, Any]) -> None:
    """Check a document against the Trace Event Format essentials.

    Raises ``ValueError`` on the first violation: unknown phase, missing
    required fields per phase, negative duration, unterminated flow
    (an "s" id with no matching "f" or vice versa), or timed events out
    of timestamp order.
    """
    if "traceEvents" not in doc:
        raise ValueError("missing traceEvents")
    required = {
        "M": ("name", "ph", "pid"),
        "X": ("name", "ph", "pid", "tid", "ts", "dur"),
        "C": ("name", "ph", "pid", "ts", "args"),
        "s": ("name", "ph", "pid", "tid", "ts", "id"),
        "f": ("name", "ph", "pid", "tid", "ts", "id"),
    }
    flow_starts: Dict[Any, int] = {}
    flow_finishes: Dict[Any, int] = {}
    last_ts: Optional[float] = None
    for i, event in enumerate(doc["traceEvents"]):
        ph = event.get("ph")
        if ph not in required:
            raise ValueError(f"event {i}: unknown phase {ph!r}")
        for field in required[ph]:
            if field not in event:
                raise ValueError(f"event {i} (ph {ph!r}): missing {field!r}")
        if ph == "M":
            if last_ts is not None:
                raise ValueError(f"event {i}: metadata after timed events")
            continue
        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i}: timestamp {ts} out of order (after {last_ts})")
        last_ts = ts
        if ph == "X" and event["dur"] < 0:
            raise ValueError(f"event {i}: negative duration {event['dur']}")
        if ph == "s":
            flow_starts[event["id"]] = flow_starts.get(event["id"], 0) + 1
        elif ph == "f":
            flow_finishes[event["id"]] = flow_finishes.get(event["id"], 0) + 1
    if flow_starts != flow_finishes:
        unmatched = set(flow_starts) ^ set(flow_finishes)
        raise ValueError(f"unmatched flow ids: {sorted(map(str, unmatched))}")


def dump_chrome_trace(
    log: ActivityLog,
    path: Union[str, Path],
    process_name: str = "repro-simulation",
    collectives: Optional[Sequence[Any]] = None,
    telemetry: Optional[Any] = None,
) -> None:
    """Write a trace JSON file loadable by chrome://tracing / Perfetto."""
    doc = to_chrome_trace(log, process_name, collectives=collectives,
                          telemetry=telemetry)
    Path(path).write_text(json.dumps(doc))

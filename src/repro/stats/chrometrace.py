"""Chrome-trace (Perfetto) export of simulation activity.

Produces the Trace Event Format JSON that chrome://tracing, Perfetto, and
speedscope all consume — one process per simulation, one thread lane per
NPU, one complete event per logged interval (named after the ET node that
produced it).  This is the practical way to inspect long runs: pipeline
bubbles, exposed collectives, and prefetch depth are immediately visible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.stats.breakdown import Activity, ActivityLog

# Stable category names let Perfetto color activities consistently.
_CATEGORY = {
    Activity.COMPUTE: "compute",
    Activity.MEM_LOCAL: "memory.local",
    Activity.MEM_REMOTE: "memory.remote",
    Activity.COMM: "communication",
}


def to_chrome_trace(
    log: ActivityLog,
    process_name: str = "repro-simulation",
    npus: Optional[List[int]] = None,
) -> Dict[str, Any]:
    """Convert an activity log to a Trace Event Format document.

    Timestamps are microseconds (the format's unit); durations keep
    nanosecond precision as fractional microseconds.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "args": {"name": process_name},
    }]
    selected = npus if npus is not None else log.npus()
    for npu in selected:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": npu,
            "args": {"name": f"NPU {npu}"},
        })
        for start, end, activity, label in log.labeled_intervals(npu):
            events.append({
                "name": label or activity.value,
                "cat": _CATEGORY[activity],
                "ph": "X",
                "pid": 0,
                "tid": npu,
                "ts": start / 1e3,
                "dur": (end - start) / 1e3,
                "args": {"activity": activity.value},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(
    log: ActivityLog,
    path: Union[str, Path],
    process_name: str = "repro-simulation",
) -> None:
    """Write a trace JSON file loadable by chrome://tracing / Perfetto."""
    Path(path).write_text(json.dumps(to_chrome_trace(log, process_name)))

"""Timeline (Gantt) rendering of per-NPU activity.

Turns an :class:`~repro.stats.breakdown.ActivityLog` into a plain-text
Gantt chart — the quickest way to *see* pipeline bubbles, exposed
communication, and compute/communication overlap when debugging a
workload or a schedule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.stats.breakdown import Activity, ActivityLog

_GLYPH = {
    Activity.COMPUTE: "#",
    Activity.MEM_LOCAL: "m",
    Activity.MEM_REMOTE: "R",
    Activity.COMM: "~",
}
_PRIORITY = {a: i for i, a in enumerate(Activity)}
IDLE_GLYPH = "."

LEGEND = "legend: # compute   m local-mem   R remote-mem   ~ comm   . idle"


def render_timeline(
    log: ActivityLog,
    total_ns: float,
    width: int = 80,
    npus: Optional[List[int]] = None,
) -> str:
    """Render one text row per NPU, ``width`` columns across ``total_ns``.

    Each column shows the highest-priority activity active during that
    slice (matching the exposed-time accounting); idle slices print dots.
    """
    if total_ns <= 0:
        raise ValueError(f"total_ns must be positive, got {total_ns}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    rows = []
    selected = npus if npus is not None else log.npus()
    label_width = max((len(str(n)) for n in selected), default=1)
    slice_ns = total_ns / width
    for npu in selected:
        cells = [IDLE_GLYPH] * width
        best: List[Optional[Activity]] = [None] * width
        for start, end, activity in log.intervals(npu):
            first = min(width - 1, int(start / slice_ns))
            last = min(width - 1, int(max(start, end - 1e-9) / slice_ns))
            for i in range(first, last + 1):
                if best[i] is None or _PRIORITY[activity] < _PRIORITY[best[i]]:
                    best[i] = activity
                    cells[i] = _GLYPH[activity]
        rows.append(f"npu {str(npu).rjust(label_width)} |{''.join(cells)}|")
    header = (f"timeline: {total_ns / 1e6:.3f} ms across {width} cols "
              f"({slice_ns / 1e3:.1f} us/col)")
    return "\n".join([header] + rows + [LEGEND])


def utilization_by_npu(
    log: ActivityLog, total_ns: float
) -> Dict[int, Dict[str, float]]:
    """Per-NPU fractions of each activity plus idle (sums to 1.0)."""
    out: Dict[int, Dict[str, float]] = {}
    for npu in log.npus():
        b = log.breakdown(npu, total_ns)
        fractions = {
            a.value: b.exposed_ns.get(a, 0.0) / total_ns for a in Activity
        }
        fractions["idle"] = b.idle_ns / total_ns
        out[npu] = fractions
    return out

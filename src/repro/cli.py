"""Command-line interface: run simulations without writing Python.

Usage::

    python -m repro.cli run --topology "Ring(2)_FC(8)_Ring(8)_Switch(4)" \\
        --bandwidths 250,200,100,50 --workload gpt3 --mp 16 --dp 32 \\
        --scheduler themis

    python -m repro.cli run --topology "Switch(512)" --bandwidths 600 \\
        --workload allreduce --payload-mib 1024

    python -m repro.cli sweep --topology "Ring(8)_Switch(8)" \\
        --bandwidths 100,25 --grid "payload_mib=64|256|1024" \\
        --grid "scheduler=baseline|themis" --jobs 4 --out results.json

    python -m repro.cli trace-info path/to/trace.json

    python -m repro.cli topology-info "Ring(4)_Switch(8)" --bandwidths 100,25
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

import repro
from repro.stats import format_breakdown_table
from repro.trace.analysis import summarize
from repro.workload import (
    ParallelismSpec,
    dlrm_paper,
    generate_data_parallel,
    generate_dlrm,
    generate_fsdp,
    generate_megatron_hybrid,
    generate_moe,
    generate_pipeline_parallel,
    generate_single_collective,
    gpt3_175b,
    moe_1t,
    transformer_1t,
)

WORKLOADS = ("allreduce", "alltoall", "gpt3", "transformer1t", "dlrm",
             "fsdp-gpt3", "dp-gpt3", "pp-gpt3", "moe1t")

MEMORY_MODELS = ("local", "hiermem", "zero-infinity")


def _parse_floats(text: str) -> List[float]:
    try:
        return [float(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise SystemExit(f"error: not a comma-separated float list: {text!r}")


def _build_topology(args: argparse.Namespace):
    if not args.topology or not args.bandwidths:
        raise SystemExit(
            "error: --topology and --bandwidths are required (directly or "
            "via a sweep axis)")
    latencies = _parse_floats(args.latencies) if args.latencies else ()
    bandwidths = _parse_floats(args.bandwidths)
    num_dims = len([s for s in args.topology.split("_") if s.strip()])
    if len(bandwidths) != num_dims:
        raise SystemExit(
            f"error: --bandwidths lists {len(bandwidths)} value(s) but "
            f"topology {args.topology!r} has {num_dims} dimension(s); "
            "give one bandwidth per dimension")
    if latencies and len(latencies) != num_dims:
        raise SystemExit(
            f"error: --latencies lists {len(latencies)} value(s) but "
            f"topology {args.topology!r} has {num_dims} dimension(s)")
    try:
        return repro.parse_topology(args.topology, bandwidths,
                                    latencies_ns=list(latencies))
    except repro.TopologyError as exc:
        raise SystemExit(f"error: {exc}")


def _parallel_degrees(args: argparse.Namespace, topology, mp: int, pp: int = 1):
    """Validate mp/pp against the NPU count and auto-compute dp."""
    shard = mp * pp
    if shard < 1 or topology.num_npus % shard != 0:
        flags = f"--mp {mp}" + (f" x --pp {pp}" if pp > 1 else "")
        raise SystemExit(
            f"error: {flags} does not divide the topology's "
            f"{topology.num_npus} NPUs; pick degrees whose product divides "
            "the NPU count")
    dp = args.dp or topology.num_npus // shard
    if mp * pp * dp > topology.num_npus:
        raise SystemExit(
            f"error: mp x pp x dp = {mp * pp * dp} exceeds the topology's "
            f"{topology.num_npus} NPUs")
    return dp


def _ingest_from_args(args: argparse.Namespace):
    """Resolve --model / --model-json (+ shape overrides) into an op graph."""
    import dataclasses
    from pathlib import Path

    from repro.frontend import (
        OPGRAPH_FORMAT,
        FrontendError,
        build_op_graph,
        default_options_for,
        load_config,
        opgraph_from_dict,
        zoo_entry,
    )

    model = getattr(args, "model", "")
    model_json = getattr(args, "model_json", "")
    if model and model_json:
        raise SystemExit(
            "error: --model and --model-json are mutually exclusive; give "
            "one spec source")
    if not model and not model_json:
        raise SystemExit(
            "error: no model spec; give --model NAME or --model-json PATH")
    try:
        if model:
            entry = zoo_entry(model)
            payload, options = entry.config, entry.options
        else:
            payload = load_config(model_json)
            if payload.get("format") == OPGRAPH_FORMAT:
                # Explicit op graphs carry their own shapes/costs; the
                # batch/seq knobs only apply to architecture configs.
                return opgraph_from_dict(payload)
            options = default_options_for(payload)
        overrides = {}
        if getattr(args, "batch", 0):
            overrides["batch"] = args.batch
        if getattr(args, "seq_len", 0):
            overrides["seq_len"] = args.seq_len
        if overrides:
            options = dataclasses.replace(options, **overrides)
        graph = build_op_graph(payload, options)
        graph.name = model or (graph.name or Path(model_json).stem)
        return graph
    except FrontendError as exc:
        raise SystemExit(f"error: {exc}")


def _frontend_traces(args: argparse.Namespace, topology):
    """The frontend path of _build_traces: ingest, plan, emit traces."""
    from repro.frontend import FrontendError, PlanConfig, plan

    graph = _ingest_from_args(args)
    try:
        planned = plan(graph, topology, PlanConfig(
            tp=args.mp, dp=args.dp, pp=args.pp,
            ep=getattr(args, "ep", 0),
            microbatches=args.microbatches))
    except FrontendError as exc:
        raise SystemExit(f"error: {exc}")
    args.workload = f"ingest:{graph.name}"
    return planned.traces


def _build_traces(args: argparse.Namespace, topology):
    if getattr(args, "model", "") or getattr(args, "model_json", ""):
        return _frontend_traces(args, topology)
    payload = int(args.payload_mib * (1 << 20))
    if args.workload == "allreduce":
        return generate_single_collective(
            topology, repro.CollectiveType.ALL_REDUCE, payload)
    if args.workload == "alltoall":
        return generate_single_collective(
            topology, repro.CollectiveType.ALL_TO_ALL, payload)
    if args.workload == "dlrm":
        return generate_dlrm(dlrm_paper(), topology)
    if args.workload == "moe1t":
        return generate_moe(
            moe_1t(), topology,
            remote_parameters=args.memory_model != "local",
            inswitch_collectives=args.inswitch)
    model = transformer_1t() if args.workload == "transformer1t" else gpt3_175b()
    if args.workload in ("gpt3", "transformer1t"):
        mp = args.mp or 16
        dp = _parallel_degrees(args, topology, mp)
        return generate_megatron_hybrid(
            model, topology, ParallelismSpec(mp=mp, dp=dp))
    if args.workload == "fsdp-gpt3":
        return generate_fsdp(gpt3_175b(), topology)
    if args.workload == "dp-gpt3":
        return generate_data_parallel(gpt3_175b(), topology)
    if args.workload == "pp-gpt3":
        mp = args.mp or 1
        pp = args.pp or 8
        dp = _parallel_degrees(args, topology, mp, pp)
        return generate_pipeline_parallel(
            gpt3_175b(), topology, ParallelismSpec(mp=mp, pp=pp, dp=dp),
            microbatches=args.microbatches)
    raise SystemExit(f"unknown workload {args.workload!r}")


def _memory_models(args: argparse.Namespace, topology):
    """Local / remote / fabric memory models from the CLI flags.

    ``hiermem`` derives the pool geometry from the topology the way
    Table V does: dim 0 is the in-node switch (GPUs per node), one
    out-node switch per node, one remote memory group per GPU.
    """
    from repro.memory.local import LocalMemory

    local = LocalMemory(bandwidth_gbps=args.hbm_gbps)
    if args.inswitch and args.memory_model != "hiermem":
        raise SystemExit(
            "error: --inswitch requires --memory-model hiermem (in-switch "
            "collectives run inside the pooled fabric)")
    if args.memory_model == "local":
        return local, None, None
    if args.memory_model == "zero-infinity":
        from repro.memory.zero_infinity import (
            ZeroInfinityConfig,
            ZeroInfinityMemory,
        )

        remote = ZeroInfinityMemory(ZeroInfinityConfig(
            path_bandwidth_gbps=args.remote_path_gbps,
            num_gpus=topology.num_npus,
        ))
        return local, remote, None
    from repro.memory.inswitch import InSwitchCollectiveMemory
    from repro.memory.remote import HierMemConfig, HierarchicalRemoteMemory

    gpus_per_node = topology.dims[0].size
    num_nodes = topology.num_npus // gpus_per_node
    pool = HierMemConfig(
        num_nodes=num_nodes,
        gpus_per_node=gpus_per_node,
        num_out_switches=num_nodes,
        num_remote_groups=topology.num_npus,
        mem_side_bw_gbps=args.group_bw_gbps,
        gpu_side_out_bw_gbps=args.fabric_bw_gbps,
        in_node_bw_gbps=args.fabric_bw_gbps,
    )
    return local, HierarchicalRemoteMemory(pool), InSwitchCollectiveMemory(pool)


def _checkpoint_config(args: argparse.Namespace, topology):
    """Build the checkpoint model from CLI flags (None when disabled)."""
    if not args.checkpoint_interval_ms:
        return None
    from repro.faults import CheckpointConfig

    interval_ns = args.checkpoint_interval_ms * 1e6
    if args.workload in ("gpt3", "transformer1t"):
        from repro.memory.capacity import transformer_footprint

        model = (transformer_1t() if args.workload == "transformer1t"
                 else gpt3_175b())
        mp = args.mp or 16
        dp = _parallel_degrees(args, topology, mp)
        footprint = transformer_footprint(model, ParallelismSpec(mp=mp, dp=dp))
        return CheckpointConfig.from_footprint(footprint, interval_ns)
    return CheckpointConfig(interval_ns=interval_ns,
                            snapshot_bytes=args.checkpoint_gib * (1 << 30))


def _fault_schedule(args: argparse.Namespace, topology, horizon_ns: float):
    """Assemble the schedule from --faults specs and/or --fault-seed."""
    from repro.faults import FaultSchedule, FaultSpecError

    schedules = []
    try:
        for text in args.faults or ():
            schedules.append(FaultSchedule.parse(text))
    except FaultSpecError as exc:
        raise SystemExit(f"error: {exc}")
    if args.fault_seed is not None:
        schedules.append(FaultSchedule.generate(
            seed=args.fault_seed,
            num_npus=topology.num_npus,
            num_dims=topology.num_dims,
            horizon_ns=horizon_ns,
            straggler_mtbf_ns=horizon_ns / 4,
            stall_mtbf_ns=horizon_ns / 8,
            degrade_mtbf_ns=horizon_ns / 8,
            linkdown_mtbf_ns=horizon_ns / 8,
            straggler_duration_ns=(horizon_ns / 20, horizon_ns / 4),
            stall_duration_ns=(horizon_ns / 50, horizon_ns / 10),
            degrade_duration_ns=(horizon_ns / 20, horizon_ns / 4),
        ))
    return FaultSchedule.merge(schedules)


def _telemetry_config(args: argparse.Namespace):
    """Build the telemetry config from CLI flags (None when disabled).

    Telemetry activates when metrics are exported (``--metrics-out``) or
    spans are requested (``--trace-level`` above ``off``); otherwise the
    run stays on the un-instrumented fast path.
    """
    from repro.telemetry import TelemetryConfig, TelemetryError, TraceLevel

    try:
        level = TraceLevel.parse(args.trace_level)
    except TelemetryError as exc:
        raise SystemExit(f"error: {exc}")
    if (level is TraceLevel.PACKET and args.backend == "analytical"
            and not getattr(args, "granularity", "")):
        raise SystemExit(
            "error: --trace-level packet requires --backend garnet or flow "
            "(or a --granularity policy; the analytical backend does not "
            "model individual packets)")
    if level is TraceLevel.OFF and not getattr(args, "metrics_out", ""):
        return None
    return TelemetryConfig(trace_level=level)


def _invariants_config(args: argparse.Namespace):
    """Build the invariant-checker config (None when disabled)."""
    if not getattr(args, "check_invariants", False):
        return None
    from repro.validate import InvariantConfig

    return InvariantConfig(strict=getattr(args, "strict_invariants", False))


def simulate_from_args(args: argparse.Namespace) -> Tuple[object, object, object]:
    """Build and run one simulation from parsed ``run`` flags.

    The shared execution path of the ``run`` subcommand and every
    campaign worker (:mod:`repro.campaign.runner`): identical flag
    semantics, no printing.  Returns ``(topology, result, resilience)``.
    """
    topology = _build_topology(args)
    traces = _build_traces(args, topology)
    local_memory, remote_memory, fabric = _memory_models(args, topology)
    config = repro.SystemConfig(
        topology=topology,
        scheduler=args.scheduler,
        collective_chunks=args.chunks,
        network_backend=args.backend,
        packet_bytes=args.packet_bytes,
        train_packets=args.train_packets,
        granularity=getattr(args, "granularity", ""),
        escalation_threshold=getattr(args, "escalation_threshold", 4.0),
        deescalation_hysteresis=getattr(
            args, "deescalation_hysteresis", 1.0),
        compute=repro.RooflineCompute(
            peak_tflops=args.peak_tflops,
            mem_bandwidth_gbps=args.hbm_gbps,
        ),
        local_memory=local_memory,
        remote_memory=remote_memory,
        fabric_collectives=fabric,
        telemetry=_telemetry_config(args),
        invariants=_invariants_config(args),
        folding=getattr(args, "folding", "auto"),
    )
    resilience = None
    if args.faults or args.fault_seed is not None:
        if args.backend != "analytical" or getattr(args, "granularity", ""):
            raise SystemExit(
                "error: --faults/--fault-seed require --backend analytical "
                "(and no --granularity policy)")
        import dataclasses

        # Fault-free baseline: the exact time-lost reference, and the
        # horizon seeded schedules are drawn over.
        baseline = repro.simulate(traces, config)
        schedule = _fault_schedule(args, topology, baseline.total_time_ns)
        try:
            config = dataclasses.replace(
                config, faults=schedule,
                checkpoint=_checkpoint_config(args, topology))
            traces = _build_traces(args, topology)  # fresh node state
            result = repro.simulate(traces, config)
        except repro.faults.FaultSpecError as exc:
            raise SystemExit(f"error: {exc}")
        if result.resilience is not None:
            result.resilience.baseline_ns = baseline.total_time_ns
            resilience = result.resilience
    else:
        result = repro.simulate(traces, config)
    return topology, result, resilience


def run_from_args(args: argparse.Namespace) -> int:
    topology, result, resilience = simulate_from_args(args)
    print(f"topology : {topology.notation()}  ({topology.num_npus} NPUs)")
    print(f"workload : {args.workload}  scheduler: {args.scheduler}  "
          f"chunks: {args.chunks}")
    print(f"total    : {result.total_time_ms:.3f} ms  "
          f"({result.nodes_executed} nodes, "
          f"{result.events_processed} events)")
    if result.folding is not None and result.folding.active:
        fold = result.folding
        print(f"folding  : {fold.num_classes} classes simulated for "
              f"{fold.traced_ranks} ranks "
              f"({fold.folded_ranks} folded away)")
    if args.sim_rate and result.simulation_rate_eps is not None:
        # Opt-in: wall-clock dependent, so off by default to keep the
        # CLI output deterministic across runs.
        print(f"sim rate : {result.simulation_rate_eps:,.0f} events/s  "
              f"({result.wall_time_s:.3f} s wall)")
    print()
    print(format_breakdown_table({args.workload: result.breakdown}))
    if resilience is not None:
        print("\nresilience:")
        print(resilience.format())
    elif args.faults or args.fault_seed is not None:
        print("\nresilience: schedule was empty; run matches the baseline")
    if args.collectives:
        print("\ncollectives:")
        for record in result.collectives[: args.collectives]:
            print(f"  {record.name:<28} {record.duration_ns / 1e3:10.1f} us  "
                  f"group {record.group_size}")
    if args.timeline and result.activity is not None:
        from repro.stats.timeline import render_timeline

        print()
        print(render_timeline(result.activity, result.total_time_ns,
                              width=args.timeline))
    if args.json_out:
        from repro.stats.export import dump_result_json

        dump_result_json(result, args.json_out)
        print(f"\nresult written to {args.json_out}")
    if args.chrome_trace and result.activity is not None:
        from repro.stats.chrometrace import dump_chrome_trace

        dump_chrome_trace(result.activity, args.chrome_trace,
                          collectives=result.collectives,
                          telemetry=result.telemetry)
        print(f"chrome trace written to {args.chrome_trace}")
    if args.metrics_out:
        from repro.telemetry import dump_metrics_json

        dump_metrics_json(result.telemetry, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    if result.invariants is not None:
        report = result.invariants
        print(f"\ninvariants: {report.checks} checks, "
              f"{report.violations_total} violations")
        for key, count in sorted(report.counts_by_name().items()):
            print(f"  {key}: {count}")
        for violation in report.violations[:5]:
            print(f"  [{violation.layer}/{violation.name}] "
                  f"{violation.message}")
        if not report.ok:
            return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.campaign import (
        CampaignError,
        CampaignRunner,
        SweepSpec,
        SweepSpecError,
        base_point_from_args,
        campaign_summary,
        campaign_to_csv,
        campaign_table,
        dump_campaign_json,
    )

    try:
        spec = SweepSpec.from_cli(base_point_from_args(args),
                                  args.grid or (), args.zip or ())
    except SweepSpecError as exc:
        raise SystemExit(f"error: {exc}")
    if not args.grid and not args.zip:
        raise SystemExit(
            "error: a sweep needs at least one --grid or --zip axis "
            "(use the run subcommand for a single point)")
    runner = CampaignRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir or None,
        fail_fast=args.fail_fast,
        batch_size=args.batch_size,
    )
    try:
        campaign = runner.run(spec)
    except (SweepSpecError, CampaignError) as exc:
        raise SystemExit(f"error: {exc}")
    doc = campaign.to_dict()
    print(f"sweep    : {len(campaign.points)} points, jobs={args.jobs}")
    print(campaign_table(doc))
    summary = campaign_summary(doc)
    stats = summary["total_time_ms"]
    if stats["count"]:
        print(f"\ntotal_time_ms: min {stats['min']:.3f}  "
              f"median {stats['median']:.3f}  mean {stats['mean']:.3f}  "
              f"max {stats['max']:.3f}")
    if summary["errors"]:
        print(f"errors   : {summary['errors']} of {len(campaign.points)} "
              "points failed (see the merged output for tracebacks)")
    if campaign.cache_counters is not None:
        counters = campaign.cache_counters
        print(f"cache    : {counters['hits']} hits, "
              f"{counters['misses']} misses"
              + (f", {counters['corrupted']} corrupted entries recovered"
                 if counters["corrupted"] else ""))
    if args.out:
        dump_campaign_json(doc, args.out)
        print(f"\nmerged results written to {args.out}")
    if args.csv_out:
        from pathlib import Path

        Path(args.csv_out).write_text(campaign_to_csv(doc))
        print(f"CSV table written to {args.csv_out}")
    return 1 if summary["errors"] else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.campaign.serve import ServeConfig, serve_forever

    if args.jobs < 0:
        raise SystemExit(f"error: --jobs must be >= 0, got {args.jobs}")
    if args.queue_depth < 1:
        raise SystemExit(
            f"error: --queue-depth must be >= 1, got {args.queue_depth}")
    return serve_forever(ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_dir=args.cache_dir or None,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        quiet=False,
    ))


def _cmd_validate(args: argparse.Namespace) -> int:
    """Run the repro.validate suites (see docs/validation.md)."""
    import json

    from repro.validate import run_conformance_suite, run_metamorphic_suite

    quick = not args.full
    suites = (("invariants", "metamorphic", "conformance", "adaptive",
               "frontend")
              if args.suite == "all" else (args.suite,))
    doc = {"schema_version": 1, "suites": list(suites), "quick": quick}
    failed = 0

    if "invariants" in suites:
        # An invariant-checked end-to-end run.  A user-supplied topology
        # becomes the scenario; otherwise a hierarchical default is used.
        if not args.topology:
            args.topology, args.bandwidths = "Ring(2)_Switch(4)", "200,50"
            if args.payload_mib == 1024.0:
                args.payload_mib = 64.0
        args.check_invariants = True
        topology, result, _ = simulate_from_args(args)
        report = result.invariants
        doc["invariants"] = report.to_dict()
        status = "ok" if report.ok else "FAIL"
        print(f"invariants  : {status}  ({report.checks} checks, "
              f"{report.violations_total} violations on "
              f"{topology.notation()}/{args.workload})")
        for violation in report.violations[:10]:
            print(f"  [{violation.layer}/{violation.name}] "
                  f"{violation.message}")
        if not report.ok:
            failed += 1

    if "metamorphic" in suites:
        results = run_metamorphic_suite(quick=quick)
        bad = [r for r in results if not r.passed]
        doc["metamorphic"] = {
            "passed": not bad,
            "relations_total": len(results),
            "relations_failed": len(bad),
            "results": [r.to_dict() for r in results],
        }
        status = "ok" if not bad else "FAIL"
        print(f"metamorphic : {status}  ({len(results)} relation cases, "
              f"{len(bad)} failed)")
        for r in bad[:10]:
            print(f"  [{r.relation}/{r.case}] {r.message}")
        if bad:
            failed += 1

    if "conformance" in suites:
        report = run_conformance_suite(quick=quick)
        doc["conformance"] = report.to_dict()
        total = (len(report.cases) + len(report.memory_cases)
                 + len(report.folding_cases))
        status = "ok" if report.passed else "FAIL"
        print(f"conformance : {status}  ({total} scenario cases, "
              f"{len(report.failures)} failed)")
        for case in report.failures[:10]:
            print(f"  [{case.scenario}] {case.message}")
        if not report.passed:
            failed += 1

    if "adaptive" in suites:
        from repro.validate import run_adaptive_suite

        report = run_adaptive_suite(quick=quick)
        doc["adaptive"] = report.to_dict()
        status = "ok" if report.passed else "FAIL"
        contended = [c for c in report.cases if c.axis == "contended"]
        reduction = min((c.event_reduction for c in contended),
                        default=0.0)
        print(f"adaptive    : {status}  ({len(report.cases)} cases, "
              f"{len(report.failures)} failed; contended event "
              f"reduction {reduction:.1f}x)")
        for case in report.failures[:10]:
            print(f"  [{case.axis}/{case.scenario}/{case.algorithm}] "
                  f"{case.message}")
        if not report.passed:
            failed += 1

    if "frontend" in suites:
        from repro.validate import run_frontend_suite

        report = run_frontend_suite(quick=quick)
        doc["frontend"] = report.to_dict()
        status = "ok" if report.passed else "FAIL"
        print(f"frontend    : {status}  ({len(report.cases)} ingestion "
              f"cases, {len(report.failures)} failed)")
        for case in report.failures[:10]:
            print(f"  [{case.axis}/{case.case}] {case.message}")
        if not report.passed:
            failed += 1

    doc["passed"] = failed == 0
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report_out}")
    return 1 if failed else 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest a model spec: inspect, lint, export, or emit traces."""
    from repro.frontend import zoo_entries, zoo_names

    if args.list_models:
        print(f"{'model':<14} description")
        for entry in zoo_entries():
            print(f"{entry.name:<14} {entry.description}")
        return 0
    if not args.spec:
        raise SystemExit(
            "error: give a model spec (a zoo name or a JSON path), or "
            "--list-models")
    if args.spec in zoo_names():
        args.model, args.model_json = args.spec, ""
    else:
        args.model, args.model_json = "", args.spec
    graph = _ingest_from_args(args)

    status = 0
    if args.lint:
        from repro.workload import lint_op_graph

        findings = lint_op_graph(graph)
        if findings:
            print(f"lint     : {len(findings)} finding(s)")
            for finding in findings:
                print(f"  {finding}")
            status = 1
        else:
            print("lint     : clean")

    summary = graph.summary()
    print(f"model    : {summary['name']}  ({summary['ops']} ops, "
          f"{summary['layers']} layers)")
    print(f"compute  : {summary['total_gflops']:,.0f} GFLOPs fwd/iter, "
          f"{summary['total_params']:,} params "
          f"({summary['param_gib']} GiB)")
    kinds = ", ".join(f"{kind}={count}" for kind, count
                      in sorted(summary["ops_by_kind"].items()))
    print(f"ops      : {kinds}")
    print(f"parallel : {summary['tensor_parallel_ops']} tensor-parallel "
          f"ops, {summary['routed_ops']} routed ops")

    if args.out:
        from repro.frontend import save_opgraph

        save_opgraph(graph, args.out)
        print(f"opgraph written to {args.out}")

    if args.emit_traces:
        from pathlib import Path

        from repro.frontend import FrontendError, PlanConfig, plan
        from repro.trace.serialization import save_trace

        topology = _build_topology(args)
        try:
            planned = plan(graph, topology, PlanConfig(
                tp=args.mp, dp=args.dp, pp=args.pp, ep=args.ep,
                microbatches=args.microbatches))
        except FrontendError as exc:
            raise SystemExit(f"error: {exc}")
        out_dir = Path(args.emit_traces)
        out_dir.mkdir(parents=True, exist_ok=True)
        for npu, trace in sorted(planned.traces.items()):
            save_trace(trace, out_dir / f"{graph.name}.npu{npu}.json")
        degrees = planned.summary()["parallelism"]
        print(f"plan     : tp={degrees['tp']} dp={degrees['dp']} "
              f"pp={degrees['pp']} ep={degrees['ep']} on "
              f"{topology.notation()}")
        print(f"{len(planned.traces)} representative trace(s) written to "
              f"{out_dir}/")
    return status


def _cmd_trace_info(args: argparse.Namespace) -> int:
    trace = repro.load_trace(args.path)
    print(summarize(trace).format())
    return 0


def _cmd_topology_info(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    print(f"{topology.notation()}: {topology.num_npus} NPUs, "
          f"{topology.num_dims} dims, "
          f"{topology.total_bandwidth_gbps():g} GB/s per NPU, "
          f"{topology.total_links()} links")
    for i, dim in enumerate(topology.dims):
        print(f"  dim {i}: {dim.block.value}({dim.size}) "
              f"@ {dim.bandwidth_gbps:g} GB/s, {dim.latency_ns:g} ns/hop, "
              f"algorithm: {dim.block.collective_algorithm}")
    return 0


def _add_run_flags(parser: argparse.ArgumentParser, required: bool = True) -> None:
    """The simulation-configuration flags shared by ``run`` and ``sweep``.

    With ``required=False`` (the sweep subcommand) --topology and
    --bandwidths may instead come from a sweep axis; the per-point
    validation still insists they resolve somewhere.
    """
    parser.add_argument("--topology", required=required, default="",
                        help='shape notation, e.g. "Ring(4)_Switch(8)"')
    parser.add_argument("--bandwidths", required=required, default="",
                        help="per-dim GB/s, comma separated")
    parser.add_argument("--latencies", default="",
                        help="per-dim ns/hop, comma separated (default 500)")
    parser.add_argument("--workload", choices=WORKLOADS, default="allreduce")
    parser.add_argument("--model", default="", metavar="NAME",
                        help="simulate a frontend zoo model instead of a "
                             "builtin workload (see: repro ingest "
                             "--list-models)")
    parser.add_argument("--model-json", default="", metavar="PATH",
                        help="ingest an HF-style config.json or repro-opgraph "
                             "JSON through the frontend and simulate it")
    parser.add_argument("--batch", type=int, default=0,
                        help="frontend batch size override (0 = the model "
                             "family's default)")
    parser.add_argument("--seq-len", type=int, default=0,
                        help="frontend sequence length override (0 = the "
                             "model family's default)")
    parser.add_argument("--ep", type=int, default=0,
                        help="expert-parallel degree for frontend models "
                             "with routed ops (0 = auto)")
    parser.add_argument("--payload-mib", type=float, default=1024.0,
                        help="collective payload for allreduce/alltoall")
    parser.add_argument("--scheduler", choices=("baseline", "themis"),
                        default="themis")
    parser.add_argument("--backend", choices=("analytical", "garnet", "flow"),
                        default="analytical",
                        help="network backend; on garnet/flow collectives "
                             "are lowered to explicit send/recv algorithms")
    parser.add_argument("--packet-bytes", type=int, default=0,
                        help="packet/segment size for the detailed backends "
                             "(0 = backend default, 4096)")
    parser.add_argument("--train-packets", type=int, default=1,
                        help="garnet packet-train coalescing factor; > 1 "
                             "trades contention granularity for simulation "
                             "speed on large payloads")
    parser.add_argument("--granularity",
                        choices=("", "fluid", "packet", "adaptive"),
                        default="",
                        help="simulation granularity policy: 'fluid' (flow-"
                             "level), 'packet' (garnet-lite), or 'adaptive' "
                             "(runtime per-link fluid->packet escalation "
                             "under contention with hysteresis-based "
                             "de-escalation); default: --backend decides")
    parser.add_argument("--escalation-threshold", type=float, default=4.0,
                        help="adaptive granularity: escalate a link to "
                             "packet simulation when it carries more than "
                             "this many concurrent flows (0 = always, "
                             "inf = never)")
    parser.add_argument("--deescalation-hysteresis", type=float, default=1.0,
                        help="adaptive granularity: de-escalate a packet-"
                             "mode link when its flow count drops to "
                             "threshold minus this margin or below")
    parser.add_argument("--folding", choices=("auto", "off"), default="auto",
                        help="symmetry folding: 'auto' simulates one rank "
                             "per equivalence class of symmetric ranks and "
                             "reconstructs the per-rank result bit-"
                             "identically; 'off' simulates every trace")
    parser.add_argument("--chunks", type=int, default=16)
    parser.add_argument("--mp", type=int, default=0)
    parser.add_argument("--dp", type=int, default=0)
    parser.add_argument("--pp", type=int, default=0)
    parser.add_argument("--microbatches", type=int, default=4)
    parser.add_argument("--peak-tflops", type=float, default=234.0)
    parser.add_argument("--hbm-gbps", type=float, default=2039.0,
                        help="local HBM bandwidth (roofline + local memory "
                             "model)")
    parser.add_argument("--memory-model", choices=MEMORY_MODELS,
                        default="local",
                        help="remote-memory organisation: hiermem pools "
                             "groups behind switches (Table V), "
                             "zero-infinity gives each GPU a private slow "
                             "path")
    parser.add_argument("--fabric-bw-gbps", type=float, default=256.0,
                        help="hiermem in-node pooled fabric bandwidth "
                             "(Table V row 3)")
    parser.add_argument("--group-bw-gbps", type=float, default=100.0,
                        help="hiermem remote memory group bandwidth "
                             "(Table V row 6)")
    parser.add_argument("--remote-path-gbps", type=float, default=100.0,
                        help="zero-infinity per-GPU slow-path bandwidth")
    parser.add_argument("--inswitch", action="store_true",
                        help="fuse collectives into the pooled memory "
                             "fabric (moe1t workload; requires "
                             "--memory-model hiermem)")
    parser.add_argument("--faults", action="append", metavar="SPEC",
                        help="inject faults, e.g. 'straggler@npu3:1.5x@t=2ms' "
                             "(repeatable; ';' separates specs; see "
                             "repro.faults for the grammar)")
    parser.add_argument("--fault-seed", type=int, default=None, metavar="SEED",
                        help="also draw a seeded random fault schedule over "
                             "the run's fault-free duration (deterministic "
                             "per seed)")
    parser.add_argument("--checkpoint-interval-ms", type=float, default=0.0,
                        help="checkpoint period for the resilience report's "
                             "restart/replay accounting (0 = no checkpoints)")
    parser.add_argument("--checkpoint-gib", type=float, default=16.0,
                        help="per-NPU snapshot size for non-transformer "
                             "workloads (transformer workloads derive it from "
                             "the model-state footprint)")
    parser.add_argument("--trace-level",
                        choices=("off", "phase", "collective", "chunk",
                                 "packet"),
                        default="off",
                        help="span recording depth for --chrome-trace / "
                             "--metrics-out (deeper levels record more "
                             "spans; 'packet' needs a packet-modeling "
                             "backend)")
    parser.add_argument("--check-invariants", action="store_true",
                        help="attach the runtime invariant checker "
                             "(repro.validate): causality, conservation, "
                             "and capacity laws verified during the run; "
                             "violations are reported and fail the command")
    parser.add_argument("--strict-invariants", action="store_true",
                        help="with --check-invariants, raise at the first "
                             "violation instead of collecting a report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ASTRA-sim 2.0 reproduction CLI")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload on a topology")
    _add_run_flags(run, required=True)
    run.add_argument("--collectives", type=int, default=0,
                     help="print the first N collective records")
    run.add_argument("--json-out", default="",
                     help="dump the full result to a JSON file")
    run.add_argument("--chrome-trace", default="",
                     help="dump a chrome://tracing / Perfetto trace JSON")
    run.add_argument("--timeline", type=int, default=0, metavar="WIDTH",
                     help="render a per-NPU activity timeline WIDTH cols wide")
    run.add_argument("--sim-rate", action="store_true",
                     help="print simulator throughput (events/s; wall-clock "
                          "dependent, so output is no longer deterministic)")
    run.add_argument("--metrics-out", default="", metavar="PATH",
                     help="dump the telemetry metrics registry to a "
                          "metrics.json file (enables telemetry)")
    run.set_defaults(func=run_from_args)

    sweep = sub.add_parser(
        "sweep",
        help="run a sweep campaign over run-flag axes, optionally in "
             "parallel and through the run cache")
    _add_run_flags(sweep, required=False)
    sweep.add_argument("--grid", action="append", metavar="FIELD=V1|V2|...",
                       help="cartesian-product axis over a run flag "
                            "(repeatable; the last axis varies fastest)")
    sweep.add_argument("--zip", action="append", metavar="FIELD=V1|V2|...",
                       help="linked axis: equal-length value lists that "
                            "vary together (e.g. topology with its "
                            "bandwidths)")
    sweep.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker processes (0 = serial in-process; "
                            "results are bit-identical either way)")
    sweep.add_argument("--cache-dir", default="", metavar="DIR",
                       help="content-addressed run cache: re-running a "
                            "sweep only simulates changed points")
    sweep.add_argument("--batch-size", type=int, default=0, metavar="N",
                       help="points per worker task (0 = auto, about two "
                            "tasks per worker); merged output is "
                            "bit-identical at any batch size")
    sweep.add_argument("--fail-fast", action="store_true",
                       help="abort the campaign on the first failed point "
                            "instead of recording a structured error")
    sweep.add_argument("--out", default="", metavar="PATH",
                       help="write the merged campaign JSON document")
    sweep.add_argument("--csv-out", default="", metavar="PATH",
                       help="write the per-point aggregate table as CSV")
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the HTTP daemon: POST /run and /sweep over a persistent "
             "warm worker fleet with a shared run cache (see "
             "docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8351,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8351)")
    serve.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="warm worker processes shared by all requests "
                            "(0 = execute in the request thread)")
    serve.add_argument("--cache-dir", default="", metavar="DIR",
                       help="content-addressed run cache shared across "
                            "clients: identical requests dedup to one "
                            "simulation")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="max requests in flight before the daemon "
                            "answers 429 (default: 8)")
    serve.add_argument("--batch-size", type=int, default=0, metavar="N",
                       help="default points per worker task for /sweep "
                            "requests (0 = auto)")
    serve.set_defaults(func=_cmd_serve)

    validate = sub.add_parser(
        "validate",
        help="run the conformance/invariant suites (repro.validate): "
             "runtime invariants, metamorphic relations, and the "
             "cross-backend differential oracle")
    _add_run_flags(validate, required=False)
    validate.add_argument("--suite",
                          choices=("invariants", "metamorphic",
                                   "conformance", "adaptive", "frontend",
                                   "all"),
                          default="all",
                          help="which pillar to run (default: all)")
    validate.add_argument("--full", action="store_true",
                          help="run the full scenario matrix instead of "
                               "the quick subset")
    validate.add_argument("--report-out", default="", metavar="PATH",
                          help="write the versioned validation report JSON")
    validate.set_defaults(func=_cmd_validate)

    ingest = sub.add_parser(
        "ingest",
        help="ingest a model spec (HF config.json, opgraph JSON, or zoo "
             "name) through the frontend: inspect, lint, export, or emit "
             "execution traces")
    ingest.add_argument("spec", nargs="?", default="",
                        help="zoo model name or path to a config/opgraph "
                             "JSON file")
    ingest.add_argument("--list-models", action="store_true",
                        help="list the registered zoo models and exit")
    ingest.add_argument("--lint", action="store_true",
                        help="lint the ingested op graph "
                             "(repro.workload.lint); findings fail the "
                             "command")
    ingest.add_argument("--batch", type=int, default=0,
                        help="batch size override (0 = family default)")
    ingest.add_argument("--seq-len", type=int, default=0,
                        help="sequence length override (0 = family default)")
    ingest.add_argument("--out", default="", metavar="PATH",
                        help="export the normalized op graph as "
                             "repro-opgraph JSON")
    ingest.add_argument("--emit-traces", default="", metavar="DIR",
                        help="plan on --topology/--bandwidths and write the "
                             "representative execution traces as ET JSON "
                             "files")
    ingest.add_argument("--topology", default="",
                        help="shape notation for --emit-traces")
    ingest.add_argument("--bandwidths", default="",
                        help="per-dim GB/s for --emit-traces")
    ingest.add_argument("--latencies", default="",
                        help="per-dim ns/hop for --emit-traces")
    ingest.add_argument("--mp", type=int, default=0,
                        help="tensor-parallel degree for --emit-traces "
                             "(0 = auto)")
    ingest.add_argument("--dp", type=int, default=0)
    ingest.add_argument("--pp", type=int, default=0)
    ingest.add_argument("--ep", type=int, default=0)
    ingest.add_argument("--microbatches", type=int, default=4)
    ingest.set_defaults(func=_cmd_ingest)

    info = sub.add_parser("trace-info", help="summarize an ET JSON file")
    info.add_argument("path")
    info.set_defaults(func=_cmd_trace_info)

    topo = sub.add_parser("topology-info", help="describe a topology string")
    topo.add_argument("topology")
    topo.add_argument("--bandwidths", required=True)
    topo.add_argument("--latencies", default="")
    topo.set_defaults(func=_cmd_topology_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Metamorphic relation suite — pillar 2 of :mod:`repro.validate`.

Where the invariant checker (pillar 1) asserts laws *inside* one run,
metamorphic relations assert laws *between* runs: transform the input in
a way whose effect on the output is known, and check the outputs relate
accordingly.  No golden numbers are involved, so the relations survive
model refinements that legitimately move absolute results.

Relations checked:

- **bandwidth monotonicity** — doubling every link bandwidth never
  increases a collective's completion time (full simulator stack, both
  schedulers);
- **NPU permutation symmetry** — on a symmetric topology, running the
  same ring collective over a rotated or reversed rank order gives the
  identical time (all three network backends);
- **payload additivity** — collective time is monotone in payload, and
  two back-to-back collectives of payload ``p`` cost exactly the sum of
  their standalone times (ports drain completely between them), with
  ``t(2p) <= t(p) + t(p)`` because the latency term is paid once;
- **fluid-limit convergence** — the packet backend's gap to the
  analytical closed form is the store-and-forward term, proportional to
  the packet size: it shrinks monotonically as packets get smaller and
  is bounded by the closed-form envelope at every granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.core.config import SystemConfig
from repro.core.simulator import simulate
from repro.events import EventEngine
from repro.network.analytical import AnalyticalNetwork
from repro.network.flowlevel import FlowLevelNetwork
from repro.network.garnetlite import GarnetLiteNetwork
from repro.network.topology import parse_topology
from repro.system.executor import SendRecvCollectiveExecutor
from repro.trace.node import CollectiveType
from repro.workload.generators import generate_single_collective

MiB = 1 << 20

#: Relative slack for relations that hold exactly in real arithmetic.
REL_EXACT = 1e-9


@dataclass(frozen=True)
class RelationResult:
    """Outcome of one metamorphic relation on one scenario."""

    relation: str
    case: str
    passed: bool
    detail: Dict[str, float] = field(default_factory=dict)
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        # Coerce to plain Python scalars: the Themis LP path hands back
        # numpy float64/bool_, which json.dumps refuses.
        return {
            "relation": self.relation,
            "case": self.case,
            "passed": bool(self.passed),
            "detail": {k: float(v) for k, v in self.detail.items()},
            "message": self.message,
        }


# -- harnesses -------------------------------------------------------------------------


def _simulate_collective(
    notation: str,
    bandwidths: Sequence[float],
    payload_bytes: int,
    scheduler: str = "baseline",
    count: int = 1,
    collective: CollectiveType = CollectiveType.ALL_REDUCE,
) -> float:
    """Full-stack collective time through the Simulator (analytical)."""
    topo = parse_topology(notation, list(bandwidths))
    traces = generate_single_collective(topo, collective, payload_bytes,
                                        count=count)
    result = simulate(traces, SystemConfig(topology=topo, scheduler=scheduler))
    return result.total_time_ns


def _executor_time(
    backend: str,
    notation: str,
    bandwidths: Sequence[float],
    latencies: Sequence[float],
    algorithm: str,
    group: Sequence[int],
    payload_bytes: int,
    packet_bytes: int = 4096,
) -> float:
    """One send/recv collective algorithm over an explicit backend."""
    topo = parse_topology(notation, list(bandwidths),
                          latencies_ns=list(latencies))
    engine = EventEngine()
    if backend == "analytical":
        net = AnalyticalNetwork(engine, topo)
    elif backend == "flow":
        net = FlowLevelNetwork(engine, topo)
    elif backend == "garnet":
        net = GarnetLiteNetwork(engine, topo, packet_bytes=packet_bytes)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    executor = SendRecvCollectiveExecutor(engine, net)
    out: Dict[str, float] = {}
    getattr(executor, f"run_{algorithm}")(
        list(group), payload_bytes, on_complete=lambda t: out.update(t=t))
    engine.run()
    return out["t"]


# -- relations -------------------------------------------------------------------------


def check_bandwidth_monotonicity(quick: bool = True) -> List[RelationResult]:
    """Doubling every dimension's bandwidth never slows a collective."""
    topologies = [("Ring(8)", [100.0]), ("Switch(8)", [50.0])]
    if not quick:
        topologies.append(("Ring(2)_Switch(4)", [200.0, 50.0]))
    results = []
    for notation, bws in topologies:
        for scheduler in ("baseline", "themis"):
            base = _simulate_collective(notation, bws, 4 * MiB,
                                        scheduler=scheduler)
            fast = _simulate_collective(notation, [2 * b for b in bws],
                                        4 * MiB, scheduler=scheduler)
            passed = fast <= base * (1.0 + REL_EXACT)
            results.append(RelationResult(
                relation="bandwidth_monotonicity",
                case=f"{notation}/{scheduler}",
                passed=passed,
                detail={"base_ns": base, "doubled_bw_ns": fast},
                message="" if passed else (
                    f"doubling bandwidth slowed the collective: "
                    f"{base:.6g} ns -> {fast:.6g} ns"),
            ))
    return results


def check_npu_permutation_symmetry(quick: bool = True) -> List[RelationResult]:
    """Rank-order permutations on a symmetric ring change nothing.

    A rotation maps every neighbor pair onto another neighbor pair and a
    reversal flips traffic direction; both leave the link-load pattern
    of a ring collective invariant, so the completion time must match to
    float noise on every backend.
    """
    notation, bws, lats = "Ring(8)", [100.0], [100.0]
    k = 8
    identity = list(range(k))
    permutations = {
        "rotate3": identity[3:] + identity[:3],
        "reversed": list(reversed(identity)),
    }
    backends = ["analytical", "flow"] if quick else [
        "analytical", "flow", "garnet"]
    results = []
    for backend in backends:
        base = _executor_time(backend, notation, bws, lats,
                              "ring_allreduce", identity, 1 * MiB)
        for perm_name, group in permutations.items():
            permuted = _executor_time(backend, notation, bws, lats,
                                      "ring_allreduce", group, 1 * MiB)
            passed = abs(permuted - base) <= REL_EXACT * max(base, 1.0)
            results.append(RelationResult(
                relation="npu_permutation_symmetry",
                case=f"{backend}/{perm_name}",
                passed=passed,
                detail={"identity_ns": base, "permuted_ns": permuted},
                message="" if passed else (
                    f"permutation {perm_name} changed the time: "
                    f"{base:.6g} ns -> {permuted:.6g} ns"),
            ))
    return results


def check_payload_additivity(quick: bool = True) -> List[RelationResult]:
    """Sequential composition adds; payload scaling is monotone.

    With the ports fully drained between two identical collectives, the
    second replays the first shifted in time: ``t(p then p) == 2 t(p)``.
    A single collective of ``2p`` pays the per-step latency only once,
    so ``t(p) <= t(2p) <= 2 t(p)``.
    """
    del quick  # both checks are cheap; always run everything
    results = []
    # Executor path: exact closed-form behaviour on the analytical backend.
    notation, bws, lats = "Ring(8)", [100.0], [100.0]
    group = list(range(8))
    t_p = _executor_time("analytical", notation, bws, lats,
                         "ring_allreduce", group, 1 * MiB)
    t_2p = _executor_time("analytical", notation, bws, lats,
                          "ring_allreduce", group, 2 * MiB)
    monotone = t_p <= t_2p * (1.0 + REL_EXACT)
    latency_once = t_2p <= 2.0 * t_p * (1.0 + REL_EXACT)
    results.append(RelationResult(
        relation="payload_additivity",
        case="executor/scaling",
        passed=monotone and latency_once,
        detail={"t_p_ns": t_p, "t_2p_ns": t_2p},
        message="" if monotone and latency_once else (
            f"expected t(p) <= t(2p) <= 2 t(p), got t(p)={t_p:.6g}, "
            f"t(2p)={t_2p:.6g}"),
    ))
    # Simulator path: two dependent collectives cost the sum of one each.
    s_p = _simulate_collective("Ring(8)", [100.0], 1 * MiB, count=1)
    s_seq = _simulate_collective("Ring(8)", [100.0], 1 * MiB, count=2)
    passed = abs(s_seq - 2.0 * s_p) <= REL_EXACT * max(2.0 * s_p, 1.0)
    results.append(RelationResult(
        relation="payload_additivity",
        case="simulator/sequential",
        passed=passed,
        detail={"single_ns": s_p, "sequential_ns": s_seq},
        message="" if passed else (
            f"two back-to-back collectives cost {s_seq:.6g} ns, not "
            f"2 x {s_p:.6g} ns"),
    ))
    return results


def check_fluid_limit_convergence(quick: bool = True) -> List[RelationResult]:
    """Garnet-lite converges to the analytical closed form as packets shrink.

    The only modelled difference on congestion-free traffic is
    store-and-forward packet quantization — one extra packet
    serialization per extra link per step, so the relative gap is
    ``steps * packet_bytes / (bandwidth * t_analytical)``.  The gap must
    shrink monotonically with the packet size and stay inside that
    closed-form envelope at every granularity.  (The paper's fluid limit
    runs the other way: *growing* packets coarsen the model; see
    docs/validation.md.)
    """
    notation, bws, lats = "Switch(8)", [50.0], [500.0]
    k, extra_links, steps = 8, 1, 2 * (8 - 1)
    payload = 1 * MiB
    packet_sizes = [16384, 4096, 1024] if quick else [16384, 8192, 4096,
                                                      2048, 1024]
    analytical = _executor_time("analytical", notation, bws, lats,
                                "ring_allreduce", list(range(k)), payload)
    results = []
    prev_gap = None
    for packet_bytes in packet_sizes:
        garnet = _executor_time("garnet", notation, bws, lats,
                                "ring_allreduce", list(range(k)), payload,
                                packet_bytes=packet_bytes)
        gap = abs(garnet - analytical) / analytical
        envelope = (steps * extra_links * packet_bytes / bws[0]) / analytical
        shrinking = prev_gap is None or gap <= prev_gap * (1.0 + REL_EXACT)
        bounded = gap <= envelope * (1.0 + 1e-6) + 1e-12
        passed = shrinking and bounded
        results.append(RelationResult(
            relation="fluid_limit_convergence",
            case=f"packet{packet_bytes}",
            passed=passed,
            detail={"analytical_ns": analytical, "garnet_ns": garnet,
                    "rel_gap": gap, "envelope": envelope},
            message="" if passed else (
                f"gap {gap:.3g} at packet_bytes={packet_bytes} "
                + ("is not shrinking" if not shrinking
                   else f"exceeds the closed-form envelope {envelope:.3g}")),
        ))
        prev_gap = gap
    return results


RELATIONS = (
    check_bandwidth_monotonicity,
    check_npu_permutation_symmetry,
    check_payload_additivity,
    check_fluid_limit_convergence,
)


def run_metamorphic_suite(quick: bool = True) -> List[RelationResult]:
    """Run every relation; returns one result per (relation, case)."""
    results: List[RelationResult] = []
    for relation in RELATIONS:
        results.extend(relation(quick=quick))
    return results

"""Runtime invariant checking — pillar 1 of :mod:`repro.validate`.

An :class:`InvariantChecker` attaches to the layers of a running
simulation through the same opt-in slot pattern as telemetry and fault
injection: every layer carries an ``invariants`` attribute that defaults
to ``None``, and every hook guards with ``if inv is not None`` — an
absent config keeps the simulation on the exact un-instrumented code
path (bit-identical results, enforced by the perf-smoke A/B gate).

Checked physical laws:

- **causality** — no event scheduled at a non-finite time (the engine
  already rejects negative delays), and no port reservation that starts
  before the current simulation time or runs backwards;
- **conservation** — a collective's total serialized traffic equals the
  closed-form telescoped total for its pattern (order-independent: an
  All-Reduce over effective group size ``G`` serializes ``2p(1-1/G)``
  per NPU however its per-dimension phases were ordered or mixed), and
  hierarchical-memory pipeline chunk counts balance the bytes moved;
- **capacity** — max-min flow allocations never exceed link capacity,
  packet links never carry more serialization time than their busy span,
  and analytical egress ports are never double-booked;
- **sanity** — non-negative, finite times everywhere; no leaked
  rendezvous, posted receives, or unclaimed arrivals at end of run.

Violations are recorded as structured :class:`InvariantViolation`
records (``strict=True`` raises :class:`InvariantError` at the first
one) and surfaced through the telemetry metrics registry when a
collector is installed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.network.building_blocks import alltoall_traffic_fraction
from repro.trace.node import CollectiveType

#: Version of the :meth:`InvariantReport.to_dict` document layout.
INVARIANTS_SCHEMA_VERSION = 1


class InvariantError(RuntimeError):
    """Raised in strict mode when an invariant is violated."""


@dataclass(frozen=True)
class InvariantViolation:
    """One violated invariant: where, what, when, and the numbers.

    Attributes:
        layer: Subsystem that tripped ("events", "network", "system",
            "memory").
        name: Invariant identifier ("causality", "conservation",
            "capacity", "finite_time", "leak", ...).
        message: Human-readable diagnostic.
        time_ns: Simulation time of detection.
        context: The raw quantities behind the check (JSON scalars).
    """

    layer: str
    name: str
    message: str
    time_ns: float
    context: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "layer": self.layer,
            "name": self.name,
            "message": self.message,
            "time_ns": self.time_ns,
            "context": dict(self.context),
        }


@dataclass(frozen=True)
class InvariantConfig:
    """Checker knobs.

    Attributes:
        strict: Raise :class:`InvariantError` at the first violation
            instead of recording and continuing.
        max_violations: Stop recording (but keep counting) beyond this
            many violations, bounding memory on a badly broken run.
        rel_tolerance: Relative slack for conservation comparisons —
            covers float accumulation over chunked phase sums, nothing
            more (the laws are exact in real arithmetic).
    """

    strict: bool = False
    max_violations: int = 1000
    rel_tolerance: float = 1e-6


@dataclass
class InvariantReport:
    """Outcome of a checked run: totals plus the violation records."""

    checks: int
    violations_total: int
    violations: List[InvariantViolation] = field(default_factory=list)
    schema_version: int = INVARIANTS_SCHEMA_VERSION

    @property
    def ok(self) -> bool:
        return self.violations_total == 0

    def counts_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.violations:
            key = f"{v.layer}/{v.name}"
            out[key] = out.get(key, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "checks": self.checks,
            "violations_total": self.violations_total,
            "ok": self.ok,
            "counts_by_name": self.counts_by_name(),
            "violations": [v.to_dict() for v in self.violations],
        }


def expected_collective_traffic(
    collective: CollectiveType,
    payload_bytes: float,
    group_size: int,
    dim_specs: Optional[Dict[int, Any]] = None,
    active_dims: Tuple[int, ...] = (),
) -> float:
    """Order-independent total serialized bytes per NPU for a collective.

    The per-dimension phase traffic telescopes: a Reduce-Scatter pass
    over dims of sizes ``k_1..k_n`` serializes ``p(1 - 1/G)`` with
    ``G = prod(k_i)`` regardless of order, an All-Gather pass from shard
    ``p/G`` back to ``p`` serializes the same, and All-to-All phases run
    at constant payload.  This makes the law a *conservation* check: any
    scheduler (baseline order, Themis greedy, Themis fluid-limit LP mix)
    must land on the same total.
    """
    if group_size <= 1 or payload_bytes <= 0:
        return 0.0
    if collective is CollectiveType.ALL_REDUCE:
        return 2.0 * payload_bytes * (1.0 - 1.0 / group_size)
    if collective in (CollectiveType.REDUCE_SCATTER, CollectiveType.ALL_GATHER):
        # ALL_GATHER payload_bytes is the gathered result; the telescoped
        # serialized total from shard p/G up to p is also p(1 - 1/G).
        return payload_bytes * (1.0 - 1.0 / group_size)
    if collective is CollectiveType.ALL_TO_ALL:
        total = 0.0
        for d in active_dims:
            spec = dim_specs[d]
            total += payload_bytes * alltoall_traffic_fraction(
                spec.block, spec.size)
        return total
    raise ValueError(f"unsupported collective {collective!r}")


class InvariantChecker:
    """Runtime invariant checker with zero-cost-when-absent hooks.

    Install with :meth:`install` (mirroring
    :meth:`repro.telemetry.Telemetry.install`); layers call the
    ``check_*`` hot hooks only while attached.  :meth:`finalize` runs
    the end-of-run sweeps and returns an :class:`InvariantReport`.
    """

    def __init__(self, config: Optional[InvariantConfig] = None) -> None:
        self.config = config or InvariantConfig()
        self.violations: List[InvariantViolation] = []
        self.violations_total = 0
        self.checks = 0
        self._engine = None
        self._network = None
        self._execution = None
        self._memory_models: Tuple[Any, ...] = ()
        self._seq_at_install = 0

    # -- installation ------------------------------------------------------------

    def install(self, engine, network=None, execution=None,
                memory_models: Tuple[Any, ...] = ()) -> "InvariantChecker":
        """Attach to the layers' ``invariants`` slots."""
        self._engine = engine
        self._seq_at_install = engine._seq
        engine.invariants = self
        if network is not None:
            self._network = network
            network.invariants = self
        if execution is not None:
            self._execution = execution
            execution.invariants = self
        attached = []
        for model in memory_models:
            # Only models that declare the opt-in class slot participate
            # (the pipelined hierarchical pool carries the chunk-balance
            # law; flat models have nothing instance-level to check).
            if model is not None and hasattr(type(model), "invariants"):
                model.invariants = self
                attached.append(model)
        self._memory_models = tuple(attached)
        return self

    def uninstall(self) -> None:
        """Detach from every layer (used by A/B perf harnesses)."""
        if self._engine is not None:
            self._engine.invariants = None
        if self._network is not None:
            self._network.invariants = None
        if self._execution is not None:
            self._execution.invariants = None
        for model in self._memory_models:
            model.invariants = None

    # -- recording ---------------------------------------------------------------

    def record(self, layer: str, name: str, message: str,
               time_ns: float = 0.0, **context: Any) -> None:
        """Register one violation (raises in strict mode)."""
        self.violations_total += 1
        if len(self.violations) < self.config.max_violations:
            self.violations.append(InvariantViolation(
                layer=layer, name=name, message=message, time_ns=time_ns,
                context=tuple(sorted(context.items())),
            ))
        if self.config.strict:
            raise InvariantError(f"[{layer}/{name}] {message}")

    # -- hot hooks (called only while installed) ----------------------------------

    def check_event_time(self, time: float, now: float) -> None:
        """Causality/finiteness of a scheduled event timestamp.

        The engine's own guards reject negative delays; this catches the
        failure modes they cannot — NaN and infinite timestamps, which
        would otherwise corrupt heap ordering silently.  The engine hot
        paths do not call this method: they inline the single chained
        comparison below (a NaN compares False against every bound) and
        call :meth:`event_time_anomaly` only on failure, so a checked
        run pays one comparison, not one method call, per event.  The
        per-event check count is reconstructed in bulk at finalize time
        from the engine's sequence counter.
        """
        self.checks += 1
        if not (now <= time < math.inf):
            self.event_time_anomaly(time, now)

    def event_time_anomaly(self, time: float, now: float) -> None:
        """Slow path: classify and record a bad event timestamp."""
        if time != time or time in (math.inf, -math.inf):
            self.record(
                "events", "finite_time",
                f"event scheduled at non-finite time {time!r}",
                time_ns=now, scheduled=repr(time))
        elif time < now:
            self.record(
                "events", "causality",
                f"event scheduled at t={time} before now={now}",
                time_ns=now, scheduled=time)

    def check_reservation(self, start: float, end: float, now: float,
                          resource: str = "port") -> None:
        """A serializing reservation must be causal and non-negative.

        Like the event-time check, the analytical backend inlines the
        chained comparison at the reservation site and calls
        :meth:`reservation_anomaly` only on failure; per-reservation
        check counts are recovered at finalize from the ports' own
        reservation counters.
        """
        self.checks += 1
        # Fast path: one chained comparison proves causal ordering and
        # finiteness at once (NaN fails every bound).
        if now - 1e-9 <= start <= end < math.inf:
            return
        self.reservation_anomaly(start, end, now, resource)

    def reservation_anomaly(self, start: float, end: float, now: float,
                            resource: str = "port") -> None:
        """Slow path: classify and record a bad reservation."""
        if not (math.isfinite(start) and math.isfinite(end)):
            self.record(
                "network", "finite_time",
                f"{resource} reservation has non-finite bounds "
                f"[{start!r}, {end!r}]", time_ns=now)
            return
        if start < now - 1e-9:
            self.record(
                "network", "causality",
                f"{resource} reservation starts at t={start} before "
                f"now={now}", time_ns=now, start=start)
        if end < start:
            self.record(
                "network", "causality",
                f"{resource} reservation runs backwards "
                f"(start={start}, end={end})", time_ns=now,
                start=start, end=end)

    def check_collective(self, record, op) -> None:
        """Conservation + timing sanity of one completed collective."""
        self.checks += 1
        now = record.finish_ns
        if not (math.isfinite(record.start_ns)
                and math.isfinite(record.finish_ns)):
            self.record(
                "system", "finite_time",
                f"collective {record.name!r} has non-finite timing",
                time_ns=now)
            return
        if record.finish_ns < record.start_ns:
            self.record(
                "system", "causality",
                f"collective {record.name!r} finishes at "
                f"{record.finish_ns} before it starts at {record.start_ns}",
                time_ns=now, start_ns=record.start_ns,
                finish_ns=record.finish_ns)
        total = sum(record.traffic_by_dim.values())
        expected = expected_collective_traffic(
            op.collective, op.payload_bytes, op.group_size,
            dim_specs=op.dim_specs, active_dims=op.active_dims)
        tolerance = self.config.rel_tolerance * max(1.0, expected)
        if abs(total - expected) > tolerance:
            self.record(
                "system", "conservation",
                f"collective {record.name!r} serialized {total:.6g} B "
                f"but the {record.collective} pattern over group size "
                f"{op.group_size} conserves {expected:.6g} B",
                time_ns=now, total_bytes=total, expected_bytes=expected)
        for dim, traffic in record.traffic_by_dim.items():
            if traffic < 0 or not math.isfinite(traffic):
                self.record(
                    "system", "conservation",
                    f"collective {record.name!r} dim {dim} traffic is "
                    f"{traffic!r}", time_ns=now, dim=dim)

    def check_flow_rates(self, links, now: float) -> None:
        """Max-min allocation: per-link flow rates never exceed capacity."""
        self.checks += 1
        for link in links:
            if not link.flows:
                continue
            rate = sum(f.rate for f in link.flows)
            if rate > link.capacity * (1.0 + 1e-9) + 1e-12:
                self.record(
                    "network", "capacity",
                    f"link allocation {rate:.6g} GB/s exceeds capacity "
                    f"{link.capacity:.6g} GB/s over {len(link.flows)} "
                    "flows", time_ns=now, rate=rate,
                    capacity=link.capacity)

    def check_packet_flow(self, flow, now: float) -> None:
        """Packet bookkeeping: arrivals can never outrun the total."""
        self.checks += 1
        if flow.packets_arrived > flow.packets_total:
            self.record(
                "network", "conservation",
                f"message {flow.message.src}->{flow.message.dest} has "
                f"{flow.packets_arrived} arrived packets of "
                f"{flow.packets_total} sent", time_ns=now)

    def check_granularity_handoff(self, message, before: float, after: float,
                                  now: float) -> None:
        """Adaptive handoff: a granularity flip conserves in-flight bytes.

        Escalation converts a fluid flow's remaining bytes into packet
        segments (``after`` may round up to whole bytes, < 1 B of
        slack); de-escalation folds unsent segments back into one fluid
        flow.  Anything beyond rounding slack means the controller
        dropped or duplicated in-flight traffic at the switch.
        """
        self.checks += 1
        tolerance = max(1.5, self.config.rel_tolerance * max(1.0, before))
        if abs(after - before) > tolerance or after < 0 or not (
                math.isfinite(before) and math.isfinite(after)):
            self.record(
                "network", "conservation",
                f"granularity handoff of {message.src}->{message.dest} "
                f"converted {before:.6g} in-flight bytes into "
                f"{after:.6g}", time_ns=now, before_bytes=before,
                after_bytes=after)

    def check_hiermem_access(self, model, size_bytes: int,
                             duration_ns: float) -> None:
        """HierMem pipeline: chunk counts balance the bytes they carry.

        ``n`` full chunks flow down each remote-group -> out-switch
        link; they must cover the per-link byte share without over- or
        under-counting by a whole beat: ``(n-1) * chunk < bytes_per_link
        <= n * chunk`` (the final chunk may be partial).  The access must
        also cost at least the fixed request latency.
        """
        self.checks += 1
        c = model.config
        if duration_ns < c.access_latency_ns - 1e-9 or not math.isfinite(
                duration_ns):
            self.record(
                "memory", "causality",
                f"hiermem access of {size_bytes} B costs {duration_ns!r} "
                f"ns, below the fixed {c.access_latency_ns} ns request "
                "latency", time_ns=0.0, size_bytes=size_bytes,
                duration_ns=duration_ns)
        if size_bytes <= 0:
            return
        n = model.num_pipeline_stages(size_bytes)
        chunk = model.effective_chunk_bytes(size_bytes)
        per_link = (size_bytes * c.num_gpus) / (
            c.num_remote_groups * c.num_out_switches)
        if n * chunk < per_link - 1e-6 or (n - 1) * chunk >= per_link + chunk:
            self.record(
                "memory", "conservation",
                f"hiermem pipeline moves {n} chunks of {chunk} B per "
                f"link but each link carries {per_link:.6g} B",
                time_ns=0.0, stages=n, chunk_bytes=chunk,
                per_link_bytes=per_link)

    # -- end-of-run sweeps ----------------------------------------------------------

    def _finalize_network(self, network, total_ns: float) -> None:
        posted = network.pending_receives()
        unclaimed = network.undelivered_arrivals()
        if posted:
            self.record(
                "network", "leak",
                f"{posted} receives still posted at end of run",
                time_ns=total_ns, posted=posted)
        if unclaimed:
            self.record(
                "network", "leak",
                f"{unclaimed} delivered messages never claimed by a "
                "receive", time_ns=total_ns, unclaimed=unclaimed)
        self.checks += 2
        ports = getattr(network, "_ports", None)
        if ports is not None:  # analytical: ports + shared fabrics
            # Each port reservation passed the inlined guard in
            # reserve_port; account for those checks in bulk.
            self.checks += sum(p.reservations for p in ports.values())
            for key, port in list(ports.items()) + list(
                    getattr(network, "_fabrics", {}).items()):
                self.checks += 1
                if port.busy_ns > port.free_at + 1e-6 or port.busy_ns < 0:
                    self.record(
                        "network", "capacity",
                        f"port {key!r} accumulated {port.busy_ns:.6g} ns "
                        f"of busy time inside a [0, {port.free_at:.6g}] "
                        "ns reservation span (double-booked)",
                        time_ns=total_ns, busy_ns=port.busy_ns,
                        free_at=port.free_at)
            pending = getattr(network, "_pending", {})
            stale = sum(v for v in pending.values() if v > 1e-6)
            if stale > 1e-6:
                self.checks += 1
                self.record(
                    "network", "leak",
                    f"{stale:.6g} ns of planned port load never reserved",
                    time_ns=total_ns, pending_ns=stale)
        links = getattr(network, "_links", None)
        if links is not None:
            for key, link in links.items():
                bandwidth = getattr(link, "bandwidth", None)
                if bandwidth is not None:  # garnet-lite packet links
                    self.checks += 1
                    serialized = link.bytes_carried / bandwidth
                    if (link.bytes_carried < 0
                            or not math.isfinite(link.free_at)
                            or serialized > link.free_at + 1e-6):
                        self.record(
                            "network", "capacity",
                            f"link {key!r} serialized "
                            f"{serialized:.6g} ns of traffic in a "
                            f"[0, {link.free_at:.6g}] ns busy span",
                            time_ns=total_ns,
                            bytes_carried=link.bytes_carried,
                            free_at=link.free_at)
                else:  # flow-level links: all flows must have drained
                    self.checks += 1
                    if link.flows:
                        self.record(
                            "network", "leak",
                            f"link {key!r} still carries "
                            f"{len(link.flows)} flows at end of run",
                            time_ns=total_ns, flows=len(link.flows))
        if getattr(network, "_flows", None):
            self.checks += 1
            self.record(
                "network", "leak",
                f"{len(network._flows)} flows still in flight at end of "
                "run", time_ns=total_ns, flows=len(network._flows))
        gran = getattr(network, "_gran", None)
        if gran is not None:  # adaptive granularity controller
            # Byte conservation across granularity handoffs: every byte a
            # message delivered was attributed to exactly one granularity,
            # so fluid + escalated must equal the delivered traffic total
            # (slack: <= 1 B per message for the size-floor/segment
            # rounding, <= 1 B per handoff for the ceil at conversion).
            self.checks += 1
            accounted = network.fluid_bytes + network.escalated_bytes
            delivered = float(network.bytes_delivered)
            slack = (2.0 * (network.messages_delivered + network.handoffs)
                     + self.config.rel_tolerance * max(1.0, delivered))
            if abs(accounted - delivered) > slack:
                self.record(
                    "network", "conservation",
                    f"granularity byte attribution {accounted:.6g} B "
                    f"(fluid {network.fluid_bytes:.6g} + escalated "
                    f"{network.escalated_bytes:.6g}) does not conserve "
                    f"the {delivered:.6g} B delivered",
                    time_ns=total_ns, fluid_bytes=network.fluid_bytes,
                    escalated_bytes=network.escalated_bytes,
                    delivered_bytes=delivered)
            # No stuck escalations: once traffic drains, any link whose
            # de-escalation point is reachable (threshold - hysteresis
            # >= 0) must have flipped back to fluid.
            if (network.escalation_threshold
                    - network.deescalation_hysteresis >= 0):
                for state in gran.values():
                    self.checks += 1
                    if (state.mode == "packet" and not state.link.flows
                            and not state.pending):
                        self.record(
                            "network", "leak",
                            f"link {state.link.key!r} still escalated at "
                            "end of run with no flows (missed "
                            "de-escalation)", time_ns=total_ns)

    def _finalize_execution(self, execution, total_ns: float) -> None:
        self.checks += 1
        if execution._rendezvous:
            self.record(
                "system", "leak",
                f"{len(execution._rendezvous)} collective rendezvous "
                "never completed", time_ns=total_ns,
                rendezvous=len(execution._rendezvous))
        self.checks += 1
        if not math.isfinite(total_ns) or total_ns < 0:
            self.record(
                "system", "finite_time",
                f"run finished at non-physical time {total_ns!r}",
                time_ns=0.0)

    def finalize(self, total_ns: float, telemetry=None) -> InvariantReport:
        """End-of-run sweeps over every installed layer; build the report.

        When a telemetry collector is passed, violation counts surface in
        its metrics registry under the ``validate`` layer.
        """
        if self._engine is not None:
            # Every event scheduled while installed went through the
            # engine's inlined timestamp guard; count those checks here
            # in one O(1) step instead of per event on the hot path.
            self.checks += self._engine._seq - self._seq_at_install
        if self._network is not None:
            self._finalize_network(self._network, total_ns)
        if self._execution is not None:
            self._finalize_execution(self._execution, total_ns)
        report = InvariantReport(
            checks=self.checks,
            violations_total=self.violations_total,
            violations=list(self.violations),
        )
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.counter("validate", "checks").value = float(self.checks)
            metrics.counter("validate", "violations").value = float(
                self.violations_total)
            for key, count in sorted(report.counts_by_name().items()):
                layer, name = key.split("/", 1)
                # Label key "subsystem", not "layer": the registry's
                # counter() already takes ``layer`` positionally.
                metrics.counter("validate", "violation", subsystem=layer,
                                invariant=name).value = float(count)
        return report

"""Cross-backend differential oracle — pillar 3 of :mod:`repro.validate`.

Runs a scenario matrix (topologies x collective algorithms x payload
sizes, plus a memory-model axis through the full simulator) across
backend pairs and asserts agreement within *declared* tolerance bands:

- **flow-level vs analytical** (``REL_FLOW = 1e-6``): a congestion-free
  flow runs at full link rate, which is exactly the closed form — the
  band only absorbs float noise and the flow solver's finish threshold.
- **Garnet-lite vs analytical** (``REL_PACKET = 2e-2``): packet
  segmentation pays one store-and-forward packet serialization per
  extra link crossed per algorithm step (zero on a neighbor ring, one
  through a switch fabric).  That gap has a closed form, so the oracle
  checks the *corrected* agreement ``garnet == analytical + saf`` to
  ``REL_SAF`` while also reporting the raw relative error against the
  coarse documented band.

Every scenario additionally runs with an
:class:`~repro.validate.invariants.InvariantChecker` installed, so a
conformance pass certifies both cross-backend agreement *and* a
violation-free run.  The outcome is persisted as a versioned
:class:`ConformanceReport` JSON document (CI uploads it as an artifact).
"""

from __future__ import annotations

import copy
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.simulator import Simulator
from repro.events import EventEngine
from repro.faults.spec import FaultKind, FaultSchedule, FaultSpec
from repro.memory.remote import HierarchicalRemoteMemory, HierMemConfig
from repro.memory.zero_infinity import ZeroInfinityConfig, ZeroInfinityMemory
from repro.network.analytical import AnalyticalNetwork
from repro.network.flowlevel import FlowLevelNetwork
from repro.network.garnetlite import GarnetLiteNetwork
from repro.network.topology import parse_topology
from repro.stats.export import result_to_dict
from repro.system.executor import SendRecvCollectiveExecutor
from repro.trace.graph import ExecutionTrace
from repro.trace.node import CollectiveType, ETNode, NodeType, TensorLocation
from repro.validate.invariants import InvariantChecker, InvariantConfig

#: Version of the :meth:`ConformanceReport.to_dict` document layout.
CONFORMANCE_SCHEMA_VERSION = 1

KiB = 1 << 10
MiB = 1 << 20

# Declared tolerance bands (mirrors tests/integration/test_backend_differential.py).
REL_FLOW = 1e-6    # fluid limit == closed form
REL_PACKET = 2e-2  # raw store-and-forward quantization at packet scale
REL_SAF = 1e-6     # packet backend after closed-form saf correction

#: (notation, bandwidths_gbps, latencies_ns) scenario topologies.
SCENARIO_TOPOLOGIES: Dict[str, Tuple[str, List[float], List[float]]] = {
    "ring4": ("Ring(4)", [150.0], [50.0]),
    "ring8": ("Ring(8)", [100.0], [100.0]),
    "switch4": ("Switch(4)", [200.0], [250.0]),
    "switch8": ("Switch(8)", [50.0], [500.0]),
}

#: algorithm -> saf step count as a function of the group size.  Steps
#: measure how many serialized message stages the algorithm performs;
#: the packet backend pays one extra packet serialization per stage per
#: extra link crossed (1 through a switch fabric, 0 on a neighbor ring).
ALGORITHM_STEPS = {
    "ring_allreduce": lambda k: 2 * (k - 1),
    "ring_allgather": lambda k: k - 1,
    "halving_doubling_allreduce": lambda k: 2 * int(math.log2(k)),
}

DEFAULT_PACKET_BYTES = 4096


@dataclass(frozen=True)
class ConformanceCase:
    """One (scenario, backend-pair) comparison with its verdict."""

    scenario: str
    topology: str
    algorithm: str
    payload_bytes: int
    backend: str
    baseline_backend: str
    baseline_ns: float
    candidate_ns: float
    tolerance_rel: float
    saf_allowance_ns: float
    rel_error: float
    adjusted_rel_error: float
    invariant_violations: int
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "topology": self.topology,
            "algorithm": self.algorithm,
            "payload_bytes": self.payload_bytes,
            "backend": self.backend,
            "baseline_backend": self.baseline_backend,
            "baseline_ns": self.baseline_ns,
            "candidate_ns": self.candidate_ns,
            "tolerance_rel": self.tolerance_rel,
            "saf_allowance_ns": self.saf_allowance_ns,
            "rel_error": self.rel_error,
            "adjusted_rel_error": self.adjusted_rel_error,
            "invariant_violations": self.invariant_violations,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass(frozen=True)
class MemoryModelCase:
    """One full-simulator run on the memory-model axis."""

    scenario: str
    memory_model: str
    total_time_ns: float
    invariant_checks: int
    invariant_violations: int
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "memory_model": self.memory_model,
            "total_time_ns": self.total_time_ns,
            "invariant_checks": self.invariant_checks,
            "invariant_violations": self.invariant_violations,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass(frozen=True)
class FoldingCase:
    """One folded-vs-unfolded bit-identity comparison.

    ``identical`` is strict: the two runs' schema-v2 result documents
    must serialize to the same JSON text, byte for byte.
    """

    scenario: str
    backend: str
    collective: str
    traced_ranks: int
    simulated_ranks: int
    fold_active: bool
    expect_active: bool
    identical: bool
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "collective": self.collective,
            "traced_ranks": self.traced_ranks,
            "simulated_ranks": self.simulated_ranks,
            "fold_active": self.fold_active,
            "expect_active": self.expect_active,
            "identical": self.identical,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass
class ConformanceReport:
    """Versioned outcome of one conformance sweep."""

    cases: List[ConformanceCase] = field(default_factory=list)
    memory_cases: List[MemoryModelCase] = field(default_factory=list)
    folding_cases: List[FoldingCase] = field(default_factory=list)
    quick: bool = True
    schema_version: int = CONFORMANCE_SCHEMA_VERSION

    @property
    def passed(self) -> bool:
        return (all(c.passed for c in self.cases)
                and all(c.passed for c in self.memory_cases)
                and all(c.passed for c in self.folding_cases))

    @property
    def failures(self) -> List[Any]:
        return ([c for c in self.cases if not c.passed]
                + [c for c in self.memory_cases if not c.passed]
                + [c for c in self.folding_cases if not c.passed])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": "conformance",
            "quick": self.quick,
            "passed": self.passed,
            "cases_total": (len(self.cases) + len(self.memory_cases)
                            + len(self.folding_cases)),
            "cases_failed": len(self.failures),
            "tolerances": {"rel_flow": REL_FLOW, "rel_packet": REL_PACKET,
                           "rel_saf": REL_SAF},
            "cases": [c.to_dict() for c in self.cases],
            "memory_cases": [c.to_dict() for c in self.memory_cases],
            "folding_cases": [c.to_dict() for c in self.folding_cases],
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# -- backend-pair axis -----------------------------------------------------------------


def _run_algorithm(
    backend: str,
    notation: str,
    bandwidths: Sequence[float],
    latencies: Sequence[float],
    algorithm: str,
    payload_bytes: int,
    packet_bytes: int,
    check_invariants: bool,
) -> Tuple[float, int]:
    """Returns (collective time ns, invariant violation count)."""
    topo = parse_topology(notation, list(bandwidths),
                          latencies_ns=list(latencies))
    engine = EventEngine()
    if backend == "analytical":
        net = AnalyticalNetwork(engine, topo)
    elif backend == "flow":
        net = FlowLevelNetwork(engine, topo)
    elif backend == "garnet":
        net = GarnetLiteNetwork(engine, topo, packet_bytes=packet_bytes)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    checker = None
    if check_invariants:
        checker = InvariantChecker(InvariantConfig()).install(
            engine, network=net)
    executor = SendRecvCollectiveExecutor(engine, net)
    out: Dict[str, float] = {}
    getattr(executor, f"run_{algorithm}")(
        list(range(topo.num_npus)), payload_bytes,
        on_complete=lambda t: out.update(t=t))
    engine.run()
    violations = 0
    if checker is not None:
        violations = checker.finalize(engine.now).violations_total
    return out["t"], violations


def _saf_allowance_ns(notation: str, bandwidth_gbps: float, group_size: int,
                      algorithm: str, packet_bytes: int) -> float:
    """Closed-form store-and-forward gap of the packet backend."""
    extra_links = 1 if notation.startswith("Switch") else 0
    steps = ALGORITHM_STEPS[algorithm](group_size)
    return steps * extra_links * packet_bytes / bandwidth_gbps


def run_backend_pairs(
    quick: bool = True,
    check_invariants: bool = True,
    packet_bytes: int = DEFAULT_PACKET_BYTES,
) -> List[ConformanceCase]:
    """Backend-pair axis of the matrix: flow and garnet vs analytical."""
    sizes = [64 * KiB, 1 * MiB] if quick else [64 * KiB, 1 * MiB, 4 * MiB]
    cases: List[ConformanceCase] = []
    for scenario, (notation, bws, lats) in sorted(SCENARIO_TOPOLOGIES.items()):
        k = parse_topology(notation, list(bws)).num_npus
        algorithms = ["ring_allreduce", "ring_allgather"]
        # Halving-doubling partners sit multiple ring hops apart, so its
        # saf term is only closed-form through a single switch fabric.
        if notation.startswith("Switch"):
            algorithms.append("halving_doubling_allreduce")
        for algorithm in algorithms:
            for payload in sizes:
                base_ns, base_viol = _run_algorithm(
                    "analytical", notation, bws, lats, algorithm, payload,
                    packet_bytes, check_invariants)
                for backend in ("flow", "garnet"):
                    cand_ns, cand_viol = _run_algorithm(
                        backend, notation, bws, lats, algorithm, payload,
                        packet_bytes, check_invariants)
                    rel_error = abs(cand_ns - base_ns) / base_ns
                    if backend == "flow":
                        tolerance, saf = REL_FLOW, 0.0
                        adjusted = rel_error
                    else:
                        tolerance = REL_PACKET
                        saf = _saf_allowance_ns(notation, bws[0], k,
                                                algorithm, packet_bytes)
                        adjusted = abs(cand_ns - base_ns - saf) / base_ns
                    violations = base_viol + cand_viol
                    # The gate is the *corrected* agreement: the raw gap
                    # on small payloads is dominated by the saf term and
                    # is reported, not judged (REL_PACKET documents the
                    # end-to-end band packet *coalescing* must stay in).
                    band = REL_FLOW if backend == "flow" else REL_SAF
                    agreement = adjusted <= band
                    passed = agreement and violations == 0
                    message = ""
                    if not agreement:
                        message = (f"{backend} disagrees with analytical by "
                                   f"{adjusted:.3g} after the "
                                   f"{saf:.6g} ns saf correction")
                    elif violations:
                        message = f"{violations} invariant violations"
                    cases.append(ConformanceCase(
                        scenario=scenario, topology=notation,
                        algorithm=algorithm, payload_bytes=payload,
                        backend=backend, baseline_backend="analytical",
                        baseline_ns=base_ns, candidate_ns=cand_ns,
                        tolerance_rel=tolerance, saf_allowance_ns=saf,
                        rel_error=rel_error, adjusted_rel_error=adjusted,
                        invariant_violations=violations, passed=passed,
                        message=message,
                    ))
    return cases


# -- memory-model axis -----------------------------------------------------------------


def _remote_workload(payload_bytes: int) -> Dict[int, ExecutionTrace]:
    """Remote load -> compute -> All-Reduce -> remote store microbenchmark."""
    nodes = [
        ETNode(0, NodeType.MEMORY_LOAD, name="load.params",
               tensor_bytes=4 * MiB, location=TensorLocation.REMOTE),
        ETNode(1, NodeType.COMPUTE, name="fwd", flops=1 << 24,
               tensor_bytes=1 * MiB, deps=(0,)),
        ETNode(2, NodeType.COMM_COLLECTIVE, name="grad.allreduce",
               tensor_bytes=payload_bytes, deps=(1,),
               collective=CollectiveType.ALL_REDUCE),
        ETNode(3, NodeType.MEMORY_STORE, name="store.params",
               tensor_bytes=4 * MiB, deps=(2,),
               location=TensorLocation.REMOTE),
    ]
    return {0: ExecutionTrace(0, nodes)}


def _memory_model(name: str):
    if name == "local":
        return None
    if name == "hiermem":
        return HierarchicalRemoteMemory(HierMemConfig(
            num_nodes=2, gpus_per_node=4, num_out_switches=2,
            num_remote_groups=8, mem_side_bw_gbps=100.0,
            gpu_side_out_bw_gbps=256.0, in_node_bw_gbps=256.0,
            chunk_bytes=1 * MiB, access_latency_ns=1000.0))
    if name == "zero-infinity":
        return ZeroInfinityMemory(ZeroInfinityConfig(
            path_bandwidth_gbps=100.0, access_latency_ns=2000.0))
    raise ValueError(f"unknown memory model {name!r}")


def run_memory_matrix(quick: bool = True) -> List[MemoryModelCase]:
    """Memory-model axis: full simulator runs, invariant-checked.

    The remote models must never beat local-only (remote hops cannot
    create time), and every run must finish violation-free.
    """
    del quick  # three fast runs either way
    notation, bws = "Ring(2)_Switch(4)", [200.0, 50.0]
    cases: List[MemoryModelCase] = []
    local_total: Optional[float] = None
    for name in ("local", "hiermem", "zero-infinity"):
        topo = parse_topology(notation, list(bws))
        remote = _memory_model(name)
        # The local-only control replaces remote tensors with local ones.
        traces = _remote_workload(1 * MiB)
        if remote is None:
            nodes = [ETNode(
                n.node_id, n.node_type, name=n.name, flops=n.flops,
                tensor_bytes=n.tensor_bytes, deps=n.deps,
                collective=n.collective,
            ) for n in traces[0].nodes]
            traces = {0: ExecutionTrace(0, nodes)}
        config = SystemConfig(topology=topo, remote_memory=remote)
        sim = Simulator(traces, config)
        checker = InvariantChecker(InvariantConfig()).install(
            sim.engine, network=sim.network, execution=sim.execution,
            memory_models=(config.local_memory, remote))
        result = sim.run()
        report = checker.finalize(result.total_time_ns)
        passed = report.ok and math.isfinite(result.total_time_ns)
        message = "" if report.ok else (
            f"{report.violations_total} invariant violations: "
            f"{report.counts_by_name()}")
        if name == "local":
            local_total = result.total_time_ns
        elif local_total is not None and (
                result.total_time_ns < local_total * (1.0 - 1e-9)):
            passed = False
            message = (f"remote model {name} finished in "
                       f"{result.total_time_ns:.6g} ns, faster than the "
                       f"{local_total:.6g} ns local-only control")
        cases.append(MemoryModelCase(
            scenario=f"{notation}/allreduce+remote-io",
            memory_model=name,
            total_time_ns=result.total_time_ns,
            invariant_checks=report.checks,
            invariant_violations=report.violations_total,
            passed=passed, message=message,
        ))
    return cases


# -- folding axis ----------------------------------------------------------------------


def _replicated_traces(
    num_npus: int, collective: CollectiveType, payload_bytes: int,
    comm_dims: Tuple[int, ...],
) -> Dict[int, ExecutionTrace]:
    """The same compute -> collective -> compute trace on every rank."""
    base = [
        ETNode(0, NodeType.COMPUTE, name="fwd", flops=1 << 22,
               tensor_bytes=256 * KiB),
        ETNode(1, NodeType.COMM_COLLECTIVE, name="grad.sync",
               tensor_bytes=payload_bytes, deps=(0,),
               collective=collective, comm_dims=comm_dims),
        ETNode(2, NodeType.COMPUTE, name="opt", flops=1 << 20,
               tensor_bytes=64 * KiB, deps=(1,)),
    ]
    return {
        rank: ExecutionTrace(rank, [copy.deepcopy(n) for n in base])
        for rank in range(num_npus)
    }


def _folded_vs_unfolded(
    scenario: str,
    backend: str,
    collective_name: str,
    traces_factory,
    expect_active: bool,
    config_extra: Optional[Dict[str, Any]] = None,
    notation: str = "Ring(2)_FC(4)",
    bandwidths: Sequence[float] = (100.0, 50.0),
) -> FoldingCase:
    """Run one workload folded and unfolded; demand byte-equal documents."""
    docs: Dict[str, str] = {}
    fold_report = None
    for folding in ("auto", "off"):
        topo = parse_topology(notation, list(bandwidths))
        config = SystemConfig(topology=topo, network_backend=backend,
                              folding=folding, **(config_extra or {}))
        sim = Simulator(traces_factory(topo.num_npus), config)
        result = sim.run()
        docs[folding] = json.dumps(result_to_dict(result), sort_keys=True)
        if folding == "auto":
            fold_report = result.folding
    identical = docs["auto"] == docs["off"]
    active = bool(fold_report is not None and fold_report.active)
    passed = identical and active == expect_active
    message = ""
    if not identical:
        message = "folded and unfolded result documents differ"
    elif active != expect_active:
        state = "active" if active else "inactive"
        reason = fold_report.reason if fold_report is not None else ""
        message = (f"folding unexpectedly {state}"
                   + (f" ({reason})" if reason else ""))
    return FoldingCase(
        scenario=scenario, backend=backend, collective=collective_name,
        traced_ranks=(fold_report.traced_ranks if fold_report else 0),
        simulated_ranks=(fold_report.simulated_ranks if fold_report else 0),
        fold_active=active, expect_active=expect_active,
        identical=identical, passed=passed, message=message,
    )


def run_folding_matrix(quick: bool = True) -> List[FoldingCase]:
    """Folding axis: folded vs unfolded runs must be byte-identical.

    Symmetric replicated workloads must fold (one representative per
    communicator) on every backend; asymmetric inputs — a fault
    schedule, heterogeneous per-rank traces — must auto-disable folding,
    and in every case the exported schema-v2 document must not change by
    a single byte.
    """
    payload = 256 * KiB
    collectives = [CollectiveType.ALL_REDUCE]
    if not quick:
        collectives.append(CollectiveType.ALL_GATHER)
    cases: List[FoldingCase] = []
    for collective in collectives:
        cname = collective.name.lower()
        for backend in ("analytical", "flow", "garnet"):
            cases.append(_folded_vs_unfolded(
                scenario="Ring(2)_FC(4)/replicated", backend=backend,
                collective_name=cname,
                traces_factory=lambda n, c=collective: _replicated_traces(
                    n, c, payload, comm_dims=(1,)),
                expect_active=True,
            ))
    # A fault schedule breaks rank symmetry: folding must stand down and
    # the (identical) unfolded path must be taken both times.
    straggler = FaultSchedule((FaultSpec(
        kind=FaultKind.STRAGGLER, start_ns=0.0, duration_ns=1e6,
        npu=1, factor=2.0),))
    cases.append(_folded_vs_unfolded(
        scenario="Ring(2)_FC(4)/faulted", backend="analytical",
        collective_name="all_reduce",
        traces_factory=lambda n: _replicated_traces(
            n, CollectiveType.ALL_REDUCE, payload, comm_dims=(1,)),
        expect_active=False,
        config_extra={"faults": straggler},
    ))

    # Heterogeneous traces (rank-dependent compute) leave only singleton
    # classes: folding must report itself inactive.
    def heterogeneous(num_npus: int) -> Dict[int, ExecutionTrace]:
        traces = _replicated_traces(
            num_npus, CollectiveType.ALL_REDUCE, payload, comm_dims=(1,))
        for rank, trace in traces.items():
            trace.node(0).flops += rank  # every rank now unique
        return traces

    cases.append(_folded_vs_unfolded(
        scenario="Ring(2)_FC(4)/heterogeneous", backend="analytical",
        collective_name="all_reduce",
        traces_factory=heterogeneous,
        expect_active=False,
    ))
    return cases


def run_conformance_suite(
    quick: bool = True,
    check_invariants: bool = True,
) -> ConformanceReport:
    """Full matrix: backend pairs + memory models + folding -> report."""
    return ConformanceReport(
        cases=run_backend_pairs(quick=quick,
                                check_invariants=check_invariants),
        memory_cases=run_memory_matrix(quick=quick),
        folding_cases=run_folding_matrix(quick=quick),
        quick=quick,
    )

"""Cross-backend conformance and invariant checking (``repro.validate``).

Three pillars (see ``docs/validation.md``):

1. **Runtime invariants** — :class:`InvariantChecker` attaches to the
   event kernel, network backends, collective scheduler, and memory
   models through the same zero-cost-when-absent slot pattern as
   telemetry and fault injection, asserting causality, conservation,
   capacity, and finiteness laws while a simulation runs.
2. **Metamorphic relations** — :func:`run_metamorphic_suite` checks laws
   *between* runs (bandwidth monotonicity, permutation symmetry, payload
   additivity, fluid-limit convergence) with no golden numbers.
3. **Differential oracle** — :func:`run_conformance_suite` sweeps a
   scenario matrix across backend pairs and memory models within
   declared tolerance bands, emitting a versioned
   :class:`ConformanceReport`.
4. **Frontend gate** — :func:`run_frontend_suite` differentially checks
   the :mod:`repro.frontend` ingestion pipeline against the builtin
   analytic generators (the GPT-3 twin) and smoke-simulates the zoo.
5. **Adaptive gate** — :func:`run_adaptive_suite` gates the adaptive
   granularity controller (:mod:`repro.network.adaptive`): threshold=inf
   bit-identical to fluid, threshold=0 equal to garnet-lite after the
   closed-form saf correction, and the contended reference scenario
   inside the garnet band at a fraction of the events.
"""

from repro.validate.adaptive import (
    ADAPTIVE_SCHEMA_VERSION,
    EVENT_REDUCTION_FLOOR,
    AdaptiveCase,
    AdaptiveReport,
    run_adaptive_suite,
)

from repro.validate.conformance import (
    CONFORMANCE_SCHEMA_VERSION,
    REL_FLOW,
    REL_PACKET,
    REL_SAF,
    ConformanceCase,
    ConformanceReport,
    FoldingCase,
    MemoryModelCase,
    run_conformance_suite,
    run_folding_matrix,
)
from repro.validate.invariants import (
    INVARIANTS_SCHEMA_VERSION,
    InvariantChecker,
    InvariantConfig,
    InvariantError,
    InvariantReport,
    InvariantViolation,
    expected_collective_traffic,
)
from repro.validate.frontend import (
    FRONTEND_SCHEMA_VERSION,
    REL_FRONTEND,
    FrontendCase,
    FrontendReport,
    run_frontend_suite,
)
from repro.validate.metamorphic import (
    RelationResult,
    run_metamorphic_suite,
)

__all__ = [
    "ADAPTIVE_SCHEMA_VERSION",
    "AdaptiveCase",
    "AdaptiveReport",
    "CONFORMANCE_SCHEMA_VERSION",
    "EVENT_REDUCTION_FLOOR",
    "ConformanceCase",
    "ConformanceReport",
    "FRONTEND_SCHEMA_VERSION",
    "FoldingCase",
    "FrontendCase",
    "FrontendReport",
    "INVARIANTS_SCHEMA_VERSION",
    "InvariantChecker",
    "InvariantConfig",
    "InvariantError",
    "InvariantReport",
    "InvariantViolation",
    "MemoryModelCase",
    "REL_FLOW",
    "REL_FRONTEND",
    "REL_PACKET",
    "REL_SAF",
    "RelationResult",
    "expected_collective_traffic",
    "run_adaptive_suite",
    "run_conformance_suite",
    "run_folding_matrix",
    "run_frontend_suite",
    "run_metamorphic_suite",
]

"""Frontend differential gate — ingestion-path conformance.

The :mod:`repro.frontend` pipeline (HF config → op graph → planner →
traces) must reproduce what the hand-written generators emit for the
workloads both can express.  The anchor is GPT-3: the zoo's
``gpt3-175b-hf`` entry is architecturally identical to the builtin
:func:`repro.workload.models.gpt3_175b` spec, so the planned trace and
the :func:`~repro.workload.generators.generate_megatron_hybrid` trace
must agree — in total compute FLOPs, in per-communicator collective
traffic, and in simulated end-to-end time — within ``REL_FRONTEND``.

The band is wider than the backend-pair bands because the frontend
models the parts the analytic spec rounds away: embedding/LM-head ops,
per-op norm costs, and boundary All-Reduces.  Those contribute < 1% at
GPT-3 scale (the stack dominates), which is why 2e-2 is safe and a
regression that, say, double-counts a projection blows through it.

A zoo axis additionally smoke-plans and simulates every registered zoo
entry, so ``repro validate --suite frontend`` certifies the whole front
door, not just the GPT-3 twin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.config import SystemConfig
from repro.core.simulator import Simulator
from repro.network.topology import parse_topology
from repro.trace.graph import ExecutionTrace
from repro.trace.node import NodeType
from repro.workload.generators import generate_megatron_hybrid
from repro.workload.models import gpt3_175b
from repro.workload.parallelism import ParallelismSpec

#: Relative tolerance for frontend-vs-builtin trace agreement.
REL_FRONTEND = 2e-2

FRONTEND_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FrontendCase:
    """One frontend-vs-builtin comparison (or zoo smoke run)."""

    axis: str               # "gpt3-twin" | "zoo"
    case: str               # metric or zoo entry name
    builtin_value: float
    frontend_value: float
    tolerance_rel: float
    rel_error: float
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axis": self.axis,
            "case": self.case,
            "builtin_value": self.builtin_value,
            "frontend_value": self.frontend_value,
            "tolerance_rel": self.tolerance_rel,
            "rel_error": self.rel_error,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass
class FrontendReport:
    """Versioned outcome of one frontend-conformance sweep."""

    cases: List[FrontendCase] = field(default_factory=list)
    quick: bool = True
    schema_version: int = FRONTEND_SCHEMA_VERSION

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def failures(self) -> List[FrontendCase]:
        return [c for c in self.cases if not c.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": "frontend",
            "quick": self.quick,
            "passed": self.passed,
            "cases_total": len(self.cases),
            "cases_failed": len(self.failures),
            "tolerances": {"rel_frontend": REL_FRONTEND},
            "cases": [c.to_dict() for c in self.cases],
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# -- trace aggregation ------------------------------------------------------------------


def trace_compute_flops(traces: Dict[int, ExecutionTrace]) -> float:
    """Total FLOPs across every compute node of a trace set."""
    return float(sum(
        node.flops
        for trace in traces.values()
        for node in trace
        if node.node_type is NodeType.COMPUTE))


def trace_collective_bytes(
    traces: Dict[int, ExecutionTrace],
) -> Dict[Tuple[int, ...], float]:
    """Collective payload totals keyed by communicator dims."""
    out: Dict[Tuple[int, ...], float] = {}
    for trace in traces.values():
        for node in trace:
            if node.node_type is NodeType.COMM_COLLECTIVE:
                key = tuple(node.comm_dims or ())
                out[key] = out.get(key, 0.0) + node.tensor_bytes
    return out


def _rel_error(builtin: float, frontend: float) -> float:
    if builtin == frontend:
        return 0.0
    return abs(frontend - builtin) / max(abs(builtin), 1e-12)


def _case(axis: str, case: str, builtin: float, frontend: float,
          tolerance: float = REL_FRONTEND, message: str = "") -> FrontendCase:
    rel = _rel_error(builtin, frontend)
    passed = rel <= tolerance
    if not passed and not message:
        message = (f"{axis}/{case}: frontend {frontend:g} vs builtin "
                   f"{builtin:g} (rel {rel:.4f} > {tolerance:g})")
    return FrontendCase(
        axis=axis, case=case, builtin_value=builtin, frontend_value=frontend,
        tolerance_rel=tolerance, rel_error=rel, passed=passed,
        message=message)


# -- the GPT-3 twin axis ----------------------------------------------------------------


def run_gpt3_twin(quick: bool = True) -> List[FrontendCase]:
    """Frontend-planned GPT-3 twin vs builtin megatron-hybrid trace."""
    from repro.frontend import PlanConfig, plan, zoo_graph

    if quick:
        notation, bandwidths, mp = "Ring(8)_Switch(4)", [200.0, 50.0], 8
    else:
        notation, bandwidths, mp = (
            "Ring(2)_FC(8)_Ring(8)_Switch(4)", [250.0, 200.0, 100.0, 50.0],
            16)
    topology = parse_topology(notation, bandwidths)
    dp = topology.num_npus // mp
    spec = ParallelismSpec(mp=mp, dp=dp)

    model = gpt3_175b()  # batch_per_replica=2, seq 2048 — the twin's knobs
    builtin = generate_megatron_hybrid(model, topology, spec)
    graph = zoo_graph("gpt3-175b-hf")
    frontend = plan(graph, topology, PlanConfig(tp=mp, dp=dp)).traces

    cases = [
        _case("gpt3-twin", "compute_flops",
              trace_compute_flops(builtin), trace_compute_flops(frontend)),
    ]
    builtin_comm = trace_collective_bytes(builtin)
    frontend_comm = trace_collective_bytes(frontend)
    for dims in sorted(set(builtin_comm) | set(frontend_comm)):
        cases.append(_case(
            "gpt3-twin", f"collective_bytes_dims{list(dims)}",
            builtin_comm.get(dims, 0.0), frontend_comm.get(dims, 0.0)))

    config = SystemConfig(topology=topology)
    builtin_time = Simulator(builtin, config).run().total_time_ns
    frontend_time = Simulator(frontend,
                              SystemConfig(topology=topology)).run(
                              ).total_time_ns
    cases.append(_case("gpt3-twin", "total_time_ns",
                       builtin_time, frontend_time))
    return cases


# -- the zoo axis -----------------------------------------------------------------------


def run_zoo_smoke(quick: bool = True) -> List[FrontendCase]:
    """Every zoo entry must ingest, plan, and simulate end to end."""
    from repro.frontend import FrontendError, PlanConfig, plan, zoo_entry, zoo_names

    topology = parse_topology("Ring(2)_Switch(2)", [200.0, 50.0])
    cases: List[FrontendCase] = []
    for name in zoo_names():
        try:
            entry = zoo_entry(name)
            options = entry.options
            if quick and options.seq_len > 256:
                import dataclasses

                options = dataclasses.replace(options, seq_len=256)
            graph = entry.graph(options)
            planned = plan(graph, topology, PlanConfig())
            result = Simulator(
                planned.traces, SystemConfig(topology=topology)).run()
            ok = result.total_time_ns > 0 and result.nodes_executed == sum(
                len(t) for t in planned.traces.values())
            cases.append(FrontendCase(
                axis="zoo", case=name, builtin_value=0.0,
                frontend_value=result.total_time_ns, tolerance_rel=0.0,
                rel_error=0.0, passed=ok,
                message="" if ok else f"zoo/{name}: incomplete simulation"))
        except (FrontendError, ValueError, RuntimeError) as exc:
            cases.append(FrontendCase(
                axis="zoo", case=name, builtin_value=0.0, frontend_value=0.0,
                tolerance_rel=0.0, rel_error=0.0, passed=False,
                message=f"zoo/{name}: {exc}"))
    return cases


def run_frontend_suite(quick: bool = True) -> FrontendReport:
    """Both axes: the GPT-3 differential twin and the zoo smoke sweep."""
    return FrontendReport(
        cases=run_gpt3_twin(quick=quick) + run_zoo_smoke(quick=quick),
        quick=quick)

"""Adaptive-granularity conformance — the ``adaptive`` pillar.

Gates the :class:`repro.network.adaptive.AdaptiveFlowNetwork` controller
on three axes, reusing the PR 5 differential oracle's scenario matrix
and tolerance bands (:mod:`repro.validate.conformance`):

1. **identity** — ``threshold=inf`` never escalates, so the controller
   must be *bit-identical* to the pure fluid backend: exact simulated
   time, exact event count, zero escalations, across the full scenario
   matrix at every conformance payload size.
2. **packet_parity** — ``threshold=0`` escalates everything, so the
   controller must match the pure packet backend within the
   saf-adjusted band: the sub-flow model reproduces garnet-lite's
   timing up to the closed-form store-and-forward term (zero on a
   neighbor ring, one packet serialization per step through a switch
   fabric), checked to ``REL_SAF`` — at strictly fewer events.
3. **contended** — on the contended reference scenario (Ring(8)
   all-to-all, where multi-hop routes genuinely converge flows onto
   shared links), adaptive mode must stay within the raw garnet error
   band (``REL_PACKET``) while simulating at most ``1/EVENT_REDUCTION_
   FLOOR`` of the pure-packet event count, with real escalations and a
   clean invariant sweep.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.events import EventEngine
from repro.network import (
    AdaptiveFlowNetwork,
    FlowLevelNetwork,
    GarnetLiteNetwork,
    parse_topology,
)
from repro.system.executor import SendRecvCollectiveExecutor
from repro.validate.conformance import (
    DEFAULT_PACKET_BYTES,
    KiB,
    MiB,
    REL_PACKET,
    REL_SAF,
    SCENARIO_TOPOLOGIES,
    _saf_allowance_ns,
)
from repro.validate.invariants import InvariantChecker, InvariantConfig

#: Version of the :meth:`AdaptiveReport.to_dict` document layout.
ADAPTIVE_SCHEMA_VERSION = 1

#: Adaptive mode must simulate the contended reference scenario in at
#: most 1/3 of the pure-packet event count (ISSUE 10 acceptance).
EVENT_REDUCTION_FLOOR = 3.0

#: Contended reference scenario: Ring(8) all-to-all.  Distances span
#: 1..7 hops, so routes genuinely converge onto shared links and the
#: max-min model diverges from store-and-forward — exactly the regime
#: escalation is for.  (The switch fabrics' FIFO downlink pile-up under
#: all-to-all bursts is *not* closed-form, so the switch scenarios gate
#: the identity/parity axes only.)
CONTENDED_SCENARIO = ("ring8",) + SCENARIO_TOPOLOGIES["ring8"]
CONTENDED_ALGORITHM = "alltoall"


@dataclass(frozen=True)
class AdaptiveCase:
    """One adaptive-vs-reference comparison."""

    axis: str
    scenario: str
    topology: str
    algorithm: str
    payload_bytes: int
    threshold: float
    baseline_backend: str
    baseline_ns: float
    candidate_ns: float
    baseline_events: int
    candidate_events: int
    escalations: int
    deescalations: int
    tolerance_rel: float
    saf_allowance_ns: float
    rel_error: float
    adjusted_rel_error: float
    event_reduction: float
    invariant_violations: int
    passed: bool
    message: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "axis": self.axis,
            "scenario": self.scenario,
            "topology": self.topology,
            "algorithm": self.algorithm,
            "payload_bytes": self.payload_bytes,
            "threshold": self.threshold,
            "baseline_backend": self.baseline_backend,
            "baseline_ns": self.baseline_ns,
            "candidate_ns": self.candidate_ns,
            "baseline_events": self.baseline_events,
            "candidate_events": self.candidate_events,
            "escalations": self.escalations,
            "deescalations": self.deescalations,
            "tolerance_rel": self.tolerance_rel,
            "saf_allowance_ns": self.saf_allowance_ns,
            "rel_error": self.rel_error,
            "adjusted_rel_error": self.adjusted_rel_error,
            "event_reduction": self.event_reduction,
            "invariant_violations": self.invariant_violations,
            "passed": self.passed,
            "message": self.message,
        }


@dataclass
class AdaptiveReport:
    """Versioned outcome of one adaptive conformance sweep."""

    cases: List[AdaptiveCase] = field(default_factory=list)
    quick: bool = True
    schema_version: int = ADAPTIVE_SCHEMA_VERSION

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.cases)

    @property
    def failures(self) -> List[AdaptiveCase]:
        return [c for c in self.cases if not c.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "suite": "adaptive",
            "quick": self.quick,
            "passed": self.passed,
            "cases_total": len(self.cases),
            "cases_failed": len(self.failures),
            "tolerances": {"rel_packet": REL_PACKET, "rel_saf": REL_SAF,
                           "event_reduction_floor": EVENT_REDUCTION_FLOOR},
            "cases": [c.to_dict() for c in self.cases],
        }

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _run_case(
    backend: str,
    notation: str,
    bandwidths: Sequence[float],
    latencies: Sequence[float],
    algorithm: str,
    payload_bytes: int,
    packet_bytes: int,
    check_invariants: bool,
    threshold: float = 0.0,
    hysteresis: float = 1.0,
) -> Tuple[float, int, int, Optional[AdaptiveFlowNetwork]]:
    """Returns (time_ns, events, violations, adaptive network or None)."""
    topo = parse_topology(notation, list(bandwidths),
                          latencies_ns=list(latencies))
    engine = EventEngine()
    net: Any
    if backend == "flow":
        net = FlowLevelNetwork(engine, topo)
    elif backend == "garnet":
        net = GarnetLiteNetwork(engine, topo, packet_bytes=packet_bytes)
    elif backend == "adaptive":
        net = AdaptiveFlowNetwork(
            engine, topo, escalation_threshold=threshold,
            deescalation_hysteresis=hysteresis,
            escalation_packet_bytes=packet_bytes)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    checker = None
    if check_invariants:
        checker = InvariantChecker(InvariantConfig()).install(
            engine, network=net)
    executor = SendRecvCollectiveExecutor(engine, net)
    out: Dict[str, float] = {}
    getattr(executor, f"run_{algorithm}")(
        list(range(topo.num_npus)), payload_bytes,
        on_complete=lambda t: out.update(t=t))
    engine.run()
    violations = 0
    if checker is not None:
        violations = checker.finalize(engine.now).violations_total
    adaptive = net if backend == "adaptive" else None
    return out["t"], engine.events_processed, violations, adaptive


def _matrix_algorithms(notation: str) -> List[str]:
    algorithms = ["ring_allreduce", "ring_allgather"]
    if notation.startswith("Switch"):
        algorithms.append("halving_doubling_allreduce")
    return algorithms


def run_adaptive_suite(
    quick: bool = True,
    check_invariants: bool = True,
    packet_bytes: int = DEFAULT_PACKET_BYTES,
) -> AdaptiveReport:
    """Sweep the three adaptive axes; returns a versioned report."""
    sizes = [64 * KiB, 1 * MiB] if quick else [64 * KiB, 1 * MiB, 4 * MiB]
    cases: List[AdaptiveCase] = []

    for scenario, (notation, bws, lats) in sorted(
            SCENARIO_TOPOLOGIES.items()):
        k = parse_topology(notation, list(bws)).num_npus
        for algorithm in _matrix_algorithms(notation):
            for payload in sizes:
                # Axis 1: threshold=inf is bit-identical to pure fluid.
                base_ns, base_ev, base_viol, _ = _run_case(
                    "flow", notation, bws, lats, algorithm, payload,
                    packet_bytes, check_invariants)
                cand_ns, cand_ev, cand_viol, net = _run_case(
                    "adaptive", notation, bws, lats, algorithm, payload,
                    packet_bytes, check_invariants,
                    threshold=math.inf)
                violations = base_viol + cand_viol
                identical = (cand_ns == base_ns and cand_ev == base_ev
                             and net.escalations == 0)
                passed = identical and violations == 0
                message = ""
                if not identical:
                    message = (f"threshold=inf diverged from fluid: "
                               f"{cand_ns} ns / {cand_ev} events vs "
                               f"{base_ns} ns / {base_ev} events, "
                               f"{net.escalations} escalations")
                elif violations:
                    message = f"{violations} invariant violations"
                rel = abs(cand_ns - base_ns) / base_ns
                cases.append(AdaptiveCase(
                    axis="identity", scenario=scenario, topology=notation,
                    algorithm=algorithm, payload_bytes=payload,
                    threshold=math.inf, baseline_backend="flow",
                    baseline_ns=base_ns, candidate_ns=cand_ns,
                    baseline_events=base_ev, candidate_events=cand_ev,
                    escalations=net.escalations,
                    deescalations=net.deescalations,
                    tolerance_rel=0.0, saf_allowance_ns=0.0,
                    rel_error=rel, adjusted_rel_error=rel,
                    event_reduction=1.0,
                    invariant_violations=violations, passed=passed,
                    message=message))

                # Axis 2: threshold=0 matches pure packet after the
                # closed-form store-and-forward correction.
                base_ns, base_ev, base_viol, _ = _run_case(
                    "garnet", notation, bws, lats, algorithm, payload,
                    packet_bytes, check_invariants)
                cand_ns, cand_ev, cand_viol, net = _run_case(
                    "adaptive", notation, bws, lats, algorithm, payload,
                    packet_bytes, check_invariants, threshold=0.0)
                violations = base_viol + cand_viol
                saf = _saf_allowance_ns(notation, bws[0], k, algorithm,
                                        packet_bytes)
                rel = abs(cand_ns - base_ns) / base_ns
                adjusted = abs(cand_ns + saf - base_ns) / base_ns
                reduction = base_ev / max(1, cand_ev)
                agreement = adjusted <= REL_SAF and cand_ev < base_ev
                passed = agreement and violations == 0
                message = ""
                if not agreement:
                    message = (f"threshold=0 disagrees with garnet by "
                               f"{adjusted:.3g} after the {saf:.6g} ns "
                               f"saf correction ({cand_ev} vs {base_ev} "
                               "events)")
                elif violations:
                    message = f"{violations} invariant violations"
                cases.append(AdaptiveCase(
                    axis="packet_parity", scenario=scenario,
                    topology=notation, algorithm=algorithm,
                    payload_bytes=payload, threshold=0.0,
                    baseline_backend="garnet", baseline_ns=base_ns,
                    candidate_ns=cand_ns, baseline_events=base_ev,
                    candidate_events=cand_ev,
                    escalations=net.escalations,
                    deescalations=net.deescalations,
                    tolerance_rel=REL_SAF, saf_allowance_ns=saf,
                    rel_error=rel, adjusted_rel_error=adjusted,
                    event_reduction=reduction,
                    invariant_violations=violations, passed=passed,
                    message=message))

    # Axis 3: the contended reference scenario.  Larger payloads than
    # the matrix sizes: the backends' constant ~hop-latency offset must
    # be small relative to the serialization time being compared.
    scenario, notation, bws, lats = CONTENDED_SCENARIO
    contended_sizes = [2 * MiB] if quick else [2 * MiB, 4 * MiB]
    for payload in contended_sizes:
        base_ns, base_ev, base_viol, _ = _run_case(
            "garnet", notation, bws, lats, CONTENDED_ALGORITHM, payload,
            packet_bytes, check_invariants)
        cand_ns, cand_ev, cand_viol, net = _run_case(
            "adaptive", notation, bws, lats, CONTENDED_ALGORITHM, payload,
            packet_bytes, check_invariants, threshold=1.0, hysteresis=1.0)
        violations = base_viol + cand_viol
        rel = abs(cand_ns - base_ns) / base_ns
        reduction = base_ev / max(1, cand_ev)
        in_band = rel <= REL_PACKET
        reduced = reduction >= EVENT_REDUCTION_FLOOR
        escalated = net.escalations > 0
        passed = in_band and reduced and escalated and violations == 0
        message = ""
        if not in_band:
            message = (f"contended run off the garnet band: rel error "
                       f"{rel:.3g} > {REL_PACKET}")
        elif not reduced:
            message = (f"event reduction {reduction:.2f}x below the "
                       f"{EVENT_REDUCTION_FLOOR}x floor "
                       f"({cand_ev} vs {base_ev} events)")
        elif not escalated:
            message = "contended run never escalated"
        elif violations:
            message = f"{violations} invariant violations"
        cases.append(AdaptiveCase(
            axis="contended", scenario=scenario, topology=notation,
            algorithm=CONTENDED_ALGORITHM, payload_bytes=payload,
            threshold=1.0, baseline_backend="garnet",
            baseline_ns=base_ns, candidate_ns=cand_ns,
            baseline_events=base_ev, candidate_events=cand_ev,
            escalations=net.escalations, deescalations=net.deescalations,
            tolerance_rel=REL_PACKET, saf_allowance_ns=0.0,
            rel_error=rel, adjusted_rel_error=rel,
            event_reduction=reduction,
            invariant_violations=violations, passed=passed,
            message=message))

    return AdaptiveReport(cases=cases, quick=quick)
